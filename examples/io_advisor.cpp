// The power-optimization advisor (the paper's future-work runtime): sweep
// fio-style access patterns, predict I/O time and energy with the disk
// power model, and print the recommended strategy for each.
//
//   $ ./io_advisor
#include <iostream>

#include "src/analysis/advisor.hpp"
#include "src/fio/runner.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace greenvis;

  const analysis::Advisor advisor(machine::sandy_bridge_testbed(),
                                  power::hdd_power_params(),
                                  util::Watts{103.0});

  struct Scenario {
    const char* name;
    analysis::AccessPattern pattern;
  };
  auto make = [](std::uint64_t accesses, std::uint64_t kib, double random,
                 double reads, bool exploration) {
    analysis::AccessPattern p;
    p.accesses = accesses;
    p.bytes_per_access = util::kibibytes(kib);
    p.random_fraction = random;
    p.read_fraction = reads;
    p.exploratory_analysis_required = exploration;
    return p;
  };

  const Scenario scenarios[] = {
      {"checkpoint stream (seq write)", make(4096, 1024, 0.0, 0.0, true)},
      {"random post-hoc exploration", make(1u << 18, 16, 1.0, 0.95, true)},
      {"random scan, no exploration", make(1u << 18, 16, 1.0, 0.95, false)},
      {"mixed 30% random analytics", make(1u << 16, 64, 0.3, 0.7, true)},
  };

  util::TextTable table({"Scenario", "Predicted I/O time (s)",
                         "Predicted I/O energy (kJ)", "Recommendation"});
  for (const auto& s : scenarios) {
    const auto rec = advisor.recommend(s.pattern);
    table.add_row(
        {s.name, util::cell(advisor.predict_io_time(s.pattern).value()),
         util::cell(advisor.predict_io_energy(s.pattern).value() / 1000.0),
         analysis::strategy_name(rec.chosen.strategy)});
  }
  std::cout << table.render() << '\n';

  // Show the full estimate breakdown for the exploratory random workload.
  const auto rec = advisor.recommend(scenarios[1].pattern);
  std::cout << "Strategy estimates for 'random post-hoc exploration':\n";
  util::TextTable detail({"Strategy", "I/O time (s)", "I/O energy (kJ)",
                          "Keeps exploration"});
  for (const auto& e : rec.all) {
    detail.add_row({analysis::strategy_name(e.strategy),
                    util::cell(e.io_time.value()),
                    util::cell(e.io_energy.value() / 1000.0),
                    e.preserves_exploration ? "yes" : "no"});
  }
  std::cout << detail.render();
  std::cout << "\nChosen: " << analysis::strategy_name(rec.chosen.strategy)
            << " — " << rec.chosen.rationale << '\n';
  return 0;
}

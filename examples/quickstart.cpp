// Quickstart: compare the greenness of the two visualization pipelines on
// the paper's case study 1 and print the headline numbers.
//
//   $ ./quickstart [case_number]
#include <cstdlib>
#include <iostream>

#include "src/analysis/metrics.hpp"
#include "src/core/experiment.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace greenvis;

  const int case_number = argc > 1 ? std::atoi(argv[1]) : 1;
  if (case_number < 1 || case_number > 3) {
    std::cerr << "usage: quickstart [1|2|3]\n";
    return 1;
  }

  const core::CaseStudyConfig config = core::case_study(case_number);
  std::cout << "Running " << config.name << " (" << config.iterations
            << " iterations, I/O every " << config.io_period
            << (config.io_period == 1 ? "st" : "th")
            << " step) on the simulated Sandy Bridge testbed...\n\n";

  const core::Experiment experiment;
  const auto post =
      experiment.run(core::PipelineKind::kPostProcessing, config);
  const auto insitu = experiment.run(core::PipelineKind::kInSitu, config);
  const auto cmp = analysis::compare(post, insitu);

  util::TextTable table(
      {"Metric", "Post-processing", "In-situ", "Delta"});
  table.add_row({"Execution time (s)", util::cell(cmp.time_post.value()),
                 util::cell(cmp.time_insitu.value()),
                 "-" + util::cell_percent(cmp.time_reduction())});
  table.add_row({"Average power (W)", util::cell(cmp.avg_power_post.value()),
                 util::cell(cmp.avg_power_insitu.value()),
                 "+" + util::cell_percent(cmp.avg_power_increase())});
  table.add_row({"Peak power (W)", util::cell(cmp.peak_power_post.value()),
                 util::cell(cmp.peak_power_insitu.value()), "~"});
  table.add_row({"Energy (kJ)", util::cell(cmp.energy_post.value() / 1000.0),
                 util::cell(cmp.energy_insitu.value() / 1000.0),
                 "-" + util::cell_percent(cmp.energy_savings())});
  table.add_row({"Energy efficiency (norm.)",
                 util::cell(1.0 / (1.0 + cmp.efficiency_improvement()), 2),
                 "1.00",
                 "+" + util::cell_percent(cmp.efficiency_improvement())});
  std::cout << table.render() << '\n';

  std::cout << "Both pipelines rendered " << post.output.visualized_steps
            << " frames; image digests "
            << (post.output.image_digests == insitu.output.image_digests
                    ? "MATCH"
                    : "DIFFER")
            << " (the trade-off is cost, not output).\n";
  return 0;
}

// In-situ direct volume rendering of a 3-D heat simulation: an orbiting
// camera around two cooling hot spots, written as PPM frames.
//
//   $ ./volume_movie [frames] [output_dir]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "src/heat/solver3d.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/volume.hpp"

int main(int argc, char** argv) {
  using namespace greenvis;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::string out_dir = argc > 2 ? argv[2] : "volume_frames";
  if (frames < 1) {
    std::cerr << "usage: volume_movie [frames>=1] [output_dir]\n";
    return 1;
  }
  std::filesystem::create_directories(out_dir);

  heat::HeatProblem3D problem;
  problem.nx = problem.ny = problem.nz = 48;
  problem.dt = 2.0;
  problem.sources = {
      heat::HeatSource3D{16.0, 18.0, 30.0, 4.0, 100.0},
      heat::HeatSource3D{32.0, 30.0, 14.0, 6.0, 70.0},
  };

  vis::VolumeConfig config;
  config.width = 256;
  config.height = 256;
  config.tf.lo = 5.0;  // make the cold ambient transparent
  config.tf.hi = 100.0;
  config.tf.opacity_scale = 0.15;

  util::ThreadPool pool;
  heat::HeatSolver3D solver(problem, &pool);
  for (int f = 0; f < frames; ++f) {
    solver.step();
    config.camera.azimuth_deg = 20.0 + 360.0 * f / frames;
    config.camera.elevation_deg = 20.0 + 10.0 * (f % 2);
    const vis::Image image =
        vis::render_volume(solver.temperature(), config, &pool);
    char name[64];
    std::snprintf(name, sizeof(name), "/vol_%03d.ppm", f);
    image.save_ppm(out_dir + name);
    std::cout << "frame " << f << ": max T = "
              << solver.temperature().max_value() << "\n";
  }
  std::cout << "Wrote " << frames << " volume-rendered frames to " << out_dir
            << "/\n";
  return 0;
}

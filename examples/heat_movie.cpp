// In-situ rendering of a cooling plate: writes a PPM frame sequence to disk
// (the host's real disk — these are the actual images the pipeline
// produces).
//
//   $ ./heat_movie [frames] [output_dir]
//   $ ffmpeg -i frame_%03d.ppm movie.mp4    # optional
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "src/heat/solver.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/annotate.hpp"
#include "src/vis/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace greenvis;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::string out_dir = argc > 2 ? argv[2] : "heat_frames";
  if (frames < 1) {
    std::cerr << "usage: heat_movie [frames>=1] [output_dir]\n";
    return 1;
  }
  std::filesystem::create_directories(out_dir);

  // A plate with two hot sources and cold edges (the quickstart problem),
  // plus a cool sink wandering the diagonal for visual interest.
  heat::HeatProblem problem;
  problem.sources = {
      heat::HeatSource{40.0, 44.0, 6.0, 100.0},
      heat::HeatSource{90.0, 84.0, 9.0, 60.0},
      heat::HeatSource{20.0, 100.0, 5.0, -40.0},
  };
  problem.dt = 2.0;  // long steps: visible motion per frame

  vis::VisConfig vis_config;
  vis_config.width = 256;
  vis_config.height = 256;
  vis_config.range_lo = -40.0;
  vis_config.range_hi = 100.0;
  vis_config.contour_levels = 7;

  util::ThreadPool pool;
  heat::HeatSolver solver(problem, &pool);
  const vis::VisPipeline pipeline(vis_config, &pool);

  for (int f = 0; f < frames; ++f) {
    for (int sub = 0; sub < 3; ++sub) {
      solver.step();
    }
    vis::Image image = pipeline.render(solver.temperature());
    char label[64];
    std::snprintf(label, sizeof(label), "STEP %03d  T=%.1f..%.1f", f * 3,
                  solver.temperature().min_value(),
                  solver.temperature().max_value());
    vis::draw_text(image, label, 6, 6, vis::Rgb{255, 255, 255});
    vis::draw_colorbar(image, vis::ColorMap::cool_warm(),
                       vis_config.range_lo, vis_config.range_hi);
    char name[64];
    std::snprintf(name, sizeof(name), "/frame_%03d.ppm", f);
    image.save_ppm(out_dir + name);
    std::cout << "frame " << f << ": field range ["
              << solver.temperature().min_value() << ", "
              << solver.temperature().max_value() << "]\n";
  }
  std::cout << "Wrote " << frames << " PPM frames to " << out_dir << "/\n";
  return 0;
}

// Composite-plate scenario: a heterogeneous plate (copper block, insulating
// baffle) with a hot source — in-situ rendering of pseudocolor, isotherms,
// and heat-flux streamlines, plus an energy comparison of the two
// pipelines on this heavier scenario.
//
//   $ ./composite_plate [output_dir]
#include <filesystem>
#include <iostream>

#include "src/analysis/metrics.hpp"
#include "src/core/experiment.hpp"
#include "src/util/table.hpp"
#include "src/vis/flow.hpp"

int main(int argc, char** argv) {
  using namespace greenvis;
  const std::string out_dir = argc > 1 ? argv[1] : "composite_out";
  std::filesystem::create_directories(out_dir);

  // Build the material map: background alloy (kappa = 1), a copper block
  // (kappa = 8) in the lower-left, and an insulating baffle (kappa = 0.01)
  // three-quarters of the way across.
  core::CaseStudyConfig config = core::case_study(1);
  config.name = "Composite plate";
  config.problem.sources = {heat::HeatSource{20.0, 20.0, 6.0, 100.0}};
  config.problem.conductivity =
      util::Field2D(config.problem.nx, config.problem.ny, 1.0);
  for (std::size_t j = 8; j < 56; ++j) {
    for (std::size_t i = 8; i < 56; ++i) {
      config.problem.conductivity.at(i, j) = 8.0;  // copper block
    }
  }
  for (std::size_t j = 10; j < 118; ++j) {
    config.problem.conductivity.at(92, j) = 0.01;  // baffle with a gap
  }

  // Render the final state with all three modalities.
  util::ThreadPool pool;
  heat::HeatSolver solver(config.problem, &pool);
  for (int s = 0; s < config.iterations; ++s) {
    solver.step();
  }
  const vis::VisPipeline pipeline(config.vis, &pool);
  vis::Image image = pipeline.render(solver.temperature());
  vis::draw_streamlines(image, solver.temperature(), 12,
                        vis::Rgb{235, 235, 235});
  image.save_ppm(out_dir + "/composite_plate.ppm");
  std::cout << "Rendered " << out_dir << "/composite_plate.ppm (pseudocolor "
            << "+ isotherms + heat-flux streamlines)\n";
  std::cout << "Field range: [" << solver.temperature().min_value() << ", "
            << solver.temperature().max_value() << "]\n\n";

  // The greenness question for this scenario.
  const core::Experiment experiment;
  const auto post =
      experiment.run(core::PipelineKind::kPostProcessing, config);
  const auto insitu = experiment.run(core::PipelineKind::kInSitu, config);
  const auto cmp = analysis::compare(post, insitu);
  std::cout << "Post-processing: " << util::cell(cmp.time_post.value())
            << " s / " << util::cell(cmp.energy_post.value() / 1000.0)
            << " kJ\n";
  std::cout << "In-situ:         " << util::cell(cmp.time_insitu.value())
            << " s / " << util::cell(cmp.energy_insitu.value() / 1000.0)
            << " kJ  (" << util::cell_percent(cmp.energy_savings())
            << " saved)\n";
  return 0;
}

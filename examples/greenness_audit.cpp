// Full greenness audit: both pipelines x all three case studies, with power
// traces and timelines exported as CSV for plotting — the complete study of
// the paper in one command.
//
//   $ ./greenness_audit [output_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "src/analysis/metrics.hpp"
#include "src/analysis/report.hpp"
#include "src/core/experiment.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace greenvis;

  const std::string out_dir = argc > 1 ? argv[1] : "audit_out";
  std::filesystem::create_directories(out_dir);

  const core::Experiment experiment;
  util::TextTable summary({"Case", "Pipeline", "Time (s)", "Avg W", "Peak W",
                           "Energy (kJ)", "Savings"});
  std::vector<analysis::StudyCase> study;

  for (int n = 1; n <= 3; ++n) {
    const auto config = core::case_study(n);
    std::cout << "Auditing " << config.name << "...\n";
    const auto post =
        experiment.run(core::PipelineKind::kPostProcessing, config);
    const auto insitu = experiment.run(core::PipelineKind::kInSitu, config);
    const auto cmp = analysis::compare(post, insitu);
    study.push_back(analysis::StudyCase{post, insitu});

    for (const auto* m : {&post, &insitu}) {
      const std::string tag = "case" + std::to_string(n) + "_" +
                              (m == &post ? "post" : "insitu");
      std::ofstream trace_csv(out_dir + "/" + tag + "_power.csv");
      m->trace.write_csv(trace_csv);
      std::ofstream tl_csv(out_dir + "/" + tag + "_timeline.csv");
      m->timeline.write_csv(tl_csv);
    }

    summary.add_row({config.name, "Traditional",
                     util::cell(post.duration.value()),
                     util::cell(post.average_power.value()),
                     util::cell(post.peak_power.value()),
                     util::cell(post.energy.value() / 1000.0), "--"});
    summary.add_row({config.name, "In-situ",
                     util::cell(insitu.duration.value()),
                     util::cell(insitu.average_power.value()),
                     util::cell(insitu.peak_power.value()),
                     util::cell(insitu.energy.value() / 1000.0),
                     util::cell_percent(cmp.energy_savings())});

    // Per-phase power, as in the paper's Sec. V-A narrative.
    const auto stats = analysis::phase_power_stats(post.trace, post.timeline);
    std::cout << "  stage power (traditional): ";
    for (const auto& [phase, ps] : stats) {
      std::cout << phase << "=" << util::cell(ps.average_power.value())
                << "W ";
    }
    std::cout << '\n';
  }

  std::cout << '\n' << summary.render();

  // Full markdown report, including the Sec. V-C decomposition per case.
  const auto wr = experiment.run_write_stage(core::case_study(1), 20);
  analysis::ReportConfig report_config;
  report_config.io_stage_dynamic_power = wr.average_dynamic_power;
  std::ofstream report(out_dir + "/report.md");
  report << analysis::render_report(study, report_config);

  std::cout << "\nCSV traces and report.md written to " << out_dir << "/\n";
  return 0;
}

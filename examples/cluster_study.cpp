// Multi-node cluster study: size a visualization strategy for a machine.
//
// Given a node count and a staging budget, compare post-processing,
// in-situ, and in-transit pipelines on the cluster model and print a
// recommendation with the phase anatomy behind it.
//
//   $ ./cluster_study [compute_nodes] [staging_nodes] [storage_targets]
#include <cstdlib>
#include <iostream>

#include "src/net/multinode.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace greenvis;

  net::ClusterSpec cluster;
  cluster.compute_nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  cluster.staging_nodes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  if (argc > 3) {
    cluster.pfs.storage_targets = std::strtoull(argv[3], nullptr, 10);
  }
  if (cluster.compute_nodes == 0 ||
      (cluster.compute_nodes & (cluster.compute_nodes - 1)) != 0) {
    std::cerr << "compute_nodes must be a power of two\n";
    return 1;
  }

  const net::MultiNodeStudy study(cluster, core::case_study(1));
  std::cout << "Cluster: " << cluster.compute_nodes << " compute + "
            << cluster.staging_nodes << " staging nodes, "
            << cluster.pfs.storage_targets
            << " storage targets, " << cluster.network.name << "\n\n";

  const auto post = study.post_processing();
  const auto insitu = study.in_situ();
  const auto transit = study.in_transit();

  util::TextTable t({"Pipeline", "Time (s)", "Avg power (kW)", "Energy (MJ)",
                     "vs post-processing"});
  for (const auto* r : {&post, &transit, &insitu}) {
    t.add_row({r->pipeline, util::cell(r->duration.value()),
               util::cell(r->average_power.value() / 1000.0, 2),
               util::cell(r->energy.value() / 1e6, 2),
               r == &post
                   ? std::string("--")
                   : "-" + util::cell_percent(
                               1.0 - r->energy.value() / post.energy.value())});
  }
  std::cout << t.render() << '\n';

  const net::MultiNodeResult* best = &post;
  for (const auto* r : {&transit, &insitu}) {
    if (r->energy < best->energy) {
      best = r;
    }
  }
  std::cout << "Greenest strategy: " << best->pipeline << "\n\n";

  std::cout << "Phase anatomy (" << best->pipeline << "):\n";
  util::TextTable anatomy(
      {"Phase", "x", "Per occurrence (s)", "Total (s)", "Cluster kW"});
  for (const auto& p : best->phases) {
    anatomy.add_row({p.name, std::to_string(p.occurrences),
                     util::cell(p.time_per_occurrence.value(), 3),
                     util::cell(p.total_time().value()),
                     util::cell(p.cluster_power.value() / 1000.0, 2)});
  }
  std::cout << anatomy.render();
  std::cout << "\nCaveat: in-situ forfeits post-hoc exploration; in-transit "
               "keeps raw data alive on the staging nodes only while they "
               "hold it. If exploration matters, compare against "
               "reorganized post-processing (see bench_sec5d_reorg_whatif)."
            << '\n';
  return 0;
}

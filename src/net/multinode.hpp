// Multi-node pipeline study (the paper's future work, plus the in-transit
// variant its related-work section discusses via Bennett et al. [10]).
//
// A bulk-synchronous cluster model: every step all compute nodes advance
// through the same phases (solve, halo exchange, then I/O / render /
// composite / ship, depending on the pipeline), and each phase's duration is
// the slowest participant's. Per-phase node power comes from the same
// calibrated per-node power model as the single-node study; cluster power
// adds NICs, the switch, and the parallel filesystem's storage targets.
//
// Three pipelines:
//   * post-processing — checkpoint subdomains to the PFS every I/O step,
//     then a single visualization node reads everything back and renders;
//   * in-situ        — every node renders its tile, tiles are gathered and
//     assembled on a root node, nothing touches storage;
//   * in-transit     — compute nodes ship raw subdomains to dedicated
//     staging nodes which render concurrently; the simulation only pays the
//     send, unless the staging pipeline cannot keep up.
#pragma once

#include <string>
#include <vector>

#include "src/core/workload.hpp"
#include "src/machine/cost_model.hpp"
#include "src/net/pfs.hpp"
#include "src/power/calibration.hpp"
#include "src/power/model.hpp"

namespace greenvis::net {

struct ClusterSpec {
  /// Compute ranks (power of two; one 128x128 subdomain each — weak
  /// scaling).
  std::size_t compute_nodes{16};
  /// Dedicated staging/visualization nodes (in-transit).
  std::size_t staging_nodes{2};
  machine::NodeSpec node{machine::sandy_bridge_testbed()};
  machine::CostModelParams cost{};
  power::PowerCalibration calibration{};
  NetworkSpec network{};
  PfsSpec pfs{};
};

struct PhaseCost {
  std::string name;
  util::Seconds time_per_occurrence{0.0};
  std::size_t occurrences{0};
  util::Watts cluster_power{0.0};
  /// Overlapped phases (in-transit staging work) contribute energy but not
  /// critical-path duration; their cluster_power holds only the *extra*
  /// power above the idle already counted elsewhere.
  bool overlapped{false};

  [[nodiscard]] util::Seconds total_time() const {
    return time_per_occurrence * static_cast<double>(occurrences);
  }
  [[nodiscard]] util::Joules energy() const {
    return cluster_power * total_time();
  }
};

struct MultiNodeResult {
  std::string pipeline;
  util::Seconds duration{0.0};
  util::Joules energy{0.0};
  util::Watts average_power{0.0};
  std::vector<PhaseCost> phases;

  [[nodiscard]] util::Seconds phase_time(const std::string& name) const;
};

class MultiNodeStudy {
 public:
  MultiNodeStudy(const ClusterSpec& cluster, const core::CaseStudyConfig& workload);

  [[nodiscard]] MultiNodeResult post_processing() const;
  [[nodiscard]] MultiNodeResult in_situ() const;
  [[nodiscard]] MultiNodeResult in_transit() const;

  /// Total nodes drawing power (compute + staging + storage targets).
  [[nodiscard]] std::size_t total_nodes() const;

  // -- building blocks (exposed for tests) --
  [[nodiscard]] util::Seconds solve_time() const;
  [[nodiscard]] util::Seconds halo_time() const;
  [[nodiscard]] util::Seconds render_time() const;
  [[nodiscard]] double subdomain_bytes() const;
  [[nodiscard]] double tile_bytes() const;
  /// Payload the post-processing pipeline moves through the PFS per I/O
  /// step: every rank checkpoints its subdomain.
  [[nodiscard]] double pfs_bytes_per_io_step() const;
  /// Aggregate PFS traffic over the whole run: each I/O step's checkpoint
  /// is written once and read back once by the visualization node.
  [[nodiscard]] double total_pfs_bytes() const;
  /// Idle power of one node (no disk — compute nodes are diskless; storage
  /// targets add theirs separately).
  [[nodiscard]] util::Watts node_idle_power() const;

 private:
  [[nodiscard]] MultiNodeResult finish(std::string name,
                                       std::vector<PhaseCost> phases) const;
  /// Cluster-wide power: `sim_nodes` at the 16-core solver load, `vis_nodes`
  /// at the renderer load, `nics` NICs active, `targets` storage targets
  /// streaming. Everything else idles.
  [[nodiscard]] util::Watts cluster_power(double sim_nodes, double vis_nodes,
                                          double nics, double targets) const;

  ClusterSpec cluster_;
  core::CaseStudyConfig workload_;
  machine::CostModel cost_model_;
  power::PowerModel node_power_;
  PfsModel pfs_;
};

}  // namespace greenvis::net

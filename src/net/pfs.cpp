#include "src/net/pfs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "src/obs/registry.hpp"
#include "src/storage/hdd.hpp"

namespace greenvis::net {

PfsModel::PfsModel(const PfsSpec& spec) : spec_(spec) {
  GREENVIS_REQUIRE(spec_.storage_targets >= 1);
  GREENVIS_REQUIRE(spec_.interference > 0.0 && spec_.interference <= 1.0);
}

util::BytesPerSecond PfsModel::aggregate_bandwidth(std::size_t clients) const {
  GREENVIS_REQUIRE(clients >= 1);
  const double streaming = spec_.target_disk.sustained_rate.value();
  const double clients_per_target =
      static_cast<double>(clients) /
      static_cast<double>(spec_.storage_targets);
  // One client per target keeps the stream sequential; extra concurrent
  // streams force seeks between them.
  const double sharers = std::max(1.0, clients_per_target);
  const double per_target =
      streaming * std::pow(spec_.interference, sharers - 1.0);
  const double busy_targets = std::min(
      static_cast<double>(clients), static_cast<double>(spec_.storage_targets));
  return util::BytesPerSecond{per_target * busy_targets};
}

Seconds PfsModel::collective_io_time(std::size_t clients,
                                     double bytes_per_client) const {
  GREENVIS_REQUIRE(bytes_per_client >= 0.0);
  const double total = bytes_per_client * static_cast<double>(clients);
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    static obs::Counter& ops = registry.counter("net.collective_ops");
    static obs::Counter& bytes = registry.counter("net.collective_bytes");
    ops.add(1);
    bytes.add(static_cast<std::uint64_t>(total));
  }
  const Seconds disk_time{total / aggregate_bandwidth(clients).value()};
  // One file operation per client, served serially per target.
  const Seconds ops_time{spec_.per_file_overhead.value() *
                         static_cast<double>(clients) /
                         static_cast<double>(spec_.storage_targets)};
  // Each client also pushes its bytes through its own NIC; ports operate in
  // parallel, so the network contribution is one client's transfer.
  const Seconds wire = message_time(spec_.network, bytes_per_client);
  return std::max(disk_time + ops_time, wire) + spec_.network.latency;
}

std::vector<storage::CompletionRecord> PfsModel::replay_collective(
    std::size_t clients, double bytes_per_client, storage::IoKind kind) const {
  GREENVIS_REQUIRE(clients >= 1);
  GREENVIS_REQUIRE(bytes_per_client >= 0.0);
  // IoRequest lengths are 32-bit; checkpoints are not, so each client's
  // per-target share goes out in bounded chunks.
  constexpr std::uint64_t kChunk = std::uint64_t{256} << 20;  // 256 MiB
  const std::uint64_t per_target = static_cast<std::uint64_t>(
      bytes_per_client / static_cast<double>(spec_.storage_targets));
  std::vector<storage::CompletionRecord> records;
  for (std::size_t t = 0; t < spec_.storage_targets; ++t) {
    storage::HddParams params;
    params.spec = spec_.target_disk;
    storage::HddModel disk(params);
    storage::AsyncBlockDevice queue(disk);
    // Client streams interleave chunk-by-chunk on the target, which is the
    // access pattern the analytic interference penalty stands in for.
    for (std::uint64_t chunk = 0; chunk * kChunk < per_target; ++chunk) {
      const std::uint64_t len =
          std::min(kChunk, per_target - chunk * kChunk);
      for (std::size_t c = 0; c < clients; ++c) {
        const std::uint64_t base = static_cast<std::uint64_t>(c) * per_target;
        queue.submit(
            storage::IoRequest{kind, base + chunk * kChunk,
                               static_cast<std::uint32_t>(len)},
            Seconds{0.0});
      }
    }
    (void)queue.drain();
    queue.poll(records);
  }
  return records;
}

double PfsModel::target_busy_fraction(std::size_t clients) const {
  const double busy_targets = std::min(
      static_cast<double>(clients), static_cast<double>(spec_.storage_targets));
  return busy_targets / static_cast<double>(spec_.storage_targets);
}

}  // namespace greenvis::net

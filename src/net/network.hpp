// Interconnect model.
//
// The paper's future work asks for "evaluation on a multi-node system to
// study the effect of network I/O in addition to disk I/O". This model
// prices messages on a full-bisection fabric (2012-era QDR InfiniBand by
// default): per-message time is latency plus bytes over per-port bandwidth,
// and per-node NIC busy time is tracked so the cluster power model can
// price network activity the same way the disk model prices seeks.
#pragma once

#include <cstddef>
#include <string>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace greenvis::net {

using util::Seconds;

struct NetworkSpec {
  std::string name{"QDR InfiniBand"};
  Seconds latency{util::microseconds(1.3)};
  util::BytesPerSecond per_port_bandwidth{
      util::mebibytes_per_second(3200.0)};
  util::Watts nic_idle{2.0};
  util::Watts nic_active{5.5};
  /// Switch power, amortized per connected port (always on).
  util::Watts switch_per_port{3.0};
};

/// Point-to-point message time.
[[nodiscard]] inline Seconds message_time(const NetworkSpec& net,
                                          double bytes) {
  GREENVIS_REQUIRE(bytes >= 0.0);
  return net.latency + Seconds{bytes / net.per_port_bandwidth.value()};
}

/// 2-D halo exchange per step: each rank exchanges `halo_bytes` with up to
/// four neighbors; sends overlap pairwise, so the critical path is two
/// sequential exchanges (x then y).
[[nodiscard]] inline Seconds halo_exchange_time(const NetworkSpec& net,
                                                double halo_bytes) {
  return 2.0 * message_time(net, halo_bytes);
}

/// All-to-one gather of `bytes_per_rank` from `ranks` senders into one
/// receiver: the receiver's port is the bottleneck.
[[nodiscard]] inline Seconds gather_time(const NetworkSpec& net,
                                         double bytes_per_rank,
                                         std::size_t ranks) {
  GREENVIS_REQUIRE(ranks >= 1);
  return net.latency +
         Seconds{bytes_per_rank * static_cast<double>(ranks) /
                 net.per_port_bandwidth.value()};
}

}  // namespace greenvis::net

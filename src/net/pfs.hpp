// Parallel filesystem model (Lustre-style).
//
// N clients write/read through `storage_targets` object storage targets,
// each an independent HDD-backed server. Striped access divides a file
// across targets; with more clients than targets the per-client share of a
// target's bandwidth shrinks, and concurrent clients on one spinning target
// destroy its sequentiality (an interference penalty) — the reason parallel
// I/O at scale is so much worse than one client's streaming rate
// (refs [27]-[29] in the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "src/machine/spec.hpp"
#include "src/net/network.hpp"
#include "src/storage/async_device.hpp"
#include "src/util/units.hpp"

namespace greenvis::net {

struct PfsSpec {
  std::size_t storage_targets{4};
  machine::DiskSpec target_disk{};
  /// Fraction of a target's streaming bandwidth retained per additional
  /// concurrent client (seek interleaving between streams): effective
  /// bandwidth = streaming * interference^(clients_per_target - 1).
  double interference{0.85};
  /// Server-side cost per file operation (create/commit on write, metadata
  /// walk on cold read) — the collective-checkpoint analogue of the
  /// single-node journal commit. Targets serve these serially.
  Seconds per_file_overhead{util::milliseconds(35.0)};
  NetworkSpec network{};
};

class PfsModel {
 public:
  explicit PfsModel(const PfsSpec& spec);

  /// Aggregate bandwidth seen by `clients` concurrently writing (or
  /// reading) large striped files.
  [[nodiscard]] util::BytesPerSecond aggregate_bandwidth(
      std::size_t clients) const;

  /// Time for `clients` ranks to each move `bytes_per_client` concurrently
  /// (collective checkpoint write / restart read), network included.
  [[nodiscard]] Seconds collective_io_time(std::size_t clients,
                                           double bytes_per_client) const;

  /// Disk busy fraction across the targets during such a collective op.
  [[nodiscard]] double target_busy_fraction(std::size_t clients) const;

  /// Instrumented replay of one collective op: each target becomes an
  /// HDD-backed storage::AsyncBlockDevice and every client's striped share
  /// is submitted as chunked IoRequests (client streams interleaved per
  /// target — the seek pattern behind the interference penalty). Returns
  /// all targets' completion records, target-major. The analytic
  /// collective_io_time above remains the model of record; this path
  /// exposes per-request queue/service timestamps for tracing and tests.
  [[nodiscard]] std::vector<storage::CompletionRecord> replay_collective(
      std::size_t clients, double bytes_per_client,
      storage::IoKind kind = storage::IoKind::kWrite) const;

  [[nodiscard]] const PfsSpec& spec() const { return spec_; }

 private:
  PfsSpec spec_;
};

}  // namespace greenvis::net

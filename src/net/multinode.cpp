#include "src/net/multinode.hpp"

#include <algorithm>
#include <cmath>

#include "src/heat/solver.hpp"
#include "src/util/error.hpp"
#include "src/vis/compositing.hpp"
#include "src/vis/pipeline.hpp"

namespace greenvis::net {

util::Seconds MultiNodeResult::phase_time(const std::string& name) const {
  util::Seconds sum{0.0};
  for (const PhaseCost& p : phases) {
    if (p.name == name) {
      sum += p.total_time();
    }
  }
  return sum;
}

MultiNodeStudy::MultiNodeStudy(const ClusterSpec& cluster,
                               const core::CaseStudyConfig& workload)
    : cluster_(cluster),
      workload_(workload),
      cost_model_(cluster.node, cluster.cost),
      node_power_(cluster.calibration, power::hdd_power_params()),
      pfs_(cluster.pfs) {
  GREENVIS_REQUIRE(cluster_.compute_nodes >= 1);
  GREENVIS_REQUIRE((cluster_.compute_nodes & (cluster_.compute_nodes - 1)) ==
                   0);
  GREENVIS_REQUIRE(cluster_.staging_nodes >= 1);
}

std::size_t MultiNodeStudy::total_nodes() const {
  return cluster_.compute_nodes + cluster_.staging_nodes +
         cluster_.pfs.storage_targets;
}

util::Seconds MultiNodeStudy::solve_time() const {
  const heat::HeatSolver probe(workload_.problem, nullptr);
  return cost_model_.duration(probe.step_activity(),
                              cluster_.node.cpu.nominal_ghz);
}

util::Seconds MultiNodeStudy::halo_time() const {
  // Two ghost rows/columns of doubles per exchange direction.
  const double halo_bytes =
      2.0 * static_cast<double>(workload_.problem.nx) * sizeof(double);
  return halo_exchange_time(cluster_.network, halo_bytes);
}

util::Seconds MultiNodeStudy::render_time() const {
  const vis::VisPipeline probe(workload_.vis, nullptr);
  return cost_model_.duration(probe.render_activity(),
                              cluster_.node.cpu.nominal_ghz);
}

double MultiNodeStudy::subdomain_bytes() const {
  return static_cast<double>(workload_.problem.nx * workload_.problem.ny *
                             sizeof(double)) +
         48.0;  // serialization + dataset framing
}

double MultiNodeStudy::tile_bytes() const {
  return static_cast<double>(workload_.vis.width * workload_.vis.height * 3);
}

double MultiNodeStudy::pfs_bytes_per_io_step() const {
  return subdomain_bytes() * static_cast<double>(cluster_.compute_nodes);
}

double MultiNodeStudy::total_pfs_bytes() const {
  return pfs_bytes_per_io_step() * static_cast<double>(workload_.io_steps()) *
         2.0;
}

util::Watts MultiNodeStudy::node_idle_power() const {
  // Compute nodes are diskless: package + DRAM + rest of system.
  const auto& cal = cluster_.calibration;
  return cal.cpu.package_idle + cal.dram.idle + cal.rest.constant;
}

util::Watts MultiNodeStudy::cluster_power(double sim_nodes, double vis_nodes,
                                          double nics, double targets) const {
  const double n_total = static_cast<double>(total_nodes());
  const auto& net = cluster_.network;

  // Idle floor: every node's diskless idle, every NIC's idle, the switch,
  // and the storage targets' spinning disks.
  util::Watts total = node_idle_power() * n_total + net.nic_idle * n_total +
                      net.switch_per_port * n_total +
                      node_power_.disk_idle_power() *
                          static_cast<double>(cluster_.pfs.storage_targets);

  machine::ComponentLoad sim_load;
  sim_load.active_cores =
      static_cast<double>(cluster_.node.cpu.total_cores());
  sim_load.frequency_ghz = cluster_.node.cpu.nominal_ghz;
  machine::ComponentLoad idle_load;
  const util::Watts sim_delta =
      node_power_.package_power(sim_load) - node_power_.package_power(idle_load);

  machine::ComponentLoad vis_load;
  vis_load.active_cores = 16.0;
  vis_load.core_utilization = 0.35;
  vis_load.frequency_ghz = cluster_.node.cpu.nominal_ghz;
  const util::Watts vis_delta =
      node_power_.package_power(vis_load) - node_power_.package_power(idle_load);

  // Streaming storage target: sequential write/read transfer power.
  const util::Watts target_delta = node_power_.disk_params().write_transfer;

  total += sim_delta * sim_nodes;
  total += vis_delta * vis_nodes;
  total += (net.nic_active - net.nic_idle) * nics;
  total += target_delta * targets;
  return total;
}

MultiNodeResult MultiNodeStudy::finish(std::string name,
                                       std::vector<PhaseCost> phases) const {
  MultiNodeResult r;
  r.pipeline = std::move(name);
  for (const PhaseCost& p : phases) {
    if (!p.overlapped) {
      r.duration += p.total_time();
    }
    r.energy += p.energy();
  }
  r.average_power = r.duration.value() > 0.0
                        ? r.energy / r.duration
                        : util::Watts{0.0};
  r.phases = std::move(phases);
  return r;
}

MultiNodeResult MultiNodeStudy::post_processing() const {
  const auto n = cluster_.compute_nodes;
  const auto steps = static_cast<std::size_t>(workload_.iterations);
  const auto io_steps = static_cast<std::size_t>(workload_.io_steps());
  std::vector<PhaseCost> phases;

  phases.push_back({"Simulation", solve_time(), steps,
                    cluster_power(static_cast<double>(n), 0, 0, 0), false});
  phases.push_back({"Halo", halo_time(), steps,
                    cluster_power(0, 0, static_cast<double>(n), 0), false});
  // Collective checkpoint write, all ranks to the PFS.
  const util::Seconds write_time =
      pfs_.collective_io_time(n, subdomain_bytes());
  phases.push_back(
      {"Write", write_time, io_steps,
       cluster_power(0, 0, static_cast<double>(n),
                     pfs_.target_busy_fraction(n) *
                         static_cast<double>(cluster_.pfs.storage_targets)),
       false});
  // Post-hoc: one visualization node reads every subdomain back — striped
  // data streams from all targets (bounded by the reader's NIC), but each
  // of the N files costs a cold metadata walk, served serially.
  const double total_bytes = subdomain_bytes() * static_cast<double>(n);
  const double read_bw = std::min(
      cluster_.network.per_port_bandwidth.value(),
      cluster_.pfs.target_disk.sustained_rate.value() *
          static_cast<double>(cluster_.pfs.storage_targets));
  const util::Seconds read_time{
      total_bytes / read_bw + cluster_.pfs.per_file_overhead.value() *
                                  static_cast<double>(n) /
                                  static_cast<double>(
                                      cluster_.pfs.storage_targets)};
  phases.push_back(
      {"Read", read_time, io_steps,
       cluster_power(0, 0, 1.0,
                     static_cast<double>(cluster_.pfs.storage_targets)),
       false});
  // The single node renders the global frame.
  phases.push_back({"Visualization", render_time(), io_steps,
                    cluster_power(0, 1.0, 0, 0), false});
  return finish("Post-processing", std::move(phases));
}

MultiNodeResult MultiNodeStudy::in_situ() const {
  const auto n = cluster_.compute_nodes;
  const auto steps = static_cast<std::size_t>(workload_.iterations);
  const auto io_steps = static_cast<std::size_t>(workload_.io_steps());
  std::vector<PhaseCost> phases;

  phases.push_back({"Simulation", solve_time(), steps,
                    cluster_power(static_cast<double>(n), 0, 0, 0), false});
  phases.push_back({"Halo", halo_time(), steps,
                    cluster_power(0, 0, static_cast<double>(n), 0), false});
  // Sort-first: every rank renders its 1/n portion of the global frame in
  // parallel.
  phases.push_back({"Visualization",
                    render_time() / static_cast<double>(n), io_steps,
                    cluster_power(0, static_cast<double>(n), 0, 0), false});
  // Tiles gathered to a root and assembled into the global frame.
  phases.push_back(
      {"Composite",
       gather_time(cluster_.network, tile_bytes() / static_cast<double>(n), n),
       io_steps, cluster_power(0, 0, static_cast<double>(n), 0), false});
  return finish("In-situ", std::move(phases));
}

MultiNodeResult MultiNodeStudy::in_transit() const {
  const auto n = cluster_.compute_nodes;
  const auto s = cluster_.staging_nodes;
  const auto steps = static_cast<std::size_t>(workload_.iterations);
  const auto io_steps = static_cast<std::size_t>(workload_.io_steps());
  std::vector<PhaseCost> phases;

  phases.push_back({"Simulation", solve_time(), steps,
                    cluster_power(static_cast<double>(n), 0, 0, 0), false});
  phases.push_back({"Halo", halo_time(), steps,
                    cluster_power(0, 0, static_cast<double>(n), 0), false});

  // Ship raw subdomains to the staging nodes; each staging port receives
  // n/s subdomains per I/O step.
  const double ranks_per_staging =
      static_cast<double>(n) / static_cast<double>(s);
  const util::Seconds ship{
      cluster_.network.latency.value() +
      subdomain_bytes() * ranks_per_staging /
          cluster_.network.per_port_bandwidth.value()};
  phases.push_back({"Ship", ship, io_steps,
                    cluster_power(0, 0, static_cast<double>(n + s), 0),
                    false});

  // Staging renders its share of the global frame (n/s tiles of 1/n pixels
  // each) per I/O step, overlapped with the next simulation window. If it
  // cannot keep up, the simulation stalls.
  const util::Seconds staging_cycle =
      render_time() / static_cast<double>(s);
  const util::Seconds window =
      (solve_time() + halo_time()) * static_cast<double>(workload_.io_period);
  const util::Seconds stall{
      std::max(0.0, (staging_cycle - window).value())};
  if (stall.value() > 0.0) {
    phases.push_back({"Stall", stall, io_steps,
                      cluster_power(0, static_cast<double>(s), 0, 0), false});
  }
  // Overlapped staging work: only the staging nodes' extra power counts
  // (their idle is in every phase's floor).
  machine::ComponentLoad vis_load;
  vis_load.active_cores = 16.0;
  vis_load.core_utilization = 0.35;
  vis_load.frequency_ghz = cluster_.node.cpu.nominal_ghz;
  machine::ComponentLoad idle_load;
  const util::Watts staging_delta =
      (node_power_.package_power(vis_load) -
       node_power_.package_power(idle_load)) *
      static_cast<double>(s);
  const util::Seconds staging_busy{
      std::min(staging_cycle.value(), window.value() + stall.value())};
  phases.push_back(
      {"Staging render (overlapped)", staging_busy, io_steps, staging_delta,
       true});
  return finish("In-transit", std::move(phases));
}

}  // namespace greenvis::net

// The monitoring rig of Fig. 3, in simulation.
//
// Walks virtual time in 1 s windows. For each window it evaluates the power
// model on the window-averaged CPU/DRAM load and the disk's mechanical duty
// cycle, deposits the resulting energy into the emulated RAPL counters, and
// reads every meter the way the paper's scripts did: RAPL deltas for
// processor and DRAM, the Wattsup meter (noise + 0.1 W quantization) for the
// full system. Component-level stochastic variability is added before the
// meters see it, so traces carry realistic texture while total energy stays
// within a fraction of a percent of the model truth.
#pragma once

#include "src/machine/load.hpp"
#include "src/power/model.hpp"
#include "src/power/rapl.hpp"
#include "src/power/trace.hpp"
#include "src/power/wattsup.hpp"
#include "src/storage/block_device.hpp"
#include "src/util/rng.hpp"

namespace greenvis::power {

struct ProfilerConfig {
  Seconds period{1.0};
  /// 1-sigma stochastic variability of true component power (thermal,
  /// voltage-regulator, background-OS effects).
  double package_noise_sigma{0.8};
  double dram_noise_sigma{0.15};
  double disk_noise_sigma{0.2};
  std::uint64_t seed{0x9E37u};
};

class PowerProfiler {
 public:
  PowerProfiler(const PowerModel& model, const ProfilerConfig& config = {});

  /// Profile [0, end): one sample per period (the last window is included
  /// when `end` is not a multiple of the period). The device may be null
  /// when the workload never touches storage.
  [[nodiscard]] PowerTrace profile(const machine::LoadTimeline& cpu_load,
                                   const storage::BlockDevice* disk,
                                   Seconds end);

 private:
  const PowerModel* model_;
  ProfilerConfig config_;
};

}  // namespace greenvis::power

// Emulated Wattsup Pro wall meter.
//
// The paper's full-system measurements come from a Wattsup Pro between the
// node and the outlet, sampled at 1 Hz by a separate monitoring machine
// (Fig. 3). The meter reports tenths of a watt and carries a small
// measurement error; both are modeled so full-system traces have the same
// texture as the paper's Fig. 5 curves.
#pragma once

#include "src/util/rng.hpp"
#include "src/util/units.hpp"

namespace greenvis::power {

struct WattsupParams {
  /// Display resolution (0.1 W for the Wattsup Pro).
  double quantum_watts{0.1};
  /// 1-sigma measurement noise.
  double noise_sigma_watts{0.6};
  /// Sampling interval (1 Hz).
  util::Seconds period{1.0};
};

class WattsupMeter {
 public:
  explicit WattsupMeter(const WattsupParams& params = {},
                        std::uint64_t seed = 0x57A77u)
      : params_(params), rng_(seed) {}

  /// One reading given the true average power over the last interval.
  [[nodiscard]] util::Watts sample(util::Watts true_power);

  [[nodiscard]] const WattsupParams& params() const { return params_; }

 private:
  WattsupParams params_;
  util::Xoshiro256 rng_;
};

}  // namespace greenvis::power

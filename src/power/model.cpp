#include "src/power/model.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::power {

Watts PowerModel::pp0_power(const ComponentLoad& load) const {
  const double freq =
      load.frequency_ghz > 0.0 ? load.frequency_ghz : cal_.cpu.nominal_ghz;
  const double scale = machine::dynamic_power_scale(freq, cal_.cpu.nominal_ghz);
  const Watts dynamic =
      cal_.cpu.core_active * (load.effective_cores() * scale);
  const Watts core_idle = cal_.cpu.package_idle - cal_.cpu.uncore_share;
  return core_idle + dynamic;
}

Watts PowerModel::package_power(const ComponentLoad& load) const {
  return pp0_power(load) + cal_.cpu.uncore_share;
}

Watts PowerModel::dram_power(const ComponentLoad& load) const {
  const double gbs = load.dram_bandwidth.value() / 1e9;
  return cal_.dram.idle + Watts{cal_.dram.watts_per_gbs * gbs};
}

Watts PowerModel::disk_power(const storage::PhaseDurations& duty,
                             Seconds window) const {
  GREENVIS_REQUIRE(window.value() > 0.0);
  const double w = window.value();
  auto frac = [&](storage::DiskPhase p) {
    return std::min(1.0, duty.of(p).value() / w);
  };
  return disk_.idle +
         disk_.seek * frac(storage::DiskPhase::kSeek) +
         disk_.rotate_wait * frac(storage::DiskPhase::kRotate) +
         disk_.read_transfer * frac(storage::DiskPhase::kReadTransfer) +
         disk_.write_transfer * frac(storage::DiskPhase::kWriteTransfer) +
         disk_.flush * frac(storage::DiskPhase::kFlush);
}

PowerBreakdown PowerModel::breakdown(const ComponentLoad& load,
                                     const storage::PhaseDurations& duty,
                                     Seconds window) const {
  PowerBreakdown out;
  out.package = package_power(load);
  out.pp0 = pp0_power(load);
  out.dram = dram_power(load);
  out.disk = disk_power(duty, window);
  out.rest = rest_power();
  return out;
}

Watts PowerModel::idle_system_power() const {
  return cal_.cpu.package_idle + cal_.dram.idle + disk_.idle +
         cal_.rest.constant;
}

}  // namespace greenvis::power

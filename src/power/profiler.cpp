#include "src/power/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::power {

PowerProfiler::PowerProfiler(const PowerModel& model,
                             const ProfilerConfig& config)
    : model_(&model), config_(config) {
  GREENVIS_REQUIRE(config_.period.value() > 0.0);
}

PowerTrace PowerProfiler::profile(const machine::LoadTimeline& cpu_load,
                                  const storage::BlockDevice* disk,
                                  Seconds end) {
  GREENVIS_REQUIRE(end.value() >= 0.0);
  PowerTrace trace{config_.period};
  const auto windows = static_cast<std::size_t>(
      std::ceil(end.value() / config_.period.value() - 1e-9));
  if (windows == 0) {
    return trace;
  }

  util::Xoshiro256 rng{config_.seed};
  RaplInterface rapl;
  RaplReader reader{rapl};
  WattsupMeter wattsup{WattsupParams{}, config_.seed ^ 0x5555u};

  // Prime the RAPL reader at t = 0, as a monitor would.
  reader.sample(RaplDomain::kPackage, Seconds{-1.0});
  reader.sample(RaplDomain::kPp0, Seconds{-1.0});
  reader.sample(RaplDomain::kDram, Seconds{-1.0});

  for (std::size_t w = 0; w < windows; ++w) {
    // Whole windows only: the meters keep their cadence to the end of the
    // last started interval, as a real 1 Hz monitor does.
    const Seconds t0 = config_.period * static_cast<double>(w);
    const Seconds t1 = t0 + config_.period;
    const Seconds window = t1 - t0;

    const machine::ComponentLoad load = cpu_load.average_in(t0, t1);
    storage::PhaseDurations duty;
    if (disk != nullptr) {
      duty = disk->activity().duty_in(t0, t1);
    }
    PowerBreakdown truth = model_->breakdown(load, duty, window);
    if (disk == nullptr) {
      truth.disk = Watts{0.0};
    }

    // Component-level variability (never negative).
    auto jitter = [&](Watts base, double sigma) {
      return Watts{std::max(0.0, base.value() + rng.normal(0.0, sigma))};
    };
    const Watts pkg = jitter(truth.package, config_.package_noise_sigma);
    const Watts pp0 =
        Watts{std::max(0.0, truth.pp0.value() +
                                (pkg - truth.package).value())};
    const Watts dram = jitter(truth.dram, config_.dram_noise_sigma);
    const Watts dsk = disk == nullptr
                          ? Watts{0.0}
                          : jitter(truth.disk, config_.disk_noise_sigma);
    const Watts system = pkg + dram + dsk + truth.rest;

    // Deposit into RAPL, then read back through the monitoring path.
    rapl.deposit(RaplDomain::kPackage, pkg * window);
    rapl.deposit(RaplDomain::kPp0, pp0 * window);
    rapl.deposit(RaplDomain::kDram, dram * window);

    PowerSample sample;
    sample.time = t1;
    sample.processor = reader.sample(RaplDomain::kPackage, t1);
    sample.pp0 = reader.sample(RaplDomain::kPp0, t1);
    sample.dram = reader.sample(RaplDomain::kDram, t1);
    sample.system = wattsup.sample(system);
    sample.disk_model = dsk;
    sample.rest_model = truth.rest;
    trace.add(sample);
  }
  return trace;
}

}  // namespace greenvis::power

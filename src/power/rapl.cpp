#include "src/power/rapl.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::power {

void RaplInterface::deposit(RaplDomain domain, Joules energy) {
  GREENVIS_REQUIRE(energy.value() >= 0.0);
  const auto d = static_cast<std::size_t>(domain);
  total_joules_[d] += energy.value();
  const double units = energy.value() / energy_unit_joules() + residue_[d];
  const double whole = std::floor(units);
  residue_[d] = units - whole;
  raw_[d] = (raw_[d] + static_cast<std::uint64_t>(whole)) & 0xFFFFFFFFULL;
}

std::uint32_t RaplInterface::read_raw(RaplDomain domain) const {
  return static_cast<std::uint32_t>(raw_[static_cast<std::size_t>(domain)]);
}

Joules RaplInterface::total_deposited(RaplDomain domain) const {
  return Joules{total_joules_[static_cast<std::size_t>(domain)]};
}

Watts RaplReader::sample(RaplDomain domain, Seconds now) {
  const auto d = static_cast<std::size_t>(domain);
  const std::uint32_t raw = rapl_->read_raw(domain);
  if (!primed_[d]) {
    primed_[d] = true;
    last_raw_[d] = raw;
    last_time_[d] = now;
    return Watts{0.0};
  }
  const Seconds dt = now - last_time_[d];
  GREENVIS_REQUIRE_MSG(dt.value() > 0.0, "non-increasing sample time");
  // Unsigned subtraction handles a single wraparound; the sampling interval
  // must stay below the wrap period (~9 minutes at 130 W), which 1 Hz does.
  const std::uint32_t delta = raw - last_raw_[d];
  last_raw_[d] = raw;
  last_time_[d] = now;
  const double joules =
      static_cast<double>(delta) * RaplInterface::energy_unit_joules();
  return Watts{joules / dt.value()};
}

}  // namespace greenvis::power

// Power-model calibration constants.
//
// Every constant here is fitted to a number the paper itself reports; the
// derivations are spelled out so a reviewer can trace each value back to a
// table or figure:
//
//  * Full-system idle ~103 W: Table III's random-read test runs at 107 W
//    while nearly everything waits on the disk (disk dynamic 2.5 W, one
//    mostly-blocked core), so the floor is ~103-104 W. The floor splits into
//    package idle (2 sockets x 16 W — typical RAPL package idle for Sandy
//    Bridge EP), DRAM background/refresh 6 W, disk spindle 4 W, and a 61 W
//    rest-of-system constant (motherboard, fans, PSU loss).
//  * Core active power 2.8 W/core at 2.4 GHz: the simulation phase runs all
//    16 cores and the paper's profiles peak near 150 W system
//    (Figs. 5, 9): 32 + 16*2.8 = 76.8 W package + DRAM + disk idle + rest
//    ~ 152 W.
//  * DRAM 0.35 W per GB/s of traffic: puts the simulation phase's DRAM draw
//    at ~10 W, matching the low DRAM curves of Fig. 5.
//  * Disk phase powers: sequential-read transfer 13.5 W and sequential-write
//    transfer 10.9 W are Table III's disk dynamic powers verbatim; seek
//    8.0 W and rotate-wait 1.5 W are fitted so the random-read test lands at
//    Table III's 2.5 W dynamic and the app's sync-write stage near
//    Table II's ~10 W dynamic.
//  * Sync-I/O stages keep ~3 cores half-busy (application + block layer +
//    journal thread), reproducing Table II's nnread/nnwrite totals of
//    ~115 W.
//
// DVFS: core dynamic power scales (f/f_nom)^3 (see machine/dvfs.hpp).
#pragma once

#include "src/util/units.hpp"

namespace greenvis::power {

using util::Watts;

struct CpuPowerParams {
  /// Both packages idle (uncore, caches, fabric), at any P-state.
  Watts package_idle{32.0};
  /// Per fully-busy core at the nominal frequency.
  Watts core_active{2.8};
  /// Portion of package idle attributed to uncore (PKG - PP0 at idle).
  Watts uncore_share{18.0};
  double nominal_ghz{2.4};
};

struct DramPowerParams {
  /// Background + refresh for 4x 16 GB DDR3 DIMMs.
  Watts idle{6.0};
  /// Incremental watts per GB/s of achieved traffic.
  double watts_per_gbs{0.35};
};

/// Per-device disk power: idle plus per-mechanical-phase active powers,
/// weighted by the phase duty cycle within the sampling window.
struct DiskPowerParams {
  Watts idle{4.0};
  Watts seek{8.0};
  Watts rotate_wait{1.5};
  Watts read_transfer{13.5};
  Watts write_transfer{10.9};
  Watts flush{10.9};
};

/// HDD constants above; SSD/NVRAM draw far less.
[[nodiscard]] inline DiskPowerParams hdd_power_params() {
  return DiskPowerParams{};
}
[[nodiscard]] inline DiskPowerParams ssd_power_params() {
  return DiskPowerParams{Watts{1.2}, Watts{0.0}, Watts{0.0}, Watts{2.8},
                         Watts{3.6}, Watts{3.6}};
}
[[nodiscard]] inline DiskPowerParams nvram_power_params() {
  return DiskPowerParams{Watts{0.6}, Watts{0.0}, Watts{0.0}, Watts{1.4},
                         Watts{2.2}, Watts{2.2}};
}
/// Datacenter NVMe: higher idle than SATA flash (controller + DRAM), more
/// active draw at several-times-higher throughput.
[[nodiscard]] inline DiskPowerParams nvme_power_params() {
  return DiskPowerParams{Watts{2.0}, Watts{0.0}, Watts{0.0}, Watts{5.5},
                         Watts{7.0}, Watts{7.0}};
}
/// RAID0 array of `spindles` copies of the testbed HDD. The idle floor is
/// every platter spinning plus ~2 W of RAID controller; the per-phase
/// actives stay per-spindle constants because the volume's merged activity
/// log already carries each child's busy time separately, so duty-weighted
/// energy scales with how many spindles a stripe actually touched.
[[nodiscard]] inline DiskPowerParams raid0_power_params(int spindles = 4) {
  const DiskPowerParams hdd = hdd_power_params();
  return DiskPowerParams{hdd.idle * static_cast<double>(spindles) + Watts{2.0},
                         hdd.seek,
                         hdd.rotate_wait,
                         hdd.read_transfer,
                         hdd.write_transfer,
                         hdd.flush};
}

struct RestOfSystemParams {
  /// Motherboard, fans, NIC, PSU conversion loss — constant.
  Watts constant{61.0};
};

struct PowerCalibration {
  CpuPowerParams cpu{};
  DramPowerParams dram{};
  RestOfSystemParams rest{};
};

}  // namespace greenvis::power

// Power traces: the time series behind every figure in the paper.
#pragma once

#include <ostream>
#include <vector>

#include "src/util/units.hpp"

namespace greenvis::power {

using util::Joules;
using util::Seconds;
using util::Watts;

/// One sampling interval's readings. `time` is the *end* of the interval;
/// the values are interval averages, exactly like a 1 Hz meter reading.
struct PowerSample {
  Seconds time{0.0};
  Watts processor{0.0};  // RAPL package (both sockets)
  Watts pp0{0.0};        // RAPL PP0 (core domains)
  Watts dram{0.0};       // RAPL DRAM
  Watts system{0.0};     // Wattsup full-system
  Watts disk_model{0.0}; // model truth (not observable on the testbed)
  Watts rest_model{0.0}; // model truth

  /// Uncore power: package minus cores (both RAPL-observable).
  [[nodiscard]] Watts uncore_derived() const { return processor - pp0; }

  /// The paper's "rest of system": full system minus RAPL domains
  /// (Sec. IV-B). Derived from observable channels only.
  [[nodiscard]] Watts rest_derived() const {
    return system - processor - dram;
  }
};

class PowerTrace {
 public:
  explicit PowerTrace(Seconds period) : period_(period) {}

  void add(const PowerSample& sample) { samples_.push_back(sample); }

  [[nodiscard]] const std::vector<PowerSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Seconds period() const { return period_; }
  [[nodiscard]] Seconds duration() const {
    return period_ * static_cast<double>(samples_.size());
  }

  using Channel = Watts PowerSample::*;

  [[nodiscard]] Watts average(Channel channel) const;
  [[nodiscard]] Watts peak(Channel channel) const;
  /// Energy = sum of interval-average power x interval length.
  [[nodiscard]] Joules energy(Channel channel) const;

  /// Restrict to samples whose sampling interval overlaps [t0, t1) — a
  /// window shorter than one period still yields the sample covering it.
  [[nodiscard]] PowerTrace slice(Seconds t0, Seconds t1) const;

  /// CSV: time_s,processor_w,dram_w,system_w — the Fig. 5 series.
  void write_csv(std::ostream& os) const;

 private:
  Seconds period_;
  std::vector<PowerSample> samples_;
};

}  // namespace greenvis::power

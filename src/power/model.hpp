// Component power model.
//
// Maps instantaneous component load (CPU/DRAM utilization, disk mechanical
// duty cycles) to watts per subsystem. This is the simulated counterpart of
// the paper's measurement rig: RAPL reports package and DRAM; the Wattsup
// meter reports the full system; the disk and "rest of system" are the
// subtraction residue (Sec. IV-B).
#pragma once

#include "src/machine/dvfs.hpp"
#include "src/machine/load.hpp"
#include "src/power/calibration.hpp"
#include "src/storage/activity_log.hpp"
#include "src/util/units.hpp"

namespace greenvis::power {

using machine::ComponentLoad;
using util::Seconds;

/// Per-subsystem instantaneous power.
struct PowerBreakdown {
  Watts package{0.0};  // both CPU packages (RAPL PKG)
  Watts pp0{0.0};      // core domains (RAPL PP0)
  Watts dram{0.0};     // RAPL DRAM
  Watts disk{0.0};
  Watts rest{0.0};

  [[nodiscard]] Watts system() const { return package + dram + disk + rest; }
};

class PowerModel {
 public:
  PowerModel(const PowerCalibration& calibration,
             const DiskPowerParams& disk_params)
      : cal_(calibration), disk_(disk_params) {}

  /// Package power (both sockets) for a CPU load.
  [[nodiscard]] Watts package_power(const ComponentLoad& load) const;
  /// Core-domain (PP0) power for a CPU load.
  [[nodiscard]] Watts pp0_power(const ComponentLoad& load) const;
  [[nodiscard]] Watts dram_power(const ComponentLoad& load) const;
  /// Disk power from per-phase busy time within a window of length
  /// `window` (idle + duty-weighted phase powers).
  [[nodiscard]] Watts disk_power(const storage::PhaseDurations& duty,
                                 Seconds window) const;
  [[nodiscard]] Watts disk_idle_power() const { return disk_.idle; }
  [[nodiscard]] Watts rest_power() const { return cal_.rest.constant; }

  /// Everything at once.
  [[nodiscard]] PowerBreakdown breakdown(const ComponentLoad& load,
                                         const storage::PhaseDurations& duty,
                                         Seconds window) const;

  /// Full-system power with an idle machine (the static floor the paper's
  /// Sec. V-C attributes 91% of the savings to).
  [[nodiscard]] Watts idle_system_power() const;

  [[nodiscard]] const PowerCalibration& calibration() const { return cal_; }
  [[nodiscard]] const DiskPowerParams& disk_params() const { return disk_; }

 private:
  PowerCalibration cal_;
  DiskPowerParams disk_;
};

}  // namespace greenvis::power

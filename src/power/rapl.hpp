// Emulated Intel RAPL (Running Average Power Limit) interface.
//
// The paper reads package and DRAM energy through RAPL's model-specific
// registers (Sec. II-C): free-running 32-bit counters in units of
// 2^-16 J (~15.3 uJ) that wrap around every few minutes at node-level
// power. We reproduce that interface faithfully — fixed-point units,
// wraparound, monotonic accumulation — because the analysis code consumes
// energy *deltas* exactly the way the paper's monitoring script did, and a
// reproduction that skipped the wraparound handling would silently corrupt
// any experiment longer than ~10 minutes (Table III's random-read test is
// 37 minutes).
#pragma once

#include <array>
#include <cstdint>

#include "src/util/units.hpp"

namespace greenvis::power {

using util::Joules;
using util::Seconds;
using util::Watts;

enum class RaplDomain : std::size_t {
  kPackage = 0,  // MSR_PKG_ENERGY_STATUS
  kPp0 = 1,      // MSR_PP0_ENERGY_STATUS (cores)
  kDram = 2,     // MSR_DRAM_ENERGY_STATUS
};
inline constexpr std::size_t kRaplDomainCount = 3;

class RaplInterface {
 public:
  /// Energy status registers hold 32 bits and count in units of
  /// 2^-energy_status_units joules; Sandy Bridge reports 16 (15.3 uJ).
  static constexpr std::uint32_t kEnergyStatusUnits = 16;

  [[nodiscard]] static double energy_unit_joules() {
    return 1.0 / static_cast<double>(1u << kEnergyStatusUnits);
  }

  /// Accumulate energy into a domain's counter (simulation side: the
  /// profiler deposits power * dt as virtual time advances). Sub-unit
  /// residue is carried so accumulation is exact over time.
  void deposit(RaplDomain domain, Joules energy);

  /// Read the raw 32-bit energy-status register (monitoring side).
  [[nodiscard]] std::uint32_t read_raw(RaplDomain domain) const;

  /// Total energy ever deposited (ground truth, for tests).
  [[nodiscard]] Joules total_deposited(RaplDomain domain) const;

 private:
  std::array<std::uint64_t, kRaplDomainCount> raw_{};  // wraps at 2^32
  std::array<double, kRaplDomainCount> residue_{};
  std::array<double, kRaplDomainCount> total_joules_{};
};

/// Computes average power between successive register reads, handling
/// wraparound — the userspace half of a RAPL monitor.
class RaplReader {
 public:
  explicit RaplReader(const RaplInterface& rapl) : rapl_(&rapl) {}

  /// First call primes the baseline and returns 0 W; subsequent calls return
  /// average power since the previous call.
  Watts sample(RaplDomain domain, Seconds now);

 private:
  const RaplInterface* rapl_;
  std::array<std::uint32_t, kRaplDomainCount> last_raw_{};
  std::array<Seconds, kRaplDomainCount> last_time_{};
  std::array<bool, kRaplDomainCount> primed_{};
};

}  // namespace greenvis::power

#include "src/power/wattsup.hpp"

#include <algorithm>
#include <cmath>

namespace greenvis::power {

util::Watts WattsupMeter::sample(util::Watts true_power) {
  const double noisy =
      true_power.value() + rng_.normal(0.0, params_.noise_sigma_watts);
  const double quantized =
      std::round(noisy / params_.quantum_watts) * params_.quantum_watts;
  return util::Watts{std::max(0.0, quantized)};
}

}  // namespace greenvis::power

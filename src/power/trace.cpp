#include "src/power/trace.hpp"

#include <algorithm>

#include "src/util/csv.hpp"
#include "src/util/error.hpp"

namespace greenvis::power {

Watts PowerTrace::average(Channel channel) const {
  if (samples_.empty()) {
    return Watts{0.0};
  }
  double sum = 0.0;
  for (const auto& s : samples_) {
    sum += (s.*channel).value();
  }
  return Watts{sum / static_cast<double>(samples_.size())};
}

Watts PowerTrace::peak(Channel channel) const {
  GREENVIS_REQUIRE(!samples_.empty());
  double best = (samples_.front().*channel).value();
  for (const auto& s : samples_) {
    best = std::max(best, (s.*channel).value());
  }
  return Watts{best};
}

Joules PowerTrace::energy(Channel channel) const {
  double joules = 0.0;
  for (const auto& s : samples_) {
    joules += (s.*channel).value() * period_.value();
  }
  return Joules{joules};
}

PowerTrace PowerTrace::slice(Seconds t0, Seconds t1) const {
  PowerTrace out{period_};
  for (const auto& s : samples_) {
    const Seconds begin = s.time - period_;
    if (begin < t1 && s.time > t0) {
      out.add(s);
    }
  }
  return out;
}

void PowerTrace::write_csv(std::ostream& os) const {
  util::CsvWriter csv{os};
  csv.row({"time_s", "processor_w", "pp0_w", "dram_w", "system_w",
           "disk_model_w", "rest_model_w"});
  for (const auto& s : samples_) {
    csv.field(s.time.value());
    csv.field(s.processor.value());
    csv.field(s.pp0.value());
    csv.field(s.dram.value());
    csv.field(s.system.value());
    csv.field(s.disk_model.value());
    csv.field(s.rest_model.value());
    csv.end_row();
  }
}

}  // namespace greenvis::power

#include "src/vis/flow.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/vis/rasterizer.hpp"

namespace greenvis::vis {

Gradient2D gradient(const util::Field2D& field) {
  const std::size_t nx = field.nx();
  const std::size_t ny = field.ny();
  GREENVIS_REQUIRE(nx >= 2 && ny >= 2);
  Gradient2D g{util::Field2D(nx, ny), util::Field2D(nx, ny)};
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      if (i == 0) {
        g.gx.at(i, j) = field.at(1, j) - field.at(0, j);
      } else if (i == nx - 1) {
        g.gx.at(i, j) = field.at(nx - 1, j) - field.at(nx - 2, j);
      } else {
        g.gx.at(i, j) = 0.5 * (field.at(i + 1, j) - field.at(i - 1, j));
      }
      if (j == 0) {
        g.gy.at(i, j) = field.at(i, 1) - field.at(i, 0);
      } else if (j == ny - 1) {
        g.gy.at(i, j) = field.at(i, ny - 1) - field.at(i, ny - 2);
      } else {
        g.gy.at(i, j) = 0.5 * (field.at(i, j + 1) - field.at(i, j - 1));
      }
    }
  }
  return g;
}

Vec2 sample_gradient(const Gradient2D& grad, double x, double y) {
  return Vec2{bilinear_sample(grad.gx, x, y), bilinear_sample(grad.gy, x, y)};
}

std::vector<Vec2> trace_streamline(const Gradient2D& grad, double x0,
                                   double y0,
                                   const StreamlineConfig& config) {
  GREENVIS_REQUIRE(config.step > 0.0);
  const double max_x = static_cast<double>(grad.gx.nx() - 1);
  const double max_y = static_cast<double>(grad.gx.ny() - 1);
  const double sign = config.downhill ? -1.0 : 1.0;

  std::vector<Vec2> points;
  points.push_back(Vec2{x0, y0});
  double x = x0, y = y0;
  for (std::size_t s = 0; s < config.max_steps; ++s) {
    const Vec2 v1 = sample_gradient(grad, x, y);
    const double m1 = std::hypot(v1.x, v1.y);
    if (m1 < config.min_magnitude) {
      break;
    }
    // Midpoint method: evaluate at the half step.
    const double hx = x + sign * 0.5 * config.step * v1.x / m1;
    const double hy = y + sign * 0.5 * config.step * v1.y / m1;
    const Vec2 v2 = sample_gradient(grad, hx, hy);
    const double m2 = std::hypot(v2.x, v2.y);
    if (m2 < config.min_magnitude) {
      break;
    }
    x += sign * config.step * v2.x / m2;
    y += sign * config.step * v2.y / m2;
    if (x < 0.0 || y < 0.0 || x > max_x || y > max_y) {
      break;
    }
    points.push_back(Vec2{x, y});
  }
  return points;
}

void draw_streamlines(Image& image, const util::Field2D& field,
                      std::size_t seeds_per_axis, Rgb color,
                      const StreamlineConfig& config) {
  GREENVIS_REQUIRE(seeds_per_axis >= 1);
  const Gradient2D grad = gradient(field);
  const double sx = static_cast<double>(field.nx() - 1) /
                    static_cast<double>(seeds_per_axis + 1);
  const double sy = static_cast<double>(field.ny() - 1) /
                    static_cast<double>(seeds_per_axis + 1);
  std::vector<Segment> segments;
  for (std::size_t a = 1; a <= seeds_per_axis; ++a) {
    for (std::size_t b = 1; b <= seeds_per_axis; ++b) {
      const auto line = trace_streamline(grad, static_cast<double>(a) * sx,
                                         static_cast<double>(b) * sy, config);
      for (std::size_t p = 1; p < line.size(); ++p) {
        segments.push_back(Segment{line[p - 1].x, line[p - 1].y, line[p].x,
                                   line[p].y});
      }
    }
  }
  draw_segments(image, segments, field.nx(), field.ny(), color);
}

}  // namespace greenvis::vis

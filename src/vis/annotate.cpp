#include "src/vis/annotate.hpp"

#include <array>
#include <cctype>
#include <cstdio>

#include "src/util/error.hpp"

namespace greenvis::vis {

namespace {

/// 5x7 glyphs, one byte per column, LSB = top row.
struct Glyph {
  char ch;
  std::array<std::uint8_t, 5> cols;
};

constexpr Glyph kFont[] = {
    {'A', {0x7E, 0x09, 0x09, 0x09, 0x7E}},
    {'B', {0x7F, 0x49, 0x49, 0x49, 0x36}},
    {'C', {0x3E, 0x41, 0x41, 0x41, 0x22}},
    {'D', {0x7F, 0x41, 0x41, 0x22, 0x1C}},
    {'E', {0x7F, 0x49, 0x49, 0x49, 0x41}},
    {'F', {0x7F, 0x09, 0x09, 0x09, 0x01}},
    {'G', {0x3E, 0x41, 0x49, 0x49, 0x3A}},
    {'H', {0x7F, 0x08, 0x08, 0x08, 0x7F}},
    {'I', {0x00, 0x41, 0x7F, 0x41, 0x00}},
    {'J', {0x20, 0x40, 0x41, 0x3F, 0x01}},
    {'K', {0x7F, 0x08, 0x14, 0x22, 0x41}},
    {'L', {0x7F, 0x40, 0x40, 0x40, 0x40}},
    {'M', {0x7F, 0x02, 0x0C, 0x02, 0x7F}},
    {'N', {0x7F, 0x04, 0x08, 0x10, 0x7F}},
    {'O', {0x3E, 0x41, 0x41, 0x41, 0x3E}},
    {'P', {0x7F, 0x09, 0x09, 0x09, 0x06}},
    {'Q', {0x3E, 0x41, 0x51, 0x21, 0x5E}},
    {'R', {0x7F, 0x09, 0x19, 0x29, 0x46}},
    {'S', {0x26, 0x49, 0x49, 0x49, 0x32}},
    {'T', {0x01, 0x01, 0x7F, 0x01, 0x01}},
    {'U', {0x3F, 0x40, 0x40, 0x40, 0x3F}},
    {'V', {0x1F, 0x20, 0x40, 0x20, 0x1F}},
    {'W', {0x3F, 0x40, 0x38, 0x40, 0x3F}},
    {'X', {0x63, 0x14, 0x08, 0x14, 0x63}},
    {'Y', {0x07, 0x08, 0x70, 0x08, 0x07}},
    {'Z', {0x61, 0x51, 0x49, 0x45, 0x43}},
    {'0', {0x3E, 0x51, 0x49, 0x45, 0x3E}},
    {'1', {0x00, 0x42, 0x7F, 0x40, 0x00}},
    {'2', {0x42, 0x61, 0x51, 0x49, 0x46}},
    {'3', {0x21, 0x41, 0x45, 0x4B, 0x31}},
    {'4', {0x18, 0x14, 0x12, 0x7F, 0x10}},
    {'5', {0x27, 0x45, 0x45, 0x45, 0x39}},
    {'6', {0x3C, 0x4A, 0x49, 0x49, 0x30}},
    {'7', {0x01, 0x71, 0x09, 0x05, 0x03}},
    {'8', {0x36, 0x49, 0x49, 0x49, 0x36}},
    {'9', {0x06, 0x49, 0x49, 0x29, 0x1E}},
    {' ', {0x00, 0x00, 0x00, 0x00, 0x00}},
    {'.', {0x00, 0x60, 0x60, 0x00, 0x00}},
    {'-', {0x08, 0x08, 0x08, 0x08, 0x08}},
    {':', {0x00, 0x36, 0x36, 0x00, 0x00}},
    {'%', {0x63, 0x13, 0x08, 0x64, 0x63}},
    {'+', {0x08, 0x08, 0x3E, 0x08, 0x08}},
    {'=', {0x14, 0x14, 0x14, 0x14, 0x14}},
    {'(', {0x00, 0x1C, 0x22, 0x41, 0x00}},
    {')', {0x00, 0x41, 0x22, 0x1C, 0x00}},
    {'/', {0x60, 0x10, 0x08, 0x04, 0x03}},
};

constexpr Glyph kUnknown{'?', {0x7F, 0x41, 0x41, 0x41, 0x7F}};

const Glyph& lookup(char c) {
  const char upper = static_cast<char>(
      std::toupper(static_cast<unsigned char>(c)));
  for (const Glyph& g : kFont) {
    if (g.ch == upper) {
      return g;
    }
  }
  return kUnknown;
}

}  // namespace

void draw_text(Image& image, std::string_view text, std::int64_t x,
               std::int64_t y, Rgb color, int scale) {
  GREENVIS_REQUIRE(scale >= 1);
  std::int64_t cursor = x;
  for (char c : text) {
    const Glyph& glyph = lookup(c);
    for (int col = 0; col < 5; ++col) {
      for (int row = 0; row < 7; ++row) {
        if ((glyph.cols[static_cast<std::size_t>(col)] >> row & 1) == 0) {
          continue;
        }
        for (int sy = 0; sy < scale; ++sy) {
          for (int sx = 0; sx < scale; ++sx) {
            image.set_clipped(cursor + col * scale + sx,
                              y + row * scale + sy, color);
          }
        }
      }
    }
    cursor += 6 * scale;
  }
}

std::size_t text_width(std::string_view text, int scale) {
  return text.size() * 6 * static_cast<std::size_t>(scale);
}

void draw_colorbar(Image& image, const ColorMap& cmap, double lo, double hi,
                   Rgb label_color) {
  const std::size_t bar_width = std::max<std::size_t>(6, image.width() / 40);
  const std::size_t margin = 4;
  const std::size_t x0 = image.width() - margin - bar_width;
  const std::size_t y0 = margin + 10;
  const std::size_t y1 = image.height() - margin - 10;
  GREENVIS_REQUIRE(y1 > y0 + 1);

  for (std::size_t y = y0; y < y1; ++y) {
    const double t = 1.0 - static_cast<double>(y - y0) /
                               static_cast<double>(y1 - y0 - 1);
    const Rgb c = cmap.map(t);
    for (std::size_t x = x0; x < x0 + bar_width; ++x) {
      image.at(x, y) = c;
    }
  }

  char label[32];
  std::snprintf(label, sizeof(label), "%.4g", hi);
  draw_text(image,
            label,
            static_cast<std::int64_t>(image.width()) -
                static_cast<std::int64_t>(text_width(label)) -
                static_cast<std::int64_t>(margin),
            static_cast<std::int64_t>(y0) - 9, label_color);
  std::snprintf(label, sizeof(label), "%.4g", lo);
  draw_text(image,
            label,
            static_cast<std::int64_t>(image.width()) -
                static_cast<std::int64_t>(text_width(label)) -
                static_cast<std::int64_t>(margin),
            static_cast<std::int64_t>(y1) + 2, label_color);
}

}  // namespace greenvis::vis

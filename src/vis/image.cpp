#include "src/vis/image.hpp"

#include <cstring>
#include <fstream>

#include "src/util/checksum.hpp"
#include "src/util/error.hpp"

namespace greenvis::vis {

Image::Image(std::size_t width, std::size_t height, Rgb fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  GREENVIS_REQUIRE(width > 0 && height > 0);
}

void Image::set_clipped(std::int64_t x, std::int64_t y, Rgb color) {
  if (x < 0 || y < 0 || x >= static_cast<std::int64_t>(width_) ||
      y >= static_cast<std::int64_t>(height_)) {
    return;
  }
  at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) = color;
}

std::uint64_t Image::digest() const {
  static_assert(sizeof(Rgb) == 3);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(pixels_.data());
  return util::fnv1a64({bytes, pixels_.size() * sizeof(Rgb)});
}

void Image::write_ppm(std::ostream& os) const {
  os << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  os.write(reinterpret_cast<const char*>(pixels_.data()),
           static_cast<std::streamsize>(pixels_.size() * sizeof(Rgb)));
}

std::vector<std::uint8_t> Image::serialize() const {
  std::vector<std::uint8_t> out(16 + pixels_.size() * sizeof(Rgb));
  auto put_u64 = [&](std::size_t pos, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  put_u64(0, width_);
  put_u64(8, height_);
  std::memcpy(out.data() + 16, pixels_.data(), pixels_.size() * sizeof(Rgb));
  return out;
}

Image Image::deserialize(std::span<const std::uint8_t> raw) {
  GREENVIS_REQUIRE(raw.size() >= 16);
  auto get_u64 = [&](std::size_t pos) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(raw[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  };
  const auto w = static_cast<std::size_t>(get_u64(0));
  const auto h = static_cast<std::size_t>(get_u64(8));
  GREENVIS_REQUIRE(w > 0 && h > 0);
  GREENVIS_REQUIRE(raw.size() == 16 + w * h * sizeof(Rgb));
  Image img(w, h);
  std::memcpy(img.pixels_.data(), raw.data() + 16, w * h * sizeof(Rgb));
  return img;
}

void Image::save_ppm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  GREENVIS_REQUIRE_MSG(f.good(), "cannot open " + path);
  write_ppm(f);
}

}  // namespace greenvis::vis

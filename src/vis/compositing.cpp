#include "src/vis/compositing.hpp"

#include "src/util/error.hpp"

namespace greenvis::vis {

Image assemble_tiles(const std::vector<Image>& tiles, std::size_t tiles_x,
                     std::size_t tiles_y) {
  GREENVIS_REQUIRE(tiles_x >= 1 && tiles_y >= 1);
  GREENVIS_REQUIRE(tiles.size() == tiles_x * tiles_y);
  const std::size_t tw = tiles.front().width();
  const std::size_t th = tiles.front().height();
  for (const Image& t : tiles) {
    GREENVIS_REQUIRE_MSG(t.width() == tw && t.height() == th,
                         "all tiles must share dimensions");
  }
  Image out(tw * tiles_x, th * tiles_y);
  for (std::size_t ty = 0; ty < tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < tiles_x; ++tx) {
      const Image& tile = tiles[ty * tiles_x + tx];
      for (std::size_t y = 0; y < th; ++y) {
        for (std::size_t x = 0; x < tw; ++x) {
          out.at(tx * tw + x, ty * th + y) = tile.at(x, y);
        }
      }
    }
  }
  return out;
}

std::size_t binary_swap_rounds(std::size_t nodes) {
  GREENVIS_REQUIRE(nodes >= 1);
  GREENVIS_REQUIRE_MSG((nodes & (nodes - 1)) == 0,
                       "binary swap needs a power-of-two node count");
  std::size_t rounds = 0;
  while ((1ULL << rounds) < nodes) {
    ++rounds;
  }
  return rounds;
}

double binary_swap_bytes_per_node(double image_bytes, std::size_t nodes) {
  const std::size_t rounds = binary_swap_rounds(nodes);
  // Round r exchanges image_bytes / 2^(r+1): 1/2 + 1/4 + ... = 1 - 1/N.
  double sent = 0.0;
  double share = image_bytes;
  for (std::size_t r = 0; r < rounds; ++r) {
    share /= 2.0;
    sent += share;
  }
  return sent;
}

double gather_bytes(double image_bytes, std::size_t nodes) {
  GREENVIS_REQUIRE(nodes >= 1);
  const double partition = image_bytes / static_cast<double>(nodes);
  return partition * static_cast<double>(nodes - 1);
}

}  // namespace greenvis::vis

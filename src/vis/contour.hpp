// Marching-squares isocontour extraction.
#pragma once

#include <span>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/field.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::vis {

/// A contour line segment in field coordinates (cell units).
struct Segment {
  double x0, y0, x1, y1;
};

/// Extract the iso-line `value` from `field`. Each grid cell contributes 0,
/// 1, or 2 segments; saddle cells are disambiguated with the cell-center
/// average (the standard marching-squares rule). Row-parallel over `pool`
/// when provided; the segment order (row-major cell scan) and every
/// coordinate are identical to the serial scan for any pool size.
[[nodiscard]] std::vector<Segment> marching_squares(
    const util::Field2D& field, double value,
    util::ThreadPool* pool = nullptr);

/// Allocation-free variant for the per-timestep hot loop: appends the same
/// segments in the same order into an arena-backed vector (serial scan).
void marching_squares_into(const util::Field2D& field, double value,
                           util::ArenaVec<Segment>& segments);

/// Evenly spaced iso values across [min, max] (excluding the extremes).
[[nodiscard]] std::vector<double> iso_levels(const util::Field2D& field,
                                             std::size_t count);

/// Fill `out` with `out.size()` evenly spaced iso values (same values as
/// iso_levels(field, out.size()) without allocating).
void iso_levels_into(const util::Field2D& field, std::span<double> out);

}  // namespace greenvis::vis

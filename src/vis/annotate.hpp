// Image annotation: a built-in 5x7 bitmap font and colorbar legends, so the
// frames the pipelines emit are self-describing (step number, field range,
// scale) without any external tooling.
#pragma once

#include <string_view>

#include "src/vis/color.hpp"
#include "src/vis/image.hpp"

namespace greenvis::vis {

/// Draw `text` with the built-in 5x7 font at (x, y) = top-left, scaled by
/// `scale`. Supported glyphs: A-Z (lowercase folds to uppercase), digits,
/// space and ".-:%+=()/". Unknown characters render as a hollow box.
void draw_text(Image& image, std::string_view text, std::int64_t x,
               std::int64_t y, Rgb color, int scale = 1);

/// Pixel width of `text` at `scale` (6 columns per glyph incl. spacing).
[[nodiscard]] std::size_t text_width(std::string_view text, int scale = 1);

/// Draw a vertical colorbar with min/max labels along the image's right
/// edge, mapping `cmap` over [lo, hi].
void draw_colorbar(Image& image, const ColorMap& cmap, double lo, double hi,
                   Rgb label_color = Rgb{255, 255, 255});

}  // namespace greenvis::vis

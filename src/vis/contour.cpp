#include "src/vis/contour.hpp"

#include "src/util/error.hpp"

namespace greenvis::vis {

namespace {

/// Linear interpolation parameter where the iso value crosses [a, b].
double crossing(double a, double b, double value) {
  const double d = b - a;
  if (d == 0.0) {
    return 0.5;
  }
  return (value - a) / d;
}

/// Scan cell rows [j_begin, j_end) and append their segments to `segments`
/// in row-major order. `Sink` is any push_back-able container (std::vector
/// or an arena-backed ArenaVec).
template <typename Sink>
void scan_rows(const util::Field2D& field, double value, std::size_t j_begin,
               std::size_t j_end, Sink& segments) {
  const std::size_t nx = field.nx();

  for (std::size_t j = j_begin; j < j_end; ++j) {
    for (std::size_t i = 0; i + 1 < nx; ++i) {
      const double v00 = field.at(i, j);          // bottom-left
      const double v10 = field.at(i + 1, j);      // bottom-right
      const double v11 = field.at(i + 1, j + 1);  // top-right
      const double v01 = field.at(i, j + 1);      // top-left

      int idx = 0;
      if (v00 >= value) idx |= 1;
      if (v10 >= value) idx |= 2;
      if (v11 >= value) idx |= 4;
      if (v01 >= value) idx |= 8;
      if (idx == 0 || idx == 15) {
        continue;
      }

      const double x = static_cast<double>(i);
      const double y = static_cast<double>(j);
      // Edge crossing points: bottom, right, top, left.
      const double bx = x + crossing(v00, v10, value), by = y;
      const double rx = x + 1.0, ry = y + crossing(v10, v11, value);
      const double tx = x + crossing(v01, v11, value), ty = y + 1.0;
      const double lx = x, ly = y + crossing(v00, v01, value);

      auto emit = [&](double x0, double y0, double x1, double y1) {
        segments.push_back(Segment{x0, y0, x1, y1});
      };

      switch (idx) {
        case 1:  case 14: emit(lx, ly, bx, by); break;
        case 2:  case 13: emit(bx, by, rx, ry); break;
        case 3:  case 12: emit(lx, ly, rx, ry); break;
        case 4:  case 11: emit(rx, ry, tx, ty); break;
        case 6:  case 9:  emit(bx, by, tx, ty); break;
        case 7:  case 8:  emit(lx, ly, tx, ty); break;
        case 5: {
          // Saddle: disambiguate with the cell-center average.
          const double center = 0.25 * (v00 + v10 + v11 + v01);
          if (center >= value) {
            emit(lx, ly, bx, by);
            emit(rx, ry, tx, ty);
          } else {
            emit(lx, ly, tx, ty);
            emit(bx, by, rx, ry);
          }
          break;
        }
        case 10: {
          const double center = 0.25 * (v00 + v10 + v11 + v01);
          if (center >= value) {
            emit(bx, by, rx, ry);
            emit(lx, ly, tx, ty);
          } else {
            emit(lx, ly, bx, by);
            emit(rx, ry, tx, ty);
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace

std::vector<Segment> marching_squares(const util::Field2D& field, double value,
                                      util::ThreadPool* pool) {
  const std::size_t ny = field.ny();
  const std::size_t cell_rows = ny > 0 ? ny - 1 : 0;
  if (pool == nullptr || pool->size() <= 1 || cell_rows < 2) {
    std::vector<Segment> segments;
    scan_rows(field, value, 0, cell_rows, segments);
    return segments;
  }
  // Row-band partials concatenated in band order reproduce the serial
  // row-major segment order exactly, independent of the pool size.
  return pool->parallel_reduce(
      std::size_t{0}, cell_rows, std::vector<Segment>{},
      [&](std::size_t lo, std::size_t hi, std::vector<Segment> acc) {
        scan_rows(field, value, lo, hi, acc);
        return acc;
      },
      [](std::vector<Segment> a, std::vector<Segment> b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });
}

void marching_squares_into(const util::Field2D& field, double value,
                           util::ArenaVec<Segment>& segments) {
  const std::size_t ny = field.ny();
  scan_rows(field, value, 0, ny > 0 ? ny - 1 : 0, segments);
}

std::vector<double> iso_levels(const util::Field2D& field, std::size_t count) {
  GREENVIS_REQUIRE(count >= 1);
  std::vector<double> levels(count);
  iso_levels_into(field, levels);
  return levels;
}

void iso_levels_into(const util::Field2D& field, std::span<double> out) {
  GREENVIS_REQUIRE(!out.empty());
  const double lo = field.min_value();
  const double hi = field.max_value();
  const auto count = static_cast<double>(out.size());
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = lo + (hi - lo) * static_cast<double>(k + 1) / (count + 1.0);
  }
}

}  // namespace greenvis::vis

// Vector-field visualization: gradients and streamlines.
//
// For a temperature field the negative gradient is the heat-flux direction;
// tracing streamlines from seed points shows where the energy flows —
// a second visualization modality for the examples (beyond pseudocolor and
// isocontours), integrated with midpoint (RK2) stepping.
#pragma once

#include <vector>

#include "src/util/field.hpp"
#include "src/vis/contour.hpp"
#include "src/vis/image.hpp"

namespace greenvis::vis {

/// Central-difference gradient components of `field` (one-sided at edges).
struct Gradient2D {
  util::Field2D gx;
  util::Field2D gy;
};

[[nodiscard]] Gradient2D gradient(const util::Field2D& field);

/// Bilinearly interpolated gradient vector at fractional cell coordinates.
struct Vec2 {
  double x{0.0};
  double y{0.0};
};

[[nodiscard]] Vec2 sample_gradient(const Gradient2D& grad, double x, double y);

struct StreamlineConfig {
  /// Integration step in cell units.
  double step{0.5};
  std::size_t max_steps{400};
  /// Stop when the local vector magnitude falls below this.
  double min_magnitude{1e-9};
  /// Trace along -gradient (heat flux) when true, +gradient otherwise.
  bool downhill{true};
};

/// Trace one streamline from (x0, y0) with midpoint (RK2) integration;
/// stops at domain edges, stagnation points, or max_steps. Returns the
/// polyline vertices (at least the seed).
[[nodiscard]] std::vector<Vec2> trace_streamline(
    const Gradient2D& grad, double x0, double y0,
    const StreamlineConfig& config = {});

/// Trace from a uniform grid of seeds and draw onto an image rendered from
/// an nx-by-ny field.
void draw_streamlines(Image& image, const util::Field2D& field,
                      std::size_t seeds_per_axis, Rgb color,
                      const StreamlineConfig& config = {});

}  // namespace greenvis::vis

// RGB8 raster image with PPM/PGM output.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "src/vis/color.hpp"

namespace greenvis::vis {

class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, Rgb fill = Rgb{0, 0, 0});

  /// Re-shape and clear in place, reusing the pixel storage when capacity
  /// allows — the hot-loop alternative to constructing a fresh Image.
  void reset(std::size_t width, std::size_t height, Rgb fill = Rgb{0, 0, 0}) {
    width_ = width;
    height_ = height;
    pixels_.assign(width * height, fill);
  }

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

  [[nodiscard]] Rgb& at(std::size_t x, std::size_t y) {
    return pixels_[y * width_ + x];
  }
  [[nodiscard]] Rgb at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }

  /// Set a pixel if inside bounds (no-op outside) — used by line drawing.
  void set_clipped(std::int64_t x, std::int64_t y, Rgb color);

  [[nodiscard]] const std::vector<Rgb>& pixels() const { return pixels_; }

  /// FNV-64 over the pixel bytes — the pipelines assert image equality via
  /// this digest.
  [[nodiscard]] std::uint64_t digest() const;

  /// Binary PPM (P6).
  void write_ppm(std::ostream& os) const;
  void save_ppm(const std::string& path) const;

  /// Compact binary form (16-byte dims header + RGB bytes) for storing
  /// images as dataset payloads (Cinema image databases).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Image deserialize(
      std::span<const std::uint8_t> raw);

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  std::size_t width_{0};
  std::size_t height_{0};
  std::vector<Rgb> pixels_;
};

}  // namespace greenvis::vis

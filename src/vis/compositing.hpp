// Parallel-rendering compositing.
//
// Multi-node visualization renders one tile per compute node and assembles
// them (sort-first decomposition of a 2-D domain). The byte-volume formulas
// for binary-swap compositing (Yu et al. [8] in the paper's related work)
// feed the network model's communication costs.
#pragma once

#include <cstddef>
#include <vector>

#include "src/vis/image.hpp"

namespace greenvis::vis {

/// Assemble a tiles_x-by-tiles_y mosaic (row-major tile order) into one
/// image. All tiles must share dimensions.
[[nodiscard]] Image assemble_tiles(const std::vector<Image>& tiles,
                                   std::size_t tiles_x, std::size_t tiles_y);

/// Bytes each node sends over a full binary-swap composite of an
/// `image_bytes` frame across `nodes` ranks (power of two): each of the
/// log2(N) rounds exchanges half of the node's current partition, then the
/// final gather collects the 1/N partitions.
[[nodiscard]] double binary_swap_bytes_per_node(double image_bytes,
                                                std::size_t nodes);

/// Number of communication rounds in binary swap (log2, nodes must be a
/// power of two).
[[nodiscard]] std::size_t binary_swap_rounds(std::size_t nodes);

/// Bytes the root receives in a direct-send gather of the final partitions.
[[nodiscard]] double gather_bytes(double image_bytes, std::size_t nodes);

}  // namespace greenvis::vis

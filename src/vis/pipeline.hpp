// The visualization pipeline stage: field -> pseudocolor + contour image.
//
// Both the in-situ and the post-processing pipelines run exactly this code
// on each visualized timestep, so the paper's invariant — identical science
// output from both pipelines, different cost — holds by construction and is
// asserted in the integration tests via image digests.
#pragma once

#include "src/machine/activity.hpp"
#include "src/util/arena.hpp"
#include "src/util/field.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/contour.hpp"
#include "src/vis/image.hpp"
#include "src/vis/rasterizer.hpp"

namespace greenvis::vis {

/// Built-in colormap selection — steerable per viewer in the serving layer.
/// kCoolWarm is the historical hardcoded default, so existing digests are
/// unchanged unless a palette is explicitly chosen.
enum class Palette { kCoolWarm, kHot, kGrayscale };

[[nodiscard]] const char* palette_name(Palette palette);
/// Build the selected built-in ColorMap.
[[nodiscard]] ColorMap make_palette(Palette palette);

struct VisConfig {
  /// Host render resolution.
  std::size_t width{512};
  std::size_t height{512};
  std::size_t contour_levels{5};
  /// Fixed transfer-function range; when lo >= hi the field min/max is used
  /// per frame (auto-scaling).
  double range_lo{0.0};
  double range_hi{0.0};
  Rgb contour_color{Rgb{20, 20, 20}};
  Palette palette{Palette::kCoolWarm};

  /// -- modeled testbed cost (see DESIGN.md calibration) --
  /// The testbed renders 2048^2 with 4x supersampling at ~56 flops/sample;
  /// expressed per host-resolution pixel: (2048/512)^2 * 4 * 56 = 3600.
  /// Calibrated so the vis stage holds Fig. 4's 10% share of case study 1.
  double modeled_flops_per_pixel{3600.0};
  /// The vis stage keeps all cores lightly busy (renderer + compositor).
  std::size_t modeled_active_cores{16};
  double modeled_core_utilization{0.35};
  /// DRAM traffic per rendered frame (framebuffer + field streaming),
  /// relative to the framebuffer size.
  double modeled_dram_amplification{6.0};
};

class VisPipeline {
 public:
  VisPipeline(const VisConfig& config, util::ThreadPool* pool)
      : config_(config), pool_(pool), cmap_(make_palette(config.palette)) {}

  /// Render one frame: pseudocolor + contour overlay.
  [[nodiscard]] Image render(const util::Field2D& field) const;

  /// Hot-loop variant: renders into `image`, reusing its pixel storage and
  /// taking all contour temporaries from the internal scratch arena — zero
  /// heap allocations at steady state (identical pixels to render()).
  void render_into(const util::Field2D& field, Image& image) const;

  /// Machine-visible work of one render.
  [[nodiscard]] machine::ActivityRecord render_activity() const;

  [[nodiscard]] const VisConfig& config() const { return config_; }

 private:
  VisConfig config_;
  util::ThreadPool* pool_;
  ColorMap cmap_;  // built once; per-frame construction would allocate
  /// Per-frame temporaries (iso levels, contour segments); reset at the
  /// start of every render. Mutable: scratch reuse is not observable state.
  mutable util::ScratchArena arena_;
};

}  // namespace greenvis::vis

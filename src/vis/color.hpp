// Colors and transfer functions for pseudocolor rendering.
#pragma once

#include <cstdint>
#include <vector>

namespace greenvis::vis {

struct Rgb {
  std::uint8_t r{0};
  std::uint8_t g{0};
  std::uint8_t b{0};

  friend constexpr bool operator==(Rgb a, Rgb b2) {
    return a.r == b2.r && a.g == b2.g && a.b == b2.b;
  }
};

/// Piecewise-linear colormap over normalized [0, 1].
class ColorMap {
 public:
  struct Stop {
    double position;  // in [0, 1], strictly increasing
    double r, g, b;   // in [0, 1]
  };

  explicit ColorMap(std::vector<Stop> stops);

  /// Map a normalized value (clamped to [0, 1]).
  [[nodiscard]] Rgb map(double t) const;

  /// Map a raw value given a data range (degenerate range maps to 0).
  [[nodiscard]] Rgb map_range(double v, double lo, double hi) const;

  /// The classic blue-white-red diverging map (ParaView's default look for
  /// temperature fields).
  [[nodiscard]] static ColorMap cool_warm();
  /// Black-red-yellow-white "hot" map.
  [[nodiscard]] static ColorMap hot();
  [[nodiscard]] static ColorMap grayscale();

  /// The validated stop list (for flattening into kernel-friendly arrays).
  [[nodiscard]] const std::vector<Stop>& stops() const { return stops_; }

 private:
  std::vector<Stop> stops_;
};

}  // namespace greenvis::vis

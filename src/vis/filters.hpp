// Data filters: sampling/decimation and selection.
//
// The paper's related-work section points to data sampling [21] and data
// triage [23] as techniques that shrink in-situ output further. These
// filters implement the core operations so the examples and ablations can
// explore that corner of the design space.
#pragma once

#include <cstddef>

#include "src/util/field.hpp"

namespace greenvis::vis {

/// Every k-th sample in each dimension (k >= 1). Output dims are
/// ceil(n / k).
[[nodiscard]] util::Field2D downsample(const util::Field2D& field,
                                       std::size_t k);

/// Bilinear upsample back to the given dimensions (reconstruction for
/// sampled data).
[[nodiscard]] util::Field2D resample(const util::Field2D& field,
                                     std::size_t nx, std::size_t ny);

/// Binary mask (1.0 / 0.0) of cells at or above a threshold.
[[nodiscard]] util::Field2D threshold_mask(const util::Field2D& field,
                                           double value);

/// Fraction of cells at or above a threshold — a cheap in-situ "triage"
/// statistic deciding whether a step is worth keeping.
[[nodiscard]] double fraction_above(const util::Field2D& field, double value);

/// Extract row `j` as a 1-D profile (nx-by-1 field).
[[nodiscard]] util::Field2D slice_row(const util::Field2D& field,
                                      std::size_t j);

/// Copy the sub-rectangle [i0, i0+nx) x [j0, j0+ny) — the serving layer's
/// region-of-interest selection (a steerable pan/zoom on the 2-D field).
[[nodiscard]] util::Field2D crop(const util::Field2D& field, std::size_t i0,
                                 std::size_t j0, std::size_t nx,
                                 std::size_t ny);

/// Root-mean-square difference between two equally sized fields —
/// reconstruction error metric for the sampling ablation.
[[nodiscard]] double rms_difference(const util::Field2D& a,
                                    const util::Field2D& b);

}  // namespace greenvis::vis

#include "src/vis/volume.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "src/util/error.hpp"
#include "src/util/simd/simd.hpp"

namespace greenvis::vis {

namespace {

struct Vec3 {
  double x, y, z;
};

Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3 operator*(Vec3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }

Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

double norm(Vec3 a) { return std::sqrt(a.x * a.x + a.y * a.y + a.z * a.z); }

Vec3 normalized(Vec3 a) {
  const double n = norm(a);
  GREENVIS_REQUIRE(n > 0.0);
  return a * (1.0 / n);
}

/// Slab intersection of a ray with the axis-aligned box [0, ext]; returns
/// false when the ray misses.
bool intersect_box(Vec3 origin, Vec3 dir, Vec3 ext, double& t_enter,
                   double& t_exit) {
  t_enter = 0.0;
  t_exit = std::numeric_limits<double>::infinity();
  const double o[3] = {origin.x, origin.y, origin.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  const double e[3] = {ext.x, ext.y, ext.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-12) {
      if (o[axis] < 0.0 || o[axis] > e[axis]) {
        return false;
      }
      continue;
    }
    double t0 = (0.0 - o[axis]) / d[axis];
    double t1 = (e[axis] - o[axis]) / d[axis];
    if (t0 > t1) {
      std::swap(t0, t1);
    }
    t_enter = std::max(t_enter, t0);
    t_exit = std::min(t_exit, t1);
  }
  return t_enter < t_exit;
}

}  // namespace

double TransferFunction::intensity(double v) const {
  if (hi <= lo) {
    return 0.0;
  }
  return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
}

double TransferFunction::opacity(double v, double step) const {
  const double t = intensity(v);
  const double per_length = opacity_scale * std::pow(t, gamma);
  return std::clamp(per_length * step, 0.0, 1.0);
}

double trilinear_sample(const util::Field3D& field, double x, double y,
                        double z) {
  const double mx = static_cast<double>(field.nx() - 1);
  const double my = static_cast<double>(field.ny() - 1);
  const double mz = static_cast<double>(field.nz() - 1);
  x = std::clamp(x, 0.0, mx);
  y = std::clamp(y, 0.0, my);
  z = std::clamp(z, 0.0, mz);
  const auto i0 = static_cast<std::size_t>(x);
  const auto j0 = static_cast<std::size_t>(y);
  const auto k0 = static_cast<std::size_t>(z);
  const std::size_t i1 = std::min(i0 + 1, field.nx() - 1);
  const std::size_t j1 = std::min(j0 + 1, field.ny() - 1);
  const std::size_t k1 = std::min(k0 + 1, field.nz() - 1);
  const double fx = x - static_cast<double>(i0);
  const double fy = y - static_cast<double>(j0);
  const double fz = z - static_cast<double>(k0);

  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  const double c00 = lerp(field.at(i0, j0, k0), field.at(i1, j0, k0), fx);
  const double c10 = lerp(field.at(i0, j1, k0), field.at(i1, j1, k0), fx);
  const double c01 = lerp(field.at(i0, j0, k1), field.at(i1, j0, k1), fx);
  const double c11 = lerp(field.at(i0, j1, k1), field.at(i1, j1, k1), fx);
  return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
}

Image render_volume(const util::Field3D& field, const VolumeConfig& config,
                    util::ThreadPool* pool) {
  GREENVIS_REQUIRE(config.width > 0 && config.height > 0);
  GREENVIS_REQUIRE(config.step > 0.0);
  GREENVIS_REQUIRE(config.camera.zoom > 0.0);

  const Vec3 ext{static_cast<double>(field.nx() - 1),
                 static_cast<double>(field.ny() - 1),
                 static_cast<double>(field.nz() - 1)};
  const Vec3 center = ext * 0.5;
  const double radius = 0.5 * norm(ext);

  const double az = config.camera.azimuth_deg * std::numbers::pi / 180.0;
  const double el = config.camera.elevation_deg * std::numbers::pi / 180.0;
  // View direction: from the camera toward the center.
  const Vec3 dir = normalized(
      Vec3{-std::cos(el) * std::cos(az), -std::cos(el) * std::sin(az),
           -std::sin(el)});
  const Vec3 world_up{0.0, 0.0, 1.0};
  Vec3 right = cross(dir, world_up);
  if (norm(right) < 1e-9) {
    right = Vec3{1.0, 0.0, 0.0};
  }
  right = normalized(right);
  const Vec3 up = cross(right, dir);

  const double half_extent = radius / config.camera.zoom;
  Image image(config.width, config.height, config.background);

  const util::simd::KernelTable& kern = util::simd::kernels();
  const double* fdata = field.values().data();
  const std::size_t fnx = field.nx(), fny = field.ny(), fnz = field.nz();

  // Flatten the transfer function + colormap stops once per render so the
  // compositing kernel reads plain SoA arrays.
  const auto& stops = config.tf.color.stops();
  std::vector<double> stop_pos(stops.size()), stop_r(stops.size()),
      stop_g(stops.size()), stop_b(stops.size());
  for (std::size_t i = 0; i < stops.size(); ++i) {
    stop_pos[i] = stops[i].position;
    stop_r[i] = stops[i].r;
    stop_g[i] = stops[i].g;
    stop_b[i] = stops[i].b;
  }
  const util::simd::CompositeTf ctf{
      config.tf.lo,    config.tf.hi,    config.tf.opacity_scale,
      config.tf.gamma, stop_pos.data(), stop_r.data(),
      stop_g.data(),   stop_b.data(),   stops.size()};

  auto rows = [&](std::size_t y_begin, std::size_t y_end) {
    // Sample positions are generated in blocks of 8 so both the trilinear
    // interpolation and the front-to-back compositing run through the
    // vector kernels. Samples precomputed past the early-termination point
    // are discarded, so the pixels are bit-identical to the
    // one-sample-at-a-time loop.
    constexpr std::size_t kBlock = 8;
    double xs[kBlock], ys[kBlock], zs[kBlock], vs[kBlock];
    for (std::size_t py = y_begin; py < y_end; ++py) {
      for (std::size_t px = 0; px < config.width; ++px) {
        const double ndc_x = 2.0 * (static_cast<double>(px) + 0.5) /
                                 static_cast<double>(config.width) -
                             1.0;
        // Flip y so +up in world maps to up in the image.
        const double ndc_y = 1.0 - 2.0 * (static_cast<double>(py) + 0.5) /
                                       static_cast<double>(config.height);
        const Vec3 origin = center + right * (ndc_x * half_extent) +
                            up * (ndc_y * half_extent) -
                            dir * (2.0 * radius + 1.0);
        double t_enter = 0.0, t_exit = 0.0;
        if (!intersect_box(origin, dir, ext, t_enter, t_exit)) {
          continue;
        }
        double acc[4] = {0.0, 0.0, 0.0, 0.0};
        double t = t_enter;
        bool saturated = false;
        while (!saturated && t < t_exit) {
          std::size_t n = 0;
          for (; n < kBlock && t < t_exit; ++n, t += config.step) {
            xs[n] = origin.x + dir.x * t;
            ys[n] = origin.y + dir.y * t;
            zs[n] = origin.z + dir.z * t;
          }
          kern.trilinear_block(fdata, fnx, fny, fnz, xs, ys, zs, vs, n);
          saturated = kern.composite_block(vs, n, &ctf, config.step,
                                           config.early_termination, acc);
        }
        if (acc[3] <= 0.0) {
          continue;
        }
        const Rgb bg = config.background;
        auto blend = [&](double channel, std::uint8_t b) {
          const double out = channel + (1.0 - acc[3]) * b;
          return static_cast<std::uint8_t>(
              std::lround(std::clamp(out, 0.0, 255.0)));
        };
        image.at(px, py) = Rgb{blend(acc[0], bg.r), blend(acc[1], bg.g),
                               blend(acc[2], bg.b)};
      }
    }
  };
  // Same dispatch policy as render_pseudocolor: parallelism must be real
  // (>1 worker) and have enough rows to amortize, else serial is faster
  // and the pixels are identical (rows are disjoint).
  if (pool != nullptr && pool->size() > 1 &&
      config.height >= 4 * pool->size()) {
    pool->parallel_for(0, config.height, rows);
  } else {
    rows(0, config.height);
  }
  return image;
}

machine::ActivityRecord volume_render_activity(const util::Field3D& field,
                                               const VolumeConfig& config) {
  machine::ActivityRecord a;
  const double rays =
      static_cast<double>(config.width) * static_cast<double>(config.height);
  // Average chord through the volume ~ 2/3 of its diagonal.
  const double diag = std::sqrt(
      static_cast<double>(field.nx() * field.nx() + field.ny() * field.ny() +
                          field.nz() * field.nz()));
  const double samples_per_ray = (2.0 / 3.0) * diag / config.step;
  a.flops = rays * samples_per_ray * 40.0;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      rays * samples_per_ray * 8.0 * 0.5)};  // half the samples miss cache
  a.active_cores = 16;
  a.core_utilization = 0.6;
  return a;
}

}  // namespace greenvis::vis

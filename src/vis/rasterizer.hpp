// Software rasterization: pseudocolor fields and contour overlays.
#pragma once

#include <span>
#include <vector>

#include "src/util/field.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/contour.hpp"
#include "src/vis/image.hpp"

namespace greenvis::vis {

/// Bilinear sample of `field` at fractional cell coordinates (clamped).
[[nodiscard]] double bilinear_sample(const util::Field2D& field, double x,
                                     double y);

/// Render `field` as a pseudocolor image of the given size using bilinear
/// resampling. `lo`/`hi` fix the transfer-function range (pass min/max for
/// auto). Row-parallel over `pool` when it has >1 worker and enough rows to
/// amortize dispatch; otherwise the serial path runs (identical pixels —
/// rows are disjoint).
[[nodiscard]] Image render_pseudocolor(const util::Field2D& field,
                                       const ColorMap& cmap, std::size_t width,
                                       std::size_t height, double lo,
                                       double hi,
                                       util::ThreadPool* pool = nullptr);

/// In-place variant for the hot loop: renders into `image` (reset to the
/// given size first), allocating nothing once the image has capacity.
void render_pseudocolor_into(const util::Field2D& field, const ColorMap& cmap,
                             std::size_t width, std::size_t height, double lo,
                             double hi, util::ThreadPool* pool, Image& image);

/// Draw contour segments (field coordinates) onto an image rendered from an
/// nx-by-ny field — coordinates scale accordingly. DDA line drawing.
void draw_segments(Image& image, std::span<const Segment> segments,
                   std::size_t field_nx, std::size_t field_ny, Rgb color);

}  // namespace greenvis::vis

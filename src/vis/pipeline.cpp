#include "src/vis/pipeline.hpp"

#include "src/obs/tracer.hpp"

namespace greenvis::vis {

Image VisPipeline::render(const util::Field2D& field) const {
  static obs::Histogram& render_us = obs::Registry::global().histogram(
      "vis.render_us", obs::duration_us_bounds());
  obs::ScopedSpan span("vis.render", obs::kCatVis, &render_us);
  double lo = config_.range_lo;
  double hi = config_.range_hi;
  if (lo >= hi) {
    lo = field.min_value();
    hi = field.max_value();
  }
  Image image = [&] {
    obs::ScopedSpan raster_span("vis.raster", obs::kCatVis);
    return render_pseudocolor(field, ColorMap::cool_warm(), config_.width,
                              config_.height, lo, hi, pool_);
  }();
  {
    obs::ScopedSpan contour_span("vis.contour", obs::kCatVis);
    for (double level : iso_levels(field, config_.contour_levels)) {
      const auto segments = marching_squares(field, level, pool_);
      draw_segments(image, segments, field.nx(), field.ny(),
                    config_.contour_color);
    }
  }
  if (obs::enabled()) {
    static obs::Counter& frames = obs::Registry::global().counter("vis.frames");
    frames.add(1);
  }
  return image;
}

machine::ActivityRecord VisPipeline::render_activity() const {
  machine::ActivityRecord a;
  const double pixels =
      static_cast<double>(config_.width) * static_cast<double>(config_.height);
  a.flops = pixels * config_.modeled_flops_per_pixel;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      pixels * 3.0 * config_.modeled_dram_amplification)};
  a.active_cores = config_.modeled_active_cores;
  a.core_utilization = config_.modeled_core_utilization;
  return a;
}

}  // namespace greenvis::vis

#include "src/vis/pipeline.hpp"

namespace greenvis::vis {

Image VisPipeline::render(const util::Field2D& field) const {
  double lo = config_.range_lo;
  double hi = config_.range_hi;
  if (lo >= hi) {
    lo = field.min_value();
    hi = field.max_value();
  }
  Image image =
      render_pseudocolor(field, ColorMap::cool_warm(), config_.width,
                         config_.height, lo, hi, pool_);
  for (double level : iso_levels(field, config_.contour_levels)) {
    const auto segments = marching_squares(field, level, pool_);
    draw_segments(image, segments, field.nx(), field.ny(),
                  config_.contour_color);
  }
  return image;
}

machine::ActivityRecord VisPipeline::render_activity() const {
  machine::ActivityRecord a;
  const double pixels =
      static_cast<double>(config_.width) * static_cast<double>(config_.height);
  a.flops = pixels * config_.modeled_flops_per_pixel;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      pixels * 3.0 * config_.modeled_dram_amplification)};
  a.active_cores = config_.modeled_active_cores;
  a.core_utilization = config_.modeled_core_utilization;
  return a;
}

}  // namespace greenvis::vis

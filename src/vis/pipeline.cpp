#include "src/vis/pipeline.hpp"

#include "src/obs/tracer.hpp"

namespace greenvis::vis {

const char* palette_name(Palette palette) {
  switch (palette) {
    case Palette::kCoolWarm:
      return "coolwarm";
    case Palette::kHot:
      return "hot";
    case Palette::kGrayscale:
      return "gray";
  }
  return "coolwarm";
}

ColorMap make_palette(Palette palette) {
  switch (palette) {
    case Palette::kHot:
      return ColorMap::hot();
    case Palette::kGrayscale:
      return ColorMap::grayscale();
    case Palette::kCoolWarm:
      break;
  }
  return ColorMap::cool_warm();
}

Image VisPipeline::render(const util::Field2D& field) const {
  Image image;
  render_into(field, image);
  return image;
}

void VisPipeline::render_into(const util::Field2D& field, Image& image) const {
  static obs::Histogram& render_us = obs::Registry::global().histogram(
      "vis.render_us", obs::duration_us_bounds());
  obs::ScopedSpan span("vis.render", obs::kCatVis, &render_us);
  arena_.reset();
  double lo = config_.range_lo;
  double hi = config_.range_hi;
  if (lo >= hi) {
    lo = field.min_value();
    hi = field.max_value();
  }
  {
    obs::ScopedSpan raster_span("vis.raster", obs::kCatVis);
    render_pseudocolor_into(field, cmap_, config_.width, config_.height, lo,
                            hi, pool_, image);
  }
  {
    obs::ScopedSpan contour_span("vis.contour", obs::kCatVis);
    const std::span<double> levels =
        arena_.alloc<double>(config_.contour_levels);
    iso_levels_into(field, levels);
    for (double level : levels) {
      // Serial arena-backed extraction: same segments in the same order as
      // the pooled variant (asserted in tests), no per-frame heap churn.
      util::ArenaVec<Segment> segments(arena_, 256);
      marching_squares_into(field, level, segments);
      draw_segments(image, segments.span(), field.nx(), field.ny(),
                    config_.contour_color);
    }
  }
  if (obs::enabled()) {
    static obs::Counter& frames = obs::Registry::global().counter("vis.frames");
    frames.add(1);
  }
}

machine::ActivityRecord VisPipeline::render_activity() const {
  machine::ActivityRecord a;
  const double pixels =
      static_cast<double>(config_.width) * static_cast<double>(config_.height);
  a.flops = pixels * config_.modeled_flops_per_pixel;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      pixels * 3.0 * config_.modeled_dram_amplification)};
  a.active_cores = config_.modeled_active_cores;
  a.core_utilization = config_.modeled_core_utilization;
  return a;
}

}  // namespace greenvis::vis

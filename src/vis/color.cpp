#include "src/vis/color.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::vis {

ColorMap::ColorMap(std::vector<Stop> stops) : stops_(std::move(stops)) {
  GREENVIS_REQUIRE(stops_.size() >= 2);
  GREENVIS_REQUIRE(stops_.front().position == 0.0);
  GREENVIS_REQUIRE(stops_.back().position == 1.0);
  for (std::size_t i = 1; i < stops_.size(); ++i) {
    GREENVIS_REQUIRE(stops_[i].position > stops_[i - 1].position);
  }
}

Rgb ColorMap::map(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  std::size_t hi = 1;
  while (hi + 1 < stops_.size() && stops_[hi].position < t) {
    ++hi;
  }
  const Stop& a = stops_[hi - 1];
  const Stop& b = stops_[hi];
  const double f = (t - a.position) / (b.position - a.position);
  auto chan = [f](double x, double y) {
    const double v = x + f * (y - x);
    return static_cast<std::uint8_t>(std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
  };
  return Rgb{chan(a.r, b.r), chan(a.g, b.g), chan(a.b, b.b)};
}

Rgb ColorMap::map_range(double v, double lo, double hi) const {
  if (hi <= lo) {
    return map(0.0);
  }
  return map((v - lo) / (hi - lo));
}

ColorMap ColorMap::cool_warm() {
  return ColorMap{{
      {0.0, 0.230, 0.299, 0.754},
      {0.5, 0.865, 0.865, 0.865},
      {1.0, 0.706, 0.016, 0.150},
  }};
}

ColorMap ColorMap::hot() {
  return ColorMap{{
      {0.0, 0.0, 0.0, 0.0},
      {0.375, 0.9, 0.0, 0.0},
      {0.75, 1.0, 0.9, 0.0},
      {1.0, 1.0, 1.0, 1.0},
  }};
}

ColorMap ColorMap::grayscale() {
  return ColorMap{{
      {0.0, 0.0, 0.0, 0.0},
      {1.0, 1.0, 1.0, 1.0},
  }};
}

}  // namespace greenvis::vis

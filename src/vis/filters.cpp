#include "src/vis/filters.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/vis/rasterizer.hpp"

namespace greenvis::vis {

util::Field2D downsample(const util::Field2D& field, std::size_t k) {
  GREENVIS_REQUIRE(k >= 1);
  const std::size_t nx = (field.nx() + k - 1) / k;
  const std::size_t ny = (field.ny() + k - 1) / k;
  util::Field2D out(nx, ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      out.at(i, j) = field.at(i * k, j * k);
    }
  }
  return out;
}

util::Field2D resample(const util::Field2D& field, std::size_t nx,
                       std::size_t ny) {
  GREENVIS_REQUIRE(nx >= 2 && ny >= 2);
  util::Field2D out(nx, ny);
  const double sx =
      static_cast<double>(field.nx() - 1) / static_cast<double>(nx - 1);
  const double sy =
      static_cast<double>(field.ny() - 1) / static_cast<double>(ny - 1);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      out.at(i, j) = bilinear_sample(field, static_cast<double>(i) * sx,
                                     static_cast<double>(j) * sy);
    }
  }
  return out;
}

util::Field2D threshold_mask(const util::Field2D& field, double value) {
  util::Field2D out(field.nx(), field.ny());
  for (std::size_t j = 0; j < field.ny(); ++j) {
    for (std::size_t i = 0; i < field.nx(); ++i) {
      out.at(i, j) = field.at(i, j) >= value ? 1.0 : 0.0;
    }
  }
  return out;
}

double fraction_above(const util::Field2D& field, double value) {
  std::size_t n = 0;
  for (double v : field.values()) {
    if (v >= value) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(field.size());
}

util::Field2D crop(const util::Field2D& field, std::size_t i0, std::size_t j0,
                   std::size_t nx, std::size_t ny) {
  GREENVIS_REQUIRE(nx >= 1 && ny >= 1);
  GREENVIS_REQUIRE(i0 + nx <= field.nx() && j0 + ny <= field.ny());
  util::Field2D out(nx, ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      out.at(i, j) = field.at(i0 + i, j0 + j);
    }
  }
  return out;
}

util::Field2D slice_row(const util::Field2D& field, std::size_t j) {
  GREENVIS_REQUIRE(j < field.ny());
  util::Field2D out(field.nx(), 1);
  for (std::size_t i = 0; i < field.nx(); ++i) {
    out.at(i, 0) = field.at(i, j);
  }
  return out;
}

double rms_difference(const util::Field2D& a, const util::Field2D& b) {
  GREENVIS_REQUIRE(a.nx() == b.nx() && a.ny() == b.ny());
  double sum = 0.0;
  for (std::size_t idx = 0; idx < a.size(); ++idx) {
    const double d = a.values()[idx] - b.values()[idx];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace greenvis::vis

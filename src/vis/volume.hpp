// Direct volume rendering: orthographic ray marching with front-to-back
// alpha compositing over a trilinearly sampled scalar field — the rendering
// mode of the paper's reference workloads (massive-dataset volume rendering
// [7][8] and the Blue Gene/P studies [27][29] it cites for I/O behaviour).
#pragma once

#include "src/machine/activity.hpp"
#include "src/util/field3d.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/color.hpp"
#include "src/vis/image.hpp"

namespace greenvis::vis {

/// Scalar -> color + opacity-per-unit-length.
struct TransferFunction {
  ColorMap color{ColorMap::hot()};
  /// Scalar domain mapped onto the color map and opacity ramp.
  double lo{0.0};
  double hi{1.0};
  /// Opacity per unit path length at the top of the scalar range.
  double opacity_scale{0.08};
  /// Ramp shape: alpha ~ t^gamma (gamma > 1 de-emphasizes low values).
  double gamma{1.5};

  /// Normalized intensity of scalar `v` in [0, 1].
  [[nodiscard]] double intensity(double v) const;
  /// Opacity accumulated over a path of length `step` through scalar `v`.
  [[nodiscard]] double opacity(double v, double step) const;
};

/// Orthographic camera orbiting the volume center.
struct Camera {
  double azimuth_deg{30.0};
  double elevation_deg{25.0};
  double zoom{1.0};
};

struct VolumeConfig {
  std::size_t width{256};
  std::size_t height{256};
  /// Ray-march step in voxel units.
  double step{0.5};
  TransferFunction tf{};
  Camera camera{};
  Rgb background{Rgb{12, 12, 16}};
  /// Stop compositing when accumulated opacity reaches this.
  double early_termination{0.98};
};

/// Trilinear sample at fractional voxel coordinates (clamped to the
/// volume).
[[nodiscard]] double trilinear_sample(const util::Field3D& field, double x,
                                      double y, double z);

/// Render the volume; row-parallel over `pool` when provided.
[[nodiscard]] Image render_volume(const util::Field3D& field,
                                  const VolumeConfig& config,
                                  util::ThreadPool* pool = nullptr);

/// Machine-visible cost of one volume render (for the cost model): rays x
/// average path length / step samples, ~40 flops per sample on the testbed.
[[nodiscard]] machine::ActivityRecord volume_render_activity(
    const util::Field3D& field, const VolumeConfig& config);

}  // namespace greenvis::vis

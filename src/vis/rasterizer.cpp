#include "src/vis/rasterizer.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::vis {

double bilinear_sample(const util::Field2D& field, double x, double y) {
  const double max_x = static_cast<double>(field.nx() - 1);
  const double max_y = static_cast<double>(field.ny() - 1);
  x = std::clamp(x, 0.0, max_x);
  y = std::clamp(y, 0.0, max_y);
  const auto i0 = static_cast<std::size_t>(x);
  const auto j0 = static_cast<std::size_t>(y);
  const std::size_t i1 = std::min(i0 + 1, field.nx() - 1);
  const std::size_t j1 = std::min(j0 + 1, field.ny() - 1);
  const double fx = x - static_cast<double>(i0);
  const double fy = y - static_cast<double>(j0);
  const double a = field.at(i0, j0) * (1.0 - fx) + field.at(i1, j0) * fx;
  const double b = field.at(i0, j1) * (1.0 - fx) + field.at(i1, j1) * fx;
  return a * (1.0 - fy) + b * fy;
}

namespace {

/// Pixel -> field-coordinate mapping `coord = pixel * scale + offset` that
/// covers the degenerate extents: a 1-pixel axis samples the field-axis
/// center (not its left edge), and a 1-cell field axis pins every pixel to
/// coordinate 0 instead of dividing by zero.
struct AxisMap {
  double scale{0.0};
  double offset{0.0};
};

AxisMap axis_map(std::size_t field_cells, std::size_t pixels) {
  const double extent = static_cast<double>(field_cells - 1);
  if (pixels <= 1) {
    return {0.0, extent / 2.0};
  }
  return {extent / static_cast<double>(pixels - 1), 0.0};
}

/// Parallel dispatch pays off only with real workers and enough rows per
/// worker to amortize the wake/claim round trip. Below that, the serial
/// path is both faster and allocation-free (pixels are identical either
/// way: rows are disjoint).
bool worth_parallel(const util::ThreadPool* pool, std::size_t rows) {
  return pool != nullptr && pool->size() > 1 && rows >= 4 * pool->size();
}

}  // namespace

Image render_pseudocolor(const util::Field2D& field, const ColorMap& cmap,
                         std::size_t width, std::size_t height, double lo,
                         double hi, util::ThreadPool* pool) {
  Image image;
  render_pseudocolor_into(field, cmap, width, height, lo, hi, pool, image);
  return image;
}

void render_pseudocolor_into(const util::Field2D& field, const ColorMap& cmap,
                             std::size_t width, std::size_t height, double lo,
                             double hi, util::ThreadPool* pool, Image& image) {
  GREENVIS_REQUIRE(width > 0 && height > 0);
  GREENVIS_REQUIRE(field.nx() > 0 && field.ny() > 0);
  image.reset(width, height);
  const AxisMap mx = axis_map(field.nx(), width);
  const AxisMap my = axis_map(field.ny(), height);

  auto rows = [&](std::size_t y_begin, std::size_t y_end) {
    for (std::size_t y = y_begin; y < y_end; ++y) {
      const double fy = static_cast<double>(y) * my.scale + my.offset;
      for (std::size_t x = 0; x < width; ++x) {
        const double v = bilinear_sample(
            field, static_cast<double>(x) * mx.scale + mx.offset, fy);
        image.at(x, y) = cmap.map_range(v, lo, hi);
      }
    }
  };
  if (worth_parallel(pool, height)) {
    pool->parallel_for(0, height, rows);
  } else {
    rows(0, height);
  }
}

void draw_segments(Image& image, std::span<const Segment> segments,
                   std::size_t field_nx, std::size_t field_ny, Rgb color) {
  GREENVIS_REQUIRE(field_nx >= 2 && field_ny >= 2);
  const double sx = static_cast<double>(image.width() - 1) /
                    static_cast<double>(field_nx - 1);
  const double sy = static_cast<double>(image.height() - 1) /
                    static_cast<double>(field_ny - 1);
  for (const Segment& s : segments) {
    const double x0 = s.x0 * sx, y0 = s.y0 * sy;
    const double x1 = s.x1 * sx, y1 = s.y1 * sy;
    const double steps =
        std::max(1.0, std::ceil(std::max(std::abs(x1 - x0), std::abs(y1 - y0))));
    for (double k = 0.0; k <= steps; k += 1.0) {
      const double t = k / steps;
      image.set_clipped(std::llround(x0 + (x1 - x0) * t),
                        std::llround(y0 + (y1 - y0) * t), color);
    }
  }
}

}  // namespace greenvis::vis

// In-situ coprocessing adaptor.
//
// The ParaView/VisIt coupling libraries the paper surveys ([15], [16])
// expose in-situ processing as an *adaptor*: the simulation hands each
// timestep to the adaptor, and triggers decide whether this step is worth
// rendering. Periodic triggers reproduce the paper's every-k-th-step
// configurations; data-dependent triggers implement "importance-driven"
// triage (Wang, Yu & Ma [23]) — render only when something interesting is
// happening, saving visualization energy on quiescent stretches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/codec/field_codec.hpp"
#include "src/core/testbed.hpp"
#include "src/io/dataset.hpp"
#include "src/util/arena.hpp"
#include "src/util/field.hpp"
#include "src/vis/pipeline.hpp"

namespace greenvis::core {

/// Decides whether a timestep gets visualized. Triggers may keep state
/// (e.g. the last rendered field).
class Trigger {
 public:
  virtual ~Trigger() = default;
  [[nodiscard]] virtual bool fires(int step, const util::Field2D& field) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Every k-th step (the paper's case-study schedule).
class PeriodicTrigger final : public Trigger {
 public:
  explicit PeriodicTrigger(int period);
  [[nodiscard]] bool fires(int step, const util::Field2D& field) override;
  [[nodiscard]] std::string describe() const override;

 private:
  int period_;
};

/// Fires while at least `min_fraction` of cells are at or above `threshold`
/// (feature-presence triage).
class ThresholdTrigger final : public Trigger {
 public:
  ThresholdTrigger(double threshold, double min_fraction);
  [[nodiscard]] bool fires(int step, const util::Field2D& field) override;
  [[nodiscard]] std::string describe() const override;

 private:
  double threshold_;
  double min_fraction_;
};

/// Fires when the field has drifted at least `min_rms` (RMS) from the last
/// *rendered* field — importance-driven triage: quiescent stretches render
/// nothing, transients render densely. Always fires on the first step.
class ChangeTrigger final : public Trigger {
 public:
  explicit ChangeTrigger(double min_rms);
  [[nodiscard]] bool fires(int step, const util::Field2D& field) override;
  [[nodiscard]] std::string describe() const override;

 private:
  double min_rms_;
  std::optional<util::Field2D> last_rendered_;
};

/// The adaptor: owns the render pipeline and a trigger set (any-of). The
/// evaluation cost of data-dependent triggers is charged to the testbed
/// (one pass over the field).
class InSituAdaptor {
 public:
  InSituAdaptor(Testbed& bed, const vis::VisConfig& vis_config,
                util::ThreadPool* pool);

  void add_trigger(std::unique_ptr<Trigger> trigger);

  /// Optional triggered snapshot export: when enabled, every *rendered*
  /// step's field is also encoded with `config` and written through
  /// `writer` (charged as Write-stage I/O). The in-situ analogue of the
  /// post-processing snapshot path — triggered steps can still be archived
  /// for later analysis, at codec-reduced byte cost.
  ///
  /// `stage_buffers == 0` writes through immediately (one Write interval
  /// per rendered step). `stage_buffers >= 1` stages encoded payloads in a
  /// bounded burst-buffer ring instead: writes are deferred until the ring
  /// fills (or drain()), then flushed back-to-back on the shared clock —
  /// the in-situ side of the in-transit design, trading buffer memory for
  /// streaming-friendly write bursts. Bytes on disk are identical.
  void enable_snapshot_export(io::TimestepWriter& writer,
                              const codec::CodecConfig& config,
                              double io_cores = 3.0,
                              double io_utilization = 0.5,
                              std::size_t stage_buffers = 0);

  /// Flush any staged-but-unwritten snapshot exports (no-op when export is
  /// write-through or the ring is empty). Call at end-of-run.
  void drain();

  /// Offer one timestep; renders (and charges the testbed) when any trigger
  /// fires. Returns the image digest if rendered.
  std::optional<std::uint64_t> process(int step, const util::Field2D& field);

  [[nodiscard]] int steps_offered() const { return offered_; }
  [[nodiscard]] int steps_rendered() const { return rendered_; }
  /// Encoded bytes exported so far (0 unless snapshot export is enabled).
  [[nodiscard]] util::Bytes snapshot_bytes_written() const {
    return snapshot_bytes_;
  }

 private:
  Testbed* bed_;
  vis::VisPipeline pipeline_;
  std::vector<std::unique_ptr<Trigger>> triggers_;
  int offered_{0};
  int rendered_{0};
  io::TimestepWriter* snapshot_writer_{nullptr};
  std::unique_ptr<util::ScratchArena> snapshot_arena_;
  std::unique_ptr<codec::FieldCodec> snapshot_codec_;
  std::vector<std::uint8_t> snapshot_buf_;
  util::Bytes snapshot_bytes_{0};
  double snapshot_io_cores_{3.0};
  double snapshot_io_utilization_{0.5};
  /// Burst-buffer ring for staged export (entries and their payload
  /// storage are reused across flush laps).
  struct StagedExport {
    int step{-1};
    std::vector<std::uint8_t> payload;
  };
  std::vector<StagedExport> staged_;
  std::size_t staged_count_{0};

  void flush_staged();
};

}  // namespace greenvis::core

#include "src/core/cinema.hpp"

#include "src/core/pipeline.hpp"
#include "src/util/error.hpp"

namespace greenvis::core {

int cinema_key(int step, std::size_t view, std::size_t view_count) {
  GREENVIS_REQUIRE(view < view_count);
  return step * static_cast<int>(view_count) + static_cast<int>(view);
}

CinemaConfig CinemaConfig::orbit(std::size_t count, double elevation_deg) {
  GREENVIS_REQUIRE(count >= 1);
  CinemaConfig config;
  config.views.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    vis::Camera cam;
    cam.azimuth_deg = 360.0 * static_cast<double>(v) /
                      static_cast<double>(count);
    cam.elevation_deg = elevation_deg;
    config.views.push_back(cam);
  }
  config.dataset.basename = "cinema";
  return config;
}

CinemaWriter::CinemaWriter(Testbed& bed, const CinemaConfig& config,
                           util::ThreadPool* pool)
    : bed_(&bed),
      config_(config),
      pool_(pool),
      writer_(bed.fs(), config.dataset) {
  GREENVIS_REQUIRE_MSG(!config_.views.empty(), "cinema needs views");
}

util::Bytes CinemaWriter::write_step(int step, const util::Field3D& field) {
  util::Bytes step_bytes{0};
  for (std::size_t v = 0; v < config_.views.size(); ++v) {
    vis::VolumeConfig volume = config_.volume;
    volume.camera = config_.views[v];
    const vis::Image image = vis::render_volume(field, volume, pool_);
    bed_->run_compute(vis::volume_render_activity(field, volume),
                      stage::kVisualization);
    const auto payload = image.serialize();
    step_bytes += util::Bytes{payload.size()};
    bed_->run_io(stage::kWrite, 3.0, 0.5, [&] {
      writer_.write_step(cinema_key(step, v, config_.views.size()), payload);
    });
    ++images_;
  }
  bytes_ += step_bytes;
  return step_bytes;
}

void CinemaWriter::finalize() {
  bed_->run_io(stage::kWrite, 3.0, 0.5, [&] {
    writer_.catalog().save(bed_->fs(), config_.dataset);
    bed_->fs().drop_caches();
  });
}

CinemaReader::CinemaReader(Testbed& bed, const CinemaConfig& config)
    : bed_(&bed), config_(config), reader_(bed.fs(), config.dataset) {}

vis::Image CinemaReader::image(int step, std::size_t view) {
  std::vector<std::uint8_t> payload;
  bed_->run_io(stage::kRead, 3.0, 0.5, [&] {
    payload =
        reader_.read_step(cinema_key(step, view, config_.views.size()));
  });
  return vis::Image::deserialize(payload);
}

}  // namespace greenvis::core

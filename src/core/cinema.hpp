// Cinema-style in-situ image databases (Ahrens et al. [12], the paper's
// co-authors' system: "An Image-based Approach to Extreme Scale in Situ
// Visualization and Analysis").
//
// The paper's central trade-off is in-situ's energy savings versus the loss
// of post-hoc exploration. Cinema splits the difference: render *many*
// pre-chosen views in situ and store the images — orders of magnitude
// smaller than raw 3-D fields — so an analyst can still browse camera
// angles after the run. The writer stores one image per (step, view) with a
// catalog for discovery; the reader restores any of them bit-exactly.
#pragma once

#include <vector>

#include "src/core/testbed.hpp"
#include "src/io/catalog.hpp"
#include "src/io/dataset.hpp"
#include "src/util/field3d.hpp"
#include "src/vis/volume.hpp"

namespace greenvis::core {

struct CinemaConfig {
  /// The view matrix: one rendered image per camera per visualized step.
  std::vector<vis::Camera> views;
  /// Rendering parameters shared by all views.
  vis::VolumeConfig volume{};
  io::DatasetConfig dataset{};

  /// An orbit of `count` azimuths at a fixed elevation — the standard
  /// Cinema camera sweep.
  static CinemaConfig orbit(std::size_t count, double elevation_deg = 25.0);
};

class CinemaWriter {
 public:
  CinemaWriter(Testbed& bed, const CinemaConfig& config,
               util::ThreadPool* pool);

  /// Render all views of `field` and persist them (charges the testbed for
  /// the renders and the writes). Returns bytes written for this step.
  util::Bytes write_step(int step, const util::Field3D& field);

  /// Persist the catalog (call once after the last step).
  void finalize();

  [[nodiscard]] std::size_t images_written() const { return images_; }
  [[nodiscard]] util::Bytes total_bytes() const { return bytes_; }

 private:
  Testbed* bed_;
  CinemaConfig config_;
  util::ThreadPool* pool_;
  io::TimestepWriter writer_;
  std::size_t images_{0};
  util::Bytes bytes_{0};
};

class CinemaReader {
 public:
  CinemaReader(Testbed& bed, const CinemaConfig& config);

  /// Load one pre-rendered image (post-hoc browsing). `view` indexes the
  /// config's view list.
  [[nodiscard]] vis::Image image(int step, std::size_t view);

 private:
  Testbed* bed_;
  CinemaConfig config_;
  io::TimestepReader reader_;
};

/// The dataset key under which (step, view) is stored.
[[nodiscard]] int cinema_key(int step, std::size_t view,
                             std::size_t view_count);

}  // namespace greenvis::core

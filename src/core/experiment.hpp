// Experiment runner: pipelines + power measurement, packaged as the metrics
// the paper reports (execution time, average/peak power, energy, energy
// efficiency), plus the standalone nnread/nnwrite stage experiments behind
// Fig. 6 and Table II.
#pragma once

#include <string>

#include "src/core/pipeline.hpp"
#include "src/core/testbed.hpp"
#include "src/core/workload.hpp"
#include "src/obs/energy.hpp"
#include "src/power/trace.hpp"

namespace greenvis::core {

enum class PipelineKind { kPostProcessing, kPostProcessingAsync, kInSitu };

[[nodiscard]] const char* pipeline_kind_name(PipelineKind kind);

struct PipelineMetrics {
  std::string pipeline_name;
  std::string case_name;
  util::Seconds duration{0.0};
  util::Joules energy{0.0};
  util::Watts average_power{0.0};
  util::Watts peak_power{0.0};
  /// Simulated cell-updates per joule (both pipelines do identical science
  /// for a case study, so the ratio of efficiencies is the inverse ratio of
  /// energies — Fig. 11).
  double efficiency{0.0};
  trace::Timeline timeline;
  power::PowerTrace trace{util::Seconds{1.0}};
  /// Per-stage joule attribution (conservation-checked; deterministic, so
  /// it is always computed — downstream consumers like campaign sweep
  /// columns must not depend on the profiler flag).
  obs::EnergyReport attribution;
  PipelineOutput output;
};

/// A standalone stage run (nnread / nnwrite of Fig. 6, Table II).
struct StageRun {
  std::string name;
  util::Seconds duration{0.0};
  util::Watts average_power{0.0};
  /// Average power above the idle floor — Table II's "Avg. Power (Dynamic)".
  util::Watts average_dynamic_power{0.0};
  power::PowerTrace trace{util::Seconds{1.0}};
};

class Experiment {
 public:
  explicit Experiment(const TestbedConfig& base = {}) : base_(base) {}

  /// Run one pipeline on a fresh testbed and measure it.
  [[nodiscard]] PipelineMetrics run(PipelineKind kind,
                                    const CaseStudyConfig& config,
                                    const PipelineOptions& options = {}) const;

  /// Run `steps` isolated write (nnwrite) or read (nnread) stage iterations
  /// on a fresh testbed; preparation is excluded from the measured window.
  [[nodiscard]] StageRun run_write_stage(const CaseStudyConfig& config,
                                         int steps) const;
  [[nodiscard]] StageRun run_read_stage(const CaseStudyConfig& config,
                                        int steps) const;

  [[nodiscard]] const TestbedConfig& base_config() const { return base_; }

 private:
  TestbedConfig base_;
};

}  // namespace greenvis::core

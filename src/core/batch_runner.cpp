#include "src/core/batch_runner.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "src/obs/tracer.hpp"
#include "src/util/sharded.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::core {

BatchRunner::BatchRunner(std::size_t concurrency) : concurrency_(concurrency) {
  if (concurrency_ == 0) {
    concurrency_ =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

std::size_t BatchRunner::host_threads_per_job(std::size_t batch_jobs) const {
  const std::size_t in_flight =
      batch_jobs == 0 ? concurrency_ : std::min(concurrency_, batch_jobs);
  if (in_flight <= 1) {
    return 0;  // serial batch: each job gets the pipeline default (all cores)
  }
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, cores / in_flight);
}

std::vector<PipelineMetrics> BatchRunner::run(
    const Experiment& experiment, const std::vector<BatchJob>& jobs) const {
  std::vector<PipelineMetrics> results(jobs.size());
  if (jobs.empty()) {
    return results;
  }
  auto run_job = [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    obs::ScopedSpan span("batch:", job.config.name, obs::kCatCore);
    if (obs::enabled()) {
      static obs::Counter& batch_jobs =
          obs::Registry::global().counter("batch.jobs");
      batch_jobs.add(1);
    }
    if (job.testbed) {
      results[i] = Experiment(*job.testbed)
                       .run(job.kind, job.config, job.options);
    } else {
      results[i] = experiment.run(job.kind, job.config, job.options);
    }
  };

  const std::size_t fan_out = std::min(concurrency_, jobs.size());
  if (fan_out <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      run_job(i);
    }
    return results;
  }

  std::exception_ptr error;
  std::mutex error_mutex;
  util::ThreadPool pool(fan_out);
  util::ShardedOptions options;
  options.span_name = "batch.shard";
  options.steal_counter =
      obs::enabled() ? &obs::Registry::global().counter("batch.steals")
                     : nullptr;
  util::run_sharded(
      pool, jobs.size(),
      [&](std::size_t i) {
        try {
          run_job(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!error) {
            error = std::current_exception();
          }
        }
      },
      options);
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

}  // namespace greenvis::core

#include "src/core/batch_runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "src/obs/tracer.hpp"

namespace greenvis::core {

BatchRunner::BatchRunner(std::size_t concurrency) : concurrency_(concurrency) {
  if (concurrency_ == 0) {
    concurrency_ =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

std::vector<PipelineMetrics> BatchRunner::run(
    const Experiment& experiment, const std::vector<BatchJob>& jobs) const {
  std::vector<PipelineMetrics> results(jobs.size());
  if (jobs.empty()) {
    return results;
  }
  auto run_job = [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    obs::ScopedSpan span("batch:", job.config.name, obs::kCatCore);
    if (obs::enabled()) {
      static obs::Counter& batch_jobs =
          obs::Registry::global().counter("batch.jobs");
      batch_jobs.add(1);
    }
    if (job.testbed) {
      results[i] = Experiment(*job.testbed)
                       .run(job.kind, job.config, job.options);
    } else {
      results[i] = experiment.run(job.kind, job.config, job.options);
    }
  };

  const std::size_t fan_out = std::min(concurrency_, jobs.size());
  if (fan_out <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      run_job(i);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        return;
      }
      try {
        run_job(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(fan_out - 1);
  for (std::size_t t = 0; t + 1 < fan_out; ++t) {
    threads.emplace_back(drain);
  }
  drain();  // the calling thread works too
  for (auto& t : threads) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

}  // namespace greenvis::core

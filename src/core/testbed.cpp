#include "src/core/testbed.hpp"

#include <cmath>

#include "src/obs/tracer.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/nvme.hpp"
#include "src/storage/raid.hpp"
#include "src/storage/solid_state.hpp"
#include "src/util/error.hpp"

namespace greenvis::core {

const char* storage_device_name(StorageDeviceKind kind) {
  switch (kind) {
    case StorageDeviceKind::kHdd:
      return "hdd";
    case StorageDeviceKind::kSsd:
      return "ssd";
    case StorageDeviceKind::kNvram:
      return "nvram";
    case StorageDeviceKind::kNvme:
      return "nvme";
    case StorageDeviceKind::kRaid0:
      return "raid0";
  }
  return "?";
}

std::optional<StorageDeviceKind> parse_storage_device(std::string_view name) {
  for (StorageDeviceKind kind :
       {StorageDeviceKind::kHdd, StorageDeviceKind::kSsd,
        StorageDeviceKind::kNvram, StorageDeviceKind::kNvme,
        StorageDeviceKind::kRaid0}) {
    if (name == storage_device_name(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

namespace {

std::unique_ptr<storage::BlockDevice> make_device(
    const TestbedConfig& config) {
  switch (config.device) {
    case StorageDeviceKind::kSsd:
      return std::make_unique<storage::SolidStateModel>(
          storage::sata_ssd_params());
    case StorageDeviceKind::kNvram:
      return std::make_unique<storage::SolidStateModel>(
          storage::nvram_params());
    case StorageDeviceKind::kNvme:
      return std::make_unique<storage::NvmeModel>(
          storage::nvme_default_params());
    case StorageDeviceKind::kRaid0: {
      // Four striped copies of the testbed's spinning disk.
      std::vector<std::unique_ptr<storage::BlockDevice>> children;
      for (int i = 0; i < 4; ++i) {
        storage::HddParams child;
        child.spec = config.node.disk;
        children.push_back(std::make_unique<storage::HddModel>(child));
      }
      return std::make_unique<storage::Raid0Model>(std::move(children));
    }
    case StorageDeviceKind::kHdd:
      break;
  }
  storage::HddParams hdd;
  hdd.spec = config.node.disk;
  return std::make_unique<storage::HddModel>(hdd);
}

power::DiskPowerParams disk_power_params_for(StorageDeviceKind kind) {
  switch (kind) {
    case StorageDeviceKind::kSsd:
      return power::ssd_power_params();
    case StorageDeviceKind::kNvram:
      return power::nvram_power_params();
    case StorageDeviceKind::kNvme:
      return power::nvme_power_params();
    case StorageDeviceKind::kRaid0:
      // Dedicated array rail: all four spindles idle plus the controller,
      // with per-spindle actives (the volume's merged activity log already
      // carries every child's busy time).
      return power::raid0_power_params();
    case StorageDeviceKind::kHdd:
      break;
  }
  return power::hdd_power_params();
}

}  // namespace

Testbed::Testbed(const TestbedConfig& config)
    : config_(config), cost_(config.node, config.cost) {
  device_ = make_device(config_);
  fs_ = std::make_unique<storage::Filesystem>(*device_, clock_, config_.fs);
}

double Testbed::governed_frequency(
    const machine::ActivityRecord& activity) const {
  if (config_.package_cap.value() <= 0.0) {
    return config_.frequency_ghz;
  }
  const power::PowerModel model = power_model();
  const auto ladder = machine::e5_2665_pstates();
  // Walk the ladder downward until the package fits under the cap; the
  // lowest P-state is granted unconditionally (RAPL cannot go below Pn).
  double granted = ladder.front().frequency_ghz;
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    if (it->frequency_ghz > config_.frequency_ghz + 1e-9) {
      continue;  // never exceed the configured clock
    }
    machine::ComponentLoad load;
    load.active_cores = static_cast<double>(activity.active_cores);
    load.core_utilization = activity.core_utilization;
    load.frequency_ghz = it->frequency_ghz;
    if (model.package_power(load) <= config_.package_cap) {
      granted = it->frequency_ghz;
      break;
    }
  }
  return granted;
}

void Testbed::run_compute(const machine::ActivityRecord& activity,
                          const std::string& phase) {
  clock_.advance_to(run_compute_at(clock_.now(), activity, phase));
}

util::Seconds Testbed::run_compute_at(util::Seconds start,
                                      const machine::ActivityRecord& activity,
                                      const std::string& phase) {
  const double freq = governed_frequency(activity);
  const util::Seconds dur = cost_.duration(activity, freq);
  loads_.add(start, start + dur, cost_.load(activity, dur, freq));
  phases_.record(phase, start, start + dur);
  return start + dur;
}

void Testbed::run_io(const std::string& phase, double cores,
                     double utilization, const std::function<void()>& body) {
  GREENVIS_REQUIRE(cores >= 0.0 && utilization > 0.0 && utilization <= 1.0);
  // Host wall-clock span around the real storage-model work; the virtual
  // interval is recorded separately below.
  obs::ScopedSpan span("stage.io:", phase, obs::kCatIo);
  const util::Seconds t0 = clock_.now();
  body();
  const util::Seconds t1 = clock_.now();
  if (t1 > t0) {
    machine::ComponentLoad load;
    load.active_cores = cores;
    load.core_utilization = utilization;
    load.frequency_ghz = config_.effective_io_ghz();
    loads_.add(t0, t1, load);
    phases_.record(phase, t0, t1);
  }
}

util::Seconds Testbed::run_io_at(util::Seconds start, const std::string& phase,
                                 double cores, double utilization,
                                 const std::function<void()>& body,
                                 machine::LoadTimeline* loads,
                                 trace::Timeline* phases) {
  GREENVIS_REQUIRE(cores >= 0.0 && utilization > 0.0 && utilization <= 1.0);
  obs::ScopedSpan span("stage.io:", phase, obs::kCatIo);
  if (start > clock_.now()) {
    clock_.advance_to(start);
  }
  const util::Seconds t0 = clock_.now();
  body();
  const util::Seconds t1 = clock_.now();
  if (t1 > t0) {
    machine::ComponentLoad load;
    load.active_cores = cores;
    load.core_utilization = utilization;
    load.frequency_ghz = config_.effective_io_ghz();
    (loads != nullptr ? *loads : loads_).add(t0, t1, load);
    (phases != nullptr ? *phases : phases_).record(phase, t0, t1);
  }
  return t1;
}

void Testbed::record_stall(const std::string& phase, util::Seconds begin,
                           util::Seconds end, double cores,
                           double utilization) {
  GREENVIS_REQUIRE(cores >= 0.0 && utilization > 0.0 && utilization <= 1.0);
  if (end <= begin) {
    return;
  }
  machine::ComponentLoad load;
  load.active_cores = cores;
  load.core_utilization = utilization;
  load.frequency_ghz = config_.effective_io_ghz();
  loads_.add(begin, end, load);
  phases_.record(phase, begin, end);
}

void Testbed::idle(util::Seconds duration) { clock_.advance(duration); }

power::PowerModel Testbed::power_model() const {
  return power::PowerModel(config_.calibration,
                           disk_power_params_for(config_.device));
}

power::PowerTrace Testbed::profile() const {
  const power::PowerModel model = power_model();
  power::PowerProfiler profiler(model, config_.profiler);
  return profiler.profile(loads_, device_.get(), clock_.now());
}

}  // namespace greenvis::core

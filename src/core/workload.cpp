#include "src/core/workload.hpp"

#include "src/util/error.hpp"

namespace greenvis::core {

CaseStudyConfig case_study(int n) {
  GREENVIS_REQUIRE(n >= 1 && n <= 3);
  CaseStudyConfig c;
  c.name = "Case Study " + std::to_string(n);
  c.io_period = n == 1 ? 1 : (n == 2 ? 2 : 8);

  // The proxy problem: a cold plate with two fixed-temperature hot spots —
  // simple physics with visually evolving isotherms.
  c.problem.nx = 128;
  c.problem.ny = 128;
  c.problem.boundary = heat::BoundaryKind::kDirichlet;
  c.problem.boundary_value = 0.0;
  c.problem.sources = {
      heat::HeatSource{40.0, 44.0, 6.0, 100.0},
      heat::HeatSource{90.0, 84.0, 9.0, 60.0},
  };
  // Fixed transfer-function range so every frame is comparable.
  c.vis.range_lo = 0.0;
  c.vis.range_hi = 100.0;
  return c;
}

}  // namespace greenvis::core

// Concurrent experiment batch execution.
//
// Every Experiment::run builds a fresh Testbed (its own virtual clock,
// storage stack, and power profiler), so independent pipeline runs share no
// mutable state and are embarrassingly parallel across host threads. The
// figure benches sweep case studies x pipeline kinds, the ablations sweep
// far wider grids, and the campaign engine sweeps tens of thousands of
// configurations; BatchRunner executes such a sweep with work-stealing
// shards over a util::ThreadPool (util/sharded.hpp) while preserving the
// exact per-job results: virtual-clock durations, joules, and watts are
// byte-identical to a serial loop, in job order — only host wall-clock
// improves. The `batch.sharded_vs_serial` differential oracle pins that
// contract.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "src/core/experiment.hpp"

namespace greenvis::core {

/// One pipeline execution in a batch.
struct BatchJob {
  PipelineKind kind{PipelineKind::kPostProcessing};
  CaseStudyConfig config{};
  PipelineOptions options{};
  /// Overrides the batch Experiment's testbed for this job (DVFS / power-cap
  /// sweeps vary the machine, not the workload).
  std::optional<TestbedConfig> testbed;
};

class BatchRunner {
 public:
  /// `concurrency == 0` means hardware_concurrency (at least 1).
  explicit BatchRunner(std::size_t concurrency = 0);

  [[nodiscard]] std::size_t concurrency() const { return concurrency_; }

  /// Run every job across work-stealing shards (at most `concurrency`
  /// executing threads) and return the metrics in job order. A throwing job
  /// does not abandon the others; the first exception is rethrown after the
  /// batch drains.
  [[nodiscard]] std::vector<PipelineMetrics> run(
      const Experiment& experiment, const std::vector<BatchJob>& jobs) const;

  /// Per-job host threads that keep the machine fully used without
  /// oversubscribing it: the cores are divided among the jobs actually in
  /// flight — min(concurrency, batch_jobs) — not among the in-flight *cap*.
  /// A batch of 2 jobs on 16 cores therefore gets 8 threads per job instead
  /// of 1. `batch_jobs == 0` (unknown batch size) assumes a saturating
  /// batch; a serial batch returns 0 (= the pipeline default, full machine).
  [[nodiscard]] std::size_t host_threads_per_job(
      std::size_t batch_jobs = 0) const;

 private:
  std::size_t concurrency_;
};

}  // namespace greenvis::core

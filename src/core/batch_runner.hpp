// Concurrent experiment batch execution.
//
// Every Experiment::run builds a fresh Testbed (its own virtual clock,
// storage stack, and power profiler), so independent pipeline runs share no
// mutable state and are embarrassingly parallel across host threads. The
// figure benches sweep case studies x pipeline kinds (and the ablations
// sweep far wider grids); BatchRunner executes such a sweep with one host
// thread per in-flight job while preserving the exact per-job results:
// virtual-clock durations, joules, and watts are byte-identical to a serial
// loop — only host wall-clock improves.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "src/core/experiment.hpp"

namespace greenvis::core {

/// One pipeline execution in a batch.
struct BatchJob {
  PipelineKind kind{PipelineKind::kPostProcessing};
  CaseStudyConfig config{};
  PipelineOptions options{};
  /// Overrides the batch Experiment's testbed for this job (DVFS / power-cap
  /// sweeps vary the machine, not the workload).
  std::optional<TestbedConfig> testbed;
};

class BatchRunner {
 public:
  /// `concurrency == 0` means hardware_concurrency (at least 1).
  explicit BatchRunner(std::size_t concurrency = 0);

  [[nodiscard]] std::size_t concurrency() const { return concurrency_; }

  /// Run every job (in-flight count capped at `concurrency`) and return the
  /// metrics in job order. A throwing job does not abandon the others; the
  /// first exception is rethrown after the batch drains.
  [[nodiscard]] std::vector<PipelineMetrics> run(
      const Experiment& experiment, const std::vector<BatchJob>& jobs) const;

  /// Per-job host threads that avoid oversubscribing the machine when the
  /// batch itself fans out: 1 while the batch saturates the cores, the full
  /// machine when the batch is serial.
  [[nodiscard]] std::size_t host_threads_per_job() const {
    return concurrency_ > 1 ? 1 : 0;
  }

 private:
  std::size_t concurrency_;
};

}  // namespace greenvis::core

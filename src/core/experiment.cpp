#include "src/core/experiment.hpp"

#include <cmath>

#include "src/io/dataset.hpp"
#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"

namespace greenvis::core {

const char* pipeline_kind_name(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::kPostProcessing:
      return "Traditional";
    case PipelineKind::kPostProcessingAsync:
      return "Traditional (async)";
    case PipelineKind::kInSitu:
      return "In-situ";
  }
  return "?";
}

PipelineMetrics Experiment::run(PipelineKind kind,
                                const CaseStudyConfig& config,
                                const PipelineOptions& options) const {
  obs::ScopedSpan span("experiment:", config.name, obs::kCatCore);
  if (obs::enabled()) {
    static obs::Counter& runs =
        obs::Registry::global().counter("core.experiment_runs");
    runs.add(1);
  }
  Testbed bed(base_);
  PipelineOutput out;
  switch (kind) {
    case PipelineKind::kPostProcessing:
      out = run_post_processing(bed, config, options);
      break;
    case PipelineKind::kPostProcessingAsync:
      out = run_post_processing_async(bed, config, options);
      break;
    case PipelineKind::kInSitu:
      out = run_in_situ(bed, config, options);
      break;
  }

  PipelineMetrics m;
  m.pipeline_name = out.pipeline_name;
  m.case_name = config.name;
  m.duration = bed.clock().now();
  m.timeline = bed.phases();
  m.trace = bed.profile();
  m.energy = m.trace.energy(&power::PowerSample::system);
  m.average_power = m.trace.average(&power::PowerSample::system);
  m.peak_power = m.trace.peak(&power::PowerSample::system);
  const double cells = static_cast<double>((config.problem.nx - 2) *
                                           (config.problem.ny - 2));
  const double work = cells * static_cast<double>(config.iterations);
  m.efficiency = work / m.energy.value();
  m.output = std::move(out);
  m.attribution = obs::EnergyAttributor(bed.power_model())
                      .attribute(m.timeline, bed.loads(),
                                 bed.device().activity(), m.duration);
  if (obs::energy_profiler_enabled()) {
    obs::publish_energy_profile(
        m.attribution,
        obs::rail_power_series(bed.loads(), bed.device().activity(),
                               bed.power_model(), m.duration));
  }
  return m;
}

namespace {

StageRun measure_window(const power::PowerModel& model, std::string name,
                        util::Seconds t0, util::Seconds t1,
                        const power::PowerTrace& full) {
  StageRun run;
  run.name = std::move(name);
  run.duration = t1 - t0;
  run.trace = full.slice(t0, t1);
  run.average_power = run.trace.average(&power::PowerSample::system);
  run.average_dynamic_power =
      run.average_power - model.idle_system_power();
  return run;
}

}  // namespace

StageRun Experiment::run_write_stage(const CaseStudyConfig& config,
                                     int steps) const {
  GREENVIS_REQUIRE(steps >= 1);
  Testbed bed(base_);
  util::ThreadPool pool(1);
  heat::HeatSolver solver(config.problem, &pool);
  solver.step();  // something physical to write
  const auto payload = solver.temperature().serialize();

  // Align the measured window to whole sampling seconds.
  bed.clock().advance_to(util::Seconds{std::ceil(bed.clock().now().value())});
  const util::Seconds t0 = bed.clock().now();

  io::TimestepWriter writer(bed.fs(), config.dataset);
  for (int s = 0; s < steps; ++s) {
    bed.run_io(stage::kWrite, config.io_stage_cores,
               config.io_stage_utilization,
               [&] { writer.write_step(s, payload); });
  }
  const util::Seconds t1 = bed.clock().now();
  return measure_window(bed.power_model(), "nnwrite", t0, t1,
                        bed.profile());
}

StageRun Experiment::run_read_stage(const CaseStudyConfig& config,
                                    int steps) const {
  GREENVIS_REQUIRE(steps >= 1);
  Testbed bed(base_);
  util::ThreadPool pool(1);
  heat::HeatSolver solver(config.problem, &pool);
  solver.step();
  const auto payload = solver.temperature().serialize();

  // Preparation (unmeasured): write the dataset, then flush everything out
  // of the caches so the reads are cold.
  {
    io::TimestepWriter writer(bed.fs(), config.dataset);
    for (int s = 0; s < steps; ++s) {
      writer.write_step(s, payload);
    }
    bed.fs().drop_caches();
  }
  bed.clock().advance_to(util::Seconds{std::ceil(bed.clock().now().value())});
  const util::Seconds t0 = bed.clock().now();

  io::TimestepReader reader(bed.fs(), config.dataset);
  for (int s = 0; s < steps; ++s) {
    bed.run_io(stage::kRead, config.io_stage_cores,
               config.io_stage_utilization,
               [&] { (void)reader.read_step(s); });
  }
  const util::Seconds t1 = bed.clock().now();
  return measure_window(bed.power_model(), "nnread", t0, t1,
                        bed.profile());
}

}  // namespace greenvis::core

// The two visualization pipelines of Fig. 2, plus the in-transit variant.
//
//   Post-processing:  [simulation -> disk write]*  sync/drop_caches
//                     [disk read -> visualization]*
//   Post-proc async:  [simulation -> stage]* || [staged write]*  (overlapped
//                     via sched::AsyncStager), then the same read phase
//   In-situ:          [simulation -> visualization]*     (no disk at all)
//
// All run the same solver and the same renderer, so for a given case study
// they produce identical images (asserted via digests); only where the data
// travels — and what overlaps with what — differs, which is precisely the
// trade the paper prices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/testbed.hpp"
#include "src/core/workload.hpp"
#include "src/io/compress.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/image.hpp"

namespace greenvis::core {

/// Canonical phase names used in timelines and Fig. 4.
namespace stage {
inline constexpr const char* kSimulation = "Simulation";
inline constexpr const char* kWrite = "Write";
inline constexpr const char* kRead = "Read";
inline constexpr const char* kVisualization = "Visualization";
}  // namespace stage

struct PipelineOutput {
  std::string pipeline_name;
  /// One digest per visualized step, in step order.
  std::vector<std::uint64_t> image_digests;
  /// Final temperature field (for cross-pipeline equality checks).
  util::Field2D final_field;
  int steps{0};
  int visualized_steps{0};
  /// Snapshot payload accounting (post-processing only; zero for in-situ).
  /// With the raw codec written == raw; with an active codec written < raw
  /// and the storage counters shrink proportionally.
  util::Bytes snapshot_bytes_written{0};
  util::Bytes snapshot_bytes_read{0};
  util::Bytes snapshot_bytes_raw{0};
  /// Kept only when `keep_images` was requested.
  std::vector<vis::Image> images;
};

struct PipelineOptions {
  bool keep_images{false};
  /// Host threads for solver/renderer (0 = hardware concurrency).
  std::size_t host_threads{0};
  /// Staging ring slots for run_post_processing_async (>= 1).
  std::size_t stage_buffers{2};
  /// Snapshots the staging writer claims per wake and submits to storage
  /// as one window (>= 1; capped by stage_buffers). 1 is the legacy
  /// one-write-per-wake behavior and keeps async-pipeline figures
  /// byte-identical.
  std::size_t stage_queue_depth{1};
};

/// Run the traditional pipeline on `bed`. The testbed's clock/timelines
/// advance; call bed.profile() afterwards for the power trace.
[[nodiscard]] PipelineOutput run_post_processing(
    Testbed& bed, const CaseStudyConfig& config,
    const PipelineOptions& options = {});

/// Run the traditional pipeline with in-transit staging: snapshots land in
/// a bounded ring (`options.stage_buffers`) and a background writer drains
/// them to disk while the solver advances — simulate and write overlap in
/// both host and virtual time (concurrent intervals on the timelines, not
/// summed serial phases). On-disk bytes, images, and snapshot accounting
/// are identical to run_post_processing; only where the time goes differs.
[[nodiscard]] PipelineOutput run_post_processing_async(
    Testbed& bed, const CaseStudyConfig& config,
    const PipelineOptions& options = {});

/// Run the in-situ pipeline (never touches the filesystem).
[[nodiscard]] PipelineOutput run_in_situ(Testbed& bed,
                                         const CaseStudyConfig& config,
                                         const PipelineOptions& options = {});

/// In-situ data sampling (Woodring et al. [21]): the simulation writes only
/// every `stride`-th sample in each dimension; post-hoc visualization
/// reconstructs by bilinear resampling. Cuts I/O volume by ~stride^2 at a
/// quantifiable quality cost.
struct SampledOutput {
  PipelineOutput base;
  /// Mean RMS reconstruction error across visualized steps (0 for stride 1).
  double mean_rms_error{0.0};
  /// Payload bytes written to storage.
  util::Bytes bytes_written{0};
};

[[nodiscard]] SampledOutput run_sampled_post_processing(
    Testbed& bed, const CaseStudyConfig& config, std::size_t stride,
    const PipelineOptions& options = {});

/// Application-driven compression (Wang et al. [22]): each written step is
/// compressed in situ (Lorenzo-predictive codec, lossless or bounded-error)
/// and decompressed before post-hoc rendering.
struct CompressedOutput {
  PipelineOutput base;
  double mean_compression_ratio{0.0};
  /// Largest per-value reconstruction error observed (0 when lossless).
  double max_abs_error{0.0};
  util::Bytes bytes_written{0};
};

[[nodiscard]] CompressedOutput run_compressed_post_processing(
    Testbed& bed, const CaseStudyConfig& config,
    const io::CompressConfig& codec, const PipelineOptions& options = {});

}  // namespace greenvis::core

#include "src/core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "src/io/dataset.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/tracer.hpp"
#include "src/sched/staging.hpp"
#include "src/util/error.hpp"
#include "src/vis/filters.hpp"

namespace greenvis::core {

namespace {

/// Simulate one step: real solve + modeled compute burst.
void simulate_step(Testbed& bed, heat::HeatSolver& solver) {
  obs::ScopedSpan span("stage.simulate", obs::kCatStage);
  solver.step();
  bed.run_compute(solver.step_activity(), stage::kSimulation);
}

/// Render one frame: real raster + modeled compute burst. `frame` is a
/// caller-owned buffer reused across steps (no per-frame image allocation).
void visualize_step(Testbed& bed, const vis::VisPipeline& pipeline,
                    const util::Field2D& field, PipelineOutput& out,
                    bool keep, vis::Image& frame) {
  obs::ScopedSpan span("stage.visualize", obs::kCatStage);
  pipeline.render_into(field, frame);
  bed.run_compute(pipeline.render_activity(), stage::kVisualization);
  out.image_digests.push_back(frame.digest());
  ++out.visualized_steps;
  if (keep) {
    out.images.push_back(frame);
  }
}

}  // namespace

PipelineOutput run_post_processing(Testbed& bed,
                                   const CaseStudyConfig& config,
                                   const PipelineOptions& options) {
  PipelineOutput out;
  out.pipeline_name = "Post-processing";
  util::ThreadPool pool(options.host_threads);
  heat::HeatSolver solver(config.problem, &pool);
  vis::VisPipeline vis_pipeline(config.vis, &pool);
  vis::Image frame;  // reused across visualize steps
  io::TimestepWriter writer(bed.fs(), config.dataset);

  // Snapshot codec (raw by default: byte-identical to the legacy
  // serialization, and no modeled codec compute is charged). The arena is
  // reset per output step, so the steady-state encode/decode path performs
  // zero heap allocations.
  util::ScratchArena arena;
  codec::FieldCodec snap_codec(config.snapshot_codec, &arena);
  // Modeled per-snapshot codec cost (quantize + delta + pack is a handful
  // of ops per cell; one streaming read + one write of the field).
  const double cells =
      static_cast<double>(config.problem.nx * config.problem.ny);
  machine::ActivityRecord codec_work;
  codec_work.flops = cells * 12.0;
  codec_work.active_cores = 1;
  codec_work.dram_bytes = util::Bytes{static_cast<std::uint64_t>(cells * 16)};

  // Phase 1: simulate, writing every io_period-th step to disk.
  std::vector<std::uint8_t> payload;
  for (int step = 0; step < config.iterations; ++step) {
    simulate_step(bed, solver);
    if (config.is_io_step(step)) {
      arena.reset();
      snap_codec.encode(solver.temperature(), payload);
      if (snap_codec.active()) {
        bed.run_compute(codec_work, stage::kSimulation);
      }
      out.snapshot_bytes_written += util::Bytes{payload.size()};
      out.snapshot_bytes_raw +=
          util::Bytes{snap_codec.last_stats().raw_bytes};
      bed.run_io(stage::kWrite, config.io_stage_cores,
                 config.io_stage_utilization,
                 [&] { writer.write_step(step, payload); });
    }
  }
  out.steps = config.iterations;
  out.final_field = solver.temperature();

  // Between phases: sync and drop the caches (Sec. IV-C) so the read phase
  // really hits the disk.
  bed.run_io(stage::kWrite, config.io_stage_cores,
             config.io_stage_utilization, [&] { bed.fs().drop_caches(); });

  // Phase 2: read each written step back and visualize it.
  io::TimestepReader reader(bed.fs(), config.dataset);
  util::Field2D field;
  for (int step = 0; step < config.iterations; ++step) {
    if (!config.is_io_step(step)) {
      continue;
    }
    bed.run_io(stage::kRead, config.io_stage_cores,
               config.io_stage_utilization,
               [&] { payload = reader.read_step(step); });
    arena.reset();
    snap_codec.decode_into(payload, field);
    if (snap_codec.active()) {
      bed.run_compute(codec_work, stage::kRead);
    }
    out.snapshot_bytes_read += util::Bytes{payload.size()};
    visualize_step(bed, vis_pipeline, field, out, options.keep_images, frame);
  }
  return out;
}

PipelineOutput run_post_processing_async(Testbed& bed,
                                         const CaseStudyConfig& config,
                                         const PipelineOptions& options) {
  PipelineOutput out;
  out.pipeline_name = "Post-processing (async staging)";
  util::ThreadPool pool(options.host_threads);
  heat::HeatSolver solver(config.problem, &pool);
  vis::VisPipeline vis_pipeline(config.vis, &pool);
  vis::Image frame;  // reused across visualize steps
  io::TimestepWriter writer(bed.fs(), config.dataset);

  // Each staging slot owns the arena its encode scratches in; the codec is
  // re-pointed at the slot per snapshot. Chunk encode may fan out across
  // `pool` for large fields (bytes are pool-size-invariant).
  codec::FieldCodec snap_codec(config.snapshot_codec);
  snap_codec.set_pool(&pool);
  const double cells =
      static_cast<double>(config.problem.nx * config.problem.ny);
  machine::ActivityRecord codec_work;
  codec_work.flops = cells * 12.0;
  codec_work.active_cores = 1;
  codec_work.dram_bytes = util::Bytes{static_cast<std::uint64_t>(cells * 16)};

  // Phase 1, overlapped: the producer (this thread) simulates and encodes
  // along its private compute cursor `cpu`; the stager's writer thread owns
  // the shared clock, placing write k at max(write k-1 end, snapshot k
  // ready). Writer-side load/phase intervals go to private sinks and are
  // merged at the drain barrier, so the main timelines see genuinely
  // concurrent simulate/write activity.
  machine::LoadTimeline writer_loads;
  trace::Timeline writer_phases;
  sched::AsyncStager stager(
      sched::StagingConfig{options.stage_buffers,
                           std::min(options.stage_queue_depth,
                                    options.stage_buffers)},
      [&](std::span<sched::StagedSnapshot* const> batch, util::Seconds start) {
        // One claimed window: successive writes chain through `t`, and no
        // snapshot's write starts before its encode finished.
        util::Seconds t = start;
        for (sched::StagedSnapshot* snap : batch) {
          t = bed.run_io_at(
              std::max(t, snap->ready), stage::kWrite, config.io_stage_cores,
              config.io_stage_utilization,
              [&] { writer.write_step(snap->step, snap->payload); },
              &writer_loads, &writer_phases);
        }
        return t;
      });

  util::Seconds cpu = bed.clock().now();
  for (int step = 0; step < config.iterations; ++step) {
    {
      obs::ScopedSpan span("stage.simulate", obs::kCatStage);
      solver.step();
      cpu = bed.run_compute_at(cpu, solver.step_activity(), stage::kSimulation);
    }
    if (!config.is_io_step(step)) {
      continue;
    }
    sched::AsyncStager::Slot slot = stager.acquire();
    if (slot.freed_at > cpu) {
      // Backpressure: the ring was still draining past our cursor. The
      // producer busy-waits like an I/O region until the slot's write ends.
      bed.record_stall(stage::kWrite, cpu, slot.freed_at,
                       config.io_stage_cores, config.io_stage_utilization);
      cpu = slot.freed_at;
      if (obs::enabled()) {
        static obs::Counter& stalls =
            obs::Registry::global().counter("sched.virtual_stalls");
        stalls.add(1);
      }
    }
    sched::StagedSnapshot& snap = *slot.snapshot;
    snap.arena.reset();
    snap_codec.set_arena(&snap.arena);
    {
      obs::ScopedSpan span("sched.encode", obs::kCatStage);
      snap_codec.encode(solver.temperature(), snap.payload);
    }
    if (snap_codec.active()) {
      cpu = bed.run_compute_at(cpu, codec_work, stage::kSimulation);
    }
    snap.step = step;
    snap.raw_bytes = snap_codec.last_stats().raw_bytes;
    out.snapshot_bytes_written += util::Bytes{snap.payload.size()};
    out.snapshot_bytes_raw += util::Bytes{snap.raw_bytes};
    stager.submit(cpu);
  }
  out.steps = config.iterations;
  out.final_field = solver.temperature();

  // Drain barrier: everything staged is on disk; both tracks join and the
  // shared clock lands at the later of compute-end and write-end.
  const util::Seconds io_end = stager.drain();
  cpu = std::max(cpu, io_end);
  if (cpu > bed.clock().now()) {
    bed.clock().advance_to(cpu);
  }
  bed.loads().merge(writer_loads);
  for (const auto& iv : writer_phases.intervals()) {
    bed.phases().record(iv.category, iv.begin, iv.end);
  }

  bed.run_io(stage::kWrite, config.io_stage_cores,
             config.io_stage_utilization, [&] { bed.fs().drop_caches(); });

  // Phase 2: identical to the sync pipeline (same reads, same renders).
  util::ScratchArena arena;
  snap_codec.set_arena(&arena);
  io::TimestepReader reader(bed.fs(), config.dataset);
  util::Field2D field;
  std::vector<std::uint8_t> payload;
  for (int step = 0; step < config.iterations; ++step) {
    if (!config.is_io_step(step)) {
      continue;
    }
    bed.run_io(stage::kRead, config.io_stage_cores,
               config.io_stage_utilization,
               [&] { payload = reader.read_step(step); });
    arena.reset();
    snap_codec.decode_into(payload, field);
    if (snap_codec.active()) {
      bed.run_compute(codec_work, stage::kRead);
    }
    out.snapshot_bytes_read += util::Bytes{payload.size()};
    visualize_step(bed, vis_pipeline, field, out, options.keep_images, frame);
  }
  return out;
}

SampledOutput run_sampled_post_processing(Testbed& bed,
                                          const CaseStudyConfig& config,
                                          std::size_t stride,
                                          const PipelineOptions& options) {
  GREENVIS_REQUIRE(stride >= 1);
  SampledOutput out;
  out.base.pipeline_name =
      "Post-processing (sampled 1/" + std::to_string(stride) + ")";
  util::ThreadPool pool(options.host_threads);
  heat::HeatSolver solver(config.problem, &pool);
  vis::VisPipeline vis_pipeline(config.vis, &pool);
  vis::Image frame;  // reused across visualize steps
  io::TimestepWriter writer(bed.fs(), config.dataset);

  // Phase 1: simulate; sample and write every io_period-th step. Keep the
  // exact fields so the reconstruction error can be scored later (an
  // analysis convenience — the testbed app would not retain them).
  std::vector<util::Field2D> truths;
  for (int step = 0; step < config.iterations; ++step) {
    simulate_step(bed, solver);
    if (config.is_io_step(step)) {
      const util::Field2D sampled = vis::downsample(solver.temperature(), stride);
      const auto payload = sampled.serialize();
      out.bytes_written += util::Bytes{payload.size()};
      bed.run_io(stage::kWrite, config.io_stage_cores,
                 config.io_stage_utilization,
                 [&] { writer.write_step(step, payload); });
      truths.push_back(solver.temperature());
    }
  }
  out.base.steps = config.iterations;
  out.base.final_field = solver.temperature();
  bed.run_io(stage::kWrite, config.io_stage_cores,
             config.io_stage_utilization, [&] { bed.fs().drop_caches(); });

  // Phase 2: read the sampled steps back, reconstruct, visualize.
  io::TimestepReader reader(bed.fs(), config.dataset);
  double error_sum = 0.0;
  std::size_t truth_idx = 0;
  for (int step = 0; step < config.iterations; ++step) {
    if (!config.is_io_step(step)) {
      continue;
    }
    std::vector<std::uint8_t> payload;
    bed.run_io(stage::kRead, config.io_stage_cores,
               config.io_stage_utilization,
               [&] { payload = reader.read_step(step); });
    const util::Field2D sampled = util::Field2D::deserialize(payload);
    const util::Field2D reconstructed =
        stride == 1 ? sampled
                    : vis::resample(sampled, config.problem.nx,
                                    config.problem.ny);
    error_sum += vis::rms_difference(reconstructed, truths[truth_idx++]);
    visualize_step(bed, vis_pipeline, reconstructed, out.base,
                   options.keep_images, frame);
  }
  if (truth_idx > 0) {
    out.mean_rms_error = error_sum / static_cast<double>(truth_idx);
  }
  return out;
}

CompressedOutput run_compressed_post_processing(
    Testbed& bed, const CaseStudyConfig& config,
    const io::CompressConfig& codec, const PipelineOptions& options) {
  CompressedOutput out;
  out.base.pipeline_name =
      codec.mode == io::CompressionMode::kLossless
          ? "Post-processing (lossless compression)"
          : "Post-processing (lossy, eb=" + std::to_string(codec.error_bound) +
                ")";
  util::ThreadPool pool(options.host_threads);
  heat::HeatSolver solver(config.problem, &pool);
  vis::VisPipeline vis_pipeline(config.vis, &pool);
  vis::Image frame;  // reused across visualize steps
  io::TimestepWriter writer(bed.fs(), config.dataset);

  // Modeled cost of the predictive codec per cell (compress and decompress
  // are both a predictor + a quantize/unpack).
  const double cells =
      static_cast<double>(config.problem.nx * config.problem.ny);
  machine::ActivityRecord codec_work;
  codec_work.flops = cells * 60.0;
  codec_work.active_cores = 1;
  codec_work.dram_bytes = util::Bytes{static_cast<std::uint64_t>(cells * 16)};

  std::vector<util::Field2D> truths;
  double ratio_sum = 0.0;
  for (int step = 0; step < config.iterations; ++step) {
    simulate_step(bed, solver);
    if (config.is_io_step(step)) {
      const auto blob = io::compress_field(solver.temperature(), codec);
      bed.run_compute(codec_work, stage::kSimulation);
      ratio_sum += io::compression_ratio(solver.temperature(), blob);
      out.bytes_written += util::Bytes{blob.size()};
      bed.run_io(stage::kWrite, config.io_stage_cores,
                 config.io_stage_utilization,
                 [&] { writer.write_step(step, blob); });
      truths.push_back(solver.temperature());
    }
  }
  out.base.steps = config.iterations;
  out.base.final_field = solver.temperature();
  bed.run_io(stage::kWrite, config.io_stage_cores,
             config.io_stage_utilization, [&] { bed.fs().drop_caches(); });

  io::TimestepReader reader(bed.fs(), config.dataset);
  std::size_t truth_idx = 0;
  for (int step = 0; step < config.iterations; ++step) {
    if (!config.is_io_step(step)) {
      continue;
    }
    std::vector<std::uint8_t> blob;
    bed.run_io(stage::kRead, config.io_stage_cores,
               config.io_stage_utilization,
               [&] { blob = reader.read_step(step); });
    const util::Field2D field = io::decompress_field(blob);
    bed.run_compute(codec_work, stage::kRead);
    const util::Field2D& truth = truths[truth_idx++];
    for (std::size_t k = 0; k < field.size(); ++k) {
      out.max_abs_error =
          std::max(out.max_abs_error,
                   std::abs(field.values()[k] - truth.values()[k]));
    }
    visualize_step(bed, vis_pipeline, field, out.base, options.keep_images,
                   frame);
  }
  if (truth_idx > 0) {
    out.mean_compression_ratio = ratio_sum / static_cast<double>(truth_idx);
  }
  return out;
}

PipelineOutput run_in_situ(Testbed& bed, const CaseStudyConfig& config,
                           const PipelineOptions& options) {
  PipelineOutput out;
  out.pipeline_name = "In-situ";
  util::ThreadPool pool(options.host_threads);
  heat::HeatSolver solver(config.problem, &pool);
  vis::VisPipeline vis_pipeline(config.vis, &pool);
  vis::Image frame;  // reused across visualize steps

  for (int step = 0; step < config.iterations; ++step) {
    simulate_step(bed, solver);
    if (config.is_io_step(step)) {
      visualize_step(bed, vis_pipeline, solver.temperature(), out,
                     options.keep_images, frame);
    }
  }
  out.steps = config.iterations;
  out.final_field = solver.temperature();
  return out;
}

}  // namespace greenvis::core

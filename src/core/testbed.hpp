// The simulated system under test: one node, its storage stack, and the
// bookkeeping that the power profiler later consumes.
//
// A Testbed owns the virtual clock, the block device, the filesystem, the
// cost model, the CPU load timeline, and the phase timeline. Pipelines
// execute against it through two primitives:
//
//   * run_compute(activity, phase) — a modeled compute burst: the cost model
//     converts the activity record into a virtual duration, the load
//     timeline gets a segment, the phase timeline gets an interval.
//   * run_io(phase, cores, util, body) — an I/O region: `body` drives the
//     filesystem (which advances the clock itself); the elapsed span is
//     recorded as a phase with a light CPU load.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/machine/cost_model.hpp"
#include "src/machine/load.hpp"
#include "src/machine/spec.hpp"
#include "src/power/calibration.hpp"
#include "src/power/model.hpp"
#include "src/power/profiler.hpp"
#include "src/storage/filesystem.hpp"
#include "src/trace/clock.hpp"
#include "src/trace/timeline.hpp"

namespace greenvis::core {

/// Which storage model backs the testbed's filesystem. The paper's node has
/// the 7200 rpm HDD; the SSD/NVRAM substitutions are its future-work
/// "flash-based devices" direction, and the campaign engine sweeps them as
/// a first-class axis. NVMe (multi-queue flash) and RAID0 (four striped
/// copies of the testbed HDD) ride the async block-device layer.
enum class StorageDeviceKind { kHdd, kSsd, kNvram, kNvme, kRaid0 };

[[nodiscard]] const char* storage_device_name(StorageDeviceKind kind);
/// Inverse of storage_device_name; nullopt for unknown names.
[[nodiscard]] std::optional<StorageDeviceKind> parse_storage_device(
    std::string_view name);

struct TestbedConfig {
  machine::NodeSpec node{machine::sandy_bridge_testbed()};
  machine::CostModelParams cost{};
  storage::FsParams fs{.allocation = storage::AllocationPolicy::kAged};
  power::PowerCalibration calibration{};
  power::ProfilerConfig profiler{};
  /// DVFS state for compute stages (nominal by default).
  double frequency_ghz{2.4};
  /// DVFS state for I/O stages. The disk does not care about the CPU clock,
  /// so a runtime can park the cores in a low P-state while the pipeline is
  /// disk-bound — the selective frequency scaling Sec. V-C motivates.
  /// 0 means "same as frequency_ghz".
  double io_frequency_ghz{0.0};
  /// Storage device under the filesystem (HDD by default — Table I's
  /// drive; every seed figure is unchanged unless this is varied).
  StorageDeviceKind device{StorageDeviceKind::kHdd};
  /// RAPL package power limit (both sockets together). When > 0, compute
  /// stages are throttled to the fastest P-state whose package power fits
  /// under the cap — the enforcement mechanism RAPL's power-limiting half
  /// provides (Sec. II-C; the paper only uses the monitoring half). Peak
  /// power is "an important metric for power-capped systems" (Sec. V-B).
  util::Watts package_cap{0.0};

  [[nodiscard]] double effective_io_ghz() const {
    return io_frequency_ghz > 0.0 ? io_frequency_ghz : frequency_ghz;
  }
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config = {});

  [[nodiscard]] trace::VirtualClock& clock() { return clock_; }
  [[nodiscard]] storage::Filesystem& fs() { return *fs_; }
  [[nodiscard]] storage::BlockDevice& device() { return *device_; }
  [[nodiscard]] const machine::CostModel& cost_model() const { return cost_; }
  [[nodiscard]] machine::LoadTimeline& loads() { return loads_; }
  [[nodiscard]] trace::Timeline& phases() { return phases_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  /// Modeled compute burst (see file comment). Under a package cap the
  /// governor picks the fastest admissible P-state for this activity.
  void run_compute(const machine::ActivityRecord& activity,
                   const std::string& phase);

  /// Modeled compute burst placed at an explicit virtual start time, for
  /// tracks that run ahead of (or beside) the shared clock — the async
  /// staging producer keeps its own compute cursor while the writer owns
  /// the clock. Records load + phase at [start, start+dur) WITHOUT
  /// advancing the clock; returns the interval end. Successive calls must
  /// pass nondecreasing starts (one track is serial).
  [[nodiscard]] util::Seconds run_compute_at(
      util::Seconds start, const machine::ActivityRecord& activity,
      const std::string& phase);

  /// I/O region placed at an explicit virtual start: positions the shared
  /// clock at max(start, now), runs `body` (which advances the clock), and
  /// records the span. When `loads`/`phases` sinks are given the interval
  /// goes there instead of the testbed's own timelines — a concurrently
  /// recording track (the staging writer thread) stays off the main
  /// timelines until the caller merges at a barrier. Returns completion.
  util::Seconds run_io_at(util::Seconds start, const std::string& phase,
                          double cores, double utilization,
                          const std::function<void()>& body,
                          machine::LoadTimeline* loads = nullptr,
                          trace::Timeline* phases = nullptr);

  /// Record a backpressure stall [begin, end): the producer blocked waiting
  /// for a staging slot, busy-polling like an I/O region (light load at the
  /// I/O clock). No clock movement.
  void record_stall(const std::string& phase, util::Seconds begin,
                    util::Seconds end, double cores, double utilization);

  /// The frequency the RAPL governor grants `activity` (nominal when no cap
  /// is set or the cap admits full speed).
  [[nodiscard]] double governed_frequency(
      const machine::ActivityRecord& activity) const;

  /// I/O region: run `body`, record the span as `phase` with a light CPU
  /// load (`cores` x `utilization`).
  void run_io(const std::string& phase, double cores, double utilization,
              const std::function<void()>& body);

  /// Advance the clock without any activity (system idles).
  void idle(util::Seconds duration);

  /// Profile power over [0, clock.now()), 1 Hz.
  [[nodiscard]] power::PowerTrace profile() const;

  /// The power model bound to this testbed's calibration.
  [[nodiscard]] power::PowerModel power_model() const;

 private:
  TestbedConfig config_;
  trace::VirtualClock clock_;
  std::unique_ptr<storage::BlockDevice> device_;
  std::unique_ptr<storage::Filesystem> fs_;
  machine::CostModel cost_;
  machine::LoadTimeline loads_;
  trace::Timeline phases_;
};

}  // namespace greenvis::core

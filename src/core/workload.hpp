// The three application configurations of Sec. IV-C.
//
// Fifty iterations of the proxy heat-transfer simulation on a 128x128
// (128 KB) grid; I/O + visualization every iteration (case study 1), every
// alternate iteration (case 2), every eighth iteration (case 3). A sync +
// drop_caches separates the pipeline phases.
#pragma once

#include <string>

#include "src/codec/field_codec.hpp"
#include "src/heat/solver.hpp"
#include "src/io/dataset.hpp"
#include "src/vis/pipeline.hpp"

namespace greenvis::core {

struct CaseStudyConfig {
  std::string name{"Case Study 1"};
  int iterations{50};
  /// Visualize (and, in the post-processing pipeline, write/read) every
  /// `io_period`-th iteration, starting with iteration 0.
  int io_period{1};
  heat::HeatProblem problem{};
  vis::VisConfig vis{};
  io::DatasetConfig dataset{};
  /// CPU footprint of the sync-I/O loops: application + block layer +
  /// journal thread (calibrated to Table II's stage powers).
  double io_stage_cores{3.0};
  double io_stage_utilization{0.5};
  /// Snapshot codec for the post-processing write/read path. The default
  /// (Kind::kRaw) emits the legacy serialization byte-for-byte, so every
  /// seed figure is unchanged unless a codec is explicitly selected.
  codec::CodecConfig snapshot_codec{};

  [[nodiscard]] bool is_io_step(int step) const {
    return step % io_period == 0;
  }
  [[nodiscard]] int io_steps() const {
    return (iterations + io_period - 1) / io_period;
  }
};

/// Case study n in {1, 2, 3} (io_period 1, 2, 8), with the default proxy
/// problem: hot-spot sources on a cold plate, Dirichlet boundaries.
[[nodiscard]] CaseStudyConfig case_study(int n);

}  // namespace greenvis::core

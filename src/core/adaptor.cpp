#include "src/core/adaptor.hpp"

#include "src/core/pipeline.hpp"
#include "src/util/error.hpp"
#include "src/vis/filters.hpp"

namespace greenvis::core {

PeriodicTrigger::PeriodicTrigger(int period) : period_(period) {
  GREENVIS_REQUIRE(period >= 1);
}

bool PeriodicTrigger::fires(int step, const util::Field2D& field) {
  (void)field;
  return step % period_ == 0;
}

std::string PeriodicTrigger::describe() const {
  return "every " + std::to_string(period_) + " steps";
}

ThresholdTrigger::ThresholdTrigger(double threshold, double min_fraction)
    : threshold_(threshold), min_fraction_(min_fraction) {
  GREENVIS_REQUIRE(min_fraction >= 0.0 && min_fraction <= 1.0);
}

bool ThresholdTrigger::fires(int step, const util::Field2D& field) {
  (void)step;
  return vis::fraction_above(field, threshold_) >= min_fraction_;
}

std::string ThresholdTrigger::describe() const {
  return ">=" + std::to_string(min_fraction_ * 100.0) + "% of cells above " +
         std::to_string(threshold_);
}

ChangeTrigger::ChangeTrigger(double min_rms) : min_rms_(min_rms) {
  GREENVIS_REQUIRE(min_rms >= 0.0);
}

bool ChangeTrigger::fires(int step, const util::Field2D& field) {
  (void)step;
  if (!last_rendered_.has_value()) {
    last_rendered_ = field;
    return true;
  }
  if (vis::rms_difference(field, *last_rendered_) >= min_rms_) {
    last_rendered_ = field;
    return true;
  }
  return false;
}

std::string ChangeTrigger::describe() const {
  return "RMS drift >= " + std::to_string(min_rms_);
}

InSituAdaptor::InSituAdaptor(Testbed& bed, const vis::VisConfig& vis_config,
                             util::ThreadPool* pool)
    : bed_(&bed), pipeline_(vis_config, pool) {}

void InSituAdaptor::add_trigger(std::unique_ptr<Trigger> trigger) {
  GREENVIS_REQUIRE(trigger != nullptr);
  triggers_.push_back(std::move(trigger));
}

void InSituAdaptor::enable_snapshot_export(io::TimestepWriter& writer,
                                           const codec::CodecConfig& config,
                                           double io_cores,
                                           double io_utilization,
                                           std::size_t stage_buffers) {
  snapshot_writer_ = &writer;
  snapshot_arena_ = std::make_unique<util::ScratchArena>();
  snapshot_codec_ =
      std::make_unique<codec::FieldCodec>(config, snapshot_arena_.get());
  snapshot_io_cores_ = io_cores;
  snapshot_io_utilization_ = io_utilization;
  staged_.clear();
  staged_.resize(stage_buffers);
  staged_count_ = 0;
}

void InSituAdaptor::flush_staged() {
  for (std::size_t i = 0; i < staged_count_; ++i) {
    StagedExport& e = staged_[i];
    bed_->run_io(stage::kWrite, snapshot_io_cores_, snapshot_io_utilization_,
                 [&] { snapshot_writer_->write_step(e.step, e.payload); });
  }
  staged_count_ = 0;
}

void InSituAdaptor::drain() { flush_staged(); }

std::optional<std::uint64_t> InSituAdaptor::process(
    int step, const util::Field2D& field) {
  GREENVIS_REQUIRE_MSG(!triggers_.empty(), "adaptor has no triggers");
  ++offered_;

  // Trigger evaluation itself costs one pass over the field per
  // data-dependent trigger — a cheap in-situ analysis.
  machine::ActivityRecord probe;
  probe.flops = static_cast<double>(field.size()) *
                static_cast<double>(triggers_.size()) * 2.0;
  probe.active_cores = 1;
  bed_->run_compute(probe, stage::kVisualization);

  bool fire = false;
  for (const auto& trigger : triggers_) {
    if (trigger->fires(step, field)) {
      fire = true;
      // Keep evaluating: stateful triggers must observe every step they
      // would have fired on.
    }
  }
  if (!fire) {
    return std::nullopt;
  }
  const vis::Image image = pipeline_.render(field);
  bed_->run_compute(pipeline_.render_activity(), stage::kVisualization);
  ++rendered_;

  if (snapshot_writer_ != nullptr) {
    snapshot_arena_->reset();
    snapshot_codec_->encode(field, snapshot_buf_);
    if (snapshot_codec_->active()) {
      machine::ActivityRecord codec_work;
      codec_work.flops = static_cast<double>(field.size()) * 12.0;
      codec_work.active_cores = 1;
      codec_work.dram_bytes = util::Bytes{field.size() * 16};
      bed_->run_compute(codec_work, stage::kWrite);
    }
    snapshot_bytes_ += util::Bytes{snapshot_buf_.size()};
    if (staged_.empty()) {
      // Write-through: one Write interval per rendered step.
      bed_->run_io(stage::kWrite, snapshot_io_cores_,
                   snapshot_io_utilization_,
                   [&] { snapshot_writer_->write_step(step, snapshot_buf_); });
    } else {
      // Burst buffer: defer; flush back-to-back once the ring is full.
      if (staged_count_ == staged_.size()) {
        flush_staged();
      }
      StagedExport& e = staged_[staged_count_++];
      e.step = step;
      e.payload.assign(snapshot_buf_.begin(), snapshot_buf_.end());
    }
  }
  return image.digest();
}

}  // namespace greenvis::core

#include "src/replay/engine.hpp"

#include <algorithm>

#include "src/core/pipeline.hpp"
#include "src/util/error.hpp"

namespace greenvis::replay {

namespace {

std::string step_file(const TraceRecord& rec, int step) {
  return "replay_" + rec.label + "_t" + std::to_string(step) + ".bin";
}

}  // namespace

ReplayResult ReplayEngine::run(const AppTrace& trace) const {
  GREENVIS_REQUIRE(trace.repeat >= 1);
  core::Testbed bed(config_);
  ReplayResult result;
  result.app_name = trace.name;

  const std::uint64_t io_chunk = util::kibibytes(64).value();

  auto execute = [&](const TraceRecord& rec, int step) {
    switch (rec.kind) {
      case RecordKind::kCompute: {
        machine::ActivityRecord a;
        a.flops = rec.flops;
        a.active_cores = rec.cores;
        a.core_utilization = rec.utilization;
        a.dram_bytes = util::Bytes{rec.dram_bytes};
        bed.run_compute(a, rec.phase);
        break;
      }
      case RecordKind::kWrite: {
        bed.run_io(core::stage::kWrite, 3.0, 0.5, [&] {
          auto& fs = bed.fs();
          const auto fd = fs.create(step_file(rec, step));
          for (std::uint64_t off = 0; off < rec.bytes; off += io_chunk) {
            fs.write_synthetic(
                fd, util::Bytes{std::min(io_chunk, rec.bytes - off)},
                rec.mode);
          }
          if (rec.mode == storage::WriteMode::kBuffered) {
            fs.fsync(fd);
          }
          fs.close(fd);
        });
        result.bytes_written += util::Bytes{rec.bytes};
        break;
      }
      case RecordKind::kRead: {
        bed.run_io(core::stage::kRead, 3.0, 0.5, [&] {
          auto& fs = bed.fs();
          const std::string name = step_file(rec, step);
          GREENVIS_REQUIRE_MSG(fs.exists(name),
                               "replay read before write: " + name);
          const auto fd = fs.open(name);
          const std::uint64_t size = fs.file_size(name).value();
          for (std::uint64_t off = 0; off < size; off += io_chunk) {
            fs.pread_timed(fd, off, std::min(io_chunk, size - off),
                           storage::ReadMode::kDirect);
          }
          fs.close(fd);
          result.bytes_read += util::Bytes{size};
        });
        break;
      }
    }
  };

  for (int step = 0; step < trace.repeat; ++step) {
    for (const auto& rec : trace.simulate) {
      if (rec.active_on(step)) {
        execute(rec, step);
      }
    }
  }
  if (!trace.postprocess.empty()) {
    bed.run_io(core::stage::kWrite, 3.0, 0.5,
               [&] { bed.fs().drop_caches(); });
    for (int step = 0; step < trace.repeat; ++step) {
      for (const auto& rec : trace.postprocess) {
        if (rec.active_on(step)) {
          execute(rec, step);
        }
      }
    }
  }

  result.duration = bed.clock().now();
  result.timeline = bed.phases();
  result.power_trace = bed.profile();
  result.energy = result.power_trace.energy(&power::PowerSample::system);
  result.average_power =
      result.power_trace.average(&power::PowerSample::system);
  result.peak_power = result.power_trace.peak(&power::PowerSample::system);
  return result;
}

}  // namespace greenvis::replay

// Trace replay engine: drives an application trace through the instrumented
// testbed, producing the same metrics as the proxy-app experiments.
#pragma once

#include "src/core/testbed.hpp"
#include "src/power/trace.hpp"
#include "src/replay/trace_format.hpp"
#include "src/trace/timeline.hpp"

namespace greenvis::replay {

struct ReplayResult {
  std::string app_name;
  util::Seconds duration{0.0};
  util::Joules energy{0.0};
  util::Watts average_power{0.0};
  util::Watts peak_power{0.0};
  trace::Timeline timeline;
  power::PowerTrace power_trace{util::Seconds{1.0}};
  util::Bytes bytes_written{0};
  util::Bytes bytes_read{0};
};

class ReplayEngine {
 public:
  explicit ReplayEngine(const core::TestbedConfig& config = {})
      : config_(config) {}

  /// Replay on a fresh testbed: the simulate section runs `repeat` times,
  /// then (after a sync + drop_caches, as in Sec. IV-C) the postprocess
  /// section runs over the same step indices.
  [[nodiscard]] ReplayResult run(const AppTrace& trace) const;

 private:
  core::TestbedConfig config_;
};

}  // namespace greenvis::replay

#include "src/replay/trace_format.hpp"

#include <map>
#include <sstream>

namespace greenvis::replay {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') {
      break;
    }
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '#') {
      ++j;
    }
    tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

double parse_double(std::size_t line_no, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) {
      throw std::invalid_argument(text);
    }
    return v;
  } catch (const std::exception&) {
    throw TraceParseError(line_no, "bad number '" + text + "'");
  }
}

/// key=value arguments after the label.
std::map<std::string, std::string> parse_args(
    std::size_t line_no, const std::vector<std::string>& tokens,
    std::size_t first) {
  std::map<std::string, std::string> args;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tokens[i].size()) {
      throw TraceParseError(line_no,
                            "expected key=value, got '" + tokens[i] + "'");
    }
    args[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return args;
}

void reject_unknown_keys(std::size_t line_no,
                         const std::map<std::string, std::string>& args,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : args) {
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw TraceParseError(line_no, "unknown argument '" + key + "'");
    }
  }
}

}  // namespace

AppTrace parse_trace(std::string_view text) {
  AppTrace trace;
  std::vector<TraceRecord>* section = &trace.simulate;
  bool saw_name = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& head = tokens[0];

    if (head == "trace") {
      if (tokens.size() != 2) {
        throw TraceParseError(line_no, "usage: trace <name>");
      }
      trace.name = tokens[1];
      saw_name = true;
    } else if (head == "repeat") {
      if (tokens.size() != 2) {
        throw TraceParseError(line_no, "usage: repeat <iterations>");
      }
      trace.repeat = static_cast<int>(parse_double(line_no, tokens[1]));
      if (trace.repeat < 1) {
        throw TraceParseError(line_no, "repeat must be >= 1");
      }
    } else if (head == "section") {
      if (tokens.size() != 2 ||
          (tokens[1] != "simulate" && tokens[1] != "postprocess")) {
        throw TraceParseError(line_no,
                              "usage: section simulate|postprocess");
      }
      section = tokens[1] == "simulate" ? &trace.simulate
                                        : &trace.postprocess;
    } else if (head == "compute" || head == "write" || head == "read") {
      if (tokens.size() < 2) {
        throw TraceParseError(line_no, head + " needs a label");
      }
      TraceRecord rec;
      rec.label = tokens[1];
      const auto args = parse_args(line_no, tokens, 2);
      auto get = [&](const char* key) -> const std::string* {
        auto it = args.find(key);
        return it == args.end() ? nullptr : &it->second;
      };
      if (const auto* v = get("every")) {
        rec.every = static_cast<int>(parse_double(line_no, *v));
        if (rec.every < 1) {
          throw TraceParseError(line_no, "every must be >= 1");
        }
      }
      if (head == "compute") {
        rec.kind = RecordKind::kCompute;
        reject_unknown_keys(line_no, args,
                            {"phase", "flops", "cores", "util", "dram",
                             "every"});
        const auto* flops = get("flops");
        if (flops == nullptr) {
          throw TraceParseError(line_no, "compute needs flops=");
        }
        rec.flops = parse_double(line_no, *flops);
        if (const auto* v = get("phase")) {
          rec.phase = *v;
        }
        if (const auto* v = get("cores")) {
          rec.cores = static_cast<std::size_t>(parse_double(line_no, *v));
        }
        if (const auto* v = get("util")) {
          rec.utilization = parse_double(line_no, *v);
        }
        if (const auto* v = get("dram")) {
          rec.dram_bytes =
              static_cast<std::uint64_t>(parse_double(line_no, *v));
        }
      } else if (head == "write") {
        rec.kind = RecordKind::kWrite;
        reject_unknown_keys(line_no, args, {"bytes", "every", "mode"});
        const auto* bytes = get("bytes");
        if (bytes == nullptr) {
          throw TraceParseError(line_no, "write needs bytes=");
        }
        rec.bytes = static_cast<std::uint64_t>(parse_double(line_no, *bytes));
        if (rec.bytes == 0) {
          throw TraceParseError(line_no, "write bytes must be > 0");
        }
        if (const auto* v = get("mode")) {
          if (*v == "sync") {
            rec.mode = storage::WriteMode::kSync;
          } else if (*v == "buffered") {
            rec.mode = storage::WriteMode::kBuffered;
          } else {
            throw TraceParseError(line_no, "mode must be sync|buffered");
          }
        }
      } else {
        rec.kind = RecordKind::kRead;
        reject_unknown_keys(line_no, args, {"every"});
      }
      section->push_back(std::move(rec));
    } else {
      throw TraceParseError(line_no, "unknown directive '" + head + "'");
    }
  }

  if (!saw_name) {
    throw TraceParseError(1, "missing 'trace <name>' header");
  }
  // Every read must reference a write in the simulate section.
  for (const auto& rec : trace.postprocess) {
    if (rec.kind != RecordKind::kRead) {
      continue;
    }
    bool found = false;
    for (const auto& w : trace.simulate) {
      if (w.kind == RecordKind::kWrite && w.label == rec.label) {
        found = true;
        break;
      }
    }
    GREENVIS_REQUIRE_MSG(found, "read '" + rec.label +
                                    "' has no matching write record");
  }
  return trace;
}

std::string format_trace(const AppTrace& trace) {
  std::ostringstream os;
  os << "trace " << trace.name << "\n";
  os << "repeat " << trace.repeat << "\n";
  auto emit = [&](const std::vector<TraceRecord>& records) {
    for (const auto& r : records) {
      switch (r.kind) {
        case RecordKind::kCompute:
          os << "compute " << r.label << " phase=" << r.phase
             << " flops=" << r.flops << " cores=" << r.cores
             << " util=" << r.utilization << " dram=" << r.dram_bytes
             << " every=" << r.every << "\n";
          break;
        case RecordKind::kWrite:
          os << "write " << r.label << " bytes=" << r.bytes
             << " every=" << r.every << " mode="
             << (r.mode == storage::WriteMode::kSync ? "sync" : "buffered")
             << "\n";
          break;
        case RecordKind::kRead:
          os << "read " << r.label << " every=" << r.every << "\n";
          break;
      }
    }
  };
  os << "section simulate\n";
  emit(trace.simulate);
  if (!trace.postprocess.empty()) {
    os << "section postprocess\n";
    emit(trace.postprocess);
  }
  return os.str();
}

std::string mpas_like_trace() {
  // MPAS-Ocean-like: dominant dynamics solve, lighter thermodynamics, a
  // 16 MiB history file every other step plus a 4 MiB analysis record each
  // step; post-hoc the history is read back and rendered.
  return R"(trace MPAS-Ocean-like
repeat 20
section simulate
compute dynamics phase=Simulation flops=2.4e10 cores=16 util=1.0 dram=6e9
compute thermodynamics phase=Simulation flops=8e9 cores=16 util=0.9 dram=2e9
write history bytes=16777216 every=2 mode=buffered
write analysis bytes=4194304 every=1 mode=sync
section postprocess
read history every=2
compute render phase=Visualization flops=9.4e8 cores=16 util=0.35 every=2
)";
}

std::string xrage_like_trace() {
  // xRAGE-like: AMR hydro step plus remesh, frequent sync restart dumps
  // (crash protection), occasional graphics dumps read back post-hoc.
  return R"(trace xRAGE-like
repeat 24
section simulate
compute hydro phase=Simulation flops=1.8e10 cores=16 util=1.0 dram=8e9
compute remesh phase=Simulation flops=4e9 cores=16 util=0.7 dram=3e9
write restart bytes=33554432 every=4 mode=sync
write graphics bytes=2097152 every=2 mode=buffered
section postprocess
read graphics every=2
compute render phase=Visualization flops=9.4e8 cores=16 util=0.35 every=2
)";
}

AppTrace to_in_situ(const AppTrace& trace, double render_flops) {
  AppTrace out;
  out.name = trace.name + " (in-situ)";
  out.repeat = trace.repeat;
  for (const auto& rec : trace.simulate) {
    if (rec.kind == RecordKind::kWrite) {
      TraceRecord render;
      render.kind = RecordKind::kCompute;
      render.label = rec.label + "_insitu_render";
      render.phase = "Visualization";
      render.flops = render_flops;
      render.cores = 16;
      render.utilization = 0.35;
      render.every = rec.every;
      out.simulate.push_back(std::move(render));
    } else {
      out.simulate.push_back(rec);
    }
  }
  return out;
}

}  // namespace greenvis::replay

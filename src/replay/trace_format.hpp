// Application trace format.
//
// The paper's future work wants "evaluation of real-world applications such
// as MPAS [32] and xRAGE [33]". Those codes (and their input decks) are not
// available here, so the replay module substitutes *workload traces*: a
// small text format describing an application's per-step phase structure —
// compute bursts, durable writes, post-hoc reads — which the replay engine
// drives through the same instrumented testbed as the proxy app. Two
// built-in traces model the public characteristics of MPAS-Ocean (heavy
// dynamics, periodic large history writes) and xRAGE (AMR hydro, frequent
// restart dumps).
//
// Grammar (line oriented, '#' comments):
//
//   trace <name>
//   repeat <iterations>
//   section simulate|postprocess
//   compute <label> phase=<Simulation|Visualization> flops=<f>
//           [cores=<n>] [util=<f>] [dram=<bytes>] [every=<k>]
//   write   <label> bytes=<n> [every=<k>] [mode=sync|buffered]
//   read    <label> [every=<k>]
//
// `every=k` limits a record to steps where step % k == 0 (default 1).
// `read <label>` re-reads what `write <label>` persisted for that step.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/storage/filesystem.hpp"
#include "src/util/error.hpp"

namespace greenvis::replay {

enum class RecordKind { kCompute, kWrite, kRead };

struct TraceRecord {
  RecordKind kind{RecordKind::kCompute};
  std::string label;
  /// Phase name charged in the timeline ("Simulation", "Visualization",
  /// "Analysis", ...). Compute records only.
  std::string phase{"Simulation"};
  double flops{0.0};
  std::size_t cores{16};
  double utilization{1.0};
  std::uint64_t dram_bytes{0};
  std::uint64_t bytes{0};
  int every{1};
  storage::WriteMode mode{storage::WriteMode::kSync};

  [[nodiscard]] bool active_on(int step) const { return step % every == 0; }
};

struct AppTrace {
  std::string name;
  int repeat{1};
  std::vector<TraceRecord> simulate;
  std::vector<TraceRecord> postprocess;
};

/// Parse error with 1-based line number context.
class TraceParseError : public util::ContractViolation {
 public:
  TraceParseError(std::size_t line, const std::string& message)
      : util::ContractViolation("trace line " + std::to_string(line) + ": " +
                                message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

[[nodiscard]] AppTrace parse_trace(std::string_view text);

/// Serialize back to the text format (round-trip tested).
[[nodiscard]] std::string format_trace(const AppTrace& trace);

/// Built-in application models. Each comes in a post-processing flavour
/// (writes + post-hoc read/render) — pass the result through
/// `to_in_situ()` for the in-situ counterpart.
[[nodiscard]] std::string mpas_like_trace();
[[nodiscard]] std::string xrage_like_trace();

/// Transform a post-processing trace into its in-situ equivalent: every
/// write record becomes an in-line render of the same step (charged at the
/// given flops), and the post-processing section disappears.
[[nodiscard]] AppTrace to_in_situ(const AppTrace& trace,
                                  double render_flops = 512.0 * 512.0 * 3600.0);

}  // namespace greenvis::replay

#include "src/qa/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/analysis/metrics.hpp"
#include "src/core/batch_runner.hpp"
#include "src/core/experiment.hpp"
#include "src/core/pipeline.hpp"
#include "src/obs/json.hpp"

namespace greenvis::qa {

namespace {

Invariant band(std::string name, std::string description, double value,
               double lo, double hi) {
  Invariant inv;
  inv.name = std::move(name);
  inv.description = std::move(description);
  inv.value = value;
  inv.lo = lo;
  inv.hi = hi;
  inv.pass = value >= lo && value <= hi;
  return inv;
}

void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os << buf;
}

/// Mean power attributed to a group of phases, weighted by time in phase.
double grouped_phase_power(
    const std::map<std::string, analysis::PhaseStats>& stats,
    std::initializer_list<const char*> categories) {
  double energy = 0.0;
  double time = 0.0;
  for (const char* category : categories) {
    const auto it = stats.find(category);
    if (it == stats.end()) {
      continue;
    }
    energy += it->second.energy.value();
    time += it->second.time.value();
  }
  return time > 0.0 ? energy / time : 0.0;
}

}  // namespace

bool ConformanceReport::all_pass() const { return failures() == 0; }

std::size_t ConformanceReport::failures() const {
  std::size_t n = 0;
  for (const auto& inv : invariants) {
    n += inv.pass ? 0u : 1u;
  }
  for (const auto& oracle : oracles) {
    n += oracle.ok ? 0u : 1u;
  }
  return n;
}

void ConformanceReport::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"greenvis.qa.conformance/1\",\n";
  os << "  \"verdict\": \"" << (all_pass() ? "pass" : "fail") << "\",\n";
  os << "  \"failures\": " << failures() << ",\n";
  os << "  \"invariants\": [\n";
  for (std::size_t i = 0; i < invariants.size(); ++i) {
    const Invariant& inv = invariants[i];
    os << "    {\"name\": ";
    obs::detail::write_json_string(os, inv.name);
    os << ", \"description\": ";
    obs::detail::write_json_string(os, inv.description);
    os << ", \"value\": ";
    write_json_number(os, inv.value);
    os << ", \"lo\": ";
    write_json_number(os, inv.lo);
    os << ", \"hi\": ";
    write_json_number(os, inv.hi);
    os << ", \"pass\": " << (inv.pass ? "true" : "false") << "}"
       << (i + 1 < invariants.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"oracles\": [\n";
  for (std::size_t i = 0; i < oracles.size(); ++i) {
    const OracleResult& oracle = oracles[i];
    os << "    {\"name\": ";
    obs::detail::write_json_string(os, oracle.name);
    os << ", \"ok\": " << (oracle.ok ? "true" : "false") << ", \"detail\": ";
    obs::detail::write_json_string(os, oracle.detail);
    os << "}" << (i + 1 < oracles.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int detect_power_phases(const power::PowerTrace& trace,
                        const trace::Timeline& timeline, double min_delta_w) {
  util::Seconds split{0.0};
  for (const auto& interval : timeline.intervals()) {
    if (interval.category == core::stage::kWrite && interval.end > split) {
      split = interval.end;
    }
  }
  if (split.value() <= 0.0 || trace.empty()) {
    return 1;
  }
  const power::PowerTrace before = trace.slice(util::Seconds{0.0}, split);
  const power::PowerTrace after = trace.slice(split, trace.duration());
  if (before.empty() || after.empty()) {
    return 1;
  }
  const double delta =
      std::abs(before.average(&power::PowerSample::system).value() -
               after.average(&power::PowerSample::system).value());
  return delta > min_delta_w ? 2 : 1;
}

ConformanceReport run_conformance(const ConformanceOptions& options) {
  const core::Experiment experiment;
  const core::BatchRunner runner;

  // All six paper-scale pipeline runs, concurrently where the host allows.
  // Each run owns a fresh testbed, so the batch parallelism cannot perturb
  // the virtual-clock results.
  std::vector<core::BatchJob> jobs;
  for (int n = 1; n <= 3; ++n) {
    core::BatchJob job;
    job.config = core::case_study(n);
    job.config.snapshot_codec = options.snapshot_codec;
    job.options.host_threads = runner.host_threads_per_job(6);
    job.kind = core::PipelineKind::kPostProcessing;
    jobs.push_back(job);
    job.kind = core::PipelineKind::kInSitu;
    jobs.push_back(job);
  }
  const std::vector<core::PipelineMetrics> metrics =
      runner.run(experiment, jobs);

  // Table II stage runs (the I/O-stage dynamic power feeds the breakdown).
  core::CaseStudyConfig stage_config = core::case_study(1);
  stage_config.snapshot_codec = options.snapshot_codec;
  const core::StageRun wr = experiment.run_write_stage(stage_config, 15);
  const core::StageRun rd = experiment.run_read_stage(stage_config, 15);
  const util::Watts io_dynamic{
      (wr.average_dynamic_power.value() + rd.average_dynamic_power.value()) /
      2.0};

  ConformanceReport report;
  auto& inv = report.invariants;

  // ---- Fig. 10: in-situ energy savings per case, ordered 1 > 2 > 3 ----
  const double savings_lo[3] = {0.33, 0.20, 0.06};
  const double savings_hi[3] = {0.55, 0.45, 0.28};
  double savings[3] = {0.0, 0.0, 0.0};
  for (int n = 0; n < 3; ++n) {
    const auto& post = metrics[static_cast<std::size_t>(2 * n)];
    const auto& insitu = metrics[static_cast<std::size_t>(2 * n + 1)];
    const analysis::PipelineComparison cmp = analysis::compare(post, insitu);
    savings[n] = cmp.energy_savings();
    inv.push_back(band(
        "fig10.case" + std::to_string(n + 1) + "_savings",
        "in-situ energy savings for case study " + std::to_string(n + 1) +
            " (paper: " +
            (n == 0 ? "43%" : n == 1 ? "30%" : "18%") + ")",
        savings[n], savings_lo[n], savings_hi[n]));
  }
  inv.push_back(band(
      "fig10.savings_ordering",
      "savings strictly ordered case 1 > 2 > 3 (min adjacent gap)",
      std::min(savings[0] - savings[1], savings[1] - savings[2]), 0.005, 1.0));

  const auto& post1 = metrics[0];
  const auto& insitu1 = metrics[1];

  // ---- Fig. 5: two power phases post-processing, one in-situ ----
  inv.push_back(band(
      "fig5.post_phase_count",
      "post-processing trace splits into two power phases at the sync "
      "boundary",
      detect_power_phases(post1.trace, post1.timeline), 2.0, 2.0));
  inv.push_back(band("fig5.insitu_phase_count",
                     "in-situ trace has a single power phase (no disk phase)",
                     detect_power_phases(insitu1.trace, insitu1.timeline), 1.0,
                     1.0));
  const auto stats = analysis::phase_power_stats(post1.trace, post1.timeline);
  const double phase1 = grouped_phase_power(
      stats, {core::stage::kSimulation, core::stage::kWrite});
  const double phase2 = grouped_phase_power(
      stats, {core::stage::kRead, core::stage::kVisualization});
  inv.push_back(band("fig5.phase1_power",
                     "simulation+write phase mean system power, W (paper: "
                     "~143 W)",
                     phase1, 118.0, 155.0));
  inv.push_back(band("fig5.phase2_power",
                     "read+visualization phase mean system power, W (paper: "
                     "~121 W)",
                     phase2, 98.0, 135.0));
  inv.push_back(band("fig5.phase_power_delta",
                     "drop between the two phases, W (paper: ~22 W)",
                     phase1 - phase2, 8.0, 35.0));

  // ---- Fig. 8: in-situ draws *more* average power ----
  inv.push_back(band(
      "fig8.case1_avg_power_increase",
      "in-situ average-power increase for case 1 (savings come from time, "
      "not power)",
      analysis::compare(post1, insitu1).avg_power_increase(), 0.005, 0.30));

  // ---- Fig. 9: peak power indistinguishable between pipelines ----
  double max_peak_delta = 0.0;
  for (int n = 0; n < 3; ++n) {
    const auto& post = metrics[static_cast<std::size_t>(2 * n)];
    const auto& insitu = metrics[static_cast<std::size_t>(2 * n + 1)];
    max_peak_delta =
        std::max(max_peak_delta,
                 std::abs(post.peak_power.value() - insitu.peak_power.value()));
  }
  inv.push_back(band("fig9.max_peak_delta",
                     "largest |peak post - peak in-situ| across cases, W",
                     max_peak_delta, 0.0, 3.0));

  // ---- Table II / Sec. V-C: the savings are overwhelmingly static ----
  inv.push_back(band("tab2.io_dynamic_power",
                     "I/O-stage average dynamic power, W (paper: ~10 W)",
                     io_dynamic.value(), 3.0, 15.0));
  const analysis::SavingsBreakdown breakdown =
      analysis::savings_breakdown(post1, insitu1, io_dynamic);
  inv.push_back(band("tab2.static_share",
                     "static (avoided-idle) share of case-1 savings (paper: "
                     "~91%)",
                     breakdown.static_fraction(), 0.85, 1.0));

  // ---- Energy attribution: conserved joules, static-dominated I/O ----
  double max_conservation_error = 0.0;
  for (const core::PipelineMetrics& m : metrics) {
    max_conservation_error =
        std::max(max_conservation_error, m.attribution.conservation_error);
  }
  inv.push_back(band(
      "energy.conservation",
      "largest per-rail attribution conservation error across the six "
      "paper-scale runs (relative to the PowerModel integral)",
      max_conservation_error, 0.0, 1e-9));
  const obs::StageEnergy* wr_stage =
      post1.attribution.stage(core::stage::kWrite);
  const obs::StageEnergy* rd_stage = post1.attribution.stage(core::stage::kRead);
  const double io_static =
      (wr_stage != nullptr ? wr_stage->static_rails.total().value() : 0.0) +
      (rd_stage != nullptr ? rd_stage->static_rails.total().value() : 0.0);
  const double io_total =
      (wr_stage != nullptr ? wr_stage->total().value() : 0.0) +
      (rd_stage != nullptr ? rd_stage->total().value() : 0.0);
  inv.push_back(band(
      "energy.case1_io_static_share",
      "static share of the energy attributed to case-1 Write+Read spans "
      "(Table II: I/O stages are dominated by the idle floor)",
      io_total > 0.0 ? io_static / io_total : 0.0, 0.85, 1.0));

  return report;
}

}  // namespace greenvis::qa

// Domain generators: greenvis-shaped values built from the gen.hpp
// combinators. Everything shrinks toward the smallest structurally valid
// instance (tiny grids, short request streams, few iterations).
#pragma once

#include <cmath>
#include <vector>

#include "src/core/workload.hpp"
#include "src/qa/gen.hpp"
#include "src/storage/request.hpp"
#include "src/util/field.hpp"

namespace greenvis::qa {

/// A 2-D field mixing a smooth trend with bounded noise — the shape every
/// codec in the tree is designed for. Edge lengths shrink toward
/// `min_edge`; amplitudes shrink toward zero.
[[nodiscard]] inline Gen<util::Field2D> smooth_field(std::size_t min_edge,
                                                     std::size_t max_edge,
                                                     double max_amplitude,
                                                     double max_noise) {
  return [=](Choices& c) {
    const auto nx = static_cast<std::size_t>(c.draw_range(min_edge, max_edge));
    const auto ny = static_cast<std::size_t>(c.draw_range(min_edge, max_edge));
    const double amplitude = c.draw_real(0.0, max_amplitude);
    const double noise = c.draw_real(0.0, max_noise);
    const double kx = c.draw_real(0.05, 0.5);
    const double ky = c.draw_real(0.05, 0.5);
    util::Field2D f(nx, ny);
    // One draw seeds the per-cell noise so the tape stays short: field
    // contents are still a pure function of the tape.
    util::Xoshiro256 noise_rng{c.draw_below(1ULL << 32)};
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        f.at(i, j) = amplitude * std::sin(kx * static_cast<double>(i)) *
                         std::cos(ky * static_cast<double>(j)) +
                     noise_rng.uniform(-noise, noise);
      }
    }
    return f;
  };
}

/// An arbitrary byte payload (codec/decoder fuzz input).
[[nodiscard]] inline Gen<std::vector<std::uint8_t>> byte_payload(
    std::size_t min_len, std::size_t max_len) {
  return fmap(vector_of(uint_in(0, 255), min_len, max_len),
              [](const std::vector<std::uint64_t>& words) {
                std::vector<std::uint8_t> bytes;
                bytes.reserve(words.size());
                for (const std::uint64_t w : words) {
                  bytes.push_back(static_cast<std::uint8_t>(w));
                }
                return bytes;
              });
}

/// One block-device request. Offsets land on `align` boundaries within
/// `max_offset`; lengths are multiples of `align` in [align, max_length].
[[nodiscard]] inline Gen<storage::IoRequest> io_request(
    std::uint64_t max_offset, std::uint32_t max_length,
    std::uint32_t align = 4096) {
  return [=](Choices& c) {
    storage::IoRequest r;
    r.kind = c.draw_bool() ? storage::IoKind::kWrite : storage::IoKind::kRead;
    r.offset = c.draw_below(max_offset / align + 1) * align;
    r.length = static_cast<std::uint32_t>(
        c.draw_range(1, max_length / align) * align);
    return r;
  };
}

/// A stream of requests (shrinks by dropping requests, then simplifying
/// survivors).
[[nodiscard]] inline Gen<std::vector<storage::IoRequest>> io_request_stream(
    std::size_t min_requests, std::size_t max_requests,
    std::uint64_t max_offset, std::uint32_t max_length) {
  return vector_of(io_request(max_offset, max_length), min_requests,
                   max_requests);
}

/// A scaled-down case-study configuration: paper phase structure, small
/// enough for differential pipeline runs inside a property sweep. Shrinks
/// toward 1 iteration at period 1 with a tiny grid and frame.
[[nodiscard]] inline Gen<core::CaseStudyConfig> small_case_config() {
  return [](Choices& c) {
    core::CaseStudyConfig config = core::case_study(1);
    config.iterations = static_cast<int>(c.draw_range(1, 8));
    config.io_period = static_cast<int>(c.draw_range(1, 4));
    const auto grid = static_cast<std::size_t>(c.draw_range(16, 48));
    config.problem.nx = grid;
    config.problem.ny = grid;
    config.problem.executed_sweeps = 8;
    const auto frame = static_cast<std::size_t>(c.draw_range(16, 64));
    config.vis.width = frame;
    config.vis.height = frame;
    config.name = "qa-small-case";
    return config;
  };
}

}  // namespace greenvis::qa

#include "src/qa/property.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace greenvis::qa {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

/// Strip trailing zeros: replay pads with zeros, so they are semantically
/// inert and only bloat reproducer files.
void canonicalize(Tape& tape) {
  while (!tape.empty() && tape.back() == 0) {
    tape.pop_back();
  }
}

}  // namespace

Config Config::from_env() {
  Config config;
  if (const char* seed = std::getenv("GREENVIS_QA_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 0);
  }
  if (const char* cases = std::getenv("GREENVIS_QA_CASES")) {
    const unsigned long long n = std::strtoull(cases, nullptr, 0);
    if (n > 0) {
      config.cases = static_cast<std::size_t>(n);
    }
  }
  if (const char* dir = std::getenv("GREENVIS_QA_REPRO_DIR")) {
    config.repro_dir = dir;  // empty string disables reproducer output
  }
  if (const char* replay = std::getenv("GREENVIS_QA_REPLAY")) {
    config.replay_file = replay;
  }
  return config;
}

std::string CheckResult::summary() const {
  std::ostringstream os;
  os << "property '" << property << "': ";
  if (passed) {
    os << "passed " << cases_run << " case(s)";
    return os.str();
  }
  os << "FAILED after " << cases_run << " case(s), " << shrink_steps
     << " shrink step(s)\n"
     << failure;
  if (!repro_file.empty()) {
    os << "\nreproducer: " << repro_file
       << " (replay with GREENVIS_QA_REPLAY=<file> or greenvis verify "
          "--qa-repro=<file>)";
  }
  return os.str();
}

std::string repro_to_text(const Repro& repro) {
  std::ostringstream os;
  os << "greenvis-qa-repro v1\n"
     << "property " << repro.property << '\n'
     << "seed " << repro.seed << '\n'
     << "words " << repro.tape.size() << '\n';
  for (std::size_t i = 0; i < repro.tape.size(); ++i) {
    os << repro.tape[i] << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  if (repro.tape.size() % 8 != 0) {
    os << '\n';
  }
  return os.str();
}

Repro repro_from_text(const std::string& text) {
  std::istringstream is{text};
  std::string magic, version;
  is >> magic >> version;
  GREENVIS_REQUIRE_MSG(magic == "greenvis-qa-repro" && version == "v1",
                       "not a greenvis qa reproducer");
  Repro repro;
  std::string key;
  is >> key >> repro.property;
  GREENVIS_REQUIRE_MSG(key == "property", "malformed reproducer: " + key);
  is >> key >> repro.seed;
  GREENVIS_REQUIRE_MSG(key == "seed" && !is.fail(),
                       "malformed reproducer seed");
  std::size_t count = 0;
  is >> key >> count;
  GREENVIS_REQUIRE_MSG(key == "words" && !is.fail(),
                       "malformed reproducer word count");
  repro.tape.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t word = 0;
    is >> word;
    GREENVIS_REQUIRE_MSG(!is.fail(), "reproducer truncated at word " +
                                         std::to_string(i));
    repro.tape.push_back(word);
  }
  return repro;
}

Repro load_repro(const std::string& path) {
  std::ifstream file{path};
  GREENVIS_REQUIRE_MSG(file.good(), "cannot open reproducer " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return repro_from_text(buf.str());
}

std::string write_repro(const std::string& dir, const Repro& repro) {
  const std::string path = dir + "/" + sanitize(repro.property) + ".qarepro";
  std::ofstream file{path};
  if (!file.good()) {
    return {};  // unwritable repro dir must not mask the property failure
  }
  file << repro_to_text(repro);
  return file.good() ? path : std::string{};
}

Tape shrink_tape(Tape tape, const std::function<bool(const Tape&)>& fails,
                 std::size_t max_attempts, std::size_t* steps_out) {
  canonicalize(tape);
  std::size_t attempts = 0;
  std::size_t accepted = 0;
  const auto try_candidate = [&](Tape candidate) {
    if (attempts >= max_attempts) {
      return false;
    }
    ++attempts;
    canonicalize(candidate);
    if (candidate == tape) {
      return false;
    }
    if (!fails(candidate)) {
      return false;
    }
    tape = std::move(candidate);
    ++accepted;
    return true;
  };

  bool improved = true;
  while (improved && attempts < max_attempts) {
    improved = false;

    // Pass 1: delete blocks of words, largest windows first. Removing a
    // word shifts later draws; replay's zero-padding keeps any result
    // well-formed.
    for (std::size_t window = tape.size(); window >= 1; window /= 2) {
      for (std::size_t begin = 0; begin + window <= tape.size();) {
        Tape candidate;
        candidate.reserve(tape.size() - window);
        candidate.insert(candidate.end(), tape.begin(),
                         tape.begin() + static_cast<std::ptrdiff_t>(begin));
        candidate.insert(
            candidate.end(),
            tape.begin() + static_cast<std::ptrdiff_t>(begin + window),
            tape.end());
        if (try_candidate(std::move(candidate))) {
          improved = true;  // tape shrank; same begin now names new words
        } else {
          ++begin;
        }
        if (attempts >= max_attempts) {
          break;
        }
      }
      if (window == 1 || attempts >= max_attempts) {
        break;
      }
    }

    // Pass 2: lower individual words — zero, then binary-search the
    // smallest still-failing value. Lands on the exact boundary of each
    // draw in O(log range) attempts.
    for (std::size_t i = 0; i < tape.size() && attempts < max_attempts; ++i) {
      if (tape[i] == 0) {
        continue;
      }
      Tape candidate = tape;
      candidate[i] = 0;
      if (try_candidate(std::move(candidate))) {
        improved = true;
        continue;
      }
      // Zero passes, tape[i] fails: the boundary is in (floor, tape[i]].
      std::uint64_t floor = 0;  // largest known-passing value
      while (i < tape.size() && tape[i] > floor + 1 &&
             attempts < max_attempts) {
        const std::uint64_t mid = floor + (tape[i] - floor) / 2;
        Tape lowered = tape;
        lowered[i] = mid;
        if (try_candidate(std::move(lowered))) {
          improved = true;  // tape[i] is now mid; keep bisecting
        } else {
          floor = mid;
        }
      }
    }
  }

  if (steps_out != nullptr) {
    *steps_out = accepted;
  }
  return tape;
}

namespace detail {

void append_show(std::string* failure, const std::string& shown) {
  if (!shown.empty()) {
    *failure += "\ncounterexample: " + shown;
  }
}

std::string describe_tape(const Tape& tape) {
  std::ostringstream os;
  os << "\nchoice tape (" << tape.size() << " word(s)):";
  for (const std::uint64_t w : tape) {
    os << ' ' << w;
  }
  return os.str();
}

}  // namespace detail

}  // namespace greenvis::qa

#include "src/qa/oracle.hpp"

#include "src/util/error.hpp"

namespace greenvis::qa {

OracleRegistry& OracleRegistry::global() {
  static OracleRegistry registry;
  return registry;
}

void OracleRegistry::add(const std::string& name, Fn fn) {
  for (auto& [existing, run] : entries_) {
    if (existing == name) {
      run = std::move(fn);
      return;
    }
  }
  entries_.emplace_back(name, std::move(fn));
}

std::vector<std::string> OracleRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, fn] : entries_) {
    out.push_back(name);
  }
  return out;
}

OracleResult OracleRegistry::run(const std::string& name) const {
  for (const auto& [existing, fn] : entries_) {
    if (existing != name) {
      continue;
    }
    try {
      OracleResult result = fn();
      result.name = name;
      return result;
    } catch (const std::exception& e) {
      return OracleResult{name, false,
                          std::string("unhandled exception: ") + e.what()};
    }
  }
  throw util::ContractViolation("unknown qa oracle '" + name + "'");
}

std::vector<OracleResult> OracleRegistry::run_all() const {
  std::vector<OracleResult> out;
  out.reserve(entries_.size());
  for (const auto& [name, fn] : entries_) {
    out.push_back(run(name));
  }
  return out;
}

}  // namespace greenvis::qa

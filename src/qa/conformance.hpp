// Paper-conformance suite: the reproduction's headline numbers as named,
// machine-checked invariants.
//
// Each invariant is a quantity computed from *real* core::Experiment runs
// (full paper scale — 50 iterations, 128x128 grid, 512x512 frames) plus the
// band it must land in to still have the paper's shape:
//
//   * Fig. 10 — in-situ energy savings ordered case 1 > 2 > 3, each within
//     a band around the paper's 43% / 30% / 18%;
//   * Fig. 5  — post-processing shows exactly two power phases (detected
//     via the Timeline's Write/Read split), in-situ shows one; the
//     sim+write and read+vis phase powers bracket the paper's ~143 W /
//     ~121 W two-level profile;
//   * Fig. 8  — in-situ average power is *higher* (the savings come from
//     time, not power);
//   * Fig. 9  — peak power is indistinguishable between pipelines;
//   * Table II — the static (avoided-idle) share of the savings dominates
//     (>= 85%, paper reports ~91%).
//
// `greenvis verify` and tools/check.sh --conformance evaluate the suite and
// emit QA_conformance.json; tests/conformance_test.cpp runs it in ctest
// under the `conformance` label. Any optimization that silently changes
// what the system computes (an over-eager codec tolerance, a broken cache
// model, a solver that stopped doing the work) leaves its band.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "src/codec/field_codec.hpp"
#include "src/power/trace.hpp"
#include "src/qa/oracle.hpp"
#include "src/trace/timeline.hpp"

namespace greenvis::qa {

struct Invariant {
  std::string name;
  std::string description;
  double value{0.0};
  double lo{0.0};
  double hi{0.0};
  bool pass{false};
};

struct ConformanceReport {
  std::vector<Invariant> invariants;
  /// Oracle results included in the JSON artifact (may be empty when the
  /// caller runs oracles separately).
  std::vector<OracleResult> oracles;

  [[nodiscard]] bool all_pass() const;
  [[nodiscard]] std::size_t failures() const;
  /// QA_conformance.json: schema, verdict, one record per invariant/oracle.
  void write_json(std::ostream& os) const;
};

struct ConformanceOptions {
  /// Snapshot codec used by the post-processing pipeline. The default (raw)
  /// is the paper configuration; setting an absurd delta tolerance is the
  /// sanctioned way to prove the suite actually bites.
  codec::CodecConfig snapshot_codec{};
  /// Annotated into the JSON artifact.
  std::string build_label{"default"};
};

/// Count distinct power phases: splits the trace at the end of the last
/// Write interval (the sync/drop_caches boundary between the paper's two
/// phases) and reports 2 when the mean system power on the two sides
/// differs by more than `min_delta_w`, 1 otherwise. A timeline with no
/// Write intervals (in-situ) always reports 1.
[[nodiscard]] int detect_power_phases(const power::PowerTrace& trace,
                                      const trace::Timeline& timeline,
                                      double min_delta_w = 8.0);

/// Evaluate every paper invariant from fresh Experiment runs.
[[nodiscard]] ConformanceReport run_conformance(
    const ConformanceOptions& options = {});

}  // namespace greenvis::qa

// Property runner: seeded case generation, greedy tape shrinking, and
// on-disk reproducer files.
//
// A property is a function of a generated value returning "" on success or
// a failure description. `check()` runs it over `Config::cases` values,
// each derived deterministically from the root seed; on the first failure
// it shrinks the failing choice tape (gen.hpp) to a local minimum and
// writes a reproducer file. Replaying that file — via Config::replay_file,
// the GREENVIS_QA_REPLAY environment variable, or `greenvis verify
// --qa-repro=<file>` — re-runs the property on the shrunk tape and lands on
// the identical counterexample, every time, on every host.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "src/qa/gen.hpp"

namespace greenvis::qa {

struct Config {
  /// Root seed; case i draws from splitmix64(seed, i).
  std::uint64_t seed{0x9E3779B97F4A7C15ULL};
  std::size_t cases{100};
  /// Budget of candidate tapes the shrinker may evaluate.
  std::size_t max_shrink_attempts{2000};
  /// When non-empty, failures write `<repro_dir>/<property>.qarepro`.
  std::string repro_dir{"."};
  /// When non-empty, skip generation and replay this reproducer file.
  std::string replay_file{};

  /// Environment overrides: GREENVIS_QA_SEED, GREENVIS_QA_CASES,
  /// GREENVIS_QA_REPRO_DIR (empty string disables reproducer output),
  /// GREENVIS_QA_REPLAY.
  [[nodiscard]] static Config from_env();
};

struct CheckResult {
  std::string property;
  bool passed{true};
  std::size_t cases_run{0};
  std::size_t shrink_steps{0};
  /// Shrunk failing tape (empty when passed).
  Tape counterexample;
  /// Human-readable counterexample (the property's failure message, plus
  /// show() output when provided).
  std::string failure;
  /// Path of the reproducer written for this failure, if any.
  std::string repro_file;

  [[nodiscard]] std::string summary() const;
};

/// On-disk reproducer: property name + root seed + shrunk tape.
struct Repro {
  std::string property;
  std::uint64_t seed{0};
  Tape tape;
};

[[nodiscard]] std::string repro_to_text(const Repro& repro);
[[nodiscard]] Repro repro_from_text(const std::string& text);
[[nodiscard]] Repro load_repro(const std::string& path);
/// Returns the path written: `<dir>/<sanitized property>.qarepro`.
std::string write_repro(const std::string& dir, const Repro& repro);

/// Greedy tape minimization: strip trailing zeros, delete blocks
/// (halving window sizes), then lower individual words (zero, then a
/// binary search for the draw's failure boundary) until a fixpoint or the
/// attempt budget. `fails(tape)` must
/// return true when the tape still reproduces the failure. Deterministic.
[[nodiscard]] Tape shrink_tape(Tape tape,
                               const std::function<bool(const Tape&)>& fails,
                               std::size_t max_attempts,
                               std::size_t* steps_out = nullptr);

/// A property: "" = pass, anything else = failure description. Thrown
/// exceptions also count as failures (message captured).
template <typename T>
using Property = std::function<std::string(const T&)>;

namespace detail {

/// Run gen+property on a tape. Returns true when the property fails;
/// `message` receives the failure text. A generator exception during
/// replay means the mutated tape left the generator's domain: not a
/// failure.
template <typename T>
bool tape_fails(const Gen<T>& gen, const Property<T>& property,
                const Tape& tape, std::string* message) {
  Choices choices{tape};
  std::optional<T> value;
  try {
    value.emplace(gen(choices));
  } catch (const std::exception&) {
    return false;
  }
  try {
    std::string m = property(*value);
    if (m.empty()) {
      return false;
    }
    if (message != nullptr) {
      *message = std::move(m);
    }
    return true;
  } catch (const std::exception& e) {
    if (message != nullptr) {
      *message = std::string("unhandled exception: ") + e.what();
    }
    return true;
  }
}

void append_show(std::string* failure, const std::string& shown);
std::string describe_tape(const Tape& tape);

}  // namespace detail

/// Run `property` over generated values. `show` (optional) renders the
/// shrunk counterexample for the failure message.
template <typename T>
CheckResult check(const std::string& name, const Gen<T>& gen,
                  const Property<T>& property,
                  const Config& config = Config::from_env(),
                  const std::function<std::string(const T&)>& show = {}) {
  CheckResult result;
  result.property = name;

  const auto finish_failure = [&](const Tape& tape, std::uint64_t seed) {
    result.passed = false;
    result.counterexample = tape;
    std::string message;
    (void)detail::tape_fails(gen, property, tape, &message);
    result.failure = message;
    if (show) {
      Choices replay{tape};
      try {
        detail::append_show(&result.failure, show(gen(replay)));
      } catch (const std::exception&) {
        // Counterexample rendering is best-effort.
      }
    }
    result.failure += detail::describe_tape(tape);
    if (!config.repro_dir.empty()) {
      result.repro_file =
          write_repro(config.repro_dir, Repro{name, seed, tape});
    }
  };

  if (!config.replay_file.empty()) {
    const Repro repro = load_repro(config.replay_file);
    GREENVIS_REQUIRE_MSG(repro.property == name,
                         "reproducer is for property '" + repro.property +
                             "', not '" + name + "'");
    result.cases_run = 1;
    std::string message;
    if (detail::tape_fails(gen, property, repro.tape, &message)) {
      result.passed = false;
      result.counterexample = repro.tape;
      result.failure = message;
      if (show) {
        Choices replay{repro.tape};
        try {
          detail::append_show(&result.failure, show(gen(replay)));
        } catch (const std::exception&) {
        }
      }
      result.failure += detail::describe_tape(repro.tape);
    }
    return result;
  }

  std::uint64_t mix = config.seed;
  for (std::size_t i = 0; i < config.cases; ++i) {
    const std::uint64_t case_seed = util::splitmix64_next(mix);
    Choices choices{case_seed};
    T value = gen(choices);  // fresh-mode generator bugs propagate
    ++result.cases_run;
    std::string message;
    bool failed = false;
    try {
      message = property(value);
      failed = !message.empty();
    } catch (const std::exception& e) {
      message = std::string("unhandled exception: ") + e.what();
      failed = true;
    }
    if (!failed) {
      continue;
    }
    const Tape shrunk = shrink_tape(
        choices.tape(),
        [&](const Tape& t) {
          return detail::tape_fails(gen, property, t, nullptr);
        },
        config.max_shrink_attempts, &result.shrink_steps);
    finish_failure(shrunk, config.seed);
    return result;
  }
  return result;
}

}  // namespace greenvis::qa

// Differential-oracle registry.
//
// Every fast path in the tree has a slow, obviously-correct twin: the
// thread pool vs serial execution, the chunked codec vs plain
// serialization, the page cache vs direct I/O, observability on vs off. A
// differential oracle runs the same workload through both and diffs the
// structured results — the cheapest machine check that an optimization did
// not silently change what the system computes. Oracles run in the default
// ctest suite (tests/qa_test.cpp), under tools/check.sh --asan, and from
// `greenvis verify`.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace greenvis::qa {

struct OracleResult {
  std::string name;
  bool ok{false};
  /// On success: what was compared. On failure: the first divergence.
  std::string detail;
};

class OracleRegistry {
 public:
  using Fn = std::function<OracleResult()>;

  [[nodiscard]] static OracleRegistry& global();

  /// Registers (or replaces) an oracle under `name`.
  void add(const std::string& name, Fn fn);

  [[nodiscard]] std::vector<std::string> names() const;

  /// Runs one oracle by name (throws ContractViolation when unknown).
  /// Exceptions escaping the oracle body are converted into failures.
  [[nodiscard]] OracleResult run(const std::string& name) const;

  /// Runs every registered oracle, in registration order.
  [[nodiscard]] std::vector<OracleResult> run_all() const;

 private:
  std::vector<std::pair<std::string, Fn>> entries_;
};

/// Registers the built-in differential oracles (idempotent):
/// solver/pipeline serial vs pool, codec raw vs delta, page cache vs
/// direct reads, obs on vs off, legacy vs chunked snapshot decode.
void register_builtin_oracles();

}  // namespace greenvis::qa

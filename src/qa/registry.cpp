#include "src/qa/registry.hpp"

namespace greenvis::qa {

PropertyRegistry& PropertyRegistry::global() {
  static PropertyRegistry registry;
  return registry;
}

void PropertyRegistry::add(const std::string& name, RunFn fn) {
  for (auto& [existing, run] : entries_) {
    if (existing == name) {
      run = std::move(fn);
      return;
    }
  }
  entries_.emplace_back(name, std::move(fn));
}

bool PropertyRegistry::contains(const std::string& name) const {
  for (const auto& [existing, run] : entries_) {
    if (existing == name) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> PropertyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, run] : entries_) {
    out.push_back(name);
  }
  return out;
}

CheckResult PropertyRegistry::run(const std::string& name,
                                  const Config& config) const {
  for (const auto& [existing, fn] : entries_) {
    if (existing == name) {
      return fn(config);
    }
  }
  throw util::ContractViolation("unknown qa property '" + name + "'");
}

CheckResult replay_repro_file(const std::string& path) {
  const Repro repro = load_repro(path);
  Config config;
  config.replay_file = path;
  config.repro_dir.clear();
  return PropertyRegistry::global().run(repro.property, config);
}

}  // namespace greenvis::qa

// Built-in property sweeps.
//
// These are the strongest invariants from the hand-rolled parameter sweeps
// in tests/property_test.cpp, ported onto qa::Gen so they cover the whole
// parameter space (not five hand-picked points) and gain shrinking plus
// reproducer files. They are registered by name so both the gtest property
// suite and `greenvis verify --qa-repro=` reach the same definitions.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "src/campaign/engine.hpp"
#include "src/codec/field_codec.hpp"
#include "src/core/experiment.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/testbed.hpp"
#include "src/io/compress.hpp"
#include "src/io/dataset.hpp"
#include "src/qa/domains.hpp"
#include "src/qa/registry.hpp"
#include "src/replay/trace_format.hpp"
#include "src/serve/session.hpp"
#include "src/serve/viewer.hpp"
#include "src/storage/async_device.hpp"
#include "src/storage/hdd.hpp"
#include "src/util/checksum.hpp"
#include "src/util/rng.hpp"
#include "src/util/simd/simd.hpp"
#include "src/util/units.hpp"

namespace greenvis::qa {

namespace {

std::string ok() { return {}; }

template <typename T>
void add_property(const std::string& name, Gen<T> gen, Property<T> property,
                  std::function<std::string(const T&)> show = {}) {
  PropertyRegistry::global().add(
      name, [name, gen = std::move(gen), property = std::move(property),
             show = std::move(show)](const Config& config) {
        return check(name, gen, property, config, show);
      });
}

// ---- HDD: sequential throughput independent of request size ----
//
// Ports HddBlockSizeSweep.SequentialThroughputInvariant: streaming the
// outer zone, the achieved rate is ~1.18x the sustained rate for *any*
// block size — the per-request cost is dominated by transfer, not
// bookkeeping.

void register_hdd_properties() {
  const Gen<std::uint64_t> block_gen =
      fmap(uint_in(1, 256), [](std::uint64_t n) { return n * 4096; });

  add_property<std::uint64_t>(
      "hdd.seq_throughput_block_invariant", block_gen,
      [](const std::uint64_t& block) {
        storage::HddModel hdd{storage::HddParams{}};
        const std::uint64_t total = util::mebibytes(32).value();
        util::Seconds t{0.0};
        for (std::uint64_t off = 0; off < total; off += block) {
          const auto len = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(block, total - off));
          t = hdd.service(storage::IoRequest{storage::IoKind::kRead, off, len},
                          t);
        }
        const double rate = static_cast<double>(total) / t.value();
        const double expected =
            hdd.params().spec.sustained_rate.value() * 1.18;
        if (std::abs(rate - expected) > expected * 0.05) {
          std::ostringstream os;
          os << "sequential rate " << rate << " B/s is not within 5% of "
             << expected << " B/s";
          return os.str();
        }
        return ok();
      },
      [](const std::uint64_t& block) {
        return "block=" + std::to_string(block);
      });

  // Ports HddBlockSizeSweep.RandomServiceBoundedBelowBySettle: random
  // accesses can never beat the head-settle time, for any block size and
  // any seek pattern.
  using RandomCase = std::pair<std::uint64_t, std::vector<std::uint64_t>>;
  add_property<RandomCase>(
      "hdd.random_service_settle_bound",
      pair_of(block_gen, vector_of(uint_in(0, 399), 8, 48)),
      [](const RandomCase& rc) {
        const auto& [block, offsets_gib] = rc;
        storage::HddModel hdd{storage::HddParams{}};
        util::Seconds t{0.0};
        for (const std::uint64_t gib : offsets_gib) {
          const util::Seconds t2 = hdd.service(
              storage::IoRequest{storage::IoKind::kRead,
                                 gib * util::gibibytes(1).value(),
                                 static_cast<std::uint32_t>(block)},
              t);
          if ((t2 - t).value() < 0.0) {
            return std::string("service time went backwards");
          }
          t = t2;
        }
        const double per_req =
            t.value() / static_cast<double>(offsets_gib.size());
        if (per_req <= hdd.params().spec.settle_time.value()) {
          std::ostringstream os;
          os << "random request averaged " << per_req
             << " s, at or below the settle time "
             << hdd.params().spec.settle_time.value() << " s";
          return os.str();
        }
        return ok();
      },
      [](const RandomCase& rc) {
        return "block=" + std::to_string(rc.first) +
               " requests=" + std::to_string(rc.second.size());
      });
}

// ---- compression: error bound holds for every field and bound ----
//
// Ports CompressSweep.LossyBoundAlwaysHolds over generated fields instead
// of five fixed seeds, including degenerate 1x1 and constant fields.

void register_compress_properties() {
  using CompressCase = std::pair<util::Field2D, double>;
  add_property<CompressCase>(
      "compress.lossy_round_trip",
      pair_of(smooth_field(1, 40, 25.0, 5.0),
              element_of<double>({1e-9, 1e-6, 1e-3, 0.25, 2.0})),
      [](const CompressCase& cc) {
        const auto& [f, bound] = cc;
        const auto blob = io::compress_field(
            f, io::CompressConfig{io::CompressionMode::kLossyAbsBound, bound});
        const util::Field2D g = io::decompress_field(blob);
        for (std::size_t k = 0; k < f.size(); ++k) {
          const double err = std::abs(f.values()[k] - g.values()[k]);
          if (err > bound * (1.0 + 1e-9)) {
            std::ostringstream os;
            os << "value " << k << " off by " << err << " > bound " << bound;
            return os.str();
          }
        }
        if (!(io::decompress_field(io::compress_field(
                  f, io::CompressConfig{})) == f)) {
          return std::string("lossless mode is not bit exact");
        }
        return ok();
      },
      [](const CompressCase& cc) {
        return std::to_string(cc.first.nx()) + "x" +
               std::to_string(cc.first.ny()) +
               " bound=" + std::to_string(cc.second);
      });

  // The chunked snapshot codec honors the same contract: raw/rle exact,
  // delta within tolerance, for every field shape and chunk edge.
  using CodecCase = std::tuple<util::Field2D, std::uint64_t, double>;
  add_property<CodecCase>(
      "codec.container_round_trip",
      tuple_of(smooth_field(1, 48, 50.0, 10.0), uint_in(0, 2),
               element_of<double>({1e-6, 1e-3, 0.5})),
      [](const CodecCase& cc) {
        const auto& [f, kind_index, tolerance] = cc;
        codec::CodecConfig config;
        config.kind = static_cast<codec::Kind>(kind_index);
        config.tolerance = tolerance;
        codec::FieldCodec codec{config};
        const auto blob = codec.encode(f);
        const util::Field2D g = codec::FieldCodec::decode2d(blob);
        if (g.nx() != f.nx() || g.ny() != f.ny()) {
          return std::string("decoded dimensions differ");
        }
        const double bound =
            config.kind == codec::Kind::kDelta ? tolerance * (1.0 + 1e-9)
                                               : 0.0;
        for (std::size_t k = 0; k < f.size(); ++k) {
          const double err = std::abs(f.values()[k] - g.values()[k]);
          if (err > bound) {
            std::ostringstream os;
            os << codec::kind_name(config.kind) << " value " << k
               << " off by " << err << " > " << bound;
            return os.str();
          }
        }
        return ok();
      },
      [](const CodecCase& cc) {
        return std::to_string(std::get<0>(cc).nx()) + "x" +
               std::to_string(std::get<0>(cc).ny()) + " kind=" +
               std::to_string(std::get<1>(cc)) +
               " tol=" + std::to_string(std::get<2>(cc));
      });
}

// ---- replay traces: arbitrary corruption fails cleanly ----
//
// Random byte flips over a valid trace must either still parse or raise
// ContractViolation (TraceParseError) — never crash, hang, or throw
// anything else. (Truncation coverage lives in tests/replay_test.cpp,
// which sweeps every prefix length exhaustively.)

void register_replay_properties() {
  using Flips = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  add_property<Flips>(
      "replay.trace_flip_robust",
      vector_of(pair_of(uint_in(0, 1ULL << 20), uint_in(0, 255)), 1, 8),
      [](const Flips& flips) {
        std::string text = replay::mpas_like_trace();
        for (const auto& [pos, byte] : flips) {
          text[static_cast<std::size_t>(pos) % text.size()] =
              static_cast<char>(byte);
        }
        try {
          const replay::AppTrace trace = replay::parse_trace(text);
          // A still-valid trace must survive its own round trip.
          (void)replay::parse_trace(replay::format_trace(trace));
        } catch (const util::ContractViolation&) {
          // Clean rejection is a pass.
        } catch (const std::exception& e) {
          return std::string("non-contract exception: ") + e.what();
        }
        return ok();
      },
      [](const Flips& flips) {
        std::ostringstream os;
        os << flips.size() << " flip(s):";
        for (const auto& [pos, byte] : flips) {
          os << " @" << pos << "<-" << byte;
        }
        return os.str();
      });
}

// ---- async staging: overlap must never change what reaches disk ----
//
// For any iteration count / io period / ring size / chunk edge / codec
// kind, the async pipeline must terminate (no backpressure deadlock),
// drain fully (every written step readable afterwards), and leave exactly
// the bytes the sync pipeline leaves.

void register_pipeline_properties() {
  using AsyncCase =
      std::tuple<core::CaseStudyConfig, std::uint64_t, std::uint64_t,
                 std::uint64_t>;
  add_property<AsyncCase>(
      "pipeline.async_matches_sync",
      tuple_of(small_case_config(), uint_in(1, 4),
               element_of<std::uint64_t>({8, 16, 32}), uint_in(0, 2)),
      [](const AsyncCase& ac) {
        core::CaseStudyConfig config = std::get<0>(ac);
        const std::uint64_t buffers = std::get<1>(ac);
        config.snapshot_codec.chunk_edge = std::get<2>(ac);
        config.snapshot_codec.kind = static_cast<codec::Kind>(std::get<3>(ac));
        const auto run = [&](bool async_mode) {
          core::Testbed bed;
          core::PipelineOptions options;
          options.host_threads = 2;
          options.stage_buffers = buffers;
          core::PipelineOutput out =
              async_mode
                  ? core::run_post_processing_async(bed, config, options)
                  : core::run_post_processing(bed, config, options);
          std::vector<std::uint64_t> sums;
          io::TimestepReader reader(bed.fs(), config.dataset);
          for (int step = 0; step < config.iterations; ++step) {
            if (config.is_io_step(step)) {
              sums.push_back(util::fnv1a64(reader.read_step(step)));
            }
          }
          return std::pair<core::PipelineOutput, std::vector<std::uint64_t>>{
              std::move(out), std::move(sums)};
        };
        const auto [sync_out, sync_sums] = run(false);
        const auto [async_out, async_sums] = run(true);
        if (async_sums.size() != sync_sums.size()) {
          return std::string("async drain lost snapshots: ") +
                 std::to_string(async_sums.size()) + " vs " +
                 std::to_string(sync_sums.size());
        }
        if (async_sums != sync_sums) {
          return std::string("on-disk bytes differ between sync and async");
        }
        if (async_out.image_digests != sync_out.image_digests) {
          return std::string("image digests differ between sync and async");
        }
        if (async_out.snapshot_bytes_written.value() !=
                sync_out.snapshot_bytes_written.value() ||
            async_out.snapshot_bytes_read.value() !=
                sync_out.snapshot_bytes_read.value() ||
            async_out.snapshot_bytes_raw.value() !=
                sync_out.snapshot_bytes_raw.value()) {
          return std::string("snapshot accounting differs");
        }
        return ok();
      },
      [](const AsyncCase& ac) {
        const auto& config = std::get<0>(ac);
        std::ostringstream os;
        os << "iters=" << config.iterations << " period=" << config.io_period
           << " grid=" << config.problem.nx << " buffers=" << std::get<1>(ac)
           << " chunk=" << std::get<2>(ac) << " kind=" << std::get<3>(ac);
        return os.str();
      });
}

// ---- campaign: one result set, however you obtain it ----
//
// For any small sweep spec, running the campaign cold, replaying it warm,
// interrupting it with a job limit and resuming through the journal, and
// varying the work-stealing shard count must all render byte-identical
// campaign JSON. This is the engine's whole contract: the cache and journal
// are invisible to the results.

void register_campaign_properties() {
  struct ReplayCase {
    campaign::CampaignSpec spec;
    std::size_t shards_cold{1};
    std::size_t shards_resume{1};
    std::size_t limit{1};
  };
  const Gen<ReplayCase> gen = [](Choices& c) {
    ReplayCase rc;
    rc.spec.pipelines = {core::PipelineKind::kPostProcessing,
                         core::PipelineKind::kInSitu};
    if (c.draw_bool()) {
      rc.spec.pipelines.push_back(core::PipelineKind::kPostProcessingAsync);
    }
    rc.spec.grids = {16 + 4 * static_cast<std::size_t>(c.draw_below(3))};
    rc.spec.iterations = {static_cast<int>(c.draw_range(1, 3))};
    rc.spec.io_periods = {static_cast<int>(c.draw_range(1, 2))};
    rc.spec.codecs = {static_cast<codec::Kind>(c.draw_below(3))};
    rc.shards_cold = 1 + static_cast<std::size_t>(c.draw_below(4));
    rc.shards_resume = 1 + static_cast<std::size_t>(c.draw_below(4));
    rc.limit = 1 + static_cast<std::size_t>(c.draw_below(3));
    return rc;
  };
  add_property<ReplayCase>(
      "campaign.replay_identical", gen,
      [](const ReplayCase& rc) {
        std::vector<campaign::CampaignConfig> configs = rc.spec.expand();
        for (campaign::CampaignConfig& c : configs) {
          c.frame = 32;  // keep host render cost out of the sweep
          c.sweeps = 8;
        }
        const auto render = [](const campaign::CampaignReport& report) {
          std::ostringstream os;
          campaign::write_campaign_json(os, report);
          return os.str();
        };
        campaign::CampaignOptions options;
        options.threads = 2;
        options.shards = rc.shards_cold;

        campaign::ResultCache cold_cache;
        const campaign::CampaignEngine cold(cold_cache);
        const auto cold_report = cold.run(configs, options);
        const std::string cold_json = render(cold_report);

        const auto warm_report = cold.run(configs, options);
        if (warm_report.executed != 0) {
          return std::string("warm replay re-executed ") +
                 std::to_string(warm_report.executed) + " configs";
        }
        if (render(warm_report) != cold_json) {
          return std::string("warm JSON differs from cold");
        }

        // Interrupt a fresh campaign after `limit` fresh configs, then
        // resume from its journal with a different shard count.
        std::ostringstream journal;
        campaign::ResultCache partial_cache;
        const campaign::CampaignEngine partial(partial_cache, &journal);
        campaign::CampaignOptions limited = options;
        limited.job_limit = rc.limit;
        const auto partial_report = partial.run(configs, limited);
        if (partial_report.interrupted &&
            partial_report.executed != rc.limit) {
          return std::string("interrupted run executed ") +
                 std::to_string(partial_report.executed) + " != limit " +
                 std::to_string(rc.limit);
        }

        campaign::ResultCache resumed_cache;
        std::istringstream replayed(journal.str());
        if (resumed_cache.load_journal(replayed) !=
            partial_report.executed) {
          return std::string("journal did not round-trip every result");
        }
        const campaign::CampaignEngine resumed(resumed_cache);
        campaign::CampaignOptions resume_options = options;
        resume_options.shards = rc.shards_resume;
        const auto resumed_report = resumed.run(configs, resume_options);
        if (resumed_report.interrupted) {
          return std::string("resumed run still interrupted");
        }
        if (resumed_report.executed + partial_report.executed !=
            cold_report.executed) {
          return std::string("resume re-ran journaled configs");
        }
        if (render(resumed_report) != cold_json) {
          return std::string("resumed JSON differs from cold");
        }
        return ok();
      },
      [](const ReplayCase& rc) {
        std::ostringstream os;
        os << "pipelines=" << rc.spec.pipelines.size()
           << " grid=" << rc.spec.grids.front()
           << " iters=" << rc.spec.iterations.front()
           << " period=" << rc.spec.io_periods.front()
           << " codec=" << static_cast<int>(rc.spec.codecs.front())
           << " shards=" << rc.shards_cold << "/" << rc.shards_resume
           << " limit=" << rc.limit;
        return os.str();
      });
}

// ---- energy attribution: every joule lands somewhere, exactly once ----
//
// For any small config on any pipeline and device, the span-level
// attributor must conserve energy: the per-stage joules (including the
// idle bucket) sum to the PowerModel's exact end-to-end integral within
// 1e-9 relative, and the static/dynamic split partitions every stage.

void register_energy_properties() {
  struct EnergyCase {
    core::CaseStudyConfig config;
    core::PipelineKind kind{core::PipelineKind::kPostProcessing};
    core::StorageDeviceKind device{core::StorageDeviceKind::kHdd};
    std::uint64_t buffers{1};
  };
  const Gen<EnergyCase> gen = [](Choices& c) {
    EnergyCase ec;
    ec.config = small_case_config()(c);
    ec.kind = static_cast<core::PipelineKind>(c.draw_below(3));
    ec.device = static_cast<core::StorageDeviceKind>(c.draw_below(3));
    ec.buffers = 1 + c.draw_below(4);
    return ec;
  };
  add_property<EnergyCase>(
      "energy.conservation", gen,
      [](const EnergyCase& ec) {
        core::TestbedConfig base;
        base.device = ec.device;
        core::PipelineOptions options;
        options.host_threads = 2;
        options.stage_buffers = ec.buffers;
        const core::PipelineMetrics m =
            core::Experiment(base).run(ec.kind, ec.config, options);
        const obs::EnergyReport& rep = m.attribution;
        if (!(rep.conservation_error <= 1e-9)) {
          std::ostringstream os;
          os << "conservation error " << rep.conservation_error << " > 1e-9";
          return os.str();
        }
        double stage_sum = 0.0;
        for (const obs::StageEnergy& s : rep.stages) {
          stage_sum += s.total().value();
          const double split =
              s.static_rails.total().value() + s.dynamic_rails.total().value();
          const double split_err = std::abs(split - s.total().value()) /
                                   std::max(1.0, std::abs(s.total().value()));
          if (split_err > 1e-9) {
            return std::string("stage ") + s.name +
                   " static+dynamic does not partition its total";
          }
        }
        const double total = rep.total().value();
        const double sum_err =
            std::abs(stage_sum - total) / std::max(1.0, std::abs(total));
        if (sum_err > 1e-9) {
          std::ostringstream os;
          os << "stage sum " << stage_sum << " J differs from report total "
             << total << " J (rel " << sum_err << ")";
          return os.str();
        }
        if (rep.stage(obs::kEnergyIdle) == nullptr) {
          return std::string("report is missing the idle bucket");
        }
        return ok();
      },
      [](const EnergyCase& ec) {
        std::ostringstream os;
        os << "kind=" << static_cast<int>(ec.kind)
           << " device=" << core::storage_device_name(ec.device)
           << " iters=" << ec.config.iterations
           << " period=" << ec.config.io_period
           << " grid=" << ec.config.problem.nx << " buffers=" << ec.buffers;
        return os.str();
      });
}

// ---- simd kernels: every ISA path bit-equals the scalar reference ----
//
// Direct per-kernel differentials against table_for(kScalar) over random
// lengths, offsets, and values — one property per kernel family, each
// sweeping every supported path. On a scalar-only host the inner loops are
// empty and the properties pass vacuously.

bool doubles_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void register_simd_properties() {
  namespace simd = util::simd;

  struct StencilCase {
    std::vector<double> data;  // 7 rows of length n
    std::size_t n{2};
    std::size_t ib{0};
    std::size_t ie{2};
    double tr{0.5};
    double acc0{0.0};
  };
  const Gen<StencilCase> stencil_gen = [](Choices& c) {
    StencilCase sc;
    sc.n = static_cast<std::size_t>(c.draw_range(2, 97));
    sc.ib = std::min(sc.n - 1, c.draw_below(4));
    sc.ie = std::max(sc.ib + 1, sc.n - c.draw_below(4));
    sc.tr = c.draw_real(0.01, 2.0);
    sc.acc0 = c.draw_real(0.0, 10.0);
    util::Xoshiro256 rng{c.draw_below(1ULL << 32)};
    sc.data.resize(7 * sc.n);
    for (double& v : sc.data) {
      v = rng.uniform(-100.0, 100.0);
    }
    return sc;
  };
  add_property<StencilCase>(
      "simd.stencil_rows_match_scalar", stencil_gen,
      [](const StencilCase& sc) {
        const std::size_t n = sc.n;
        const double* rhs = sc.data.data();
        const double* row = rhs + n;
        const double* row_s = row + n;
        const double* row_n = row_s + n;
        const double* row_d = row_n + n;
        const double* row_u = row_d + n;
        const double inv = 1.0 / (1.0 + 4.0 * sc.tr);
        const simd::KernelTable& ref = simd::table_for(simd::IsaPath::kScalar);
        for (const simd::IsaPath path : simd::supported_paths()) {
          if (path == simd::IsaPath::kScalar) {
            continue;
          }
          const simd::KernelTable& tbl = simd::table_for(path);
          std::vector<double> want(n, 0.0), got(n, 0.0);
          ref.jacobi2d_row(want.data(), rhs, row, row_s, row_n, sc.tr, inv,
                           sc.ib, sc.ie);
          tbl.jacobi2d_row(got.data(), rhs, row, row_s, row_n, sc.tr, inv,
                           sc.ib, sc.ie);
          if (!doubles_equal(want, got)) {
            return std::string(simd::path_name(path)) + ": jacobi2d_row";
          }
          std::fill(want.begin(), want.end(), 0.0);
          std::fill(got.begin(), got.end(), 0.0);
          ref.jacobi3d_row(want.data(), rhs, row, row_s, row_n, row_d, row_u,
                           sc.tr, inv, sc.ib, sc.ie);
          tbl.jacobi3d_row(got.data(), rhs, row, row_s, row_n, row_d, row_u,
                           sc.tr, inv, sc.ib, sc.ie);
          if (!doubles_equal(want, got)) {
            return std::string(simd::path_name(path)) + ": jacobi3d_row";
          }
          const double d2a = ref.defect2d_row(rhs, row, row_s, row_n, sc.tr,
                                              sc.ib, sc.ie, sc.acc0);
          const double d2b = tbl.defect2d_row(rhs, row, row_s, row_n, sc.tr,
                                              sc.ib, sc.ie, sc.acc0);
          if (std::memcmp(&d2a, &d2b, sizeof(double)) != 0) {
            return std::string(simd::path_name(path)) + ": defect2d_row";
          }
          const double d3a =
              ref.defect3d_row(rhs, row, row_s, row_n, row_d, row_u, sc.tr,
                               sc.ib, sc.ie, sc.acc0);
          const double d3b =
              tbl.defect3d_row(rhs, row, row_s, row_n, row_d, row_u, sc.tr,
                               sc.ib, sc.ie, sc.acc0);
          if (std::memcmp(&d3a, &d3b, sizeof(double)) != 0) {
            return std::string(simd::path_name(path)) + ": defect3d_row";
          }
        }
        return ok();
      },
      [](const StencilCase& sc) {
        std::ostringstream os;
        os << "n=" << sc.n << " ib=" << sc.ib << " ie=" << sc.ie
           << " tr=" << sc.tr;
        return os.str();
      });

  struct CodecCase {
    std::vector<double> values;
    double tol{1e-3};
  };
  const Gen<CodecCase> codec_gen = [](Choices& c) {
    CodecCase cc;
    const auto n = static_cast<std::size_t>(c.draw_range(2, 200));
    const double tols[] = {1e-6, 1e-3, 0.5};
    cc.tol = tols[c.draw_below(3)];
    const double amp = c.draw_real(0.0, 60.0);
    util::Xoshiro256 rng{c.draw_below(1ULL << 32)};
    cc.values.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cc.values[i] = amp * std::sin(0.1 * static_cast<double>(i)) +
                     rng.uniform(-1.0, 1.0);
    }
    return cc;
  };
  add_property<CodecCase>(
      "simd.codec_kernels_match_scalar", codec_gen,
      [](const CodecCase& cc) {
        const std::size_t n = cc.values.size();
        const double* v = cc.values.data();
        const double inv = 1.0 / cc.tol;
        const simd::KernelTable& ref = simd::table_for(simd::IsaPath::kScalar);

        const simd::ScanResult scan_ref = ref.scan_abs_finite(v, n);
        std::vector<std::int64_t> q_ref(n);
        ref.quantize(v, q_ref.data(), inv, n);
        std::vector<std::uint64_t> zz_ref(n);
        const std::uint64_t or_ref =
            ref.delta_zigzag(q_ref.data(), zz_ref.data(), n);
        const auto bits = static_cast<std::uint8_t>(
            std::max<unsigned>(1, static_cast<unsigned>(std::bit_width(or_ref))));
        std::vector<std::uint64_t> words_ref((n * 64 + 63) / 64 + 1);
        const std::size_t nw_ref =
            ref.pack_deltas(zz_ref.data(), bits, words_ref.data(), n);
        std::vector<std::uint8_t> packed(nw_ref * 8);
        for (std::size_t i = 0; i < nw_ref; ++i) {
          for (int b = 0; b < 8; ++b) {
            packed[i * 8 + static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>(words_ref[i] >> (8 * b));
          }
        }
        std::vector<std::int64_t> deltas_ref(n, 0);
        ref.unpack_deltas(packed.data(), nw_ref, bits, deltas_ref.data(), n);
        // Ground truth: the unpacked deltas must recover the quanta.
        std::int64_t qv = q_ref[0];
        for (std::size_t i = 1; i < n; ++i) {
          qv += deltas_ref[i];
          if (qv != q_ref[i]) {
            return std::string("scalar pack/unpack round trip broke at ") +
                   std::to_string(i);
          }
        }

        for (const simd::IsaPath path : simd::supported_paths()) {
          if (path == simd::IsaPath::kScalar) {
            continue;
          }
          const simd::KernelTable& tbl = simd::table_for(path);
          const char* name = simd::path_name(path);
          const simd::ScanResult scan = tbl.scan_abs_finite(v, n);
          if (scan.finite != scan_ref.finite ||
              std::memcmp(&scan.max_abs, &scan_ref.max_abs,
                          sizeof(double)) != 0) {
            return std::string(name) + ": scan_abs_finite";
          }
          std::vector<std::int64_t> q(n);
          tbl.quantize(v, q.data(), inv, n);
          if (q != q_ref) {
            return std::string(name) + ": quantize";
          }
          std::vector<std::uint64_t> zz(n);
          if (tbl.delta_zigzag(q.data(), zz.data(), n) != or_ref ||
              zz != zz_ref) {
            return std::string(name) + ": delta_zigzag";
          }
          std::vector<std::uint64_t> words(words_ref.size());
          if (tbl.pack_deltas(zz.data(), bits, words.data(), n) != nw_ref ||
              std::memcmp(words.data(), words_ref.data(), nw_ref * 8) != 0) {
            return std::string(name) + ": pack_deltas";
          }
          std::vector<std::int64_t> deltas(n, 0);
          tbl.unpack_deltas(packed.data(), nw_ref, bits, deltas.data(), n);
          if (deltas != deltas_ref) {
            return std::string(name) + ": unpack_deltas";
          }
        }
        return ok();
      },
      [](const CodecCase& cc) {
        return "n=" + std::to_string(cc.values.size()) +
               " tol=" + std::to_string(cc.tol);
      });

  struct TriCase {
    std::size_t nx{2}, ny{2}, nz{2};
    std::vector<double> field;
    std::vector<double> xs, ys, zs;
  };
  const Gen<TriCase> tri_gen = [](Choices& c) {
    TriCase tc;
    tc.nx = static_cast<std::size_t>(c.draw_range(2, 9));
    tc.ny = static_cast<std::size_t>(c.draw_range(2, 9));
    tc.nz = static_cast<std::size_t>(c.draw_range(2, 9));
    const auto npts = static_cast<std::size_t>(c.draw_range(1, 40));
    util::Xoshiro256 rng{c.draw_below(1ULL << 32)};
    tc.field.resize(tc.nx * tc.ny * tc.nz);
    for (double& f : tc.field) {
      f = rng.uniform(-5.0, 5.0);
    }
    tc.xs.resize(npts);
    tc.ys.resize(npts);
    tc.zs.resize(npts);
    for (std::size_t i = 0; i < npts; ++i) {
      // Over-range on purpose: the clamp must match bit-for-bit too.
      tc.xs[i] = rng.uniform(-3.0, static_cast<double>(tc.nx) + 3.0);
      tc.ys[i] = rng.uniform(-3.0, static_cast<double>(tc.ny) + 3.0);
      tc.zs[i] = rng.uniform(-3.0, static_cast<double>(tc.nz) + 3.0);
    }
    return tc;
  };
  add_property<TriCase>(
      "simd.trilinear_match_scalar", tri_gen,
      [](const TriCase& tc) {
        const std::size_t npts = tc.xs.size();
        const simd::KernelTable& ref = simd::table_for(simd::IsaPath::kScalar);
        std::vector<double> want(npts, 0.0);
        ref.trilinear_block(tc.field.data(), tc.nx, tc.ny, tc.nz,
                            tc.xs.data(), tc.ys.data(), tc.zs.data(),
                            want.data(), npts);
        for (const simd::IsaPath path : simd::supported_paths()) {
          if (path == simd::IsaPath::kScalar) {
            continue;
          }
          const simd::KernelTable& tbl = simd::table_for(path);
          std::vector<double> got(npts, 0.0);
          tbl.trilinear_block(tc.field.data(), tc.nx, tc.ny, tc.nz,
                              tc.xs.data(), tc.ys.data(), tc.zs.data(),
                              got.data(), npts);
          if (!doubles_equal(want, got)) {
            return std::string(simd::path_name(path)) + ": trilinear_block";
          }
        }
        return ok();
      },
      [](const TriCase& tc) {
        std::ostringstream os;
        os << tc.nx << "x" << tc.ny << "x" << tc.nz
           << " npts=" << tc.xs.size();
        return os.str();
      });
}

// ---- storage: scheduler invariants for every queue depth ----
//
// Random aligned request streams through the async block layer under all
// three explicit schedulers: every submission completes exactly once, bytes
// are conserved, single-channel completion times never regress, and the
// deadline scheduler never services a fresh request while an older expired
// one is waiting (bounded starvation).

void register_storage_properties() {
  using SchedCase = std::pair<std::vector<storage::IoRequest>, std::uint64_t>;
  add_property<SchedCase>(
      "storage.scheduler_invariants",
      pair_of(io_request_stream(1, 32, util::gibibytes(4).value(),
                                512 * 1024),
              uint_in(0, 6)),
      [](const SchedCase& sc) {
        const auto& [requests, depth] = sc;
        for (const storage::IoSchedulerKind sched :
             {storage::IoSchedulerKind::kNoop,
              storage::IoSchedulerKind::kElevator,
              storage::IoSchedulerKind::kDeadline}) {
          storage::HddModel hdd{storage::HddParams{}};
          storage::AsyncDeviceConfig config;
          config.queue_depth = static_cast<std::size_t>(depth);
          config.scheduler = sched;
          storage::AsyncBlockDevice queue(hdd, config);
          std::uint64_t want_read = 0;
          std::uint64_t want_written = 0;
          for (std::size_t i = 0; i < requests.size(); ++i) {
            queue.submit(requests[i],
                         util::Seconds{0.0005 * static_cast<double>(i)});
            (requests[i].kind == storage::IoKind::kRead ? want_read
                                                        : want_written) +=
                requests[i].length;
          }
          (void)queue.drain();
          std::vector<storage::CompletionRecord> records;
          queue.poll(records);

          const std::string where =
              std::string(storage::io_scheduler_name(sched)) +
              " qd=" + std::to_string(depth);
          if (records.size() != requests.size()) {
            return where + ": " + std::to_string(records.size()) +
                   " completions for " + std::to_string(requests.size()) +
                   " submissions";
          }
          std::vector<bool> seen(requests.size() + 1, false);
          std::uint64_t got_read = 0;
          std::uint64_t got_written = 0;
          for (const storage::CompletionRecord& r : records) {
            if (r.handle == 0 || r.handle > requests.size() ||
                seen[static_cast<std::size_t>(r.handle)]) {
              return where + ": handle " + std::to_string(r.handle) +
                     " missing or completed twice";
            }
            seen[static_cast<std::size_t>(r.handle)] = true;
            if (!r.ok) {
              return where + ": unexpected error on a healthy device: " +
                     r.error;
            }
            if (r.start < r.submit || r.complete < r.start) {
              return where + ": timestamps regress on handle " +
                     std::to_string(r.handle);
            }
            (r.kind == storage::IoKind::kRead ? got_read : got_written) +=
                r.length;
          }
          if (got_read != want_read || got_written != want_written) {
            return where + ": byte conservation failed";
          }
          // Single service channel: completions are appended in service
          // order and each pick starts at the previous completion, so
          // completion times must be nondecreasing.
          for (std::size_t i = 1; i < records.size(); ++i) {
            if (records[i].complete < records[i - 1].complete) {
              return where + ": completion times regressed at record " +
                     std::to_string(i);
            }
          }
          if (sched == storage::IoSchedulerKind::kDeadline) {
            // Bounded starvation: when record i started service (the pick
            // happened at the previous record's completion), no *older*
            // request whose deadline had already expired may still have
            // been waiting. Serviced-later record j with an expired
            // deadline at that pick must be younger than i.
            const util::Seconds window = config.deadline_window;
            for (std::size_t i = 1; i < records.size(); ++i) {
              const util::Seconds pick = records[i - 1].complete;
              for (std::size_t j = i + 1; j < records.size(); ++j) {
                if (records[j].submit + window <= pick &&
                    records[j].submit < records[i].submit) {
                  return where + ": starved an expired request (handle " +
                         std::to_string(records[j].handle) +
                         ") past its deadline";
                }
              }
            }
          }
        }
        return ok();
      },
      [](const SchedCase& sc) {
        return "requests=" + std::to_string(sc.first.size()) +
               " qd=" + std::to_string(sc.second);
      });
}

// ---- serving: join/leave/steer schedules, exactly-once, never stale ----
//
// For any viewer fleet (random join/leave windows, shared and distinct
// view groups) under any steering schedule, the serving session must
// terminate (no delivery-ring deadlock), deliver exactly one frame per
// active viewer per frame step and none outside [join, leave), keep every
// frame key's payload consistent, and produce bit-identical deliveries and
// virtual time with the host frame cache on and off (a cache hit is never
// stale: keys fold in the field digest).

void register_serve_properties() {
  struct ServeCase {
    core::CaseStudyConfig config;
    std::vector<serve::ViewerSchedule> viewers;
    std::vector<serve::SteerCommand> commands;
    std::uint64_t buffers{2};
    std::uint64_t capacity{16};
  };
  const Gen<ServeCase> gen = [](Choices& c) {
    ServeCase sc;
    sc.config = small_case_config()(c);
    const auto steps = static_cast<std::uint64_t>(sc.config.iterations);
    const auto n = static_cast<int>(c.draw_range(1, 6));
    for (int i = 0; i < n; ++i) {
      serve::ViewerSchedule v;
      v.viewer = i;
      v.join_step = static_cast<int>(c.draw_below(steps));
      if (c.draw_bool()) {
        v.leave_step = v.join_step + static_cast<int>(c.draw_below(steps + 1));
      }
      // Three view groups so some viewers share a raster and some don't;
      // small frames keep the host cost of many cases down.
      const std::uint64_t group = c.draw_below(3);
      v.params.width = 32;
      v.params.height = 32;
      v.params.iso_levels = 2 + group;
      v.params.roi_x0 = 0.1 * static_cast<double>(group);
      sc.viewers.push_back(v);
    }
    const auto cmds = c.draw_below(4);
    for (std::uint64_t k = 0; k < cmds; ++k) {
      serve::SteerCommand cmd;
      cmd.step = static_cast<int>(c.draw_below(steps));
      cmd.viewer = static_cast<int>(c.draw_below(static_cast<std::uint64_t>(n)));
      cmd.kind = static_cast<serve::SteerKind>(c.draw_below(4));
      cmd.iso_levels = 1 + c.draw_below(9);
      cmd.palette = static_cast<vis::Palette>(c.draw_below(3));
      cmd.x0 = c.draw_real(-0.5, 1.5);  // out-of-range on purpose: clamps
      cmd.y0 = c.draw_real(-0.5, 1.5);
      cmd.x1 = c.draw_real(-0.5, 1.5);
      cmd.y1 = c.draw_real(-0.5, 1.5);
      cmd.width = 16 * (1 + c.draw_below(4));
      cmd.height = 16 * (1 + c.draw_below(4));
      sc.commands.push_back(cmd);
    }
    sc.buffers = 1 + c.draw_below(4);
    sc.capacity = c.draw_below(32);  // 0 = cache that never retains
    return sc;
  };
  add_property<ServeCase>(
      "serve.schedule_invariants", gen,
      [](const ServeCase& sc) {
        serve::ServeConfig config;
        config.base = sc.config;
        config.viewers = sc.viewers;
        config.commands = sc.commands;
        config.delivery_buffers = sc.buffers;
        config.cache_capacity = sc.capacity;
        config.host_threads = 2;
        config.cache_enabled = true;
        const serve::ServeReport on = serve::run_serve_session(config);
        config.cache_enabled = false;
        const serve::ServeReport off = serve::run_serve_session(config);

        // Exactly-once: one delivery per (frame step, active viewer), none
        // outside the subscription window. Replays the schedule directly.
        std::size_t cursor = 0;
        for (int step = 0; step < sc.config.iterations; ++step) {
          if (!sc.config.is_io_step(step)) {
            continue;
          }
          for (const serve::ViewerSchedule& v : sc.viewers) {
            if (!v.active_at(step)) {
              continue;
            }
            if (cursor >= on.deliveries.size() ||
                on.deliveries[cursor].step != step ||
                on.deliveries[cursor].viewer != v.viewer) {
              std::ostringstream os;
              os << "expected delivery (step " << step << ", viewer "
                 << v.viewer << ") missing or out of order at index "
                 << cursor;
              return os.str();
            }
            ++cursor;
          }
        }
        if (cursor != on.deliveries.size()) {
          return std::string("delivered ") +
                 std::to_string(on.deliveries.size() - cursor) +
                 " frames outside any subscription window";
        }
        if (on.frames_delivered != on.deliveries.size()) {
          return std::string("frames_delivered disagrees with the log");
        }

        // Never stale / content-addressed: one key, one payload.
        std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> seen;
        for (const serve::Delivery& d : on.deliveries) {
          const auto [it, fresh] =
              seen.emplace(d.key, std::make_pair(d.digest, d.bytes));
          if (!fresh && (it->second.first != d.digest ||
                         it->second.second != d.bytes)) {
            return std::string("key ") + std::to_string(d.key) +
                   " served two different payloads";
          }
        }
        if (on.cache.insertions > on.cache.misses) {
          return std::string("cache inserted more frames than it missed");
        }

        // Host cache flag invisible to the model: bit-identical deliveries,
        // clock, and joules.
        if (on.deliveries.size() != off.deliveries.size()) {
          return std::string("delivery count changed with the cache flag");
        }
        for (std::size_t i = 0; i < on.deliveries.size(); ++i) {
          const serve::Delivery& a = on.deliveries[i];
          const serve::Delivery& b = off.deliveries[i];
          if (a.step != b.step || a.viewer != b.viewer || a.key != b.key ||
              a.digest != b.digest || a.bytes != b.bytes) {
            return std::string("delivery ") + std::to_string(i) +
                   " changed with the cache flag";
          }
        }
        if (on.duration.value() != off.duration.value() ||
            on.energy.value() != off.energy.value()) {
          return std::string("virtual time or energy changed with the "
                             "cache flag");
        }
        return ok();
      },
      [](const ServeCase& sc) {
        std::ostringstream os;
        os << "iters=" << sc.config.iterations
           << " period=" << sc.config.io_period
           << " viewers=" << sc.viewers.size()
           << " cmds=" << sc.commands.size() << " buffers=" << sc.buffers
           << " cap=" << sc.capacity;
        return os.str();
      });
}

}  // namespace

void register_builtin_properties() {
  register_hdd_properties();
  register_compress_properties();
  register_replay_properties();
  register_pipeline_properties();
  register_campaign_properties();
  register_energy_properties();
  register_simd_properties();
  register_storage_properties();
  register_serve_properties();
}

}  // namespace greenvis::qa

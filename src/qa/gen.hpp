// Seeded generator combinators for property-based testing.
//
// Every generated value is a pure function of a *choice tape*: the sequence
// of bounded integer draws the generator consumed. Running a generator in
// fresh mode records the tape; running it in replay mode reproduces the
// exact value from a recorded tape. That one level of indirection buys the
// whole framework:
//
//   * determinism  — a root seed fully determines every case (no wall
//     clock, no global state), so failures replay bit-exactly across runs
//     and hosts;
//   * universal shrinking — the shrinker never needs to understand T; it
//     mutates the tape (delete blocks, lower words) and re-runs the
//     generator, which maps smaller tapes to structurally smaller values
//     because every combinator draws sizes and offsets from `lo` upward;
//   * trivial reproducers — a failure is (property name, tape), a few
//     dozen integers in a text file (see property.hpp).
//
// Replay is total: a draw past the end of the tape yields the bound's
// minimum and an over-large recorded word is clamped, so *any* mutated tape
// is a valid input. Generators must therefore tolerate the all-minimal
// value of their domain.
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace greenvis::qa {

/// A recorded choice sequence. Words are the *bounded* draw results (not
/// raw RNG output), so lowering a word always stays in the draw's range.
using Tape = std::vector<std::uint64_t>;

/// The single source of nondeterminism a generator may touch.
class Choices {
 public:
  /// Fresh mode: draw from a seeded xoshiro stream, recording the tape.
  explicit Choices(std::uint64_t seed) : rng_(seed) {}

  /// Replay mode: reproduce a recorded tape. Draws beyond the tape yield 0
  /// (the minimal value); recorded words above the requested bound clamp.
  explicit Choices(Tape replay) : replay_(std::move(replay)), replaying_(true) {}

  /// Uniform draw in [0, n); n >= 1.
  std::uint64_t draw_below(std::uint64_t n) {
    GREENVIS_REQUIRE(n >= 1);
    return next_word(n - 1);
  }

  /// Uniform draw in [lo, hi] (inclusive); shrinks toward lo.
  std::uint64_t draw_range(std::uint64_t lo, std::uint64_t hi) {
    GREENVIS_REQUIRE(lo <= hi);
    return lo + next_word(hi - lo);
  }

  /// Signed inclusive range; shrinks toward lo.
  long long draw_int(long long lo, long long hi) {
    GREENVIS_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo);
    return lo + static_cast<long long>(next_word(span));
  }

  /// Uniform double in [0, 1) with 53-bit resolution; shrinks toward 0.
  double draw_unit() {
    return static_cast<double>(next_word((1ULL << 53) - 1)) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi); shrinks toward lo.
  double draw_real(double lo, double hi) {
    GREENVIS_REQUIRE(lo <= hi);
    return lo + (hi - lo) * draw_unit();
  }

  /// Shrinks toward false.
  bool draw_bool() { return next_word(1) == 1; }

  [[nodiscard]] const Tape& tape() const { return tape_; }
  [[nodiscard]] bool replaying() const { return replaying_; }

 private:
  std::uint64_t next_word(std::uint64_t max_inclusive) {
    std::uint64_t word;
    if (replaying_) {
      word = pos_ < replay_.size() ? replay_[pos_++] : 0;
      if (word > max_inclusive) {
        word = max_inclusive;
      }
    } else if (max_inclusive == ~0ULL) {
      word = rng_.next();
    } else {
      word = rng_.uniform_index(max_inclusive + 1);
    }
    tape_.push_back(word);
    return word;
  }

  util::Xoshiro256 rng_{0};
  Tape replay_;
  std::size_t pos_{0};
  Tape tape_;
  bool replaying_{false};
};

/// A generator is a pure function of the choice stream.
template <typename T>
using Gen = std::function<T(Choices&)>;

// ---------------------------------------------------------------------------
// Primitive combinators. All shrink toward their lower bound / first option.
// ---------------------------------------------------------------------------

[[nodiscard]] inline Gen<std::uint64_t> uint_in(std::uint64_t lo,
                                                std::uint64_t hi) {
  return [lo, hi](Choices& c) { return c.draw_range(lo, hi); };
}

[[nodiscard]] inline Gen<long long> int_in(long long lo, long long hi) {
  return [lo, hi](Choices& c) { return c.draw_int(lo, hi); };
}

[[nodiscard]] inline Gen<double> real_in(double lo, double hi) {
  return [lo, hi](Choices& c) { return c.draw_real(lo, hi); };
}

[[nodiscard]] inline Gen<bool> boolean() {
  return [](Choices& c) { return c.draw_bool(); };
}

template <typename T>
[[nodiscard]] Gen<T> just(T value) {
  return [value](Choices&) { return value; };
}

/// Picks one of `options`; shrinks toward the first.
template <typename T>
[[nodiscard]] Gen<T> element_of(std::vector<T> options) {
  GREENVIS_REQUIRE(!options.empty());
  return [options = std::move(options)](Choices& c) {
    return options[c.draw_below(options.size())];
  };
}

/// Applies `f` to the generated value. Shrinking passes through: the tape
/// shrinks in the source domain and `f` maps the smaller value.
template <typename T, typename F>
[[nodiscard]] auto fmap(Gen<T> gen, F f)
    -> Gen<decltype(f(std::declval<T>()))> {
  return [gen = std::move(gen), f = std::move(f)](Choices& c) {
    return f(gen(c));
  };
}

/// Sequences a dependent generator (monadic bind).
template <typename T, typename F>
[[nodiscard]] auto bind(Gen<T> gen, F f)
    -> Gen<decltype(f(std::declval<T>())(std::declval<Choices&>()))> {
  return [gen = std::move(gen), f = std::move(f)](Choices& c) {
    return f(gen(c))(c);
  };
}

/// Length drawn first (shrinks toward min_len), then that many items.
template <typename T>
[[nodiscard]] Gen<std::vector<T>> vector_of(Gen<T> item, std::size_t min_len,
                                            std::size_t max_len) {
  GREENVIS_REQUIRE(min_len <= max_len);
  return [item = std::move(item), min_len, max_len](Choices& c) {
    const auto n =
        static_cast<std::size_t>(c.draw_range(min_len, max_len));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(item(c));
    }
    return out;
  };
}

template <typename A, typename B>
[[nodiscard]] Gen<std::pair<A, B>> pair_of(Gen<A> a, Gen<B> b) {
  return [a = std::move(a), b = std::move(b)](Choices& c) {
    A first = a(c);   // evaluation order must be deterministic:
    B second = b(c);  // sequence the draws explicitly
    return std::pair<A, B>{std::move(first), std::move(second)};
  };
}

template <typename... Ts>
[[nodiscard]] Gen<std::tuple<Ts...>> tuple_of(Gen<Ts>... gens) {
  return [... gens = std::move(gens)](Choices& c) {
    // Braced init-list evaluation is left-to-right, unlike function
    // arguments — the draw order must not depend on the compiler.
    return std::tuple<Ts...>{gens(c)...};
  };
}

}  // namespace greenvis::qa

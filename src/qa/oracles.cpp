// Built-in differential oracles: paired implementations that must agree.
//
// Each oracle drives a deterministic workload through two implementations
// of the same contract and diffs the structured results. Comparisons are
// bitwise wherever the contract is bitwise (serial vs pool, obs on/off,
// raw codec vs legacy serialization) and tolerance-based only where the
// contract itself is a tolerance (the delta codec).
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <string_view>
#include <vector>

#include "src/codec/field_codec.hpp"
#include "src/core/batch_runner.hpp"
#include "src/core/experiment.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/testbed.hpp"
#include "src/heat/solver.hpp"
#include "src/io/dataset.hpp"
#include "src/heat/solver3d.hpp"
#include "src/obs/obs.hpp"
#include "src/qa/oracle.hpp"
#include "src/serve/session.hpp"
#include "src/serve/viewer.hpp"
#include "src/storage/async_device.hpp"
#include "src/storage/fault.hpp"
#include "src/storage/filesystem.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/raid.hpp"
#include "src/storage/solid_state.hpp"
#include "src/trace/clock.hpp"
#include "src/util/checksum.hpp"
#include "src/util/rng.hpp"
#include "src/util/simd/simd.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/volume.hpp"

namespace greenvis::qa {

namespace {

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

OracleResult pass(std::string detail) {
  return OracleResult{{}, true, std::move(detail)};
}

OracleResult fail(std::string detail) {
  return OracleResult{{}, false, std::move(detail)};
}

util::Field2D reference_field(std::size_t nx, std::size_t ny,
                              std::uint64_t seed) {
  util::Field2D f(nx, ny);
  util::Xoshiro256 rng{seed};
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      f.at(i, j) = 30.0 * std::sin(0.11 * static_cast<double>(i)) *
                       std::cos(0.07 * static_cast<double>(j)) +
                   rng.uniform(-4.0, 4.0);
    }
  }
  return f;
}

core::CaseStudyConfig small_pipeline_config() {
  core::CaseStudyConfig config = core::case_study(1);
  config.iterations = 6;
  config.io_period = 2;
  config.vis.width = 64;
  config.vis.height = 64;
  config.problem.nx = 48;
  config.problem.ny = 48;
  config.problem.executed_sweeps = 10;
  return config;
}

// ---- solver: pool size must never change the numbers ----

OracleResult solver_serial_vs_pool() {
  heat::HeatProblem problem = core::case_study(1).problem;
  problem.nx = 96;
  problem.ny = 96;
  problem.executed_sweeps = 12;
  heat::HeatSolver serial(problem, nullptr);
  util::ThreadPool pool(4);
  heat::HeatSolver pooled(problem, &pool);
  for (int s = 0; s < 4; ++s) {
    serial.step();
    pooled.step();
    if (!bits_equal(serial.temperature().values(),
                    pooled.temperature().values())) {
      return fail("2-D solver diverged from serial at step " +
                  std::to_string(s));
    }
  }

  heat::HeatProblem3D p3;
  p3.nx = 20;
  p3.ny = 18;
  p3.nz = 16;
  heat::HeatSolver3D serial3(p3, nullptr);
  heat::HeatSolver3D pooled3(p3, &pool);
  for (int s = 0; s < 3; ++s) {
    serial3.step();
    pooled3.step();
    if (!bits_equal(serial3.temperature().values(),
                    pooled3.temperature().values())) {
      return fail("3-D solver diverged from serial at step " +
                  std::to_string(s));
    }
  }
  return pass("2-D (96x96, 4 steps) and 3-D (20x18x16, 3 steps) fields "
              "bit-identical for pool sizes 1 and 4");
}

// ---- pipelines: host thread count is invisible to the virtual world ----

OracleResult pipeline_serial_vs_pool() {
  const core::CaseStudyConfig config = small_pipeline_config();
  const auto run = [&](core::PipelineKind kind, std::size_t threads) {
    core::Testbed bed;
    core::PipelineOptions options;
    options.host_threads = threads;
    core::PipelineOutput out =
        kind == core::PipelineKind::kInSitu
            ? core::run_in_situ(bed, config, options)
            : core::run_post_processing(bed, config, options);
    return std::pair<core::PipelineOutput, util::Seconds>{
        std::move(out), bed.clock().now()};
  };
  for (const auto kind :
       {core::PipelineKind::kInSitu, core::PipelineKind::kPostProcessing}) {
    const auto [serial, serial_clock] = run(kind, 1);
    const auto [pooled, pooled_clock] = run(kind, 4);
    const char* name = core::pipeline_kind_name(kind);
    if (serial.image_digests != pooled.image_digests) {
      return fail(std::string(name) + ": image digests differ");
    }
    if (!bits_equal(serial.final_field.values(),
                    pooled.final_field.values())) {
      return fail(std::string(name) + ": final fields differ");
    }
    if (serial_clock.value() != pooled_clock.value()) {
      std::ostringstream os;
      os << name << ": virtual clock differs (" << serial_clock.value()
         << " vs " << pooled_clock.value() << " s)";
      return fail(os.str());
    }
  }
  return pass("both pipelines: digests, final field bits, and virtual clock "
              "identical for 1 vs 4 host threads");
}

// ---- staging: overlap may move time around, never bytes ----

OracleResult pipeline_sync_vs_async() {
  const core::CaseStudyConfig config = small_pipeline_config();
  struct Run {
    core::PipelineOutput out;
    std::vector<std::uint64_t> disk_sums;  // per written step, step order
  };
  const auto run = [&](core::PipelineKind kind) {
    core::Testbed bed;
    core::PipelineOptions options;
    options.host_threads = 4;
    options.stage_buffers = 2;
    Run r;
    r.out = kind == core::PipelineKind::kPostProcessingAsync
                ? core::run_post_processing_async(bed, config, options)
                : core::run_post_processing(bed, config, options);
    // Checksum what actually landed on disk, independent of the pipeline's
    // own read path.
    io::TimestepReader reader(bed.fs(), config.dataset);
    for (int step = 0; step < config.iterations; ++step) {
      if (config.is_io_step(step)) {
        r.disk_sums.push_back(util::fnv1a64(reader.read_step(step)));
      }
    }
    return r;
  };
  const Run sync = run(core::PipelineKind::kPostProcessing);
  const Run async = run(core::PipelineKind::kPostProcessingAsync);
  if (sync.disk_sums != async.disk_sums) {
    return fail("on-disk snapshot bytes differ between sync and async");
  }
  if (sync.out.image_digests != async.out.image_digests) {
    return fail("image digests differ between sync and async");
  }
  if (!bits_equal(sync.out.final_field.values(),
                  async.out.final_field.values())) {
    return fail("final fields differ between sync and async");
  }
  if (sync.out.snapshot_bytes_written.value() !=
          async.out.snapshot_bytes_written.value() ||
      sync.out.snapshot_bytes_read.value() !=
          async.out.snapshot_bytes_read.value() ||
      sync.out.snapshot_bytes_raw.value() !=
          async.out.snapshot_bytes_raw.value()) {
    return fail("snapshot byte accounting differs between sync and async");
  }
  return pass(std::to_string(sync.disk_sums.size()) +
              " written steps: on-disk checksums, image digests, final field "
              "bits, and snapshot accounting identical for sync vs async "
              "staging (2 buffers)");
}

// ---- batch: work-stealing shards must equal the serial loop exactly ----
//
// BatchRunner fans jobs out over work-stealing shards; whichever thread a
// job lands on, its metrics — virtual durations, joules, digests, field
// bits — must match a plain serial loop over the same jobs, in job order.

OracleResult batch_sharded_vs_serial() {
  const core::CaseStudyConfig base = small_pipeline_config();
  std::vector<core::BatchJob> jobs;
  for (const int period : {1, 2, 3}) {
    for (const auto kind : {core::PipelineKind::kPostProcessing,
                            core::PipelineKind::kInSitu}) {
      core::BatchJob job;
      job.kind = kind;
      job.config = base;
      job.config.io_period = period;
      jobs.push_back(job);
    }
  }
  core::TestbedConfig slow;  // one job on a different machine state
  slow.frequency_ghz = 1.6;
  jobs[1].testbed = slow;

  const core::Experiment experiment;
  std::vector<core::PipelineMetrics> serial;
  serial.reserve(jobs.size());
  for (const core::BatchJob& job : jobs) {
    serial.push_back(job.testbed
                         ? core::Experiment(*job.testbed)
                               .run(job.kind, job.config, job.options)
                         : experiment.run(job.kind, job.config, job.options));
  }
  const std::vector<core::PipelineMetrics> sharded =
      core::BatchRunner(4).run(experiment, jobs);
  if (sharded.size() != serial.size()) {
    return fail("result count differs from job count");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const core::PipelineMetrics& a = serial[i];
    const core::PipelineMetrics& b = sharded[i];
    if (a.duration.value() != b.duration.value() ||
        a.energy.value() != b.energy.value() ||
        a.average_power.value() != b.average_power.value() ||
        a.peak_power.value() != b.peak_power.value() ||
        a.efficiency != b.efficiency) {
      return fail("job " + std::to_string(i) +
                  ": headline metrics differ between serial and sharded");
    }
    if (a.output.image_digests != b.output.image_digests ||
        !bits_equal(a.output.final_field.values(),
                    b.output.final_field.values())) {
      return fail("job " + std::to_string(i) +
                  ": science outputs differ between serial and sharded");
    }
  }
  return pass(std::to_string(jobs.size()) +
              " jobs (2 pipelines x 3 periods, one DVFS override): metrics, "
              "digests, and field bits identical for serial vs 4-way "
              "work-stealing shards");
}

// ---- codec: raw is the identity, delta honors its bound and its books ----

OracleResult codec_raw_vs_delta() {
  const util::Field2D f = reference_field(96, 80, 11);
  const double tolerance = 1e-3;

  codec::FieldCodec raw{codec::CodecConfig{codec::Kind::kRaw, tolerance, 32}};
  const auto raw_blob = raw.encode(f);
  if (raw_blob != f.serialize()) {
    return fail("raw codec output differs from legacy serialization");
  }
  if (!bits_equal(codec::FieldCodec::decode2d(raw_blob).values(),
                  f.values())) {
    return fail("raw round trip is not bit exact");
  }

  codec::FieldCodec delta{
      codec::CodecConfig{codec::Kind::kDelta, tolerance, 32}};
  const auto delta_blob = delta.encode(f);
  const util::Field2D g = codec::FieldCodec::decode2d(delta_blob);
  double max_err = 0.0;
  for (std::size_t k = 0; k < f.size(); ++k) {
    max_err = std::max(max_err, std::abs(f.values()[k] - g.values()[k]));
  }
  if (max_err > tolerance * (1.0 + 1e-9)) {
    std::ostringstream os;
    os << "delta error " << max_err << " exceeds tolerance " << tolerance;
    return fail(os.str());
  }
  // Byte accounting: both codecs charge the same uncompressed payload.
  if (raw.last_stats().raw_bytes != delta.last_stats().raw_bytes) {
    return fail("raw_bytes accounting differs between raw and delta");
  }
  if (delta.last_stats().encoded_bytes >= raw.last_stats().raw_bytes) {
    return fail("delta did not compress a smooth field");
  }
  std::ostringstream os;
  os << "raw == legacy bytes; delta max error " << max_err << " <= "
     << tolerance << ", ratio " << delta.last_stats().ratio() << "x on equal "
     << raw.last_stats().raw_bytes << " raw bytes";
  return pass(os.str());
}

// ---- page cache: a timing model only — data and event order invariant ----

OracleResult cache_on_vs_off() {
  struct Event {
    std::string file;
    std::uint64_t bytes;
    std::uint64_t checksum;
  };
  const auto run = [](storage::ReadMode mode) {
    trace::VirtualClock clock;
    storage::HddModel hdd{storage::HddParams{}};
    storage::FsParams params;
    params.allocation = storage::AllocationPolicy::kAged;
    storage::Filesystem fs(hdd, clock, params);

    util::Xoshiro256 rng{77};
    std::vector<Event> events;
    std::vector<std::pair<std::string, std::size_t>> files;
    for (int k = 0; k < 6; ++k) {
      const std::string name = "f" + std::to_string(k) + ".bin";
      const std::size_t bytes = 1 + rng.uniform_index(96 * 1024);
      std::vector<std::uint8_t> data(bytes);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.next() & 0xFF);
      }
      auto fd = fs.create(name);
      fs.write(fd, data,
               k % 2 == 0 ? storage::WriteMode::kBuffered
                          : storage::WriteMode::kSync);
      fs.fsync(fd);
      fs.close(fd);
      files.emplace_back(name, bytes);
    }
    fs.drop_caches();
    double last = clock.now().value();
    bool monotone = true;
    for (const auto& [name, bytes] : files) {
      auto fd = fs.open(name);
      std::vector<std::uint8_t> back(bytes);
      const std::uint64_t got = fs.pread(fd, back, 0, mode);
      fs.close(fd);
      events.push_back(Event{name, got, util::fnv1a64(back)});
      if (clock.now().value() < last) {
        monotone = false;
      }
      last = clock.now().value();
    }
    return std::pair<std::vector<Event>, bool>{std::move(events), monotone};
  };

  const auto [cached, cached_monotone] = run(storage::ReadMode::kBuffered);
  const auto [direct, direct_monotone] = run(storage::ReadMode::kDirect);
  if (!cached_monotone || !direct_monotone) {
    return fail("virtual clock went backwards during reads");
  }
  if (cached.size() != direct.size()) {
    return fail("event counts differ");
  }
  for (std::size_t i = 0; i < cached.size(); ++i) {
    if (cached[i].file != direct[i].file ||
        cached[i].bytes != direct[i].bytes ||
        cached[i].checksum != direct[i].checksum) {
      return fail("event " + std::to_string(i) + " (" + cached[i].file +
                  ") diverged between cached and direct reads");
    }
  }
  return pass(std::to_string(cached.size()) +
              " read events: identical order, sizes, and payload checksums "
              "with the page cache on (buffered) and off (direct)");
}

// ---- storage: the async queue at depth 1 / noop IS the sync path ----

OracleResult storage_async_vs_sync() {
  // A serial device rig: the concrete device plus whatever it wraps.
  struct Rig {
    std::vector<std::unique_ptr<storage::BlockDevice>> keep;
    storage::BlockDevice* dev{nullptr};
  };
  const auto make_rig = [](std::string_view label) {
    Rig rig;
    const auto own = [&rig](std::unique_ptr<storage::BlockDevice> d) {
      rig.dev = d.get();
      rig.keep.push_back(std::move(d));
      return rig.dev;
    };
    if (label == "hdd") {
      own(std::make_unique<storage::HddModel>(storage::HddParams{}));
    } else if (label == "ssd") {
      own(std::make_unique<storage::SolidStateModel>(
          storage::sata_ssd_params()));
    } else if (label == "nvram") {
      own(std::make_unique<storage::SolidStateModel>(
          storage::nvram_params()));
    } else if (label == "raid0") {
      std::vector<std::unique_ptr<storage::BlockDevice>> children;
      for (int i = 0; i < 3; ++i) {
        children.push_back(
            std::make_unique<storage::HddModel>(storage::HddParams{}));
      }
      own(std::make_unique<storage::Raid0Model>(std::move(children)));
    } else {  // faulty: retry-prone HDD with an unreadable range
      auto* inner =
          own(std::make_unique<storage::HddModel>(storage::HddParams{}));
      storage::FaultConfig fc;
      fc.retry_probability = 0.25;
      fc.bad_ranges.push_back(
          storage::FaultConfig::BadRange{48 * 1024 * 1024, 16 * 1024 * 1024});
      own(std::make_unique<storage::FaultyDisk>(*inner, fc));
    }
    return rig;
  };

  // Deterministic aligned stream with nondecreasing submit times.
  struct Stream {
    std::vector<storage::IoRequest> requests;
    std::vector<util::Seconds> submits;
  };
  const auto make_stream = [] {
    Stream s;
    util::Xoshiro256 rng{0xA51D};
    util::Seconds t{0.0};
    for (int i = 0; i < 48; ++i) {
      storage::IoRequest r;
      r.kind = (rng.next() & 1) != 0 ? storage::IoKind::kWrite
                                     : storage::IoKind::kRead;
      r.offset = rng.uniform_index(64 * 1024) * 4096;
      r.length = static_cast<std::uint32_t>((1 + rng.uniform_index(128)) *
                                            4096);
      t += util::Seconds{rng.uniform(0.0, 0.004)};
      s.requests.push_back(r);
      s.submits.push_back(t);
    }
    return s;
  };

  const Stream stream = make_stream();
  for (const std::string_view label :
       {std::string_view{"hdd"}, std::string_view{"ssd"},
        std::string_view{"nvram"}, std::string_view{"raid0"},
        std::string_view{"faulty"}}) {
    // Legacy synchronous path: chained service_outcome calls, each starting
    // at max(previous end, submit time).
    Rig sync = make_rig(label);
    std::vector<storage::IoOutcome> expected;
    util::Seconds cursor{0.0};
    for (std::size_t i = 0; i < stream.requests.size(); ++i) {
      const util::Seconds start = std::max(cursor, stream.submits[i]);
      expected.push_back(
          sync.dev->service_outcome(stream.requests[i], start));
      cursor = expected.back().end;
    }

    // Async path: queue depth 1, noop scheduler, streaming submit/poll.
    Rig async = make_rig(label);
    storage::AsyncBlockDevice queue(
        *async.dev,
        storage::AsyncDeviceConfig{1, storage::IoSchedulerKind::kNoop});
    for (std::size_t i = 0; i < stream.requests.size(); ++i) {
      queue.submit(stream.requests[i], stream.submits[i]);
    }
    (void)queue.drain();
    std::vector<storage::CompletionRecord> records;
    queue.poll(records);

    const std::string where{label};
    if (records.size() != expected.size()) {
      return fail(where + ": completion count " +
                  std::to_string(records.size()) + " != " +
                  std::to_string(expected.size()));
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].complete.value() != expected[i].end.value()) {
        return fail(where + ": request " + std::to_string(i) +
                    " completion time diverged");
      }
      if (records[i].ok != expected[i].ok ||
          records[i].error != expected[i].error) {
        return fail(where + ": request " + std::to_string(i) +
                    " error state diverged");
      }
    }
    const storage::DeviceCounters& a = sync.dev->counters();
    const storage::DeviceCounters& b = async.dev->counters();
    if (a.reads != b.reads || a.writes != b.writes ||
        a.bytes_read.value() != b.bytes_read.value() ||
        a.bytes_written.value() != b.bytes_written.value()) {
      return fail(where + ": DeviceCounters diverged");
    }
    const auto& sa = sync.dev->activity().segments();
    const auto& sb = async.dev->activity().segments();
    if (sa.size() != sb.size()) {
      return fail(where + ": activity segment count diverged");
    }
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].begin.value() != sb[i].begin.value() ||
          sa[i].end.value() != sb[i].end.value() ||
          sa[i].phase != sb[i].phase) {
        return fail(where + ": activity segment " + std::to_string(i) +
                    " diverged");
      }
    }
  }
  return pass("hdd/ssd/nvram/raid0/faulty: completion times, error states, "
              "DeviceCounters, and DiskActivityLog segments bit-identical "
              "between the async queue (depth 1, noop) and the legacy "
              "synchronous path over a 48-request stream");
}

// ---- observability: watching the run must not change the run ----

OracleResult obs_on_vs_off() {
  struct ObsGuard {
    ~ObsGuard() { obs::set_enabled(false); }
  } guard;

  const core::CaseStudyConfig config = small_pipeline_config();
  const auto run = [&] {
    core::Testbed bed;
    core::PipelineOptions options;
    options.host_threads = 2;
    auto out = core::run_post_processing(bed, config, options);
    return std::pair<core::PipelineOutput, util::Seconds>{std::move(out),
                                                          bed.clock().now()};
  };
  obs::set_enabled(false);
  const auto [off, off_clock] = run();
  obs::set_enabled(true);
  const auto [on, on_clock] = run();
  obs::set_enabled(false);

  if (off.image_digests != on.image_digests) {
    return fail("image digests changed when obs was enabled");
  }
  if (!bits_equal(off.final_field.values(), on.final_field.values())) {
    return fail("final field changed when obs was enabled");
  }
  if (off_clock.value() != on_clock.value()) {
    return fail("virtual clock changed when obs was enabled");
  }
  if (off.snapshot_bytes_written.value() != on.snapshot_bytes_written.value()) {
    return fail("snapshot byte accounting changed when obs was enabled");
  }
  return pass("post-processing outputs (digests, field bits, clock, "
              "snapshot bytes) byte-identical with obs on and off");
}

// ---- energy profiler: attribution must be a read-only observer ----

OracleResult profiler_on_vs_off() {
  struct ProfilerGuard {
    ~ProfilerGuard() { obs::set_energy_profiler_enabled(false); }
  } guard;

  const core::CaseStudyConfig config = small_pipeline_config();
  const auto run = [&] {
    core::PipelineOptions options;
    options.host_threads = 2;
    return core::Experiment().run(core::PipelineKind::kPostProcessing,
                                  config, options);
  };
  obs::set_energy_profiler_enabled(false);
  const core::PipelineMetrics off = run();
  obs::set_energy_profiler_enabled(true);
  const core::PipelineMetrics on = run();
  obs::set_energy_profiler_enabled(false);

  if (off.output.image_digests != on.output.image_digests) {
    return fail("image digests changed when the energy profiler was enabled");
  }
  if (!bits_equal(off.output.final_field.values(),
                  on.output.final_field.values())) {
    return fail("final field changed when the energy profiler was enabled");
  }
  if (off.duration.value() != on.duration.value() ||
      off.energy.value() != on.energy.value() ||
      off.average_power.value() != on.average_power.value() ||
      off.peak_power.value() != on.peak_power.value()) {
    return fail("headline metrics changed when the energy profiler was "
                "enabled");
  }
  // The attribution itself must be bit-identical too: it is always computed
  // (campaign columns depend on it), the flag only gates gauges/counters.
  if (off.attribution.stages.size() != on.attribution.stages.size() ||
      off.attribution.total().value() != on.attribution.total().value() ||
      off.attribution.static_total().value() !=
          on.attribution.static_total().value()) {
    return fail("attribution report changed with the profiler flag");
  }
  for (std::size_t i = 0; i < off.attribution.stages.size(); ++i) {
    const obs::StageEnergy& a = off.attribution.stages[i];
    const obs::StageEnergy& b = on.attribution.stages[i];
    if (a.name != b.name || a.total().value() != b.total().value()) {
      return fail("stage '" + a.name + "' attribution changed with the "
                  "profiler flag");
    }
  }
  return pass("pipeline outputs, headline metrics, and the attribution "
              "report itself byte-identical with the energy profiler on and "
              "off");
}

// ---- snapshot decode: legacy and chunked containers are one namespace ----

OracleResult legacy_vs_chunked_decode() {
  const util::Field2D f = reference_field(65, 43, 5);
  const auto legacy = f.serialize();
  if (codec::FieldCodec::is_container(legacy)) {
    return fail("legacy serialization misdetected as a codec container");
  }
  if (!bits_equal(codec::FieldCodec::decode2d(legacy).values(), f.values())) {
    return fail("legacy 2-D blob did not decode bit-exactly");
  }

  codec::FieldCodec rle{codec::CodecConfig{codec::Kind::kRle, 1e-3, 16}};
  const auto container = rle.encode(f);
  if (!codec::FieldCodec::is_container(container)) {
    return fail("rle container missing magic");
  }
  if (!bits_equal(codec::FieldCodec::decode2d(container).values(),
                  f.values())) {
    return fail("chunked rle container did not decode bit-exactly");
  }

  util::Field3D f3(12, 9, 7);
  util::Xoshiro256 rng{9};
  for (double& v : f3.values()) {
    v = rng.uniform(-50.0, 50.0);
  }
  if (!bits_equal(codec::FieldCodec::decode3d(f3.serialize()).values(),
                  f3.values())) {
    return fail("legacy 3-D blob did not decode bit-exactly");
  }
  codec::FieldCodec raw3{codec::CodecConfig{codec::Kind::kRaw, 1e-3, 8}};
  if (raw3.encode(f3) != f3.serialize()) {
    return fail("3-D raw codec output differs from legacy serialization");
  }
  return pass("legacy and chunked blobs (2-D and 3-D) decode through one "
              "auto-detecting path, bit-exactly");
}

// ---- simd: every vector path must reproduce the scalar bits ----
//
// Runs the SIMD-accelerated workloads — both solvers, the delta codec
// round trip, and the volume renderer — once per supported ISA path and
// diffs every output byte against the scalar reference. Trivially passes
// (with a note) on hosts where scalar is the only supported path.

OracleResult simd_scalar_vs_vector() {
  namespace simd = util::simd;

  struct Outputs {
    std::vector<double> field2d;
    std::vector<double> field3d;
    std::vector<std::uint8_t> blob;
    std::vector<double> decoded;
    std::vector<std::uint64_t> images;
  };
  const auto run = [] {
    Outputs o;

    heat::HeatProblem problem = core::case_study(1).problem;
    problem.nx = 70;  // odd-ish width: exercises the vector remainder tails
    problem.ny = 66;
    problem.executed_sweeps = 10;
    heat::HeatSolver solver(problem, nullptr);
    for (int s = 0; s < 3; ++s) {
      solver.step();
    }
    const auto v2 = solver.temperature().values();
    o.field2d.assign(v2.begin(), v2.end());

    heat::HeatProblem3D p3;
    p3.nx = 22;
    p3.ny = 17;
    p3.nz = 13;
    heat::HeatSolver3D solver3(p3, nullptr);
    for (int s = 0; s < 2; ++s) {
      solver3.step();
    }
    const auto v3 = solver3.temperature().values();
    o.field3d.assign(v3.begin(), v3.end());

    const util::Field2D f = reference_field(97, 61, 23);
    codec::FieldCodec delta{codec::CodecConfig{codec::Kind::kDelta, 1e-4, 32}};
    o.blob = delta.encode(f);
    const util::Field2D dec = codec::FieldCodec::decode2d(o.blob);
    o.decoded.assign(dec.values().begin(), dec.values().end());

    util::Field3D vol(24, 20, 16);
    util::Xoshiro256 rng{41};
    for (double& v : vol.values()) {
      v = rng.uniform(0.0, 1.0);
    }
    vis::VolumeConfig vc;
    vc.width = 48;
    vc.height = 40;
    o.images.push_back(vis::render_volume(vol, vc).digest());
    vc.camera.azimuth_deg = 140.0;
    vc.camera.elevation_deg = -10.0;
    o.images.push_back(vis::render_volume(vol, vc).digest());
    return o;
  };

  const simd::IsaPath before = simd::active_path();
  struct PathGuard {
    simd::IsaPath restore;
    ~PathGuard() { simd::set_path(restore); }
  } guard{before};

  simd::set_path(simd::IsaPath::kScalar);
  const Outputs scalar = run();

  std::string checked;
  for (const simd::IsaPath path : simd::supported_paths()) {
    if (path == simd::IsaPath::kScalar) {
      continue;
    }
    simd::set_path(path);
    const Outputs vec = run();
    const char* name = simd::path_name(path);
    if (!bits_equal(scalar.field2d, vec.field2d)) {
      return fail(std::string(name) + ": 2-D solver field diverged");
    }
    if (!bits_equal(scalar.field3d, vec.field3d)) {
      return fail(std::string(name) + ": 3-D solver field diverged");
    }
    if (scalar.blob != vec.blob) {
      return fail(std::string(name) + ": delta codec bytes diverged");
    }
    if (!bits_equal(scalar.decoded, vec.decoded)) {
      return fail(std::string(name) + ": delta codec decode diverged");
    }
    if (scalar.images != vec.images) {
      return fail(std::string(name) + ": volume render digests diverged");
    }
    checked += checked.empty() ? name : std::string(", ") + name;
  }
  if (checked.empty()) {
    return pass("scalar is the only supported path on this host — nothing "
                "to diff (vacuous pass)");
  }
  return pass("solver fields, codec bytes, decode bits, and render digests "
              "bit-identical to scalar for: " + checked);
}

// ---- serving: the frame cache is a host accelerator, not a model knob ----
//
// The modeled system always dedups shared views; the FrameCache flag only
// decides whether the host re-rasters. So everything the model reports —
// deliveries, virtual duration, joules, the per-viewer split — must be
// bit-identical cache on vs off, while the host-side counters diverge in
// exactly the predicted way (misses = unique views, hits = sharers).

OracleResult serve_cached_vs_uncached() {
  serve::ServeConfig config;
  config.base = small_pipeline_config();
  config.base.iterations = 8;
  config.viewers = serve::default_fleet(6, 3);
  serve::SteerCommand steer;
  steer.step = 4;
  steer.viewer = 1;
  steer.kind = serve::SteerKind::kIsoLevels;
  steer.iso_levels = 9;
  config.commands.push_back(steer);

  config.cache_enabled = true;
  const serve::ServeReport on = serve::run_serve_session(config);
  config.cache_enabled = false;
  const serve::ServeReport off = serve::run_serve_session(config);

  if (on.deliveries.size() != off.deliveries.size()) {
    return fail("delivery counts differ between cache on and off");
  }
  for (std::size_t i = 0; i < on.deliveries.size(); ++i) {
    const serve::Delivery& a = on.deliveries[i];
    const serve::Delivery& b = off.deliveries[i];
    if (a.step != b.step || a.viewer != b.viewer || a.key != b.key ||
        a.digest != b.digest || a.bytes != b.bytes) {
      return fail("delivery " + std::to_string(i) +
                  " diverged between cache on and off");
    }
  }
  if (on.duration.value() != off.duration.value() ||
      on.energy.value() != off.energy.value() ||
      on.average_power.value() != off.average_power.value() ||
      on.peak_power.value() != off.peak_power.value()) {
    return fail("virtual duration or energy changed with the cache flag");
  }
  if (on.attribution.total().value() != off.attribution.total().value() ||
      on.attribution.static_total().value() !=
          off.attribution.static_total().value()) {
    return fail("energy attribution changed with the cache flag");
  }
  if (on.viewers.size() != off.viewers.size()) {
    return fail("per-viewer row counts differ");
  }
  for (std::size_t i = 0; i < on.viewers.size(); ++i) {
    const serve::ViewerEnergy& a = on.viewers[i];
    const serve::ViewerEnergy& b = off.viewers[i];
    if (a.viewer != b.viewer || a.frames != b.frames || a.bytes != b.bytes ||
        a.render_share_s != b.render_share_s || a.render_j != b.render_j ||
        a.encode_j != b.encode_j || a.deliver_j != b.deliver_j) {
      return fail("viewer " + std::to_string(a.viewer) +
                  " energy split changed with the cache flag");
    }
  }
  if (on.unique_views_rendered != off.unique_views_rendered) {
    return fail("modeled unique-view count changed with the cache flag");
  }
  // Host-side divergence, exactly as predicted.
  if (on.cache.hits == 0 ||
      on.cache.misses != on.unique_views_rendered ||
      on.host_renders != on.cache.misses) {
    return fail("cache-on counters inconsistent (hits " +
                std::to_string(on.cache.hits) + ", misses " +
                std::to_string(on.cache.misses) + ", host renders " +
                std::to_string(on.host_renders) + ")");
  }
  if (off.cache.lookups() != 0 ||
      off.host_renders != off.frames_delivered) {
    return fail("cache-off path touched the cache or skipped a render");
  }
  std::ostringstream os;
  os << on.deliveries.size() << " deliveries to " << on.viewers.size()
     << " viewers: payload digests, virtual time, joules, and per-viewer "
        "splits bit-identical cache on/off; host renders "
     << on.host_renders << " vs " << off.host_renders;
  return pass(os.str());
}

}  // namespace

void register_builtin_oracles() {
  auto& registry = OracleRegistry::global();
  registry.add("solver.serial_vs_pool", solver_serial_vs_pool);
  registry.add("pipeline.serial_vs_pool", pipeline_serial_vs_pool);
  registry.add("pipeline.sync_vs_async", pipeline_sync_vs_async);
  registry.add("batch.sharded_vs_serial", batch_sharded_vs_serial);
  registry.add("codec.raw_vs_delta", codec_raw_vs_delta);
  registry.add("storage.cache_on_vs_off", cache_on_vs_off);
  registry.add("storage.async_vs_sync", storage_async_vs_sync);
  registry.add("obs.on_vs_off", obs_on_vs_off);
  registry.add("obs.profiler_on_off", profiler_on_vs_off);
  registry.add("codec.legacy_vs_chunked_decode", legacy_vs_chunked_decode);
  registry.add("simd.scalar_vs_vector", simd_scalar_vs_vector);
  registry.add("serve.cached_vs_uncached", serve_cached_vs_uncached);
}

}  // namespace greenvis::qa

// Named-property registry.
//
// Properties registered here are runnable by name — which is what lets a
// reproducer file written by any test binary be replayed from the CLI
// (`greenvis verify --qa-repro=<file>`) without knowing which binary
// produced it. The gtest property suites iterate the same registry, so a
// property is defined exactly once (src/qa/properties.cpp) and exercised
// from both entry points.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/qa/property.hpp"

namespace greenvis::qa {

class PropertyRegistry {
 public:
  using RunFn = std::function<CheckResult(const Config&)>;

  [[nodiscard]] static PropertyRegistry& global();

  /// Registers (or replaces) a property runner under `name`.
  void add(const std::string& name, RunFn fn);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Runs one property; throws ContractViolation for unknown names.
  [[nodiscard]] CheckResult run(const std::string& name,
                                const Config& config) const;

 private:
  std::vector<std::pair<std::string, RunFn>> entries_;
};

/// Registers the built-in property sweeps (idempotent).
void register_builtin_properties();

/// Loads a reproducer file and replays it through the registry.
[[nodiscard]] CheckResult replay_repro_file(const std::string& path);

}  // namespace greenvis::qa

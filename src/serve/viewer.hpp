// Viewer sessions for the live-frame serving layer.
//
// The paper treats in-situ visualization as write-only; ISAAC-style
// interactive in-situ turns it into a service: N concurrent clients
// subscribe to the frame stream, each with its own resolution, palette,
// iso-level count, and region of interest, and may steer those parameters
// between timesteps. This header defines the per-viewer state — view
// parameters, steering commands, join/leave schedules — and the canonical
// frame key that makes renders content-addressed: two viewers whose
// parameters hash alike at a timestep share one raster.
//
// Keys follow the campaign engine's hashing discipline: a versioned,
// fixed-field-order canonical text (doubles as IEEE-754 bit patterns, so
// the key survives locale/printf differences) folded through FNV-1a-64.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/field.hpp"
#include "src/vis/pipeline.hpp"

namespace greenvis::serve {

/// Everything that affects a viewer's rendered pixels. The region of
/// interest is the 2-D realization of a camera: fractional pan/zoom over
/// the field, [x0, x1) x [y0, y1) with the full field as default.
struct ViewParams {
  std::size_t width{256};
  std::size_t height{256};
  std::size_t iso_levels{5};
  vis::Palette palette{vis::Palette::kCoolWarm};
  double roi_x0{0.0};
  double roi_y0{0.0};
  double roi_x1{1.0};
  double roi_y1{1.0};

  friend bool operator==(const ViewParams&, const ViewParams&) = default;
};

/// Canonical fixed-order text of the view parameters (no timestep/field
/// component) — the equality class of "same view".
[[nodiscard]] std::string canonical_view_text(const ViewParams& params);

/// Content address of one frame: FNV-1a-64 over
/// "greenvis.serve.frame.v1|step=..|field=<digest hex>|<view text>".
/// Identical key <=> identical pixels, because the render is a pure
/// function of (field, view parameters).
[[nodiscard]] std::uint64_t frame_key(int step, std::uint64_t field_digest,
                                      const ViewParams& params);

/// Digest of the raw field values (bit patterns) — the key's field
/// component, so a cache entry can never outlive the data it rendered.
[[nodiscard]] std::uint64_t field_digest(const util::Field2D& field);

/// The steerable knobs. Commands are applied deterministically between
/// timesteps: all commands with cmd.step == s run, in list order, before
/// frame s renders — virtual-time order, never host arrival order.
enum class SteerKind { kIsoLevels, kPalette, kRegion, kResolution };

struct SteerCommand {
  int step{0};
  int viewer{0};
  SteerKind kind{SteerKind::kIsoLevels};
  /// Payload (only the fields for `kind` are read).
  std::size_t iso_levels{5};
  vis::Palette palette{vis::Palette::kCoolWarm};
  double x0{0.0}, y0{0.0}, x1{1.0}, y1{1.0};
  std::size_t width{256}, height{256};
};

/// One subscriber: active on frame steps s with join_step <= s and
/// (leave_step < 0 or s < leave_step).
struct ViewerSchedule {
  int viewer{0};
  int join_step{0};
  /// First step the viewer no longer receives frames; -1 = until the end.
  int leave_step{-1};
  ViewParams params{};

  [[nodiscard]] bool active_at(int step) const {
    return step >= join_step && (leave_step < 0 || step < leave_step);
  }
};

/// Apply one command to `params` (clamping the region to a non-empty,
/// in-range rectangle). Pure.
[[nodiscard]] ViewParams apply_steer(const ViewParams& params,
                                     const SteerCommand& cmd);

/// Map view parameters onto the shared renderer's config: resolution,
/// contour/iso count, palette (the region of interest is applied by
/// cropping the field before the render).
[[nodiscard]] vis::VisConfig vis_config_for(const ViewParams& params,
                                            const vis::VisConfig& base);

/// Integer crop rectangle of `params`' region on an nx-by-ny field —
/// clamped so at least a 2x2 cell window survives any steering input.
struct CropRect {
  std::size_t i0{0}, j0{0}, nx{0}, ny{0};
  [[nodiscard]] bool full(std::size_t field_nx, std::size_t field_ny) const {
    return i0 == 0 && j0 == 0 && nx == field_nx && ny == field_ny;
  }
};
[[nodiscard]] CropRect crop_rect(const ViewParams& params, std::size_t nx,
                                 std::size_t ny);

/// The acceptance scenario's fleet: `count` viewers in `groups` distinct
/// view-parameter groups (viewer i belongs to group i % groups), each group
/// with its own iso count/palette/region so the groups' frame keys are
/// provably distinct. Deterministic.
[[nodiscard]] std::vector<ViewerSchedule> default_fleet(
    int count, int groups, const ViewParams& base = {});

}  // namespace greenvis::serve

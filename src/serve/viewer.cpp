#include "src/serve/viewer.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <span>

#include "src/util/checksum.hpp"
#include "src/util/error.hpp"

namespace greenvis::serve {
namespace {

// Doubles enter the canonical text as IEEE-754 bit patterns (16 hex
// digits), mirroring the campaign hasher: printf rounding or locale can
// never split an equality class.
void append_double_bits(std::string& out, double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[21];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_hex64(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

ViewParams clamp_region(ViewParams p) {
  p.roi_x0 = std::clamp(p.roi_x0, 0.0, 1.0);
  p.roi_y0 = std::clamp(p.roi_y0, 0.0, 1.0);
  p.roi_x1 = std::clamp(p.roi_x1, 0.0, 1.0);
  p.roi_y1 = std::clamp(p.roi_y1, 0.0, 1.0);
  if (p.roi_x1 < p.roi_x0) std::swap(p.roi_x0, p.roi_x1);
  if (p.roi_y1 < p.roi_y0) std::swap(p.roi_y0, p.roi_y1);
  return p;
}

}  // namespace

std::string canonical_view_text(const ViewParams& params) {
  std::string text = "w=";
  append_u64(text, params.width);
  text += "|h=";
  append_u64(text, params.height);
  text += "|iso=";
  append_u64(text, params.iso_levels);
  text += "|pal=";
  text += vis::palette_name(params.palette);
  text += "|roi=";
  append_double_bits(text, params.roi_x0);
  text += ",";
  append_double_bits(text, params.roi_y0);
  text += ",";
  append_double_bits(text, params.roi_x1);
  text += ",";
  append_double_bits(text, params.roi_y1);
  return text;
}

std::uint64_t frame_key(int step, std::uint64_t digest,
                        const ViewParams& params) {
  std::string text = "greenvis.serve.frame.v1|step=";
  append_u64(text, static_cast<std::uint64_t>(step));
  text += "|field=";
  append_hex64(text, digest);
  text += "|";
  text += canonical_view_text(params);
  return util::fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::uint64_t field_digest(const util::Field2D& field) {
  const std::span<const double> values = field.values();
  return util::fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(values.data()),
      values.size() * sizeof(double)));
}

ViewParams apply_steer(const ViewParams& params, const SteerCommand& cmd) {
  ViewParams next = params;
  switch (cmd.kind) {
    case SteerKind::kIsoLevels:
      next.iso_levels = std::max<std::size_t>(1, cmd.iso_levels);
      break;
    case SteerKind::kPalette:
      next.palette = cmd.palette;
      break;
    case SteerKind::kRegion:
      next.roi_x0 = cmd.x0;
      next.roi_y0 = cmd.y0;
      next.roi_x1 = cmd.x1;
      next.roi_y1 = cmd.y1;
      next = clamp_region(next);
      break;
    case SteerKind::kResolution:
      next.width = std::max<std::size_t>(16, cmd.width);
      next.height = std::max<std::size_t>(16, cmd.height);
      break;
  }
  return next;
}

vis::VisConfig vis_config_for(const ViewParams& params,
                              const vis::VisConfig& base) {
  vis::VisConfig cfg = base;
  cfg.width = params.width;
  cfg.height = params.height;
  cfg.contour_levels = params.iso_levels;
  cfg.palette = params.palette;
  return cfg;
}

CropRect crop_rect(const ViewParams& raw, std::size_t nx, std::size_t ny) {
  GREENVIS_REQUIRE(nx >= 2 && ny >= 2);
  const ViewParams params = clamp_region(raw);
  CropRect r;
  r.i0 = std::min(static_cast<std::size_t>(params.roi_x0 *
                                           static_cast<double>(nx)),
                  nx - 2);
  r.j0 = std::min(static_cast<std::size_t>(params.roi_y0 *
                                           static_cast<double>(ny)),
                  ny - 2);
  std::size_t i1 = std::min(
      static_cast<std::size_t>(params.roi_x1 * static_cast<double>(nx)), nx);
  std::size_t j1 = std::min(
      static_cast<std::size_t>(params.roi_y1 * static_cast<double>(ny)), ny);
  i1 = std::max(i1, r.i0 + 2);
  j1 = std::max(j1, r.j0 + 2);
  r.nx = i1 - r.i0;
  r.ny = j1 - r.j0;
  return r;
}

std::vector<ViewerSchedule> default_fleet(int count, int groups,
                                          const ViewParams& base) {
  GREENVIS_REQUIRE(count >= 1 && groups >= 1);
  std::vector<ViewerSchedule> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  constexpr vis::Palette kPalettes[] = {vis::Palette::kCoolWarm,
                                        vis::Palette::kHot,
                                        vis::Palette::kGrayscale};
  for (int i = 0; i < count; ++i) {
    const int g = i % groups;
    ViewerSchedule sched;
    sched.viewer = i;
    sched.params = base;
    // Each group gets a distinct (iso count, palette, region) triple so the
    // groups' canonical view texts — and hence frame keys — never collide.
    sched.params.iso_levels = 3 + static_cast<std::size_t>(g);
    sched.params.palette = kPalettes[g % 3];
    sched.params.roi_x0 = 0.05 * static_cast<double>(g % 4);
    sched.params.roi_y0 = 0.05 * static_cast<double>(g % 4);
    fleet.push_back(sched);
  }
  return fleet;
}

}  // namespace greenvis::serve

// The viewer-serving session: one simulation, N subscribed clients.
//
// The paper's pipelines end at an image on disk; interactive in-situ ends at
// N screens. This module runs the proxy simulation and, on every I/O step,
// serves a frame to every active viewer:
//
//   * Dedup: active viewers are grouped by canonical frame key (viewer.hpp),
//     so k viewers sharing a view cost ONE raster plus k encode-only
//     fan-outs. The grouping is architectural — the modeled system always
//     dedups — while the host-side FrameCache flag only decides whether the
//     host actually re-renders (the cache-off configuration is the
//     "N independent renders" baseline the bench harness compares against).
//     Images and virtual times are therefore bit-identical cache on/off;
//     only host wall-clock and the hit/miss counters differ.
//   * Batched multi-view rendering: the step's missing views are rendered as
//     one work-stealing ThreadPool batch (util::run_sharded), each view into
//     its own reused image buffer with arena-backed scratch.
//   * Steering: commands apply deterministically between timesteps, in list
//     order, at the start of their frame step — virtual-time order, never
//     host arrival order.
//   * Delivery: encoded frames ride a bounded AsyncStager ring whose writer
//     thread models the egress link, using the same two-track virtual-time
//     scheme as the async staging pipeline (producer compute cursor, writer
//     owns the shared clock, merge at the drain barrier).
//   * Energy-per-viewer: the session's EnergyReport is split across viewers
//     — render joules by shared-render time (1/k of the group's render per
//     sharing viewer), encode joules by encode time, delivery joules by
//     bytes — with the remainder (simulation, idle floor) reported as the
//     shared bill. A single-viewer baseline run yields the marginal joules
//     per added viewer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/testbed.hpp"
#include "src/core/workload.hpp"
#include "src/obs/energy.hpp"
#include "src/serve/frame_cache.hpp"
#include "src/serve/viewer.hpp"
#include "src/util/units.hpp"

namespace greenvis::serve {

namespace stage {
/// Serving-layer phase names (join the core stage names in timelines and
/// the energy attribution).
inline constexpr const char* kEncode = "Encode";
inline constexpr const char* kDeliver = "Deliver";
}  // namespace stage

struct ServeConfig {
  /// Simulation + base render configuration (the dataset/IO knobs are
  /// unused: serving is in-situ style, no snapshots touch the disk).
  core::CaseStudyConfig base{core::case_study(1)};
  std::vector<ViewerSchedule> viewers;
  std::vector<SteerCommand> commands;
  /// Host-side frame cache. Off = the host renders once per active viewer
  /// (the independent-renders baseline); on = once per unique view.
  bool cache_enabled{true};
  std::size_t cache_capacity{512};
  /// Delivery ring slots (producer stalls when all are in flight).
  std::size_t delivery_buffers{4};
  /// Modeled egress link, megabytes per second.
  double delivery_mb_per_s{200.0};
  /// CPU footprint of the delivery path (NIC driver + protocol stack).
  double delivery_cores{1.0};
  double delivery_utilization{0.35};
  std::size_t host_threads{0};
};

/// One frame handed to one viewer.
struct Delivery {
  int step{0};
  int viewer{0};
  std::uint64_t key{0};
  std::uint64_t digest{0};
  std::uint64_t bytes{0};
};

/// One viewer's share of the session bill.
struct ViewerEnergy {
  int viewer{0};
  std::uint64_t frames{0};
  std::uint64_t bytes{0};
  /// Shared-render seconds: each frame contributes its group's render
  /// duration divided by the number of viewers sharing the raster.
  double render_share_s{0.0};
  double encode_s{0.0};
  double deliver_s{0.0};
  double render_j{0.0};
  double encode_j{0.0};
  double deliver_j{0.0};

  [[nodiscard]] double total_j() const {
    return render_j + encode_j + deliver_j;
  }
};

struct ServeReport {
  std::string name;
  util::Seconds duration{0.0};
  util::Joules energy{0.0};
  util::Watts average_power{0.0};
  util::Watts peak_power{0.0};
  obs::EnergyReport attribution;
  /// Sorted by viewer id.
  std::vector<ViewerEnergy> viewers;
  /// Sorted by (step, viewer).
  std::vector<Delivery> deliveries;
  FrameCacheStats cache;
  /// Host rasters actually executed (cache on: misses; off: per viewer).
  std::uint64_t host_renders{0};
  /// Sum over frame steps of that step's unique view count — the modeled
  /// system's render count, independent of the host cache flag.
  std::uint64_t unique_views_rendered{0};
  std::uint64_t frames_delivered{0};
  int frame_steps{0};
  /// Digest of the simulation's final field (viewer-independent science
  /// output — the campaign engine journals it like a pipeline run's).
  std::uint64_t final_field_digest{0};
  /// Session energy not attributable to any single viewer (simulation,
  /// static/idle floor).
  double shared_j{0.0};
  /// Filled by run_serve_with_baseline.
  double single_viewer_j{0.0};
  double marginal_j_per_viewer{0.0};
};

/// Run one serving session on a fresh Testbed. Deterministic: every field
/// of the report is a pure function of (config, bed_config).
[[nodiscard]] ServeReport run_serve_session(
    const ServeConfig& config, const core::TestbedConfig& bed_config = {});

/// run_serve_session plus a single-viewer baseline (the first schedule
/// alone, same steering), filling single_viewer_j and
/// marginal_j_per_viewer = (E_N - E_1) / (N - 1).
[[nodiscard]] ServeReport run_serve_with_baseline(
    const ServeConfig& config, const core::TestbedConfig& bed_config = {});

/// Deterministic JSON profile (schema greenvis.serve_profile.v1): totals,
/// cache counters, per-viewer energy columns, marginal joules. Byte-
/// identical across reruns of the same config.
void write_serve_profile_json(std::ostream& os, const ServeConfig& config,
                              const ServeReport& report);

}  // namespace greenvis::serve

#include "src/serve/frame_cache.hpp"

namespace greenvis::serve {

const vis::Image* FrameCache::find(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void FrameCache::insert(std::uint64_t key, const vis::Image& image) {
  if (capacity_ == 0) {
    return;
  }
  if (entries_.contains(key)) {
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
  entries_.emplace(key, image);
  order_.push_back(key);
  ++stats_.insertions;
}

}  // namespace greenvis::serve

// Content-addressed frame cache.
//
// The serving layer's dedup primitive: frames are stored under the
// canonical frame key (viewer.hpp), so any number of viewers whose
// parameters hash alike at a timestep cost one raster plus encode-only
// fan-outs. Because the key covers the field digest, an entry can never be
// stale — steering or a new timestep changes the key, and the old entry
// simply stops being addressed (and ages out of the FIFO ring).
//
// Eviction is FIFO at a fixed capacity: insertion order is deterministic
// (group keys are processed sorted), so the cache's hit/miss sequence — and
// everything derived from it — is reproducible across hosts and reruns.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/vis/image.hpp"

namespace greenvis::serve {

struct FrameCacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t insertions{0};
  std::uint64_t evictions{0};
  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
};

class FrameCache {
 public:
  explicit FrameCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached raster for `key`, or nullptr (counted as hit/miss).
  [[nodiscard]] const vis::Image* find(std::uint64_t key);

  /// Store a rendered frame under its key, evicting the oldest entry when
  /// full. Inserting an existing key refreshes nothing (first render wins —
  /// both renders are bit-identical by construction).
  void insert(std::uint64_t key, const vis::Image& image);

  [[nodiscard]] const FrameCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, vis::Image> entries_;
  std::deque<std::uint64_t> order_;  // insertion order, oldest first
  FrameCacheStats stats_;
};

}  // namespace greenvis::serve

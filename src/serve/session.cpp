#include "src/serve/session.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <memory>
#include <ostream>
#include <span>
#include <utility>

#include "src/machine/activity.hpp"

#include "src/core/pipeline.hpp"
#include "src/heat/solver.hpp"
#include "src/obs/json.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/tracer.hpp"
#include "src/sched/staging.hpp"
#include "src/util/error.hpp"
#include "src/util/sharded.hpp"
#include "src/util/thread_pool.hpp"
#include "src/vis/filters.hpp"

namespace greenvis::serve {

namespace {

/// Modeled cost of encoding one frame for the wire (pack + frame checksum:
/// a handful of ops per pixel, one streaming read of the framebuffer and
/// one write of the payload).
machine::ActivityRecord encode_activity(const ViewParams& params) {
  const double pixels =
      static_cast<double>(params.width) * static_cast<double>(params.height);
  machine::ActivityRecord a;
  a.flops = pixels * 24.0;
  a.active_cores = 1;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(pixels * 6.0)};
  return a;
}

/// A unique view's host-side state: its renderer (whose internal arena is
/// the per-view scratch) and a frame buffer reused across steps.
struct ViewPipe {
  std::unique_ptr<vis::VisPipeline> pipe;
  vis::Image frame;
  // Digest of `frame`, computed once per render (or cache copy-out) and
  // reused by every sharing viewer's delivery — hashing the same pixels
  // once per viewer would scale with the fleet, not with unique views.
  std::uint64_t frame_digest{0};
};

/// All viewers sharing one frame key this step.
struct Group {
  ViewParams params{};
  std::vector<int> viewers;  // ascending (built in id order)
  ViewPipe* pipe{nullptr};
  bool needs_render{false};
};

void render_view(const ViewParams& params, const util::Field2D& field,
                 const vis::VisPipeline& pipe, vis::Image& out) {
  const CropRect r = crop_rect(params, field.nx(), field.ny());
  if (r.full(field.nx(), field.ny())) {
    pipe.render_into(field, out);
  } else {
    const util::Field2D sub = vis::crop(field, r.i0, r.j0, r.nx, r.ny);
    pipe.render_into(sub, out);
  }
}

}  // namespace

ServeReport run_serve_session(const ServeConfig& config,
                              const core::TestbedConfig& bed_config) {
  obs::ScopedSpan session_span("serve.session", obs::kCatServe);
  GREENVIS_REQUIRE(!config.viewers.empty());
  GREENVIS_REQUIRE(config.delivery_buffers >= 1);
  GREENVIS_REQUIRE(config.delivery_mb_per_s > 0.0);

  // Schedules sorted by viewer id (ids must be unique): every per-step scan
  // below walks this order, so deliveries come out (step, viewer)-sorted.
  std::vector<ViewerSchedule> fleet = config.viewers;
  std::sort(fleet.begin(), fleet.end(),
            [](const ViewerSchedule& a, const ViewerSchedule& b) {
              return a.viewer < b.viewer;
            });
  for (std::size_t i = 1; i < fleet.size(); ++i) {
    GREENVIS_REQUIRE(fleet[i - 1].viewer < fleet[i].viewer);
  }
  // Commands in virtual-time order; stable sort keeps list order within a
  // step (the documented tie-break).
  std::vector<SteerCommand> commands = config.commands;
  std::stable_sort(commands.begin(), commands.end(),
                   [](const SteerCommand& a, const SteerCommand& b) {
                     return a.step < b.step;
                   });

  core::Testbed bed(bed_config);
  util::ThreadPool pool(config.host_threads);
  heat::HeatSolver solver(config.base.problem, &pool);
  FrameCache cache(config.cache_capacity);

  // Per-viewer steerable state and report rows.
  std::map<int, ViewParams> params_of;
  std::map<int, std::size_t> row_of;
  ServeReport report;
  report.name = "Serve: " + config.base.name;
  for (const ViewerSchedule& sched : fleet) {
    params_of[sched.viewer] = sched.params;
    row_of[sched.viewer] = report.viewers.size();
    report.viewers.push_back(ViewerEnergy{.viewer = sched.viewer});
  }

  // One renderer + frame buffer per unique view, created on demand and
  // reused across steps (keyed by the canonical view text). With the cache
  // off, every viewer additionally owns an independent renderer — the
  // N-independent-renders baseline must not share rasters even host-side.
  // Renderers are serial (null pool): they run inside run_sharded jobs, and
  // pool bodies must not dispatch on the same pool — the parallelism here
  // is across views, not within one raster.
  std::map<std::string, ViewPipe> view_pipes;
  const auto pipe_for = [&](const ViewParams& p) -> ViewPipe& {
    ViewPipe& vp = view_pipes[canonical_view_text(p)];
    if (!vp.pipe) {
      vp.pipe = std::make_unique<vis::VisPipeline>(
          vis_config_for(p, config.base.vis), nullptr);
    }
    return vp;
  };
  struct OffPipe {
    std::string text;
    std::unique_ptr<vis::VisPipeline> pipe;
    vis::Image frame;
    std::uint64_t frame_digest{0};
  };
  std::map<int, OffPipe> off_pipes;

  // Delivery ring: the writer thread owns the shared clock and models the
  // egress link (payload bytes over the configured link rate), chaining
  // transfers exactly like the async staging pipeline chains disk writes.
  // Its load/phase intervals go to private sinks, merged at the drain
  // barrier.
  machine::LoadTimeline writer_loads;
  trace::Timeline writer_phases;
  sched::AsyncStager stager(
      sched::StagingConfig{config.delivery_buffers, 1},
      [&](std::span<sched::StagedSnapshot* const> batch, util::Seconds start) {
        util::Seconds t = start;
        for (sched::StagedSnapshot* snap : batch) {
          const util::Seconds transfer{
              static_cast<double>(snap->payload.size()) /
              (config.delivery_mb_per_s * 1e6)};
          t = bed.run_io_at(
              std::max(t, snap->ready), stage::kDeliver,
              config.delivery_cores, config.delivery_utilization,
              [&] { bed.clock().advance(transfer); }, &writer_loads,
              &writer_phases);
        }
        return t;
      });

  const double bytes_per_second = config.delivery_mb_per_s * 1e6;
  util::Seconds cpu = bed.clock().now();
  std::size_t next_command = 0;
  std::vector<std::pair<Group*, std::uint64_t>> order;  // key-sorted groups
  std::vector<Group*> to_render;

  for (int step = 0; step < config.base.iterations; ++step) {
    // Steering applies between timesteps: every command scheduled at or
    // before this step lands before the step's frame renders.
    while (next_command < commands.size() &&
           commands[next_command].step <= step) {
      const SteerCommand& cmd = commands[next_command++];
      const auto it = params_of.find(cmd.viewer);
      if (it != params_of.end()) {
        it->second = apply_steer(it->second, cmd);
      }
    }

    {
      obs::ScopedSpan span("stage.simulate", obs::kCatStage);
      solver.step();
      cpu = bed.run_compute_at(cpu, solver.step_activity(),
                               core::stage::kSimulation);
    }
    if (!config.base.is_io_step(step)) {
      continue;
    }

    obs::ScopedSpan frame_span("serve.frame_step", obs::kCatServe);
    const util::Field2D& field = solver.temperature();
    const std::uint64_t digest = field_digest(field);

    // Group active viewers by frame key (map = deterministic key order).
    std::map<std::uint64_t, Group> groups;
    for (const ViewerSchedule& sched : fleet) {
      if (!sched.active_at(step)) {
        continue;
      }
      const ViewParams& p = params_of[sched.viewer];
      Group& g = groups[frame_key(step, digest, p)];
      if (g.viewers.empty()) {
        g.params = p;
        g.pipe = &pipe_for(p);
      }
      g.viewers.push_back(sched.viewer);
    }
    if (groups.empty()) {
      continue;
    }
    ++report.frame_steps;
    report.unique_views_rendered += groups.size();

    // Host rendering. Cache on: one lookup per group (the lead viewer's
    // request), misses rendered as one work-stealing batch, then inserted
    // in key order; sharing viewers count as hits at fan-out. Cache off:
    // every active viewer renders independently — no cache traffic at all.
    order.clear();
    to_render.clear();
    for (auto& [key, group] : groups) {
      order.emplace_back(&group, key);
    }
    if (config.cache_enabled) {
      for (auto& [group, key] : order) {
        if (const vis::Image* hit = cache.find(key)) {
          group->pipe->frame = *hit;  // copy out: eviction-safe
          group->pipe->frame_digest = group->pipe->frame.digest();
        } else {
          group->needs_render = true;
          to_render.push_back(group);
        }
      }
      if (!to_render.empty()) {
        util::ShardedOptions opts;
        opts.span_name = "serve.render_batch";
        util::run_sharded(
            pool, to_render.size(),
            [&](std::size_t i) {
              Group& g = *to_render[i];
              render_view(g.params, field, *g.pipe->pipe, g.pipe->frame);
              g.pipe->frame_digest = g.pipe->frame.digest();
            },
            opts);
        report.host_renders += to_render.size();
      }
      for (auto& [group, key] : order) {
        if (group->needs_render) {
          cache.insert(key, group->pipe->frame);
        }
      }
    } else {
      std::vector<std::pair<OffPipe*, const ViewParams*>> jobs;
      for (const auto& [group, key] : order) {
        for (const int viewer : group->viewers) {
          OffPipe& op = off_pipes[viewer];
          const ViewParams& p = group->params;
          const std::string text = canonical_view_text(p);
          if (!op.pipe || op.text != text) {
            op.text = text;
            op.pipe = std::make_unique<vis::VisPipeline>(
                vis_config_for(p, config.base.vis), nullptr);
          }
          jobs.emplace_back(&op, &p);
        }
      }
      util::ShardedOptions opts;
      opts.span_name = "serve.render_batch";
      util::run_sharded(
          pool, jobs.size(),
          [&](std::size_t i) {
            render_view(*jobs[i].second, field, *jobs[i].first->pipe,
                        jobs[i].first->frame);
            jobs[i].first->frame_digest = jobs[i].first->frame.digest();
          },
          opts);
      report.host_renders += jobs.size();
    }

    // Virtual render cost: ONE burst per unique view, in key order — the
    // modeled system always dedups (the host cache flag is a host-side
    // concern), so durations are bit-identical cache on/off. Each of the k
    // sharing viewers is billed 1/k of the group's render time.
    for (const auto& [group, key] : order) {
      const util::Seconds end = bed.run_compute_at(
          cpu, group->pipe->pipe->render_activity(), core::stage::kVisualization);
      const double share = (end - cpu).value() /
                           static_cast<double>(group->viewers.size());
      cpu = end;
      for (const int viewer : group->viewers) {
        report.viewers[row_of[viewer]].render_share_s += share;
      }
      group->needs_render = false;
    }

    // Fan-out: encode + submit one delivery per active viewer, id order.
    for (const ViewerSchedule& sched : fleet) {
      if (!sched.active_at(step)) {
        continue;
      }
      const int viewer = sched.viewer;
      const ViewParams& p = params_of[viewer];
      const std::uint64_t key = frame_key(step, digest, p);
      Group& group = groups.at(key);
      // Non-lead sharers hit the cache the lead viewer's render populated.
      if (config.cache_enabled && viewer != group.viewers.front()) {
        (void)cache.find(key);
      }
      const vis::Image& image = config.cache_enabled
                                    ? group.pipe->frame
                                    : off_pipes.at(viewer).frame;
      const std::uint64_t image_digest = config.cache_enabled
                                             ? group.pipe->frame_digest
                                             : off_pipes.at(viewer).frame_digest;

      sched::AsyncStager::Slot slot = stager.acquire();
      if (slot.freed_at > cpu) {
        bed.record_stall(stage::kDeliver, cpu, slot.freed_at,
                         config.delivery_cores, config.delivery_utilization);
        cpu = slot.freed_at;
        if (obs::enabled()) {
          static obs::Counter& stalls =
              obs::Registry::global().counter("serve.virtual_stalls");
          stalls.add(1);
        }
      }
      sched::StagedSnapshot& snap = *slot.snapshot;
      snap.arena.reset();
      {
        obs::ScopedSpan span("serve.encode", obs::kCatServe);
        snap.payload = image.serialize();
      }
      snap.step = step;
      snap.tag = static_cast<std::uint64_t>(viewer);
      snap.raw_bytes = snap.payload.size();
      const std::uint64_t bytes = snap.payload.size();

      const util::Seconds encode_end =
          bed.run_compute_at(cpu, encode_activity(p), stage::kEncode);
      ViewerEnergy& row = report.viewers[row_of[viewer]];
      row.encode_s += (encode_end - cpu).value();
      row.deliver_s += static_cast<double>(bytes) / bytes_per_second;
      row.bytes += bytes;
      ++row.frames;
      cpu = encode_end;

      report.deliveries.push_back(Delivery{.step = step,
                                           .viewer = viewer,
                                           .key = key,
                                           .digest = image_digest,
                                           .bytes = bytes});
      ++report.frames_delivered;
      stager.submit(cpu);
    }
  }

  report.final_field_digest = field_digest(solver.temperature());

  // Drain barrier: both tracks join, the shared clock lands at the later of
  // compute-end and delivery-end, writer timelines merge into the main ones.
  const util::Seconds io_end = stager.drain();
  cpu = std::max(cpu, io_end);
  if (cpu > bed.clock().now()) {
    bed.clock().advance_to(cpu);
  }
  bed.loads().merge(writer_loads);
  for (const auto& iv : writer_phases.intervals()) {
    bed.phases().record(iv.category, iv.begin, iv.end);
  }

  // Session measurement + attribution (same recipe as core::Experiment).
  report.duration = bed.clock().now();
  const power::PowerTrace trace = bed.profile();
  report.energy = trace.energy(&power::PowerSample::system);
  report.average_power = trace.average(&power::PowerSample::system);
  report.peak_power = trace.peak(&power::PowerSample::system);
  report.attribution = obs::EnergyAttributor(bed.power_model())
                           .attribute(bed.phases(), bed.loads(),
                                      bed.device().activity(), report.duration);
  if (obs::energy_profiler_enabled()) {
    obs::publish_energy_profile(
        report.attribution,
        obs::rail_power_series(bed.loads(), bed.device().activity(),
                               bed.power_model(), report.duration));
  }
  report.cache = cache.stats();

  // Split the bill: render joules by shared-render seconds, encode joules
  // by encode seconds, delivery joules by bytes; everything else —
  // simulation, stalls' compute share, the static/idle floor — is the
  // shared session cost no single viewer owns.
  const obs::StageEnergy* vis_stage =
      report.attribution.stage(core::stage::kVisualization);
  const obs::StageEnergy* enc_stage = report.attribution.stage(stage::kEncode);
  const obs::StageEnergy* del_stage = report.attribution.stage(stage::kDeliver);
  const double vis_j = vis_stage ? vis_stage->total().value() : 0.0;
  const double enc_j = enc_stage ? enc_stage->total().value() : 0.0;
  const double del_j = del_stage ? del_stage->total().value() : 0.0;
  double render_s_total = 0.0;
  double encode_s_total = 0.0;
  double bytes_total = 0.0;
  for (const ViewerEnergy& row : report.viewers) {
    render_s_total += row.render_share_s;
    encode_s_total += row.encode_s;
    bytes_total += static_cast<double>(row.bytes);
  }
  for (ViewerEnergy& row : report.viewers) {
    row.render_j =
        render_s_total > 0.0 ? vis_j * row.render_share_s / render_s_total : 0.0;
    row.encode_j =
        encode_s_total > 0.0 ? enc_j * row.encode_s / encode_s_total : 0.0;
    row.deliver_j = bytes_total > 0.0
                        ? del_j * static_cast<double>(row.bytes) / bytes_total
                        : 0.0;
  }
  report.shared_j = report.energy.value() - vis_j - enc_j - del_j;
  return report;
}

ServeReport run_serve_with_baseline(const ServeConfig& config,
                                    const core::TestbedConfig& bed_config) {
  ServeReport full = run_serve_session(config, bed_config);
  const std::size_t n = config.viewers.size();
  if (n <= 1) {
    full.single_viewer_j = full.energy.value();
    return full;
  }
  // The marginal cost of a viewer: same simulation, same steering, but only
  // the first subscriber — (E_N - E_1) / (N - 1).
  ServeConfig solo = config;
  solo.viewers.assign(1, config.viewers.front());
  solo.commands.clear();
  for (const SteerCommand& cmd : config.commands) {
    if (cmd.viewer == solo.viewers.front().viewer) {
      solo.commands.push_back(cmd);
    }
  }
  const ServeReport base = run_serve_session(solo, bed_config);
  full.single_viewer_j = base.energy.value();
  full.marginal_j_per_viewer =
      (full.energy.value() - base.energy.value()) / static_cast<double>(n - 1);
  return full;
}

namespace {

void json_double(std::ostream& os, double v) {
  os << std::setprecision(17) << v;
}

}  // namespace

void write_serve_profile_json(std::ostream& os, const ServeConfig& config,
                              const ServeReport& report) {
  os << "{\n  \"schema\": \"greenvis.serve_profile.v1\",\n  \"case\": ";
  obs::detail::write_json_string(os, config.base.name);
  os << ",\n  \"viewers\": " << config.viewers.size()
     << ",\n  \"cache_enabled\": " << (config.cache_enabled ? "true" : "false")
     << ",\n  \"frame_steps\": " << report.frame_steps
     << ",\n  \"duration_s\": ";
  json_double(os, report.duration.value());
  os << ",\n  \"energy_j\": ";
  json_double(os, report.energy.value());
  os << ",\n  \"average_power_w\": ";
  json_double(os, report.average_power.value());
  os << ",\n  \"peak_power_w\": ";
  json_double(os, report.peak_power.value());
  os << ",\n  \"cache\": {\"hits\": " << report.cache.hits
     << ", \"misses\": " << report.cache.misses
     << ", \"insertions\": " << report.cache.insertions
     << ", \"evictions\": " << report.cache.evictions << "}"
     << ",\n  \"host_renders\": " << report.host_renders
     << ",\n  \"unique_views_rendered\": " << report.unique_views_rendered
     << ",\n  \"frames_delivered\": " << report.frames_delivered
     << ",\n  \"shared_j\": ";
  json_double(os, report.shared_j);
  os << ",\n  \"single_viewer_j\": ";
  json_double(os, report.single_viewer_j);
  os << ",\n  \"marginal_j_per_viewer\": ";
  json_double(os, report.marginal_j_per_viewer);
  os << ",\n  \"per_viewer\": [\n";
  for (std::size_t i = 0; i < report.viewers.size(); ++i) {
    const ViewerEnergy& row = report.viewers[i];
    os << "    {\"viewer\": " << row.viewer << ", \"frames\": " << row.frames
       << ", \"bytes\": " << row.bytes << ", \"render_share_s\": ";
    json_double(os, row.render_share_s);
    os << ", \"encode_s\": ";
    json_double(os, row.encode_s);
    os << ", \"deliver_s\": ";
    json_double(os, row.deliver_s);
    os << ", \"render_j\": ";
    json_double(os, row.render_j);
    os << ", \"encode_j\": ";
    json_double(os, row.encode_j);
    os << ", \"deliver_j\": ";
    json_double(os, row.deliver_j);
    os << ", \"total_j\": ";
    json_double(os, row.total_j());
    os << "}" << (i + 1 < report.viewers.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace greenvis::serve

#include "src/sched/staging.hpp"

#include <algorithm>

#include "src/obs/registry.hpp"
#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"

namespace greenvis::sched {

namespace {

void note_occupancy(std::uint64_t in_flight) {
  if (obs::enabled()) {
    static obs::Gauge& occupancy =
        obs::Registry::global().gauge("sched.ring_occupancy");
    occupancy.set(static_cast<double>(in_flight));
  }
}

}  // namespace

AsyncStager::AsyncStager(const StagingConfig& config, WriteFn write_fn)
    : write_fn_(std::move(write_fn)),
      queue_depth_(config.queue_depth),
      slots_(config.buffers),
      freed_at_(config.buffers, util::Seconds{0.0}) {
  GREENVIS_REQUIRE_MSG(config.buffers >= 1,
                       "staging ring needs at least one buffer");
  GREENVIS_REQUIRE_MSG(config.queue_depth >= 1,
                       "staging queue depth must be at least 1");
  GREENVIS_REQUIRE(write_fn_ != nullptr);
  claim_.reserve(queue_depth_);
  writer_ = std::thread([this] { writer_loop(); });
}

AsyncStager::~AsyncStager() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
  }
  writer_cv_.notify_all();
  if (writer_.joinable()) {
    writer_.join();
  }
}

void AsyncStager::rethrow_if_failed_locked() {
  if (error_ != nullptr) {
    std::rethrow_exception(error_);
  }
}

AsyncStager::Slot AsyncStager::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  GREENVIS_REQUIRE_MSG(acquired_ == submitted_,
                       "acquire() before the previous slot was submitted");
  Slot slot;
  if (acquired_ >= completed_ + slots_.size()) {
    slot.stalled = true;
    ++stats_.stalls;
    if (obs::enabled()) {
      static obs::Counter& stalls =
          obs::Registry::global().counter("sched.stalls");
      stalls.add(1);
    }
    producer_cv_.wait(lock, [&] {
      return error_ != nullptr || acquired_ < completed_ + slots_.size();
    });
  }
  rethrow_if_failed_locked();
  const std::size_t idx = static_cast<std::size_t>(acquired_ % slots_.size());
  slot.snapshot = &slots_[idx];
  slot.freed_at = freed_at_[idx];
  ++acquired_;
  return slot;
}

void AsyncStager::submit(util::Seconds ready) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    rethrow_if_failed_locked();
    GREENVIS_REQUIRE_MSG(acquired_ == submitted_ + 1,
                         "submit() without a matching acquire()");
    const std::size_t idx =
        static_cast<std::size_t>(submitted_ % slots_.size());
    slots_[idx].ready = ready;
    ++stats_.staged;
    stats_.bytes_staged += slots_[idx].payload.size();
    if (obs::enabled()) {
      static obs::Counter& staged =
          obs::Registry::global().counter("sched.snapshots_staged");
      static obs::Counter& bytes =
          obs::Registry::global().counter("sched.bytes_staged");
      staged.add(1);
      bytes.add(slots_[idx].payload.size());
    }
    ++submitted_;
    note_occupancy(submitted_ - completed_);
  }
  writer_cv_.notify_all();
}

util::Seconds AsyncStager::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  GREENVIS_REQUIRE_MSG(acquired_ == submitted_,
                       "drain() with an acquired-but-unsubmitted slot");
  draining_ = true;
  writer_cv_.notify_all();
  producer_cv_.wait(
      lock, [&] { return error_ != nullptr || completed_ == submitted_; });
  lock.unlock();
  if (writer_.joinable()) {
    writer_.join();
  }
  lock.lock();
  rethrow_if_failed_locked();
  return stats_.last_write_end;
}

void AsyncStager::writer_loop() {
  obs::Tracer::global().set_thread_name("staging-writer");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      writer_cv_.wait(
          lock, [&] { return completed_ < submitted_ || draining_; });
      if (completed_ == submitted_) {
        return;  // drained
      }
      // Claim a window of up to queue_depth submitted snapshots, in
      // submission order — the staging analogue of filling a device
      // submission queue before dispatch.
      const std::uint64_t claimed =
          std::min<std::uint64_t>(queue_depth_, submitted_ - completed_);
      claim_.clear();
      for (std::uint64_t i = 0; i < claimed; ++i) {
        claim_.push_back(
            &slots_[static_cast<std::size_t>((completed_ + i) %
                                             slots_.size())]);
      }
    }
    // The writes run unlocked: this is the only code driving the shared
    // clock/filesystem during the overlap region, and none of the claimed
    // slots can be recycled until completed_ advances below.
    util::Seconds end{0.0};
    try {
      obs::ScopedSpan span("sched.write", obs::kCatIo);
      const util::Seconds start = std::max(io_now_, claim_.front()->ready);
      end = write_fn_(
          std::span<StagedSnapshot* const>(claim_.data(), claim_.size()),
          start);
      io_now_ = std::max(io_now_, end);
    } catch (...) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        error_ = std::current_exception();
      }
      producer_cv_.notify_all();
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < claim_.size(); ++i) {
        freed_at_[static_cast<std::size_t>((completed_ + i) %
                                           slots_.size())] = end;
      }
      stats_.last_write_end = std::max(stats_.last_write_end, end);
      completed_ += claim_.size();
      note_occupancy(submitted_ - completed_);
    }
    producer_cv_.notify_all();
  }
}

}  // namespace greenvis::sched

// Asynchronous snapshot staging: the in-transit overlap layer.
//
// The paper's post-processing pipeline serializes simulate -> encode ->
// write on one critical path, which is exactly why its write phase shows up
// whole in Fig. 7's runtime. In-transit designs (Catalyst-ADIOS2, SIM-SITU)
// break that chain with staging: the solver deposits each snapshot into a
// bounded ring of staging buffers and keeps computing while a background
// writer drains completed buffers to storage. This module is that ring.
//
// Two clocks, one truth. Host-side, a real std::thread performs the real
// filesystem writes concurrently with the solver. Virtual-side, time is
// modeled on two tracks: the producer carries its own compute cursor
// (Testbed::run_compute_at places bursts without touching the shared
// clock), while the writer thread owns the shared VirtualClock during the
// overlap region — write k starts at max(previous write end, snapshot k's
// encode-finish time), which is nondecreasing, so the clock only moves
// forward. Every virtual timestamp derives from modeled durations carried
// through the ring, never from host scheduling, so results are
// bit-identical for any host thread count.
//
// Invariants:
//   * acquire() blocks while all `buffers` slots hold un-written snapshots
//     (backpressure). The freed slot reports the virtual completion time of
//     the write that recycled it; if that is ahead of the producer's
//     cursor, the producer charges a stall interval.
//   * submit() hands the last acquired slot to the writer; snapshots are
//     written strictly in submission order.
//   * drain() blocks until every submitted snapshot is on storage, joins
//     the writer, and returns the virtual end of the final write. A writer
//     exception (e.g. a filesystem contract violation) is captured and
//     rethrown from acquire()/submit()/drain() — the producer can never
//     deadlock on a dead writer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/units.hpp"

namespace greenvis::sched {

struct StagingConfig {
  /// Staging slots in the ring (>= 1). More buffers absorb longer write
  /// bursts before backpressure stalls the producer; 2 already overlaps
  /// steady-state write k with solve k+1.
  std::size_t buffers{2};
  /// How many submitted snapshots the writer claims per wake (>= 1) and
  /// hands to WriteFn as one batch — the staging analogue of the async
  /// block layer's submission-queue depth. 1 reproduces the legacy
  /// one-write-per-wake behavior bit for bit; deeper values let the write
  /// callback submit a whole window to storage::AsyncBlockDevice so the
  /// device-side scheduler can reorder across snapshots.
  std::size_t queue_depth{1};
};

/// One staging slot: the encoded payload plus the bookkeeping the writer
/// needs. The payload vector and the arena (scratch for the encode that
/// fills the slot) are slot-owned and reused across ring laps, so the
/// steady-state staging path performs zero heap allocations.
struct StagedSnapshot {
  int step{-1};
  std::vector<std::uint8_t> payload;
  std::uint64_t raw_bytes{0};
  /// Free-form owner tag carried through the ring (the serving layer stores
  /// the subscriber id so the delivery writer can bill the right viewer).
  std::uint64_t tag{0};
  /// Producer-track virtual time the encode finished; the write may not
  /// start before the data exists.
  util::Seconds ready{0.0};
  /// Encode scratch for this slot (reset by the producer per use).
  util::ScratchArena arena;
};

struct StagingStats {
  std::uint64_t staged{0};
  std::uint64_t bytes_staged{0};
  /// acquire() calls that had to block on a full ring (host-side
  /// backpressure; the virtual stall is the pipeline's to account).
  std::uint64_t stalls{0};
  /// Virtual completion of the last write (0 until something was written).
  util::Seconds last_write_end{0.0};
};

class AsyncStager {
 public:
  /// Performs one staged write window: called on the writer thread with up
  /// to `queue_depth` snapshots in submission order and the virtual start
  /// time (max of previous window's end and the first snapshot's ready
  /// time — later snapshots carry their own `ready` for the callback to
  /// respect); returns the virtual completion time of the whole window.
  /// The callback is the only code touching the filesystem/clock during
  /// the overlap region.
  using WriteFn = std::function<util::Seconds(
      std::span<StagedSnapshot* const>, util::Seconds start)>;

  AsyncStager(const StagingConfig& config, WriteFn write_fn);
  ~AsyncStager();

  AsyncStager(const AsyncStager&) = delete;
  AsyncStager& operator=(const AsyncStager&) = delete;

  struct Slot {
    StagedSnapshot* snapshot{nullptr};
    /// Virtual end of the write that last freed this slot (0 on first use).
    /// When ahead of the producer's cursor, the producer stalled.
    util::Seconds freed_at{0.0};
    /// True when acquire() had to block for a slot (ring was full).
    bool stalled{false};
  };

  /// Claim the next free slot, blocking under backpressure. The caller
  /// fills the snapshot, then submit()s it. Single producer.
  [[nodiscard]] Slot acquire();

  /// Hand the last acquired slot to the writer. `ready` is the
  /// producer-track virtual time its encode finished.
  void submit(util::Seconds ready);

  /// Wait for every submitted snapshot to reach storage and stop the
  /// writer. Returns the virtual end of the final write (0 when nothing
  /// was staged). Idempotent.
  [[nodiscard]] util::Seconds drain();

  /// Valid after drain().
  [[nodiscard]] const StagingStats& stats() const { return stats_; }

  [[nodiscard]] std::size_t buffers() const { return slots_.size(); }

 private:
  void writer_loop();
  void rethrow_if_failed_locked();

  WriteFn write_fn_;
  std::size_t queue_depth_;
  std::vector<StagedSnapshot> slots_;
  std::vector<util::Seconds> freed_at_;
  /// Writer-thread scratch for the claimed window (reused; steady-state
  /// staging stays allocation-free).
  std::vector<StagedSnapshot*> claim_;

  std::mutex mutex_;
  std::condition_variable producer_cv_;
  std::condition_variable writer_cv_;
  // Monotonic counters: slot i of generation k is slots_[i % buffers].
  std::uint64_t acquired_{0};
  std::uint64_t submitted_{0};
  std::uint64_t completed_{0};
  util::Seconds io_now_{0.0};  // writer-track cursor (writer thread only)
  bool draining_{false};
  std::exception_ptr error_;
  StagingStats stats_;
  std::thread writer_;
};

}  // namespace greenvis::sched

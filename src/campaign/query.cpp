#include "src/campaign/query.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "src/campaign/hash.hpp"

namespace greenvis::campaign {

std::vector<PipelineSwitchCase> pipeline_switch_cases(
    const CampaignReport& report) {
  std::unordered_map<std::string, std::size_t> first_index;
  for (std::size_t i = 0; i < report.keys.size(); ++i) {
    first_index.emplace(report.keys[i], i);
  }
  std::vector<PipelineSwitchCase> cases;
  for (std::size_t i = 0; i < report.configs.size(); ++i) {
    if (report.configs[i].kind != core::PipelineKind::kPostProcessing ||
        report.completed[i] == 0) {
      continue;
    }
    if (first_index.at(report.keys[i]) != i) {
      continue;  // duplicate of an earlier config: already paired
    }
    CampaignConfig twin = report.configs[i];
    twin.kind = core::PipelineKind::kInSitu;
    const auto it = first_index.find(config_key(twin));
    if (it == first_index.end() || report.completed[it->second] == 0) {
      continue;
    }
    const ConfigResult& post = report.results[i];
    const ConfigResult& insitu = report.results[it->second];
    PipelineSwitchCase sc;
    sc.post_index = i;
    sc.insitu_index = it->second;
    sc.whatif = analysis::pipeline_switch_whatif(
        util::Joules{post.energy_j}, util::Seconds{post.duration_s},
        util::Joules{insitu.energy_j}, util::Seconds{insitu.duration_s});
    cases.push_back(sc);
  }
  return cases;
}

analysis::AccessPattern access_pattern_for(
    const ConfigResult& result, bool exploratory_analysis_required) {
  const auto accesses =
      static_cast<std::uint64_t>(result.visualized_steps) * 2ULL;
  return analysis::snapshot_access_pattern(
      util::Bytes{result.snapshot_bytes_written},
      util::Bytes{result.snapshot_bytes_read}, accesses,
      exploratory_analysis_required);
}

std::vector<StageConsumer> top_stage_consumers(const ConfigResult& result,
                                               std::size_t n) {
  std::vector<StageConsumer> ranked;
  const std::pair<const char*, double> columns[] = {
      {core::stage::kSimulation, result.energy_sim_j},
      {core::stage::kWrite, result.energy_write_j},
      {core::stage::kRead, result.energy_read_j},
      {core::stage::kVisualization, result.energy_vis_j},
      {obs::kEnergyIdle, result.energy_idle_j},
      {"Other", result.energy_other_j},
  };
  for (const auto& [name, joules] : columns) {
    if (joules > 0.0) {
      ranked.push_back(StageConsumer{name, joules});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const StageConsumer& a, const StageConsumer& b) {
              if (a.joules != b.joules) {
                return a.joules > b.joules;
              }
              return a.stage < b.stage;
            });
  if (ranked.size() > n) {
    ranked.resize(n);
  }
  return ranked;
}

}  // namespace greenvis::campaign

// Deduplicating result cache with an append-only journal.
//
// A ConfigResult is the compact, exact record of one executed config: the
// paper's headline metrics (duration, energy, average/peak power,
// efficiency) plus correctness digests (images, final field) and snapshot
// byte accounting. Doubles are journaled as IEEE-754 bit patterns, so a
// result replayed from the journal is bit-identical to the freshly-executed
// one — which is what lets cold, warm, and resumed campaigns render
// byte-identical JSON.
//
// The journal is a line-oriented append-only file; each line carries its own
// FNV-1a checksum. Loading tolerates a torn *trailing* line (a crash mid
// append) but treats any corrupt *complete* line as cache poisoning and
// throws ContractViolation: a damaged journal must never turn into a wrong
// cached result.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <unordered_map>

namespace greenvis::campaign {

/// One executed config, keyed by its canonical hash (hash.hpp).
struct ConfigResult {
  std::string key;
  double duration_s{0.0};
  double energy_j{0.0};
  double average_power_w{0.0};
  double peak_power_w{0.0};
  double efficiency{0.0};
  /// FNV-1a over the per-step image digests (order-sensitive).
  std::uint64_t image_digest{0};
  /// FNV-1a over the final temperature field (dims + raw doubles).
  std::uint64_t field_digest{0};
  int steps{0};
  int visualized_steps{0};
  std::uint64_t snapshot_bytes_written{0};
  std::uint64_t snapshot_bytes_read{0};
  std::uint64_t snapshot_bytes_raw{0};
  /// Attributed per-stage energy (obs::EnergyAttributor): stage totals
  /// (static + dynamic share) for the paper's four canonical stages, the
  /// "(idle)" bucket, and "other" for anything else — the six sum to the
  /// attributor's conservation-checked total (exact model integral, which
  /// the sampled energy_j approximates). energy_static_j is the static-floor
  /// slice of that same total, reported separately (Table II split).
  double energy_sim_j{0.0};
  double energy_write_j{0.0};
  double energy_read_j{0.0};
  double energy_vis_j{0.0};
  double energy_idle_j{0.0};
  double energy_other_j{0.0};
  double energy_static_j{0.0};

  friend bool operator==(const ConfigResult&, const ConfigResult&) = default;
};

/// Render one journal line (no trailing newline): "C2 <key> <fields> <sum>".
/// The version tag changed C1 -> C2 when the attributed-energy columns were
/// added; a C1 journal fails the version check and is rejected loudly
/// (better a re-run than a silently half-populated cache).
[[nodiscard]] std::string encode_line(const ConfigResult& result);

/// Parse one complete journal line; nullopt when malformed or the checksum
/// does not match.
[[nodiscard]] std::optional<ConfigResult> decode_line(const std::string& line);

/// In-memory key -> result map. Insertion is first-writer-wins (a config's
/// result is deterministic, so any writer would store the same bytes).
class ResultCache {
 public:
  /// Returns true when `result` was newly inserted.
  bool insert(const ConfigResult& result);

  [[nodiscard]] const ConfigResult* find(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Load a journal stream. Complete lines must decode — a corrupt one
  /// throws util::ContractViolation (poisoned cache); an unterminated final
  /// fragment (torn append) is ignored. Returns the number of results
  /// loaded (duplicates re-inserted count as loaded).
  std::size_t load_journal(std::istream& in);

 private:
  std::unordered_map<std::string, ConfigResult> entries_;
};

}  // namespace greenvis::campaign

// The campaign engine: execute a config list against the cache.
//
// run() canonicalizes and hashes every config, drops intra-run duplicates,
// serves cache hits without touching a testbed, and fans the misses out over
// work-stealing shards (util/sharded.hpp). Each completed miss is inserted
// into the cache and appended to the journal (one flushed line per result)
// before the engine moves on, so an interrupted campaign — crash or
// deliberate job limit — resumes exactly where it stopped: the journal *is*
// the persistence format. Because pipeline results are byte-identical
// regardless of host threading and journal doubles round-trip bit-exactly,
// cold, warm, and interrupted-then-resumed campaigns all render the same
// JSON bytes (write_campaign_json), a property pinned by the
// `campaign.replay_identical` generative check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/campaign/cache.hpp"
#include "src/campaign/config.hpp"

namespace greenvis::campaign {

struct CampaignOptions {
  /// Executor threads for the miss fan-out; 0 = hardware concurrency.
  std::size_t threads{0};
  /// Work-stealing shard count; 0 = one per executing thread.
  std::size_t shards{0};
  /// Execute at most this many cache misses, then stop (0 = unlimited).
  /// Hits are always served; a truncated run reports `interrupted`.
  std::size_t job_limit{0};
};

/// What a campaign run did. `results[i]` pairs with `configs[i]` (canonical
/// form) and is valid iff `completed[i]`; only an interrupted run leaves
/// gaps. Host-side stats (hits, steals, seconds) describe *this* run and are
/// deliberately excluded from the result JSON.
struct CampaignReport {
  std::vector<CampaignConfig> configs;
  std::vector<std::string> keys;
  std::vector<ConfigResult> results;
  std::vector<char> completed;
  std::size_t unique_configs{0};
  std::size_t duplicates{0};
  std::size_t cache_hits{0};
  std::size_t executed{0};
  std::uint64_t steals{0};
  bool interrupted{false};
  double host_seconds{0.0};

  [[nodiscard]] double configs_per_second() const {
    return host_seconds > 0.0
               ? static_cast<double>(executed) / host_seconds
               : 0.0;
  }
};

class CampaignEngine {
 public:
  /// `journal`, when given, receives one encode_line() per fresh result
  /// (appended + flushed as each config completes).
  explicit CampaignEngine(ResultCache& cache, std::ostream* journal = nullptr)
      : cache_(cache), journal_(journal) {}

  [[nodiscard]] CampaignReport run(const std::vector<CampaignConfig>& configs,
                                   const CampaignOptions& options = {}) const;

 private:
  ResultCache& cache_;
  std::ostream* journal_;
};

/// Collapse a pipeline run into its cacheable record.
[[nodiscard]] ConfigResult result_from_metrics(
    const std::string& key, const core::PipelineMetrics& metrics);

/// Deterministic campaign JSON: configs in order with their results. The
/// report must not be interrupted. Identical result sets produce identical
/// bytes regardless of how (cold / warm / resumed / shard count) they were
/// obtained.
void write_campaign_json(std::ostream& os, const CampaignReport& report);

}  // namespace greenvis::campaign

#include "src/campaign/config.hpp"

#include <sstream>

#include "src/util/error.hpp"

namespace greenvis::campaign {

namespace {

constexpr std::size_t kDefaultSweeps = 40;   // heat::HeatProblem default
constexpr std::size_t kDefaultFrame = 512;   // vis::VisConfig default
constexpr std::size_t kDefaultChunk = 32;    // codec::CodecConfig default
constexpr std::size_t kDefaultStageBuffers = 2;

}  // namespace

CampaignConfig canonicalize(const CampaignConfig& config) {
  GREENVIS_REQUIRE(config.iterations > 0 && config.io_period > 0);
  GREENVIS_REQUIRE(config.grid >= 4);
  GREENVIS_REQUIRE(config.frequency_ghz > 0.0);
  CampaignConfig c = config;
  if (c.sweeps == 0) {
    c.sweeps = kDefaultSweeps;
  }
  if (c.frame == 0) {
    c.frame = kDefaultFrame;
  }
  if (c.viewers < 0) {
    c.viewers = 0;
  }
  if (c.viewers > 0) {
    // A serve session is in-situ style with its own render/encode/deliver
    // path: the pipeline-kind knob is never read, so all serve configs
    // canonicalize onto the in-situ representative.
    c.kind = core::PipelineKind::kInSitu;
  }
  if (c.kind == core::PipelineKind::kInSitu) {
    // In-situ never touches storage: the snapshot codec, the I/O-phase
    // clock, and the block-layer queue cannot influence any result.
    c.codec_kind = codec::Kind::kRaw;
    c.io_frequency_ghz = 0.0;
    c.io_sched = storage::IoSchedulerKind::kDevice;
    c.io_queue_depth = 0;
  }
  if (c.codec_kind == codec::Kind::kRaw) {
    c.codec_tolerance = 0.0;  // identity codec: no quantization, no chunking
    c.chunk_edge = 0;
  } else {
    if (c.codec_kind == codec::Kind::kRle) {
      c.codec_tolerance = 0.0;  // rle is lossless; tolerance is never read
    }
    if (c.chunk_edge == 0) {
      c.chunk_edge = kDefaultChunk;
    }
  }
  if (c.io_frequency_ghz == c.frequency_ghz) {
    c.io_frequency_ghz = 0.0;  // 0 already means "same as frequency_ghz"
  }
  if (c.kind == core::PipelineKind::kPostProcessingAsync) {
    if (c.stage_buffers == 0) {
      c.stage_buffers = kDefaultStageBuffers;
    }
  } else {
    c.stage_buffers = 0;  // only the async pipeline reads the ring size
  }
  return c;
}

MaterializedConfig materialize(const CampaignConfig& config,
                               std::size_t host_threads) {
  const CampaignConfig c = canonicalize(config);
  MaterializedConfig m;
  m.kind = c.kind;
  m.workload.name = describe(c);
  m.workload.iterations = c.iterations;
  m.workload.io_period = c.io_period;
  m.workload.problem.nx = c.grid;
  m.workload.problem.ny = c.grid;
  m.workload.problem.executed_sweeps = c.sweeps;
  m.workload.vis.width = c.frame;
  m.workload.vis.height = c.frame;
  m.workload.snapshot_codec.kind = c.codec_kind;
  if (c.codec_kind == codec::Kind::kDelta) {
    m.workload.snapshot_codec.tolerance = c.codec_tolerance;
  }
  if (c.chunk_edge != 0) {
    m.workload.snapshot_codec.chunk_edge = c.chunk_edge;
  }
  m.testbed.frequency_ghz = c.frequency_ghz;
  m.testbed.io_frequency_ghz = c.io_frequency_ghz;
  m.testbed.device = c.device;
  m.testbed.package_cap = util::Watts{c.package_cap_w};
  m.testbed.fs.io_queue.scheduler = c.io_sched;
  if (c.io_queue_depth != 0) {
    m.testbed.fs.io_queue.queue_depth = c.io_queue_depth;
  }
  m.viewers = c.viewers;
  m.options.host_threads = host_threads;
  if (c.stage_buffers != 0) {
    m.options.stage_buffers = c.stage_buffers;
  }
  return m;
}

std::vector<CampaignConfig> CampaignSpec::expand() const {
  const CampaignConfig base{};
  // An empty axis contributes the base default; the pipeline axis iterates
  // innermost so a config and its pipeline-switch twin are adjacent.
  const auto pipes = pipelines.empty()
                         ? std::vector<core::PipelineKind>{base.kind}
                         : pipelines;
  const auto iters =
      iterations.empty() ? std::vector<int>{base.iterations} : iterations;
  const auto periods =
      io_periods.empty() ? std::vector<int>{base.io_period} : io_periods;
  const auto gs = grids.empty() ? std::vector<std::size_t>{base.grid} : grids;
  const auto cks =
      codecs.empty() ? std::vector<codec::Kind>{base.codec_kind} : codecs;
  const auto tols = tolerances.empty()
                        ? std::vector<double>{base.codec_tolerance}
                        : tolerances;
  const auto devs = devices.empty()
                        ? std::vector<core::StorageDeviceKind>{base.device}
                        : devices;
  const auto freqs = frequencies.empty()
                         ? std::vector<double>{base.frequency_ghz}
                         : frequencies;
  const auto io_freqs = io_frequencies.empty()
                            ? std::vector<double>{base.io_frequency_ghz}
                            : io_frequencies;
  const auto caps = package_caps.empty()
                        ? std::vector<double>{base.package_cap_w}
                        : package_caps;
  const auto scheds =
      io_scheds.empty()
          ? std::vector<storage::IoSchedulerKind>{base.io_sched}
          : io_scheds;
  const auto depths = io_queue_depths.empty()
                          ? std::vector<std::size_t>{base.io_queue_depth}
                          : io_queue_depths;
  const auto views =
      viewer_counts.empty() ? std::vector<int>{base.viewers} : viewer_counts;

  std::vector<CampaignConfig> out;
  out.reserve(pipes.size() * iters.size() * periods.size() * gs.size() *
              cks.size() * tols.size() * devs.size() * freqs.size() *
              io_freqs.size() * caps.size());
  for (double cap : caps) {
    for (double io_f : io_freqs) {
      for (double f : freqs) {
        for (core::StorageDeviceKind dev : devs) {
          for (double tol : tols) {
            for (codec::Kind ck : cks) {
              for (std::size_t g : gs) {
                for (int period : periods) {
                  for (int it : iters) {
                    for (core::PipelineKind kind : pipes) {
                      CampaignConfig c = base;
                      c.kind = kind;
                      c.iterations = it;
                      c.io_period = period;
                      c.grid = g;
                      c.codec_kind = ck;
                      c.codec_tolerance = tol;
                      c.device = dev;
                      c.frequency_ghz = f;
                      c.io_frequency_ghz = io_f;
                      c.package_cap_w = cap;
                      out.push_back(c);
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  // The block-layer and serving axes multiply the base product in a
  // post-pass (outermost: viewers, then queue depth, then scheduler), so
  // sweeps that leave them empty produce the exact job list they always did.
  if (!io_scheds.empty() || !io_queue_depths.empty() ||
      !viewer_counts.empty()) {
    std::vector<CampaignConfig> expanded;
    expanded.reserve(out.size() * scheds.size() * depths.size() *
                     views.size());
    for (int viewer_count : views) {
      for (std::size_t depth : depths) {
        for (storage::IoSchedulerKind sched : scheds) {
          for (CampaignConfig c : out) {
            c.io_sched = sched;
            c.io_queue_depth = depth;
            c.viewers = viewer_count;
            expanded.push_back(c);
          }
        }
      }
    }
    out = std::move(expanded);
  }
  return out;
}

std::string describe(const CampaignConfig& config) {
  const CampaignConfig c = canonicalize(config);
  std::ostringstream os;
  os << core::pipeline_kind_name(c.kind) << " grid=" << c.grid
     << " iters=" << c.iterations << " period=" << c.io_period
     << " codec=" << codec::kind_name(c.codec_kind)
     << " dev=" << core::storage_device_name(c.device)
     << " f=" << c.frequency_ghz;
  if (c.io_frequency_ghz > 0.0) {
    os << " iof=" << c.io_frequency_ghz;
  }
  if (c.package_cap_w > 0.0) {
    os << " cap=" << c.package_cap_w;
  }
  if (c.io_sched != storage::IoSchedulerKind::kDevice) {
    os << " iosched=" << storage::io_scheduler_name(c.io_sched);
  }
  if (c.io_queue_depth != 0) {
    os << " ioqd=" << c.io_queue_depth;
  }
  if (c.viewers > 0) {
    os << " viewers=" << c.viewers;
  }
  return os.str();
}

}  // namespace greenvis::campaign

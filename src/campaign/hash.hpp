// Canonical config hashing — the identity of a campaign point.
//
// A config's hash must be stable across field-initialization order, across
// default-vs-explicit values, across processes, and across runs, because it
// keys the deduplicating result cache and the on-disk resume journal: a hash
// that drifted would silently re-run (or worse, mis-attribute) work. The
// scheme is therefore boring on purpose: canonicalize the config
// (config.hpp), render it to a versioned fixed-field-order text line with
// doubles as IEEE-754 bit patterns (no decimal round-trip), and FNV-1a the
// bytes. Golden hashes are pinned in tests/campaign_test.cpp; bump the
// version tag in canonical_text() whenever the meaning of any knob changes.
#pragma once

#include <cstdint>
#include <string>

#include "src/campaign/config.hpp"

namespace greenvis::campaign {

/// The canonical serialization that is hashed, e.g.
/// "greenvis.campaign.v1|pipeline=insitu|iters=50|...|freq=4003333333333333".
/// Doubles appear as 16 lowercase hex digits of their bit pattern.
[[nodiscard]] std::string canonical_text(const CampaignConfig& config);

/// FNV-1a 64 over canonical_text().
[[nodiscard]] std::uint64_t config_hash(const CampaignConfig& config);

/// The hash as a 16-char lowercase hex key (journal/cache/JSON identity).
[[nodiscard]] std::string config_key(const CampaignConfig& config);

[[nodiscard]] std::string key_from_hash(std::uint64_t hash);

}  // namespace greenvis::campaign

#include "src/campaign/cache.hpp"

#include <bit>
#include <charconv>
#include <span>
#include <sstream>
#include <vector>

#include "src/util/checksum.hpp"
#include "src/util/error.hpp"

namespace greenvis::campaign {

namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
}

void append_double_bits(std::string& out, double v) {
  append_hex64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t line_checksum(std::string_view payload) {
  return util::fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()));
}

bool parse_hex64(std::string_view token, std::uint64_t* out) {
  if (token.size() != 16) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out, 16);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_dec64(std::string_view token, std::uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out, 10);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_double_bits(std::string_view token, double* out) {
  std::uint64_t bits = 0;
  if (!parse_hex64(token, &bits)) {
    return false;
  }
  *out = std::bit_cast<double>(bits);
  return true;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t next = line.find(' ', pos);
    if (next == std::string_view::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
  return fields;
}

}  // namespace

std::string encode_line(const ConfigResult& result) {
  std::string line = "C2 ";
  line += result.key;
  line += ' ';
  append_double_bits(line, result.duration_s);
  line += ' ';
  append_double_bits(line, result.energy_j);
  line += ' ';
  append_double_bits(line, result.average_power_w);
  line += ' ';
  append_double_bits(line, result.peak_power_w);
  line += ' ';
  append_double_bits(line, result.efficiency);
  line += ' ';
  append_hex64(line, result.image_digest);
  line += ' ';
  append_hex64(line, result.field_digest);
  line += ' ' + std::to_string(result.steps);
  line += ' ' + std::to_string(result.visualized_steps);
  line += ' ' + std::to_string(result.snapshot_bytes_written);
  line += ' ' + std::to_string(result.snapshot_bytes_read);
  line += ' ' + std::to_string(result.snapshot_bytes_raw);
  line += ' ';
  append_double_bits(line, result.energy_sim_j);
  line += ' ';
  append_double_bits(line, result.energy_write_j);
  line += ' ';
  append_double_bits(line, result.energy_read_j);
  line += ' ';
  append_double_bits(line, result.energy_vis_j);
  line += ' ';
  append_double_bits(line, result.energy_idle_j);
  line += ' ';
  append_double_bits(line, result.energy_other_j);
  line += ' ';
  append_double_bits(line, result.energy_static_j);
  line += ' ';
  append_hex64(line, line_checksum(
                         std::string_view(line).substr(0, line.size() - 1)));
  return line;
}

std::optional<ConfigResult> decode_line(const std::string& line) {
  const auto fields = split_fields(line);
  if (fields.size() != 22 || fields[0] != "C2" || fields[1].size() != 16) {
    return std::nullopt;
  }
  // The checksum covers the payload, excluding its own separator space.
  const std::size_t payload_len = line.size() - fields.back().size() - 1;
  std::uint64_t stored_sum = 0;
  if (!parse_hex64(fields.back(), &stored_sum) ||
      line_checksum(std::string_view(line).substr(0, payload_len)) !=
          stored_sum) {
    return std::nullopt;
  }
  ConfigResult r;
  r.key = std::string(fields[1]);
  std::uint64_t steps = 0;
  std::uint64_t visualized = 0;
  if (!parse_double_bits(fields[2], &r.duration_s) ||
      !parse_double_bits(fields[3], &r.energy_j) ||
      !parse_double_bits(fields[4], &r.average_power_w) ||
      !parse_double_bits(fields[5], &r.peak_power_w) ||
      !parse_double_bits(fields[6], &r.efficiency) ||
      !parse_hex64(fields[7], &r.image_digest) ||
      !parse_hex64(fields[8], &r.field_digest) ||
      !parse_dec64(fields[9], &steps) || !parse_dec64(fields[10], &visualized) ||
      !parse_dec64(fields[11], &r.snapshot_bytes_written) ||
      !parse_dec64(fields[12], &r.snapshot_bytes_read) ||
      !parse_dec64(fields[13], &r.snapshot_bytes_raw) ||
      !parse_double_bits(fields[14], &r.energy_sim_j) ||
      !parse_double_bits(fields[15], &r.energy_write_j) ||
      !parse_double_bits(fields[16], &r.energy_read_j) ||
      !parse_double_bits(fields[17], &r.energy_vis_j) ||
      !parse_double_bits(fields[18], &r.energy_idle_j) ||
      !parse_double_bits(fields[19], &r.energy_other_j) ||
      !parse_double_bits(fields[20], &r.energy_static_j)) {
    return std::nullopt;
  }
  r.steps = static_cast<int>(steps);
  r.visualized_steps = static_cast<int>(visualized);
  return r;
}

bool ResultCache::insert(const ConfigResult& result) {
  GREENVIS_REQUIRE(result.key.size() == 16);
  return entries_.emplace(result.key, result).second;
}

const ConfigResult* ResultCache::find(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::size_t ResultCache::load_journal(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t loaded = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      break;  // unterminated fragment: a torn append, ignore
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    const auto result = decode_line(line);
    GREENVIS_REQUIRE_MSG(result.has_value(),
                         "corrupt campaign journal line: " + line);
    insert(*result);
    ++loaded;
  }
  return loaded;
}

}  // namespace greenvis::campaign

#include "src/campaign/hash.hpp"

#include <bit>
#include <sstream>

#include "src/util/checksum.hpp"

namespace greenvis::campaign {

namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
}

void append_double_bits(std::string& out, double v) {
  append_hex64(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::string canonical_text(const CampaignConfig& config) {
  const CampaignConfig c = canonicalize(config);
  std::ostringstream os;
  os << "greenvis.campaign.v1"
     << "|pipeline=" << core::pipeline_kind_name(c.kind)
     << "|iters=" << c.iterations << "|period=" << c.io_period
     << "|grid=" << c.grid << "|sweeps=" << c.sweeps << "|frame=" << c.frame
     << "|codec=" << codec::kind_name(c.codec_kind);
  std::string text = os.str();
  text += "|tol=";
  append_double_bits(text, c.codec_tolerance);
  text += "|chunk=" + std::to_string(c.chunk_edge);
  text += "|device=";
  text += core::storage_device_name(c.device);
  text += "|freq=";
  append_double_bits(text, c.frequency_ghz);
  text += "|iofreq=";
  append_double_bits(text, c.io_frequency_ghz);
  text += "|cap=";
  append_double_bits(text, c.package_cap_w);
  text += "|stage=" + std::to_string(c.stage_buffers);
  // Axes added after v1 append as conditional suffixes: a config at their
  // defaults hashes exactly as it did before the axis existed, so every
  // journaled key and cached result stays valid.
  if (c.io_sched != storage::IoSchedulerKind::kDevice) {
    text += "|iosched=";
    text += storage::io_scheduler_name(c.io_sched);
  }
  if (c.io_queue_depth != 0) {
    text += "|ioqd=" + std::to_string(c.io_queue_depth);
  }
  if (c.viewers > 0) {
    text += "|viewers=" + std::to_string(c.viewers);
  }
  return text;
}

std::uint64_t config_hash(const CampaignConfig& config) {
  const std::string text = canonical_text(config);
  return util::fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::string key_from_hash(std::uint64_t hash) {
  std::string key;
  key.reserve(16);
  append_hex64(key, hash);
  return key;
}

std::string config_key(const CampaignConfig& config) {
  return key_from_hash(config_hash(config));
}

}  // namespace greenvis::campaign

// Campaign configurations: the flattened knob tuple a sweep varies.
//
// A CampaignConfig is one point in the cross product the campaign engine
// explores — pipeline kind x workload shape x codec x storage device x DVFS
// x power cap. It is deliberately a plain value type (no nested machine
// spec, no calibration tables): every knob either changes the simulated
// results or is canonicalized away (hash.hpp), and materialize() expands it
// into the full CaseStudyConfig/TestbedConfig/PipelineOptions triple the
// experiment runner consumes. See DESIGN.md §3e.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/codec/field_codec.hpp"
#include "src/core/batch_runner.hpp"
#include "src/core/experiment.hpp"
#include "src/storage/async_device.hpp"

namespace greenvis::campaign {

/// One campaign point. Field defaults reproduce the paper's testbed (case
/// study 1 shape, HDD, nominal clock, raw snapshots); `0` means "module
/// default" where noted so that default-vs-explicit configs hash equal.
struct CampaignConfig {
  core::PipelineKind kind{core::PipelineKind::kPostProcessing};
  int iterations{50};
  int io_period{1};
  /// Square grid edge (problem.nx == problem.ny).
  std::size_t grid{128};
  /// Host Jacobi sweeps per step; 0 = the solver default (40).
  std::size_t sweeps{0};
  /// Render frame edge (vis.width == vis.height); 0 = the vis default (512).
  std::size_t frame{0};
  codec::Kind codec_kind{codec::Kind::kRaw};
  double codec_tolerance{1e-3};
  std::size_t chunk_edge{32};
  core::StorageDeviceKind device{core::StorageDeviceKind::kHdd};
  double frequency_ghz{2.4};
  /// I/O-phase clock; 0 = same as frequency_ghz.
  double io_frequency_ghz{0.0};
  /// RAPL package cap in watts; 0 = uncapped.
  double package_cap_w{0.0};
  /// Staging ring slots (async pipeline only).
  std::size_t stage_buffers{2};
  /// Block-layer I/O scheduler; kDevice (the pass-through default)
  /// reproduces the seed behavior and is canonicalized away wherever the
  /// config never touches storage.
  storage::IoSchedulerKind io_sched{storage::IoSchedulerKind::kDevice};
  /// Block-layer submission queue depth; 0 = the device default.
  std::size_t io_queue_depth{0};
  /// Viewer-serving axis: 0 = classic pipeline experiment; N > 0 runs a
  /// serve session with N subscribers in min(4, N) distinct view groups.
  int viewers{0};
};

/// Normalize semantically-equivalent configs to one representative: fill
/// module defaults (sweeps, frame), zero knobs the selected pipeline/codec
/// never reads (tolerance under raw/rle, chunking under raw, any codec and
/// the I/O clock under in-situ, stage buffers outside async). Two configs
/// that produce byte-identical results for a reason expressible at the knob
/// level canonicalize — and therefore hash (hash.hpp) — identically.
[[nodiscard]] CampaignConfig canonicalize(const CampaignConfig& config);

/// The full experiment inputs a config denotes.
struct MaterializedConfig {
  core::PipelineKind kind{core::PipelineKind::kPostProcessing};
  core::CaseStudyConfig workload;
  core::TestbedConfig testbed;
  core::PipelineOptions options;
  /// > 0: run a serve session with this many subscribers instead of a
  /// pipeline experiment.
  int viewers{0};
};

/// Expand a (canonical or not) config into runnable experiment inputs.
/// `host_threads` is a host-side execution knob (never part of the hash:
/// pipeline results are byte-identical for any thread count).
[[nodiscard]] MaterializedConfig materialize(const CampaignConfig& config,
                                             std::size_t host_threads = 0);

/// Axes of a sweep: the cross product of every non-empty vector (an empty
/// axis means "the CampaignConfig default"). expand() orders the product
/// deterministically with the pipeline axis innermost, so a post-processing
/// config and its in-situ twin sit adjacent in the job list.
struct CampaignSpec {
  std::vector<core::PipelineKind> pipelines;
  std::vector<int> iterations;
  std::vector<int> io_periods;
  std::vector<std::size_t> grids;
  std::vector<codec::Kind> codecs;
  std::vector<double> tolerances;
  std::vector<core::StorageDeviceKind> devices;
  std::vector<double> frequencies;
  std::vector<double> io_frequencies;
  std::vector<double> package_caps;
  std::vector<storage::IoSchedulerKind> io_scheds;
  std::vector<std::size_t> io_queue_depths;
  std::vector<int> viewer_counts;

  [[nodiscard]] std::vector<CampaignConfig> expand() const;
};

/// Human-readable one-line description ("insitu grid=128 period=2 ...").
[[nodiscard]] std::string describe(const CampaignConfig& config);

}  // namespace greenvis::campaign

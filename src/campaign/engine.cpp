#include "src/campaign/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iomanip>
#include <mutex>
#include <span>
#include <unordered_set>

#include "src/campaign/hash.hpp"
#include "src/obs/tracer.hpp"
#include "src/serve/session.hpp"
#include "src/serve/viewer.hpp"
#include "src/util/checksum.hpp"
#include "src/util/error.hpp"
#include "src/util/sharded.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::campaign {

namespace {

std::uint64_t digest_bytes(std::span<const std::uint8_t> bytes,
                           std::uint64_t seed) {
  return util::fnv1a64(bytes, seed);
}

std::uint64_t digest_u64s(std::span<const std::uint64_t> values) {
  return digest_bytes(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size() * sizeof(std::uint64_t)),
      0xCBF29CE484222325ULL);
}

}  // namespace

ConfigResult result_from_metrics(const std::string& key,
                                 const core::PipelineMetrics& metrics) {
  ConfigResult r;
  r.key = key;
  r.duration_s = metrics.duration.value();
  r.energy_j = metrics.energy.value();
  r.average_power_w = metrics.average_power.value();
  r.peak_power_w = metrics.peak_power.value();
  r.efficiency = metrics.efficiency;
  r.image_digest = digest_u64s(metrics.output.image_digests);
  const auto field_bytes = metrics.output.final_field.serialize();
  r.field_digest = digest_bytes(field_bytes, 0xCBF29CE484222325ULL);
  r.steps = metrics.output.steps;
  r.visualized_steps = metrics.output.visualized_steps;
  r.snapshot_bytes_written = metrics.output.snapshot_bytes_written.value();
  r.snapshot_bytes_read = metrics.output.snapshot_bytes_read.value();
  r.snapshot_bytes_raw = metrics.output.snapshot_bytes_raw.value();
  for (const obs::StageEnergy& s : metrics.attribution.stages) {
    const double j = s.total().value();
    if (s.name == core::stage::kSimulation) {
      r.energy_sim_j += j;
    } else if (s.name == core::stage::kWrite) {
      r.energy_write_j += j;
    } else if (s.name == core::stage::kRead) {
      r.energy_read_j += j;
    } else if (s.name == core::stage::kVisualization) {
      r.energy_vis_j += j;
    } else if (s.name == obs::kEnergyIdle) {
      r.energy_idle_j += j;
    } else {
      r.energy_other_j += j;
    }
  }
  r.energy_static_j = metrics.attribution.static_total().value();
  return r;
}

namespace {

/// Map a serve session onto the journal's result row: delivered-frame
/// digests stand in for the image digests, delivery bytes for snapshot
/// traffic, and the Encode/Deliver stages land in energy_other_j — the
/// journal format itself is unchanged.
ConfigResult result_from_serve(const std::string& key,
                               const CampaignConfig& config,
                               const serve::ServeReport& report) {
  ConfigResult r;
  r.key = key;
  r.duration_s = report.duration.value();
  r.energy_j = report.energy.value();
  r.average_power_w = report.average_power.value();
  r.peak_power_w = report.peak_power.value();
  const double cells = static_cast<double>((config.grid - 2) *
                                           (config.grid - 2));
  r.efficiency =
      cells * static_cast<double>(config.iterations) / r.energy_j;
  std::vector<std::uint64_t> digests;
  digests.reserve(report.deliveries.size());
  for (const serve::Delivery& d : report.deliveries) {
    digests.push_back(d.digest);
  }
  r.image_digest = digest_u64s(digests);
  r.field_digest = report.final_field_digest;
  r.steps = config.iterations;
  r.visualized_steps = report.frame_steps;
  std::uint64_t bytes = 0;
  for (const serve::ViewerEnergy& v : report.viewers) {
    bytes += v.bytes;
  }
  r.snapshot_bytes_written = bytes;
  r.snapshot_bytes_raw = bytes;
  for (const obs::StageEnergy& s : report.attribution.stages) {
    const double j = s.total().value();
    if (s.name == core::stage::kSimulation) {
      r.energy_sim_j += j;
    } else if (s.name == core::stage::kVisualization) {
      r.energy_vis_j += j;
    } else if (s.name == obs::kEnergyIdle) {
      r.energy_idle_j += j;
    } else {
      r.energy_other_j += j;
    }
  }
  r.energy_static_j = report.attribution.static_total().value();
  return r;
}

}  // namespace

CampaignReport CampaignEngine::run(const std::vector<CampaignConfig>& configs,
                                   const CampaignOptions& options) const {
  obs::ScopedSpan span("campaign.run", obs::kCatCampaign);
  CampaignReport report;
  report.configs.reserve(configs.size());
  report.keys.reserve(configs.size());

  // Canonicalize + hash every config; first occurrence of a key owns it.
  std::unordered_set<std::string> seen;
  std::vector<std::size_t> misses;  // indices of fresh work, in config order
  for (const CampaignConfig& raw : configs) {
    const CampaignConfig c = canonicalize(raw);
    report.configs.push_back(c);
    report.keys.push_back(config_key(c));
    const std::string& key = report.keys.back();
    if (!seen.insert(key).second) {
      ++report.duplicates;
      continue;
    }
    ++report.unique_configs;
    if (cache_.find(key) != nullptr) {
      ++report.cache_hits;
    } else {
      misses.push_back(report.configs.size() - 1);
    }
  }
  if (obs::enabled()) {
    static obs::Counter& hits =
        obs::Registry::global().counter("campaign.cache.hits");
    static obs::Counter& miss_count =
        obs::Registry::global().counter("campaign.cache.misses");
    hits.add(report.cache_hits);
    miss_count.add(misses.size());
  }

  if (options.job_limit != 0 && misses.size() > options.job_limit) {
    misses.resize(options.job_limit);
    report.interrupted = true;
  }
  report.executed = misses.size();

  const auto host_begin = std::chrono::steady_clock::now();
  if (!misses.empty()) {
    // Divide the machine among the misses actually in flight.
    const core::BatchRunner sizing(options.threads);
    const std::size_t fan_out = std::min(sizing.concurrency(), misses.size());
    const std::size_t host_threads =
        sizing.host_threads_per_job(misses.size());

    std::mutex sink_mutex;
    std::exception_ptr error;
    auto run_one = [&](std::size_t slot) {
      const std::size_t i = misses[slot];
      const MaterializedConfig m =
          materialize(report.configs[i], host_threads);
      ConfigResult result;
      if (m.viewers > 0) {
        serve::ServeConfig sc;
        sc.base = m.workload;
        sc.viewers =
            serve::default_fleet(m.viewers, std::min(4, m.viewers));
        sc.host_threads = host_threads;
        const serve::ServeReport rep =
            serve::run_serve_session(sc, m.testbed);
        result = result_from_serve(report.keys[i], report.configs[i], rep);
      } else {
        const core::PipelineMetrics metrics =
            core::Experiment(m.testbed).run(m.kind, m.workload, m.options);
        result = result_from_metrics(report.keys[i], metrics);
      }
      const std::lock_guard lock(sink_mutex);
      cache_.insert(result);
      if (journal_ != nullptr) {
        *journal_ << encode_line(result) << '\n';
        journal_->flush();
      }
    };

    if (fan_out <= 1) {
      for (std::size_t slot = 0; slot < misses.size(); ++slot) {
        run_one(slot);
      }
    } else {
      util::ThreadPool pool(fan_out);
      util::ShardedOptions sharded;
      sharded.shards = options.shards;
      sharded.span_name = "campaign.shard";
      sharded.steal_counter =
          obs::enabled()
              ? &obs::Registry::global().counter("campaign.shard.steals")
              : nullptr;
      const util::ShardedRunStats stats = util::run_sharded(
          pool, misses.size(),
          [&](std::size_t slot) {
            try {
              run_one(slot);
            } catch (...) {
              const std::lock_guard lock(sink_mutex);
              if (!error) {
                error = std::current_exception();
              }
            }
          },
          sharded);
      report.steals = stats.steals;
      if (error) {
        std::rethrow_exception(error);
      }
    }
  }
  report.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_begin)
          .count();
  if (obs::enabled()) {
    static obs::Gauge& rate =
        obs::Registry::global().gauge("campaign.configs_per_s");
    rate.set(report.configs_per_second());
  }

  report.results.resize(report.configs.size());
  report.completed.assign(report.configs.size(), 0);
  for (std::size_t i = 0; i < report.configs.size(); ++i) {
    if (const ConfigResult* r = cache_.find(report.keys[i])) {
      report.results[i] = *r;
      report.completed[i] = 1;
    }
  }
  GREENVIS_ENSURE(report.interrupted ||
                  std::all_of(report.completed.begin(), report.completed.end(),
                              [](char c) { return c != 0; }));
  return report;
}

namespace {

void json_double(std::ostream& os, double v) {
  os << std::setprecision(17) << v;
}

void json_hex(std::ostream& os, std::uint64_t v) {
  os << '"' << key_from_hash(v) << '"';
}

}  // namespace

void write_campaign_json(std::ostream& os, const CampaignReport& report) {
  GREENVIS_REQUIRE_MSG(!report.interrupted,
                       "cannot render an interrupted campaign");
  os << "{\n  \"schema\": \"greenvis.campaign.v1\",\n  \"configs\": [";
  for (std::size_t i = 0; i < report.configs.size(); ++i) {
    const CampaignConfig& c = report.configs[i];
    const ConfigResult& r = report.results[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"key\": \"" << report.keys[i] << "\", \"pipeline\": \""
       << core::pipeline_kind_name(c.kind) << "\", \"grid\": " << c.grid
       << ", \"iterations\": " << c.iterations
       << ", \"io_period\": " << c.io_period << ", \"sweeps\": " << c.sweeps
       << ", \"frame\": " << c.frame << ", \"codec\": \""
       << codec::kind_name(c.codec_kind) << "\", \"tolerance\": ";
    json_double(os, c.codec_tolerance);
    os << ", \"chunk_edge\": " << c.chunk_edge << ", \"device\": \""
       << core::storage_device_name(c.device) << "\", \"frequency_ghz\": ";
    json_double(os, c.frequency_ghz);
    os << ", \"io_frequency_ghz\": ";
    json_double(os, c.io_frequency_ghz);
    os << ", \"package_cap_w\": ";
    json_double(os, c.package_cap_w);
    os << ", \"stage_buffers\": " << c.stage_buffers << ", \"io_sched\": \""
       << storage::io_scheduler_name(c.io_sched)
       << "\", \"io_queue_depth\": " << c.io_queue_depth
       << ", \"viewers\": " << c.viewers << ",\n     \"duration_s\": ";
    json_double(os, r.duration_s);
    os << ", \"energy_j\": ";
    json_double(os, r.energy_j);
    os << ", \"average_power_w\": ";
    json_double(os, r.average_power_w);
    os << ", \"peak_power_w\": ";
    json_double(os, r.peak_power_w);
    os << ", \"efficiency\": ";
    json_double(os, r.efficiency);
    os << ", \"image_digest\": ";
    json_hex(os, r.image_digest);
    os << ", \"field_digest\": ";
    json_hex(os, r.field_digest);
    os << ", \"steps\": " << r.steps
       << ", \"visualized_steps\": " << r.visualized_steps
       << ", \"snapshot_bytes_written\": " << r.snapshot_bytes_written
       << ", \"snapshot_bytes_read\": " << r.snapshot_bytes_read
       << ", \"snapshot_bytes_raw\": " << r.snapshot_bytes_raw
       << ",\n     \"energy_sim_j\": ";
    json_double(os, r.energy_sim_j);
    os << ", \"energy_write_j\": ";
    json_double(os, r.energy_write_j);
    os << ", \"energy_read_j\": ";
    json_double(os, r.energy_read_j);
    os << ", \"energy_vis_j\": ";
    json_double(os, r.energy_vis_j);
    os << ", \"energy_idle_j\": ";
    json_double(os, r.energy_idle_j);
    os << ", \"energy_other_j\": ";
    json_double(os, r.energy_other_j);
    os << ", \"energy_static_j\": ";
    json_double(os, r.energy_static_j);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace greenvis::campaign

// Feeding the analysis layer from a warm campaign.
//
// A campaign that sweeps the pipeline axis contains, for every
// post-processing config, its in-situ twin (same knobs, kind swapped — and
// hashes are canonical, so the twin is found by hashing the swapped config,
// never by scanning knobs). These helpers pair them into the Sec. V
// pipeline-switch what-if and translate a result's snapshot traffic into
// the advisor's AccessPattern, all without re-running anything.
#pragma once

#include <cstddef>
#include <vector>

#include "src/analysis/advisor.hpp"
#include "src/analysis/whatif.hpp"
#include "src/campaign/engine.hpp"

namespace greenvis::campaign {

/// One matched post-processing / in-situ pair (indices into the report).
struct PipelineSwitchCase {
  std::size_t post_index{0};
  std::size_t insitu_index{0};
  analysis::PipelineSwitchWhatIf whatif;
};

/// Every (kPostProcessing, kInSitu) twin pair present and completed in the
/// report, in post-config order. The async variant is not paired (its
/// science equals post-processing; the interesting switch is disk vs none).
[[nodiscard]] std::vector<PipelineSwitchCase> pipeline_switch_cases(
    const CampaignReport& report);

/// The advisor input for one completed result (2 accesses per visualized
/// step: one snapshot write + one read-back).
[[nodiscard]] analysis::AccessPattern access_pattern_for(
    const ConfigResult& result, bool exploratory_analysis_required = true);

}  // namespace greenvis::campaign

// Feeding the analysis layer from a warm campaign.
//
// A campaign that sweeps the pipeline axis contains, for every
// post-processing config, its in-situ twin (same knobs, kind swapped — and
// hashes are canonical, so the twin is found by hashing the swapped config,
// never by scanning knobs). These helpers pair them into the Sec. V
// pipeline-switch what-if and translate a result's snapshot traffic into
// the advisor's AccessPattern, all without re-running anything.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/advisor.hpp"
#include "src/analysis/whatif.hpp"
#include "src/campaign/engine.hpp"

namespace greenvis::campaign {

/// One matched post-processing / in-situ pair (indices into the report).
struct PipelineSwitchCase {
  std::size_t post_index{0};
  std::size_t insitu_index{0};
  analysis::PipelineSwitchWhatIf whatif;
};

/// Every (kPostProcessing, kInSitu) twin pair present and completed in the
/// report, in post-config order. The async variant is not paired (its
/// science equals post-processing; the interesting switch is disk vs none).
[[nodiscard]] std::vector<PipelineSwitchCase> pipeline_switch_cases(
    const CampaignReport& report);

/// The advisor input for one completed result (2 accesses per visualized
/// step: one snapshot write + one read-back).
[[nodiscard]] analysis::AccessPattern access_pattern_for(
    const ConfigResult& result, bool exploratory_analysis_required = true);

/// One attributed-energy column of a ConfigResult, named.
struct StageConsumer {
  std::string stage;
  double joules{0.0};
};

/// The result's attributed-energy columns ranked descending (ties by name),
/// at most `n` entries, zero columns skipped — the "why" behind a
/// pipeline-switch recommendation ("post-processing loses 14.2 kJ to Write
/// spans").
[[nodiscard]] std::vector<StageConsumer> top_stage_consumers(
    const ConfigResult& result, std::size_t n = 3);

}  // namespace greenvis::campaign

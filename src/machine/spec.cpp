#include "src/machine/spec.hpp"

namespace greenvis::machine {

NodeSpec sandy_bridge_testbed() {
  // All defaults in the spec structs describe exactly this node.
  return NodeSpec{};
}

}  // namespace greenvis::machine

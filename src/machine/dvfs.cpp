#include "src/machine/dvfs.hpp"

#include <cmath>

namespace greenvis::machine {

std::vector<PState> e5_2665_pstates() {
  std::vector<PState> states;
  const double nominal = 2.4;
  for (double f = 1.2; f <= nominal + 1e-9; f += 0.1) {
    states.push_back(PState{f, dynamic_power_scale(f, nominal)});
  }
  return states;
}

PState nearest_pstate(const std::vector<PState>& ladder, double freq_ghz) {
  GREENVIS_REQUIRE(!ladder.empty());
  const PState* best = &ladder.front();
  double best_dist = std::abs(best->frequency_ghz - freq_ghz);
  for (const auto& p : ladder) {
    const double d = std::abs(p.frequency_ghz - freq_ghz);
    if (d < best_dist) {
      best = &p;
      best_dist = d;
    }
  }
  return *best;
}

}  // namespace greenvis::machine

// Component load over virtual time.
//
// As stages execute, the experiment runner appends piecewise-constant load
// segments describing CPU and DRAM activity; the storage model keeps its own
// analogous log of disk activity. The power model samples these to produce
// the instantaneous-watts profiles of Fig. 5.
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/units.hpp"

namespace greenvis::machine {

using util::Seconds;

/// Instantaneous utilization of the CPU/memory subsystems.
struct ComponentLoad {
  /// Number of busy cores (0 .. total cores). Fractional values express
  /// partially loaded cores over a sampling window.
  double active_cores{0.0};
  /// Duty cycle of the busy cores in (0, 1]; an I/O loop blocked on the disk
  /// keeps one core "active" at a few percent.
  double core_utilization{1.0};
  /// Core clock in GHz (DVFS state).
  double frequency_ghz{2.4};
  /// Achieved DRAM traffic rate.
  util::BytesPerSecond dram_bandwidth{0.0};

  /// Effective busy-core count (active cores weighted by duty cycle).
  [[nodiscard]] double effective_cores() const {
    return active_cores * core_utilization;
  }
};

/// Piecewise-constant load segments. Gaps are idle. Segments appended via
/// add() must arrive in time order (stages run serially on their track);
/// merge() interleaves a second track recorded concurrently — e.g. the
/// async staging writer — so segments may overlap afterwards, and the
/// query methods sum concurrent activity.
class LoadTimeline {
 public:
  /// Append a segment. `begin` must be at or after the end of every
  /// previous segment (one track runs serially).
  void add(Seconds begin, Seconds end, const ComponentLoad& load);

  /// Interleave another timeline's segments (sorted by begin, ties keep
  /// this timeline's segments first). The result may contain overlapping
  /// segments; add() afterwards still requires `begin >= end_time()`.
  void merge(const LoadTimeline& other);

  /// Load at time `t`; idle (zero) load inside gaps. Boundary samples belong
  /// to the segment starting at `t`. When several segments overlap `t`,
  /// returns their sum: effective cores and DRAM rates add, the frequency
  /// is the busy-weighted average.
  [[nodiscard]] ComponentLoad at(Seconds t) const;

  /// Time-weighted average load over [t0, t1); gaps count as idle. The
  /// frequency reported is the busy-time-weighted average (nominal when the
  /// window is fully idle is the caller's concern; we return 0 activity).
  /// Overlapping segments both contribute — concurrent compute and I/O
  /// activity sum, they are never serialized.
  [[nodiscard]] ComponentLoad average_in(Seconds t0, Seconds t1) const;

  [[nodiscard]] std::size_t segment_count() const { return begins_.size(); }
  [[nodiscard]] Seconds end_time() const;
  [[nodiscard]] bool empty() const { return begins_.empty(); }

  /// Read-only view of one recorded segment, in storage (begin-sorted)
  /// order. The energy attributor integrates per segment instead of
  /// sampling, so totals are exact rather than window-quantized.
  struct SegmentView {
    Seconds begin{0.0};
    Seconds end{0.0};
    const ComponentLoad* load{nullptr};
  };
  [[nodiscard]] SegmentView segment(std::size_t i) const {
    return SegmentView{begins_[i], ends_[i], &loads_[i]};
  }

 private:
  std::vector<Seconds> begins_;
  std::vector<Seconds> ends_;
  std::vector<ComponentLoad> loads_;
  /// max_end_[i] = max(ends_[0..i]) — with overlap, a window query must
  /// know how far earlier segments can reach past later begins.
  std::vector<Seconds> max_end_;
};

}  // namespace greenvis::machine

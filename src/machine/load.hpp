// Component load over virtual time.
//
// As stages execute, the experiment runner appends piecewise-constant load
// segments describing CPU and DRAM activity; the storage model keeps its own
// analogous log of disk activity. The power model samples these to produce
// the instantaneous-watts profiles of Fig. 5.
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/units.hpp"

namespace greenvis::machine {

using util::Seconds;

/// Instantaneous utilization of the CPU/memory subsystems.
struct ComponentLoad {
  /// Number of busy cores (0 .. total cores). Fractional values express
  /// partially loaded cores over a sampling window.
  double active_cores{0.0};
  /// Duty cycle of the busy cores in (0, 1]; an I/O loop blocked on the disk
  /// keeps one core "active" at a few percent.
  double core_utilization{1.0};
  /// Core clock in GHz (DVFS state).
  double frequency_ghz{2.4};
  /// Achieved DRAM traffic rate.
  util::BytesPerSecond dram_bandwidth{0.0};

  /// Effective busy-core count (active cores weighted by duty cycle).
  [[nodiscard]] double effective_cores() const {
    return active_cores * core_utilization;
  }
};

/// Piecewise-constant, non-overlapping load segments. Gaps are idle.
class LoadTimeline {
 public:
  /// Append a segment. `begin` must be at or after the end of the previous
  /// segment (stages run serially on the simulated node).
  void add(Seconds begin, Seconds end, const ComponentLoad& load);

  /// Load at time `t`; idle (zero) load inside gaps. Boundary samples belong
  /// to the segment starting at `t`.
  [[nodiscard]] ComponentLoad at(Seconds t) const;

  /// Time-weighted average load over [t0, t1); gaps count as idle. The
  /// frequency reported is the busy-time-weighted average (nominal when the
  /// window is fully idle is the caller's concern; we return 0 activity).
  [[nodiscard]] ComponentLoad average_in(Seconds t0, Seconds t1) const;

  [[nodiscard]] std::size_t segment_count() const { return begins_.size(); }
  [[nodiscard]] Seconds end_time() const;
  [[nodiscard]] bool empty() const { return begins_.empty(); }

 private:
  std::vector<Seconds> begins_;
  std::vector<Seconds> ends_;
  std::vector<ComponentLoad> loads_;
};

}  // namespace greenvis::machine

// Hardware specification of the simulated node.
//
// Mirrors Table I of the paper: a dual-socket Intel Sandy Bridge node
// (2x Xeon E5-2665, 8 cores/socket @ 2.4 GHz, 20 MB LLC, 64 GB DDR3-1333,
// Seagate 500 GB 7200 rpm HDD behind a 6 Gbps SATA link).
#pragma once

#include <cstddef>
#include <string>

#include "src/util/units.hpp"

namespace greenvis::machine {

struct CpuSpec {
  std::string model{"Intel Xeon E5-2665"};
  std::size_t sockets{2};
  std::size_t cores_per_socket{8};
  double nominal_ghz{2.4};
  util::Bytes last_level_cache{util::mebibytes(20)};

  [[nodiscard]] std::size_t total_cores() const {
    return sockets * cores_per_socket;
  }
};

struct MemorySpec {
  std::string type{"DDR3-1333"};
  std::size_t dimms{4};
  util::Bytes dimm_size{util::gibibytes(16)};
  /// Peak bandwidth of the 4-channel DDR3-1333 configuration.
  util::BytesPerSecond peak_bandwidth{util::mebibytes_per_second(4.0 * 10666.0)};

  [[nodiscard]] util::Bytes total_size() const {
    return util::Bytes{dimm_size.value() * dimms};
  }
};

struct DiskSpec {
  std::string model{"Seagate 7200rpm"};
  util::Bytes capacity{util::gibibytes(500)};
  double rpm{7200.0};
  /// Sustained media transfer rate. Table III's 4 GB sequential read in
  /// 35.9 s implies ~114 MiB/s, typical for this class of drive.
  util::BytesPerSecond sustained_rate{util::mebibytes_per_second(114.0)};
  /// Average seek for a random request (manufacturer-typical 8.5 ms).
  util::Seconds average_seek{util::milliseconds(8.5)};
  /// Full-stroke seek; short seeks interpolate between settle time and this.
  util::Seconds full_stroke_seek{util::milliseconds(18.0)};
  /// Minimum positioning cost for any head movement (arm settle + servo
  /// lock). Fitted so Table III's random-read test reproduces: 4 GB of
  /// 16 KiB random reads at ~8.5 ms each.
  util::Seconds settle_time{util::milliseconds(3.3)};
  /// Interface ("6.0 Gbps" SATA in Table I) — an upper bound, never the
  /// bottleneck for a single spinning disk.
  util::BytesPerSecond interface_rate{util::mebibytes_per_second(600.0)};
  /// Native command queueing depth (reordering window for random I/O).
  std::size_t ncq_depth{32};

  /// One full platter rotation.
  [[nodiscard]] util::Seconds rotation_period() const {
    return util::Seconds{60.0 / rpm};
  }
  /// Expected rotational latency for an unscheduled access (half rotation).
  [[nodiscard]] util::Seconds average_rotational_latency() const {
    return rotation_period() / 2.0;
  }
};

struct NodeSpec {
  CpuSpec cpu;
  MemorySpec memory;
  DiskSpec disk;
  std::string os{"Ubuntu 12.04, Linux 3.2.0-23"};
};

/// The paper's system under test (Table I).
[[nodiscard]] NodeSpec sandy_bridge_testbed();

}  // namespace greenvis::machine

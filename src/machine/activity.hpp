// Activity records: what a stage did, in machine-visible terms.
//
// Stages (solver step, rasterization, serialization) count their own
// operations while doing the real work on host memory; the cost model turns
// those counts into virtual seconds, and the power model turns the implied
// utilization into watts. Disk activity is tracked separately by the storage
// model, which knows about seeks and rotations.
#pragma once

#include <cstdint>

#include "src/util/units.hpp"

namespace greenvis::machine {

struct ActivityRecord {
  /// Floating-point operations performed.
  double flops{0.0};
  /// Bytes moved to/from DRAM (beyond-LLC traffic).
  util::Bytes dram_bytes{0};
  /// Number of cores the work was spread across (parallel stages use all 16,
  /// the I/O loop uses 1).
  std::size_t active_cores{1};
  /// Average per-core utilization while active, in (0, 1]. The write/read
  /// loops are mostly blocked on the disk, so their one active core sits at
  /// a few percent.
  double core_utilization{1.0};

  ActivityRecord& operator+=(const ActivityRecord& o) {
    flops += o.flops;
    dram_bytes += o.dram_bytes;
    active_cores = active_cores > o.active_cores ? active_cores : o.active_cores;
    // Utilizations don't add across phases; keep the max (conservative).
    core_utilization =
        core_utilization > o.core_utilization ? core_utilization : o.core_utilization;
    return *this;
  }
};

}  // namespace greenvis::machine

// DVFS (dynamic voltage and frequency scaling) states.
//
// The paper's discussion (Sec. V-C) notes that when in-situ savings are
// mostly static, "techniques such as frequency scaling ... may help" the
// post-processing pipeline. The frequency-scaling ablation bench uses these
// P-states to quantify that claim on our model.
#pragma once

#include <vector>

#include "src/util/error.hpp"

namespace greenvis::machine {

struct PState {
  double frequency_ghz;
  /// Core dynamic power relative to the nominal state. Dynamic power scales
  /// as f * V^2 and voltage scales roughly linearly with frequency in the
  /// DVFS range, so the relative factor is (f/f_nom)^3.
  double dynamic_power_scale;
};

/// P-states for the E5-2665: 1.2 GHz to 2.4 GHz in 0.1 GHz steps (Sandy
/// Bridge exposes roughly this ladder; turbo is excluded because the paper's
/// runs pin the nominal clock).
[[nodiscard]] std::vector<PState> e5_2665_pstates();

/// The P-state closest to `freq_ghz` from a ladder.
[[nodiscard]] PState nearest_pstate(const std::vector<PState>& ladder,
                                    double freq_ghz);

/// Relative core dynamic power at `freq_ghz` against `nominal_ghz`.
[[nodiscard]] inline double dynamic_power_scale(double freq_ghz,
                                                double nominal_ghz) {
  GREENVIS_REQUIRE(freq_ghz > 0.0 && nominal_ghz > 0.0);
  const double r = freq_ghz / nominal_ghz;
  return r * r * r;
}

}  // namespace greenvis::machine

// Activity -> virtual time.
//
// A roofline-style cost model: a stage's duration is the larger of its
// compute time (flops over the sustained per-core rate at the current DVFS
// frequency) and its memory time (DRAM bytes over achievable bandwidth).
//
// Calibration. The sustained per-core rate is fitted to the paper's testbed,
// not to peak hardware numbers: the proxy app sweeps a 128x128 grid with 16
// threads, which is severely barrier-bound (about 1k cells per core per
// sweep), so the effective rate is far below the 2-flops/cycle streaming
// rate of a Sandy Bridge core. See DESIGN.md and power/calibration.hpp.
#pragma once

#include "src/machine/activity.hpp"
#include "src/machine/load.hpp"
#include "src/machine/spec.hpp"
#include "src/util/units.hpp"

namespace greenvis::machine {

struct CostModelParams {
  /// Effective sustained flops per core per second at the nominal frequency,
  /// calibrated so the simulation stage holds Fig. 4's 33% share of case
  /// study 1 against the storage model's write/read stage times
  /// (barrier-bound 16-thread sweeps of a tiny grid run far below peak).
  double sustained_flops_per_core{2.35e8};
  /// Fraction of the memory system's peak bandwidth a real stencil achieves.
  double achievable_bandwidth_fraction{0.6};
};

class CostModel {
 public:
  CostModel(const NodeSpec& spec, const CostModelParams& params);

  /// Virtual duration of `work` at frequency `freq_ghz`.
  [[nodiscard]] Seconds duration(const ActivityRecord& work,
                                 double freq_ghz) const;

  /// The CPU/DRAM load implied by `work` spread uniformly over `duration`.
  [[nodiscard]] ComponentLoad load(const ActivityRecord& work,
                                   Seconds duration, double freq_ghz) const;

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] const CostModelParams& params() const { return params_; }

 private:
  NodeSpec spec_;
  CostModelParams params_;
};

}  // namespace greenvis::machine

#include "src/machine/load.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::machine {

void LoadTimeline::add(Seconds begin, Seconds end, const ComponentLoad& load) {
  GREENVIS_REQUIRE_MSG(end >= begin, "segment must not be negative");
  if (!begins_.empty()) {
    GREENVIS_REQUIRE_MSG(begin >= max_end_.back(),
                         "segments must be appended in time order");
  }
  begins_.push_back(begin);
  ends_.push_back(end);
  loads_.push_back(load);
  max_end_.push_back(max_end_.empty() ? end
                                      : std::max(max_end_.back(), end));
}

void LoadTimeline::merge(const LoadTimeline& other) {
  if (other.empty()) {
    return;
  }
  std::vector<Seconds> begins, ends;
  std::vector<ComponentLoad> loads;
  const std::size_t total = begins_.size() + other.begins_.size();
  begins.reserve(total);
  ends.reserve(total);
  loads.reserve(total);
  std::size_t a = 0, b = 0;
  while (a < begins_.size() || b < other.begins_.size()) {
    const bool take_a =
        b >= other.begins_.size() ||
        (a < begins_.size() && begins_[a] <= other.begins_[b]);
    if (take_a) {
      begins.push_back(begins_[a]);
      ends.push_back(ends_[a]);
      loads.push_back(loads_[a]);
      ++a;
    } else {
      begins.push_back(other.begins_[b]);
      ends.push_back(other.ends_[b]);
      loads.push_back(other.loads_[b]);
      ++b;
    }
  }
  begins_ = std::move(begins);
  ends_ = std::move(ends);
  loads_ = std::move(loads);
  max_end_.clear();
  max_end_.reserve(ends_.size());
  for (const Seconds end : ends_) {
    max_end_.push_back(max_end_.empty() ? end
                                        : std::max(max_end_.back(), end));
  }
}

ComponentLoad LoadTimeline::at(Seconds t) const {
  // Candidates: segments with begin <= t whose prefix-max end reaches past
  // t. Walk back from the last begin <= t; stop once no earlier segment can
  // still cover t.
  const auto it = std::upper_bound(begins_.begin(), begins_.end(), t);
  if (it == begins_.begin()) {
    return ComponentLoad{};
  }
  std::size_t idx = static_cast<std::size_t>(it - begins_.begin());
  std::size_t covering = 0;
  std::size_t single = 0;
  double effective = 0.0;
  double freq_weight = 0.0;
  double dram = 0.0;
  while (idx-- > 0) {
    if (max_end_[idx] <= t) {
      break;  // nothing at or before idx reaches past t
    }
    if (t < ends_[idx]) {
      ++covering;
      single = idx;
      const ComponentLoad& l = loads_[idx];
      effective += l.effective_cores();
      freq_weight += l.effective_cores() * l.frequency_ghz;
      dram += l.dram_bandwidth.value();
    }
  }
  if (covering == 0) {
    return ComponentLoad{};  // in a gap
  }
  if (covering == 1) {
    return loads_[single];  // the common serial case: verbatim
  }
  ComponentLoad sum;
  sum.active_cores = effective;
  sum.core_utilization = 1.0;
  sum.frequency_ghz = effective > 0.0 ? freq_weight / effective : 0.0;
  sum.dram_bandwidth = util::BytesPerSecond{dram};
  return sum;
}

ComponentLoad LoadTimeline::average_in(Seconds t0, Seconds t1) const {
  GREENVIS_REQUIRE(t1 >= t0);
  ComponentLoad avg;
  avg.core_utilization = 0.0;
  avg.frequency_ghz = 0.0;
  const double window = (t1 - t0).value();
  if (window <= 0.0 || begins_.empty()) {
    return ComponentLoad{};
  }
  // First segment whose prefix-max end extends past t0: everything earlier
  // ends at or before t0 and cannot contribute. (For non-overlapping data
  // this lands on the same segment the old last-begin-<=-t0 search did.)
  const auto it = std::upper_bound(max_end_.begin(), max_end_.end(), t0);
  std::size_t idx = static_cast<std::size_t>(it - max_end_.begin());
  double busy_weight = 0.0;
  double dram_rate_time = 0.0;
  for (; idx < begins_.size() && begins_[idx] < t1; ++idx) {
    const Seconds lo = std::max(begins_[idx], t0);
    const Seconds hi = std::min(ends_[idx], t1);
    const double w = (hi - lo).value();
    if (w <= 0.0) {
      continue;
    }
    const ComponentLoad& l = loads_[idx];
    avg.active_cores += l.active_cores * l.core_utilization * w;
    avg.frequency_ghz += l.frequency_ghz * w;
    dram_rate_time += l.dram_bandwidth.value() * w;
    busy_weight += w;
  }
  // Express the average as fully-utilized effective cores over the window.
  avg.active_cores /= window;
  avg.core_utilization = 1.0;
  avg.frequency_ghz = busy_weight > 0.0 ? avg.frequency_ghz / busy_weight : 0.0;
  avg.dram_bandwidth = util::BytesPerSecond{dram_rate_time / window};
  return avg;
}

Seconds LoadTimeline::end_time() const {
  return max_end_.empty() ? Seconds{0.0} : max_end_.back();
}

}  // namespace greenvis::machine

#include "src/machine/load.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::machine {

void LoadTimeline::add(Seconds begin, Seconds end, const ComponentLoad& load) {
  GREENVIS_REQUIRE_MSG(end >= begin, "segment must not be negative");
  if (!begins_.empty()) {
    GREENVIS_REQUIRE_MSG(begin >= ends_.back(),
                         "segments must be appended in time order");
  }
  begins_.push_back(begin);
  ends_.push_back(end);
  loads_.push_back(load);
}

ComponentLoad LoadTimeline::at(Seconds t) const {
  // Find the last segment with begin <= t.
  const auto it = std::upper_bound(begins_.begin(), begins_.end(), t);
  if (it == begins_.begin()) {
    return ComponentLoad{};
  }
  const auto idx = static_cast<std::size_t>(it - begins_.begin()) - 1;
  if (t < ends_[idx]) {
    return loads_[idx];
  }
  return ComponentLoad{};  // in a gap
}

ComponentLoad LoadTimeline::average_in(Seconds t0, Seconds t1) const {
  GREENVIS_REQUIRE(t1 >= t0);
  ComponentLoad avg;
  avg.core_utilization = 0.0;
  avg.frequency_ghz = 0.0;
  const double window = (t1 - t0).value();
  if (window <= 0.0 || begins_.empty()) {
    return ComponentLoad{};
  }
  auto it = std::upper_bound(begins_.begin(), begins_.end(), t0);
  std::size_t idx = it == begins_.begin()
                        ? 0
                        : static_cast<std::size_t>(it - begins_.begin()) - 1;
  double busy_weight = 0.0;
  double dram_rate_time = 0.0;
  for (; idx < begins_.size() && begins_[idx] < t1; ++idx) {
    const Seconds lo = std::max(begins_[idx], t0);
    const Seconds hi = std::min(ends_[idx], t1);
    const double w = (hi - lo).value();
    if (w <= 0.0) {
      continue;
    }
    const ComponentLoad& l = loads_[idx];
    avg.active_cores += l.active_cores * l.core_utilization * w;
    avg.frequency_ghz += l.frequency_ghz * w;
    dram_rate_time += l.dram_bandwidth.value() * w;
    busy_weight += w;
  }
  // Express the average as fully-utilized effective cores over the window.
  avg.active_cores /= window;
  avg.core_utilization = 1.0;
  avg.frequency_ghz = busy_weight > 0.0 ? avg.frequency_ghz / busy_weight : 0.0;
  avg.dram_bandwidth = util::BytesPerSecond{dram_rate_time / window};
  return avg;
}

Seconds LoadTimeline::end_time() const {
  return ends_.empty() ? Seconds{0.0} : ends_.back();
}

}  // namespace greenvis::machine

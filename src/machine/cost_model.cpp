#include "src/machine/cost_model.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::machine {

CostModel::CostModel(const NodeSpec& spec, const CostModelParams& params)
    : spec_(spec), params_(params) {
  GREENVIS_REQUIRE(params_.sustained_flops_per_core > 0.0);
  GREENVIS_REQUIRE(params_.achievable_bandwidth_fraction > 0.0 &&
                   params_.achievable_bandwidth_fraction <= 1.0);
}

Seconds CostModel::duration(const ActivityRecord& work, double freq_ghz) const {
  GREENVIS_REQUIRE(freq_ghz > 0.0);
  GREENVIS_REQUIRE(work.active_cores >= 1);
  GREENVIS_REQUIRE(work.active_cores <= spec_.cpu.total_cores());
  GREENVIS_REQUIRE(work.core_utilization > 0.0 && work.core_utilization <= 1.0);

  const double freq_scale = freq_ghz / spec_.cpu.nominal_ghz;
  const double rate = params_.sustained_flops_per_core * freq_scale *
                      static_cast<double>(work.active_cores) *
                      work.core_utilization;
  const Seconds compute_time{work.flops / rate};

  const double bw = spec_.memory.peak_bandwidth.value() *
                    params_.achievable_bandwidth_fraction;
  const Seconds memory_time{work.dram_bytes.as_double() / bw};

  return std::max(compute_time, memory_time);
}

ComponentLoad CostModel::load(const ActivityRecord& work, Seconds dur,
                              double freq_ghz) const {
  GREENVIS_REQUIRE(dur.value() > 0.0);
  ComponentLoad out;
  out.active_cores = static_cast<double>(work.active_cores);
  out.core_utilization = work.core_utilization;
  out.frequency_ghz = freq_ghz;
  out.dram_bandwidth =
      util::BytesPerSecond{work.dram_bytes.as_double() / dur.value()};
  return out;
}

}  // namespace greenvis::machine

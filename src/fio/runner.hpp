// fio job runner.
//
// Executes one job against a freshly built storage stack (HDD model + page
// cache + filesystem) on its own virtual clock, profiles power with the
// standard 1 Hz rig, and reports the five Table III metrics. Preparation
// (laying out the 4 GB file, sync, drop_caches) happens before the measured
// window, as a benchmark harness would arrange.
#pragma once

#include <memory>

#include "src/fio/job.hpp"
#include "src/machine/spec.hpp"
#include "src/power/calibration.hpp"
#include "src/power/profiler.hpp"
#include "src/power/trace.hpp"
#include "src/storage/block_device.hpp"

namespace greenvis::fio {

enum class DeviceKind { kHdd, kSsd, kNvram };

struct FioRunnerConfig {
  machine::NodeSpec node{machine::sandy_bridge_testbed()};
  DeviceKind device{DeviceKind::kHdd};
  power::PowerCalibration calibration{};
  /// Host-memory copy rate for buffered I/O (per-syscall memcpy).
  util::BytesPerSecond memcpy_rate{util::mebibytes_per_second(8.0 * 1024.0)};
};

struct FioRunOutput {
  FioResult result;
  power::PowerTrace trace{util::Seconds{1.0}};  // measured window only
};

class FioRunner {
 public:
  explicit FioRunner(const FioRunnerConfig& config = {});

  /// Run one job on a fresh stack.
  [[nodiscard]] FioRunOutput run(const FioJob& job) const;

 private:
  FioRunnerConfig config_;
};

}  // namespace greenvis::fio

#include "src/fio/runner.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/obs/tracer.hpp"
#include "src/storage/filesystem.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/solid_state.hpp"
#include "src/trace/clock.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace greenvis::fio {

const char* rw_mode_name(RwMode mode) {
  switch (mode) {
    case RwMode::kSequentialRead:
      return "Sequential Read";
    case RwMode::kRandomRead:
      return "Random Read";
    case RwMode::kSequentialWrite:
      return "Sequential Write";
    case RwMode::kRandomWrite:
      return "Random Write";
  }
  return "?";
}

FioJob table3_job(RwMode mode) {
  FioJob job;
  job.mode = mode;
  job.name = rw_mode_name(mode);
  job.total_size = util::gibibytes(4);
  switch (mode) {
    case RwMode::kSequentialRead:
    case RwMode::kSequentialWrite:
      job.block_size = util::mebibytes(1);
      job.end_fsync = true;
      break;
    case RwMode::kRandomRead:
    case RwMode::kRandomWrite:
      // The paper does not report fio parameters; 16 KiB blocks reproduce
      // Table III's 2230 s random-read time on this drive model.
      job.block_size = util::kibibytes(16);
      job.end_fsync = false;
      break;
  }
  return job;
}

FioRunner::FioRunner(const FioRunnerConfig& config) : config_(config) {}

namespace {

std::unique_ptr<storage::BlockDevice> make_device(
    const FioRunnerConfig& config) {
  switch (config.device) {
    case DeviceKind::kHdd: {
      storage::HddParams p;
      p.spec = config.node.disk;
      return std::make_unique<storage::HddModel>(p);
    }
    case DeviceKind::kSsd:
      return std::make_unique<storage::SolidStateModel>(
          storage::sata_ssd_params());
    case DeviceKind::kNvram:
      return std::make_unique<storage::SolidStateModel>(
          storage::nvram_params());
  }
  GREENVIS_REQUIRE(false);
  return nullptr;
}

power::DiskPowerParams disk_power_for(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kHdd:
      return power::hdd_power_params();
    case DeviceKind::kSsd:
      return power::ssd_power_params();
    case DeviceKind::kNvram:
      return power::nvram_power_params();
  }
  return power::hdd_power_params();
}

}  // namespace

FioRunOutput FioRunner::run(const FioJob& job) const {
  GREENVIS_REQUIRE(job.total_size.value() > 0);
  GREENVIS_REQUIRE(job.block_size.value() > 0);
  GREENVIS_REQUIRE(job.total_size.value() % job.block_size.value() == 0);
  obs::ScopedSpan span("fio:", job.name, obs::kCatIo);
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    static obs::Counter& ops = registry.counter("fio.ops");
    static obs::Counter& bytes = registry.counter("fio.bytes");
    ops.add(job.total_size.value() / job.block_size.value());
    bytes.add(job.total_size.value());
  }

  trace::VirtualClock clock;
  auto device = make_device(config_);
  storage::FsParams fs_params;
  fs_params.allocation = storage::AllocationPolicy::kAged;
  storage::Filesystem fs(*device, clock, fs_params);
  util::Xoshiro256 rng{job.seed};

  const std::uint64_t bs = job.block_size.value();
  const std::uint64_t total = job.total_size.value();
  const std::uint64_t n_ops = total / bs;
  const util::Seconds syscall = fs_params.syscall_overhead;
  const util::Seconds memcpy_time =
      util::transfer_time(job.block_size, config_.memcpy_rate);

  const bool is_read = job.mode == RwMode::kSequentialRead ||
                       job.mode == RwMode::kRandomRead;
  const bool needs_existing = is_read || job.mode == RwMode::kRandomWrite;

  // -- preparation (outside the measured window) --
  const char* kData = "fio.dat";
  if (needs_existing) {
    const auto fd = fs.create(kData, /*force_contiguous=*/true);
    const std::uint64_t prep_chunk = util::mebibytes(4).value();
    for (std::uint64_t off = 0; off < total; off += prep_chunk) {
      fs.write_synthetic(fd, util::Bytes{std::min(prep_chunk, total - off)},
                         storage::WriteMode::kBuffered);
    }
    fs.close(fd);
    fs.drop_caches();
  }
  // Align the measured window to a whole sampling second.
  clock.advance_to(util::Seconds{std::ceil(clock.now().value())});
  const util::Seconds t0 = clock.now();

  machine::LoadTimeline loads;
  machine::ComponentLoad cpu;
  cpu.frequency_ghz = config_.node.cpu.nominal_ghz;

  switch (job.mode) {
    case RwMode::kSequentialRead: {
      const auto fd = fs.open(kData);
      for (std::uint64_t off = 0; off < total; off += bs) {
        fs.pread_timed(fd, off, bs, storage::ReadMode::kBuffered);
        clock.advance(memcpy_time);  // copy_to_user of the block
      }
      fs.close(fd);
      cpu.active_cores = 1.0;
      cpu.core_utilization = 0.35;
      loads.add(t0, clock.now(), cpu);
      break;
    }
    case RwMode::kRandomRead: {
      const auto fd = fs.open(kData);
      for (std::uint64_t k = 0; k < n_ops; ++k) {
        const std::uint64_t slot = rng.uniform_index(n_ops);
        fs.pread_timed(fd, slot * bs, bs, storage::ReadMode::kDirect);
      }
      fs.close(fd);
      cpu.active_cores = 1.0;
      cpu.core_utilization = 0.12;
      loads.add(t0, clock.now(), cpu);
      break;
    }
    case RwMode::kSequentialWrite: {
      const auto fd = fs.create("fio_out.dat", /*force_contiguous=*/true);
      for (std::uint64_t k = 0; k < n_ops; ++k) {
        fs.write_synthetic(fd, job.block_size, storage::WriteMode::kBuffered);
        clock.advance(memcpy_time);
      }
      if (job.end_fsync) {
        fs.fsync(fd);
      }
      fs.close(fd);
      cpu.active_cores = 1.0;
      cpu.core_utilization = 0.45;
      loads.add(t0, clock.now(), cpu);
      break;
    }
    case RwMode::kRandomWrite: {
      // Buffered random writes: the submission loop is CPU-bound while the
      // kernel's background writeback streams sorted dirty pages to the
      // drive concurrently. Submission and writeback are modeled on their
      // own timelines; the job ends when the slower one finishes (the page
      // cache still holds whatever writeback has not reached — exactly the
      // testbed situation, where fio exits without fsync).
      std::vector<std::uint64_t> slots(n_ops);
      for (auto& s : slots) {
        s = rng.uniform_index(n_ops);
      }
      // Submission timeline (CPU).
      const util::Seconds submit_end =
          t0 + (syscall + memcpy_time) * static_cast<double>(n_ops);
      // Writeback timeline (device): unique dirty blocks in elevator order.
      std::vector<std::uint64_t> unique = slots;
      std::sort(unique.begin(), unique.end());
      unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
      const auto extents = fs.extents(kData);
      GREENVIS_REQUIRE(!extents.empty());
      const std::uint64_t dev_base = extents.front().device_offset;
      util::Seconds t_dev = t0;
      for (std::uint64_t slot : unique) {
        const storage::IoRequest req{storage::IoKind::kWrite,
                                     dev_base + slot * bs,
                                     static_cast<std::uint32_t>(bs)};
        t_dev = device->service(req, t_dev);
      }
      t_dev = device->flush(t_dev);
      clock.advance_to(std::max(submit_end, t_dev));
      cpu.active_cores = 1.0;
      cpu.core_utilization = 1.0;
      loads.add(t0, submit_end, cpu);
      break;
    }
  }

  const util::Seconds t_end = clock.now();

  // -- measurement --
  const power::PowerModel model(config_.calibration,
                                disk_power_for(config_.device));
  power::PowerProfiler profiler(model,
                                power::ProfilerConfig{.seed = job.seed});
  const power::PowerTrace full =
      profiler.profile(loads, device.get(), t_end);
  const power::PowerTrace window = full.slice(t0, t_end);

  FioRunOutput out;
  out.trace = window;
  out.result.job_name = job.name;
  out.result.execution_time = t_end - t0;
  out.result.bytes_transferred = job.total_size;
  out.result.full_system_power = window.average(&power::PowerSample::system);
  const util::Watts disk_avg = window.average(&power::PowerSample::disk_model);
  out.result.disk_dynamic_power =
      util::Watts{std::max(0.0, (disk_avg - model.disk_idle_power()).value())};
  out.result.disk_dynamic_energy =
      out.result.disk_dynamic_power * out.result.execution_time;
  out.result.full_system_energy =
      out.result.full_system_power * out.result.execution_time;
  return out;
}

}  // namespace greenvis::fio

// fio-style I/O job specifications.
//
// Sec. V-D of the paper uses the fio disk benchmark's sequential and random
// tests, reading and writing 4 GB, to extrapolate the study to random-access
// applications (Table III). These are the four job shapes, with the
// parameters fitted where the paper does not report them (block sizes,
// buffering) — see DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/units.hpp"

namespace greenvis::fio {

enum class RwMode {
  kSequentialRead,
  kRandomRead,
  kSequentialWrite,
  kRandomWrite,
};

[[nodiscard]] const char* rw_mode_name(RwMode mode);

struct FioJob {
  std::string name{"job"};
  RwMode mode{RwMode::kSequentialRead};
  /// Total bytes transferred by the job.
  util::Bytes total_size{util::gibibytes(4)};
  /// Per-request block size.
  util::Bytes block_size{util::mebibytes(1)};
  /// Random jobs bypass the cache on reads (O_DIRECT); writes are buffered.
  /// Sequential writes end with an fsync (durability), random writes do not
  /// (the kernel's background writeback races the submission loop, as on the
  /// testbed).
  bool end_fsync{true};
  std::uint64_t seed{0xF10u};
};

/// The four Table III jobs with the fitted parameters.
[[nodiscard]] FioJob table3_job(RwMode mode);

/// One row of Table III.
struct FioResult {
  std::string job_name;
  util::Seconds execution_time{0.0};
  util::Watts full_system_power{0.0};
  util::Watts disk_dynamic_power{0.0};
  util::Joules disk_dynamic_energy{0.0};
  util::Joules full_system_energy{0.0};
  util::Bytes bytes_transferred{0};
};

}  // namespace greenvis::fio

#include "src/heat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"

namespace greenvis::heat {

HeatSolver::HeatSolver(const HeatProblem& problem, util::ThreadPool* pool)
    : problem_(problem),
      pool_(pool),
      u_(problem.nx, problem.ny, 0.0),
      next_(problem.nx, problem.ny, 0.0),
      rhs_(problem.nx, problem.ny, 0.0) {
  GREENVIS_REQUIRE(problem_.nx >= 3 && problem_.ny >= 3);
  GREENVIS_REQUIRE(problem_.alpha > 0.0 && problem_.dx > 0.0 &&
                   problem_.dt > 0.0);
  GREENVIS_REQUIRE(problem_.executed_sweeps >= 1);
  GREENVIS_REQUIRE(problem_.modeled_sweeps >= 1.0);
  GREENVIS_REQUIRE_MSG(problem_.theta >= 0.5 && problem_.theta <= 1.0,
                       "theta must lie in [0.5, 1]");
  if (problem_.conductivity.size() > 0) {
    GREENVIS_REQUIRE_MSG(problem_.conductivity.nx() == problem_.nx &&
                             problem_.conductivity.ny() == problem_.ny,
                         "conductivity field dimensions must match the grid");
    for (double k : problem_.conductivity.values()) {
      GREENVIS_REQUIRE_MSG(k >= 0.0, "conductivity must be non-negative");
    }
  }
  apply_boundary(u_);
  apply_sources(u_);
}

double HeatSolver::face_conductivity(std::size_t ia, std::size_t ja,
                                     std::size_t ib, std::size_t jb) const {
  if (problem_.conductivity.size() == 0) {
    return 1.0;
  }
  const double ka = problem_.conductivity.at(ia, ja);
  const double kb = problem_.conductivity.at(ib, jb);
  const double sum = ka + kb;
  return sum > 0.0 ? 2.0 * ka * kb / sum : 0.0;
}

void HeatSolver::apply_boundary(Field2D& f) const {
  if (problem_.boundary != BoundaryKind::kDirichlet) {
    return;  // insulated boundaries are handled by mirrored neighbors
  }
  const std::size_t nx = problem_.nx;
  const std::size_t ny = problem_.ny;
  for (std::size_t i = 0; i < nx; ++i) {
    f.at(i, 0) = problem_.boundary_value;
    f.at(i, ny - 1) = problem_.boundary_value;
  }
  for (std::size_t j = 0; j < ny; ++j) {
    f.at(0, j) = problem_.boundary_value;
    f.at(nx - 1, j) = problem_.boundary_value;
  }
}

void HeatSolver::apply_sources(Field2D& f) const {
  for (const HeatSource& s : problem_.sources) {
    const double r2 = s.radius * s.radius;
    for (std::size_t j = 0; j < problem_.ny; ++j) {
      for (std::size_t i = 0; i < problem_.nx; ++i) {
        const double dxs = static_cast<double>(i) - s.cx;
        const double dys = static_cast<double>(j) - s.cy;
        if (dxs * dxs + dys * dys <= r2) {
          f.at(i, j) = s.temperature;
        }
      }
    }
  }
}

double HeatSolver::step() {
  static obs::Histogram& step_us = obs::Registry::global().histogram(
      "heat2d.step_us", obs::duration_us_bounds());
  obs::ScopedSpan span("heat2d.step", obs::kCatHeat, &step_us);
  const std::size_t nx = problem_.nx;
  const std::size_t ny = problem_.ny;
  const double r = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double theta = problem_.theta;
  const double tr = theta * r;          // implicit weight
  const double er = (1.0 - theta) * r;  // explicit weight
  const double inv_diag = 1.0 / (1.0 + 4.0 * tr);
  const bool insulated = problem_.boundary == BoundaryKind::kInsulated;

  // With insulated boundaries every cell is an unknown; with Dirichlet only
  // the interior is.
  const std::size_t j_lo = insulated ? 0 : 1;
  const std::size_t j_hi = insulated ? ny : ny - 1;
  const std::size_t i_lo = insulated ? 0 : 1;
  const std::size_t i_hi = insulated ? nx : nx - 1;

  // Right-hand side: u^n plus the explicit share of the Laplacian
  // (theta = 1 short-circuits to rhs = u^n, the pure backward-Euler path).
  rhs_ = u_;
  if (er > 0.0) {
    const bool het = problem_.conductivity.size() > 0;
    for (std::size_t j = j_lo; j < j_hi; ++j) {
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        const double c = u_.at(i, j);
        const double west = i > 0 ? u_.at(i - 1, j) : c;
        const double east = i + 1 < nx ? u_.at(i + 1, j) : c;
        const double south = j > 0 ? u_.at(i, j - 1) : c;
        const double north = j + 1 < ny ? u_.at(i, j + 1) : c;
        if (!het) {
          rhs_.at(i, j) = c + er * (west + east + south + north - 4.0 * c);
        } else {
          const double ww = i > 0 ? face_conductivity(i, j, i - 1, j) : 1.0;
          const double we = i + 1 < nx ? face_conductivity(i, j, i + 1, j) : 1.0;
          const double ws = j > 0 ? face_conductivity(i, j, i, j - 1) : 1.0;
          const double wn = j + 1 < ny ? face_conductivity(i, j, i, j + 1) : 1.0;
          rhs_.at(i, j) = c + er * (ww * (west - c) + we * (east - c) +
                                    ws * (south - c) + wn * (north - c));
        }
      }
    }
  }

  Field2D* cur = &u_;
  Field2D* nxt = &next_;

  const bool heterogeneous = problem_.conductivity.size() > 0;

  // Row-pointer-hoisted sweep: the interior i-loop indexes five flat rows
  // with no per-cell branches, so it autovectorizes; the (at most two)
  // boundary columns keep the mirrored-neighbor logic. Insulated edge rows
  // mirror by aliasing the south/north row pointer onto the row itself,
  // which reproduces the `j > 0 ? ... : c` arithmetic exactly.
  auto sweep_rows = [&](std::size_t row_begin, std::size_t row_end) {
    const double* rhs = rhs_.values().data();
    const double* u = cur->values().data();
    double* out = nxt->values().data();
    const std::size_t ib = std::max<std::size_t>(i_lo, 1);
    const std::size_t ie = std::min(i_hi, nx - 1);
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const double* row = u + j * nx;
      const double* row_s = j > 0 ? row - nx : row;
      const double* row_n = j + 1 < ny ? row + nx : row;
      const double* rhs_row = rhs + j * nx;
      double* out_row = out + j * nx;
      auto update_cell = [&](std::size_t i) {
        const double c = row[i];
        const double west = i > 0 ? row[i - 1] : c;
        const double east = i + 1 < nx ? row[i + 1] : c;
        if (!heterogeneous) {
          out_row[i] =
              (rhs_row[i] + tr * (west + east + row_s[i] + row_n[i])) *
              inv_diag;
        } else {
          const double ww = i > 0 ? face_conductivity(i, j, i - 1, j) : 1.0;
          const double we = i + 1 < nx ? face_conductivity(i, j, i + 1, j) : 1.0;
          const double ws = j > 0 ? face_conductivity(i, j, i, j - 1) : 1.0;
          const double wn = j + 1 < ny ? face_conductivity(i, j, i, j + 1) : 1.0;
          const double diag = 1.0 + tr * (ww + we + ws + wn);
          out_row[i] = (rhs_row[i] + tr * (ww * west + we * east +
                                           ws * row_s[i] + wn * row_n[i])) /
                       diag;
        }
      };
      if (i_lo < ib) {
        update_cell(0);
      }
      if (!heterogeneous) {
        for (std::size_t i = ib; i < ie; ++i) {
          out_row[i] =
              (rhs_row[i] + tr * ((row[i - 1] + row[i + 1]) + row_s[i] +
                                  row_n[i])) *
              inv_diag;
        }
      } else {
        for (std::size_t i = ib; i < ie; ++i) {
          update_cell(i);
        }
      }
      if (i_hi > ie) {
        update_cell(nx - 1);
      }
    }
  };

  // A pool with a single executing thread would run everything inline
  // anyway, but the std::function round trip per dispatch is not free (and
  // may allocate). Call the sweep directly instead — disjoint rows, so the
  // result is identical.
  const bool use_pool = pool_ != nullptr && pool_->size() > 1;

  for (std::size_t sweep = 0; sweep < problem_.executed_sweeps; ++sweep) {
    // Dirichlet edge values must be visible in the target buffer too.
    if (!insulated) {
      apply_boundary(*nxt);
    }
    if (use_pool) {
      pool_->parallel_for(j_lo, j_hi, sweep_rows);
    } else {
      sweep_rows(j_lo, j_hi);
    }
    std::swap(cur, nxt);
  }
  if (cur != &u_) {
    std::swap(u_, next_);
  }

  // Linear-system defect before boundary/source reinforcement. Max-norm is
  // exact under any combine order, so the parallel reduction is bit-equal to
  // the serial scan for every pool size.
  auto defect_rows = [&](std::size_t row_begin, std::size_t row_end,
                         double acc) {
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const double* row = u_.values().data() + j * nx;
      const double* row_s = j > 0 ? row - nx : row;
      const double* row_n = j + 1 < ny ? row + nx : row;
      const double* rhs_row = rhs_.values().data() + j * nx;
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        const double c = row[i];
        const double west = i > 0 ? row[i - 1] : c;
        const double east = i + 1 < nx ? row[i + 1] : c;
        const double south = row_s[i];
        const double north = row_n[i];
        double defect = 0.0;
        if (!heterogeneous) {
          defect = (1.0 + 4.0 * tr) * c - tr * (west + east + south + north) -
                   rhs_row[i];
        } else {
          const double ww = i > 0 ? face_conductivity(i, j, i - 1, j) : 1.0;
          const double we = i + 1 < nx ? face_conductivity(i, j, i + 1, j) : 1.0;
          const double ws = j > 0 ? face_conductivity(i, j, i, j - 1) : 1.0;
          const double wn = j + 1 < ny ? face_conductivity(i, j, i, j + 1) : 1.0;
          defect = (1.0 + tr * (ww + we + ws + wn)) * c -
                   tr * (ww * west + we * east + ws * south + wn * north) -
                   rhs_row[i];
        }
        acc = std::max(acc, std::abs(defect));
      }
    }
    return acc;
  };
  // Max-norm is exact under any combine order, so the serial scan below is
  // bit-equal to the pooled reduction (and vice versa) for every pool size.
  const double residual =
      use_pool ? pool_->parallel_reduce(
                     j_lo, j_hi, 0.0, defect_rows,
                     [](double a, double b) { return std::max(a, b); })
               : defect_rows(j_lo, j_hi, 0.0);

  apply_boundary(u_);
  apply_sources(u_);
  ++steps_;
  if (obs::enabled()) {
    static obs::Counter& cell_updates =
        obs::Registry::global().counter("heat2d.cell_updates");
    cell_updates.add(static_cast<std::uint64_t>(nx * ny) *
                     problem_.executed_sweeps);
  }
  return residual;
}

double HeatSolver::total_heat() const {
  return u_.sum() * problem_.dx * problem_.dx;
}

machine::ActivityRecord HeatSolver::step_activity() const {
  machine::ActivityRecord a;
  const double cells = static_cast<double>((problem_.nx - 2) * (problem_.ny - 2));
  // 6 flops per cell-update: 3 adds for the stencil sum, 1 multiply by r,
  // 1 add of the rhs, 1 multiply by the inverse diagonal.
  a.flops = problem_.modeled_sweeps * cells * 6.0;
  const double bytes_per_sweep =
      static_cast<double>(problem_.nx * problem_.ny) * sizeof(double) * 2.0;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      problem_.modeled_sweeps * bytes_per_sweep *
      problem_.dram_traffic_fraction)};
  a.active_cores = problem_.modeled_active_cores;
  a.core_utilization = 1.0;
  return a;
}

void HeatSolver::set_eigenmode(int p, int q, double amplitude) {
  GREENVIS_REQUIRE(problem_.boundary == BoundaryKind::kDirichlet);
  GREENVIS_REQUIRE(p >= 1 && q >= 1);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  for (std::size_t j = 0; j < problem_.ny; ++j) {
    for (std::size_t i = 0; i < problem_.nx; ++i) {
      u_.at(i, j) = amplitude *
                    std::sin(std::numbers::pi * p * static_cast<double>(i) / lx) *
                    std::sin(std::numbers::pi * q * static_cast<double>(j) / ly);
    }
  }
  apply_boundary(u_);
}

double HeatSolver::eigenmode_decay(int p, int q) const {
  const double r = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  const double sp = std::sin(std::numbers::pi * p / (2.0 * lx));
  const double sq = std::sin(std::numbers::pi * q / (2.0 * ly));
  const double mu = 4.0 * (sp * sp + sq * sq);
  return (1.0 - (1.0 - problem_.theta) * r * mu) /
         (1.0 + problem_.theta * r * mu);
}

}  // namespace greenvis::heat

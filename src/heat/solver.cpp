#include "src/heat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <string_view>

#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"
#include "src/util/simd/simd.hpp"

namespace greenvis::heat {

HeatSolver::HeatSolver(const HeatProblem& problem, util::ThreadPool* pool)
    : problem_(problem),
      pool_(pool),
      u_(problem.nx, problem.ny, 0.0, pool),
      next_(problem.nx, problem.ny, 0.0, pool),
      rhs_(problem.nx, problem.ny, 0.0, pool) {
  GREENVIS_REQUIRE(problem_.nx >= 3 && problem_.ny >= 3);
  GREENVIS_REQUIRE(problem_.alpha > 0.0 && problem_.dx > 0.0 &&
                   problem_.dt > 0.0);
  GREENVIS_REQUIRE(problem_.executed_sweeps >= 1);
  GREENVIS_REQUIRE(problem_.modeled_sweeps >= 1.0);
  GREENVIS_REQUIRE_MSG(problem_.theta >= 0.5 && problem_.theta <= 1.0,
                       "theta must lie in [0.5, 1]");
  if (problem_.conductivity.size() > 0) {
    GREENVIS_REQUIRE_MSG(problem_.conductivity.nx() == problem_.nx &&
                             problem_.conductivity.ny() == problem_.ny,
                         "conductivity field dimensions must match the grid");
    for (double k : problem_.conductivity.values()) {
      GREENVIS_REQUIRE_MSG(k >= 0.0, "conductivity must be non-negative");
    }
  }
  apply_boundary(u_);
  apply_sources(u_);
}

double HeatSolver::face_conductivity(std::size_t ia, std::size_t ja,
                                     std::size_t ib, std::size_t jb) const {
  if (problem_.conductivity.size() == 0) {
    return 1.0;
  }
  const double ka = problem_.conductivity.at(ia, ja);
  const double kb = problem_.conductivity.at(ib, jb);
  const double sum = ka + kb;
  return sum > 0.0 ? 2.0 * ka * kb / sum : 0.0;
}

void HeatSolver::apply_boundary(Field2D& f) const {
  if (problem_.boundary != BoundaryKind::kDirichlet) {
    return;  // insulated boundaries are handled by mirrored neighbors
  }
  const std::size_t nx = problem_.nx;
  const std::size_t ny = problem_.ny;
  for (std::size_t i = 0; i < nx; ++i) {
    f.at(i, 0) = problem_.boundary_value;
    f.at(i, ny - 1) = problem_.boundary_value;
  }
  for (std::size_t j = 0; j < ny; ++j) {
    f.at(0, j) = problem_.boundary_value;
    f.at(nx - 1, j) = problem_.boundary_value;
  }
}

void HeatSolver::apply_sources(Field2D& f) const {
  for (const HeatSource& s : problem_.sources) {
    const double r2 = s.radius * s.radius;
    for (std::size_t j = 0; j < problem_.ny; ++j) {
      for (std::size_t i = 0; i < problem_.nx; ++i) {
        const double dxs = static_cast<double>(i) - s.cx;
        const double dys = static_cast<double>(j) - s.cy;
        if (dxs * dxs + dys * dys <= r2) {
          f.at(i, j) = s.temperature;
        }
      }
    }
  }
}

double HeatSolver::step() {
  static obs::Histogram& step_us = obs::Registry::global().histogram(
      "heat2d.step_us", obs::duration_us_bounds());
  obs::ScopedSpan span("heat2d.step", obs::kCatHeat, &step_us);
  const std::size_t nx = problem_.nx;
  const std::size_t ny = problem_.ny;
  const double r = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double theta = problem_.theta;
  const double tr = theta * r;          // implicit weight
  const double er = (1.0 - theta) * r;  // explicit weight
  const double inv_diag = 1.0 / (1.0 + 4.0 * tr);
  const bool insulated = problem_.boundary == BoundaryKind::kInsulated;

  // With insulated boundaries every cell is an unknown; with Dirichlet only
  // the interior is.
  const std::size_t j_lo = insulated ? 0 : 1;
  const std::size_t j_hi = insulated ? ny : ny - 1;
  const std::size_t i_lo = insulated ? 0 : 1;
  const std::size_t i_hi = insulated ? nx : nx - 1;

  const bool heterogeneous = problem_.conductivity.size() > 0;

  // A pool with a single executing thread would run everything inline
  // anyway, but the std::function round trip per dispatch is not free (and
  // may allocate). Call the sweep directly instead — disjoint rows, so the
  // result is identical. Small grids also stay serial: below ~8k unknowns
  // the wake/claim overhead eats the win, and with SIMD rows the per-row
  // work is small enough that each task must carry several rows (grain).
  const std::size_t rows_total = j_hi - j_lo;
  const std::size_t unknowns = rows_total * (i_hi - i_lo);
  const bool use_pool = pool_ != nullptr && pool_->size() > 1 &&
                        rows_total >= 2 * pool_->size() && unknowns >= 8192;
  const std::size_t row_grain = std::max<std::size_t>(1, 4096 / nx);

  constexpr std::size_t kMaxFuse = 12;
  constexpr std::size_t kRingRows = 4;  // power of two >= 3 live rows
  // GREENVIS_FUSE=0 forces the sweep-at-a-time loop (differential testing).
  static const bool fuse_wanted = [] {
    const char* env = std::getenv("GREENVIS_FUSE");
    return env == nullptr || std::string_view(env) != "0";
  }();
  const bool fused = fuse_wanted && !use_pool && !heterogeneous &&
                     problem_.executed_sweeps >= 2;
  // With backward Euler (er == 0) the right-hand side is exactly u^n, so
  // the fused wavefront copies it row-by-row just ahead of the first sweep
  // level instead of in a separate full-field streaming pass.
  const bool fold_copy = fused && er <= 0.0;

  // Right-hand side: u^n plus the explicit share of the Laplacian
  // (theta = 1 short-circuits to rhs = u^n, the pure backward-Euler path).
  if (!fold_copy) {
    rhs_ = u_;
  }
  if (er > 0.0) {
    const bool het = problem_.conductivity.size() > 0;
    for (std::size_t j = j_lo; j < j_hi; ++j) {
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        const double c = u_.at(i, j);
        const double west = i > 0 ? u_.at(i - 1, j) : c;
        const double east = i + 1 < nx ? u_.at(i + 1, j) : c;
        const double south = j > 0 ? u_.at(i, j - 1) : c;
        const double north = j + 1 < ny ? u_.at(i, j + 1) : c;
        if (!het) {
          rhs_.at(i, j) = c + er * (west + east + south + north - 4.0 * c);
        } else {
          const double ww = i > 0 ? face_conductivity(i, j, i - 1, j) : 1.0;
          const double we = i + 1 < nx ? face_conductivity(i, j, i + 1, j) : 1.0;
          const double ws = j > 0 ? face_conductivity(i, j, i, j - 1) : 1.0;
          const double wn = j + 1 < ny ? face_conductivity(i, j, i, j + 1) : 1.0;
          rhs_.at(i, j) = c + er * (ww * (west - c) + we * (east - c) +
                                    ws * (south - c) + wn * (north - c));
        }
      }
    }
  }

  Field2D* cur = &u_;
  Field2D* nxt = &next_;

  // Row-pointer-hoisted sweep: the interior i-loop indexes five flat rows
  // with no per-cell branches, so it autovectorizes; the (at most two)
  // boundary columns keep the mirrored-neighbor logic. Insulated edge rows
  // mirror by aliasing the south/north row pointer onto the row itself,
  // which reproduces the `j > 0 ? ... : c` arithmetic exactly.
  // Hoisted once per step: one relaxed atomic load picks the ISA path for
  // every row kernel below.
  const util::simd::KernelTable& kern = util::simd::kernels();

  auto sweep_rows = [&](std::size_t row_begin, std::size_t row_end) {
    const double* rhs = rhs_.values().data();
    const double* u = cur->values().data();
    double* out = nxt->values().data();
    const std::size_t ib = std::max<std::size_t>(i_lo, 1);
    const std::size_t ie = std::min(i_hi, nx - 1);
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const double* row = u + j * nx;
      const double* row_s = j > 0 ? row - nx : row;
      const double* row_n = j + 1 < ny ? row + nx : row;
      const double* rhs_row = rhs + j * nx;
      double* out_row = out + j * nx;
      auto update_cell = [&](std::size_t i) {
        const double c = row[i];
        const double west = i > 0 ? row[i - 1] : c;
        const double east = i + 1 < nx ? row[i + 1] : c;
        if (!heterogeneous) {
          out_row[i] =
              (rhs_row[i] + tr * (west + east + row_s[i] + row_n[i])) *
              inv_diag;
        } else {
          const double ww = i > 0 ? face_conductivity(i, j, i - 1, j) : 1.0;
          const double we = i + 1 < nx ? face_conductivity(i, j, i + 1, j) : 1.0;
          const double ws = j > 0 ? face_conductivity(i, j, i, j - 1) : 1.0;
          const double wn = j + 1 < ny ? face_conductivity(i, j, i, j + 1) : 1.0;
          const double diag = 1.0 + tr * (ww + we + ws + wn);
          out_row[i] = (rhs_row[i] + tr * (ww * west + we * east +
                                           ws * row_s[i] + wn * row_n[i])) /
                       diag;
        }
      };
      if (i_lo < ib) {
        update_cell(0);
      }
      if (!heterogeneous) {
        kern.jacobi2d_row(out_row, rhs_row, row, row_s, row_n, tr, inv_diag,
                          ib, ie);
      } else {
        for (std::size_t i = ib; i < ie; ++i) {
          update_cell(i);
        }
      }
      if (i_hi > ie) {
        update_cell(nx - 1);
      }
    }
  };

  // Temporal fusion for the serial homogeneous path: a chunk of S sweeps
  // runs as a row wavefront, so `u` and `rhs` stream through DRAM once per
  // chunk instead of once per sweep — at 512^2 the sweep is memory-bound
  // and this, not wider vectors, is where the headroom lives. Level s holds
  // the field after s sweeps of the chunk; levels 1..S-1 live in 4-row
  // rings that stay cache-resident (level s+1 row j needs level s rows
  // j-1..j+1, and a slot is only overwritten 4 rows later), and the final
  // level writes back into the current buffer in place (the write row
  // trails every remaining read of that buffer by at least one row). Every
  // cell sees exactly the same neighbor values and arithmetic as the
  // sweep-at-a-time loop, so the result is bit-identical on every ISA path.
  //
  // The first chunk can additionally stream the rhs copy one row ahead of
  // level 1 (`fold_rhs`), and the last chunk runs the defect scan one row
  // behind the final level (`fold_defect`): same reads, same arithmetic,
  // same row-major order, one DRAM pass instead of three.
  //
  // `alias_rhs` goes one step further when the whole step is a single
  // backward-Euler chunk: rhs IS u^n, and every level's rhs read of row j
  // happens no later than the in-place overwrite of that row (the final
  // level's own read aliases its output block-by-block, load before
  // store), so rhs_ is never materialized at all. The defect scan trails
  // the overwrite frontier, so it reads u^n row j from a 4-row ring saved
  // just before the final level recycles the row.
  auto fused_chunk = [&](std::size_t levels, bool fold_rhs, bool fold_defect,
                         bool alias_rhs) -> double {
    const std::size_t ring_stride = kRingRows * nx;
    const std::size_t need = levels * ring_stride + nx;
    if (fuse_rows_.size() < need) {
      fuse_rows_.resize(need);
    }
    double* const rings = fuse_rows_.data();
    double* const boundary_row = rings + (levels - 1) * ring_stride;
    // Trailing ring of u^n rows for the defect scan in alias_rhs mode.
    double* const saved_rhs = boundary_row + nx;
    double* const cur_data = cur->values().data();
    double* const rhs_data = alias_rhs ? cur_data : rhs_.values().data();
    std::fill(boundary_row, boundary_row + nx, problem_.boundary_value);
    const std::size_t ib = std::max<std::size_t>(i_lo, 1);
    const std::size_t ie = std::min(i_hi, nx - 1);
    std::size_t copy_next = 0;     // next row of u^n to mirror into rhs_
    std::size_t defect_next = j_lo;  // next row of the trailing defect scan
    double acc = 0.0;

    // Row of `level` (0 = the live field) at row index j. Dirichlet edge
    // rows of intermediate levels are never computed; they are the constant
    // boundary row.
    auto level_row = [&](std::size_t level, std::size_t j) -> double* {
      if (level == 0) {
        return cur_data + j * nx;
      }
      if (!insulated && (j == 0 || j + 1 == ny)) {
        return boundary_row;
      }
      return rings + (level - 1) * ring_stride + (j & (kRingRows - 1)) * nx;
    };

    auto compute_row = [&](std::size_t s, std::size_t j) {
      const double* row = level_row(s - 1, j);
      const double* row_s = j > 0 ? level_row(s - 1, j - 1) : row;
      const double* row_n = j + 1 < ny ? level_row(s - 1, j + 1) : row;
      const double* rhs_row = rhs_data + j * nx;
      double* out_row = s == levels ? cur_data + j * nx : level_row(s, j);
      if (alias_rhs && s == levels && fold_defect) {
        // This call recycles u^n row j in place; park the original for the
        // trailing defect scan.
        std::memcpy(saved_rhs + (j & (kRingRows - 1)) * nx, rhs_row,
                    nx * sizeof(double));
      }
      auto edge_cell = [&](std::size_t i) {
        const double c = row[i];
        const double west = i > 0 ? row[i - 1] : c;
        const double east = i + 1 < nx ? row[i + 1] : c;
        out_row[i] =
            (rhs_row[i] + tr * (west + east + row_s[i] + row_n[i])) * inv_diag;
      };
      if (i_lo < ib) {
        edge_cell(0);
      }
      kern.jacobi2d_row(out_row, rhs_row, row, row_s, row_n, tr, inv_diag, ib,
                        ie);
      if (i_hi > ie) {
        edge_cell(nx - 1);
      }
      if (!insulated) {
        // Every target buffer gets its Dirichlet columns refreshed before a
        // sweep reads it — sources may have stamped boundary cells, and the
        // sweep-at-a-time loop erases that via apply_boundary on the
        // ping-pong buffer. Match it on intermediate and final rows alike.
        out_row[0] = problem_.boundary_value;
        out_row[nx - 1] = problem_.boundary_value;
      }
    };

    // Finished-field row for the trailing defect scan. Dirichlet edge rows
    // read as the constant boundary row — identical to the apply_boundary'd
    // buffer the standalone scan would see.
    auto final_row = [&](std::size_t j) -> const double* {
      if (!insulated && (j == 0 || j + 1 == ny)) {
        return boundary_row;
      }
      return cur_data + j * nx;
    };

    auto defect_row = [&](std::size_t j) {
      const double* row = final_row(j);
      const double* row_s = j > 0 ? final_row(j - 1) : row;
      const double* row_n = j + 1 < ny ? final_row(j + 1) : row;
      const double* rhs_row = alias_rhs
                                  ? saved_rhs + (j & (kRingRows - 1)) * nx
                                  : rhs_data + j * nx;
      auto defect_cell = [&](std::size_t i) {
        const double c = row[i];
        const double west = i > 0 ? row[i - 1] : c;
        const double east = i + 1 < nx ? row[i + 1] : c;
        const double defect = (1.0 + 4.0 * tr) * c -
                              tr * (west + east + row_s[i] + row_n[i]) -
                              rhs_row[i];
        acc = std::max(acc, std::abs(defect));
      };
      if (i_lo < ib) {
        defect_cell(0);
      }
      acc = kern.defect2d_row(rhs_row, row, row_s, row_n, tr, ib, ie, acc);
      if (i_hi > ie) {
        defect_cell(nx - 1);
      }
    };

    for (std::size_t t = j_lo; t < j_hi + levels - 1; ++t) {
      if (fold_rhs) {
        // Level 1 reads rhs row t this iteration; stay one row ahead so the
        // copied row is still cache-hot (and read the original field before
        // the in-place final level can reach it).
        for (; copy_next < ny && copy_next <= t + 1; ++copy_next) {
          std::memcpy(rhs_data + copy_next * nx, cur_data + copy_next * nx,
                      nx * sizeof(double));
        }
      }
      for (std::size_t s = 1; s <= levels; ++s) {
        if (t < j_lo + (s - 1)) {
          break;  // deeper levels have not started yet
        }
        const std::size_t j = t - (s - 1);
        if (j < j_hi) {
          compute_row(s, j);
        }
      }
      if (fold_defect && t >= j_lo + (levels - 1)) {
        // Final-level rows up to t-(levels-1) exist; the defect of row r
        // needs rows r-1..r+1, so the scan trails the frontier by one row,
        // in the same row order as the standalone pass.
        const std::size_t frontier = t - (levels - 1);
        for (; defect_next < frontier && defect_next < j_hi; ++defect_next) {
          defect_row(defect_next);
        }
      }
    }
    if (fold_rhs) {
      for (; copy_next < ny; ++copy_next) {
        std::memcpy(rhs_data + copy_next * nx, cur_data + copy_next * nx,
                    nx * sizeof(double));
      }
    }
    if (fold_defect) {
      for (; defect_next < j_hi; ++defect_next) {
        defect_row(defect_next);
      }
    }
    return acc;
  };

  double fused_residual = 0.0;
  if (fused) {
    std::size_t remaining = problem_.executed_sweeps;
    bool first = true;
    while (remaining > 0) {
      std::size_t levels = std::min(kMaxFuse, remaining);
      if (remaining - levels == 1) {
        --levels;  // never strand a lone sweep: chunks are always >= 2
      }
      const bool last = remaining == levels;
      // One backward-Euler chunk covering the whole step: read u^n straight
      // out of the live field instead of materializing rhs_ at all.
      const bool alias_rhs = fold_copy && first && last;
      fused_residual =
          fused_chunk(levels, first && fold_copy && !alias_rhs, last,
                      alias_rhs);
      if (!insulated) {
        // The in-place result must look like a freshly apply_boundary'd
        // ping-pong buffer: boundary rows may still carry stale source
        // stamps that the next chunk (and the defect scan) must not see.
        apply_boundary(*cur);
      }
      remaining -= levels;
      first = false;
    }
  } else {
    for (std::size_t sweep = 0; sweep < problem_.executed_sweeps; ++sweep) {
      // Dirichlet edge values must be visible in the target buffer too.
      if (!insulated) {
        apply_boundary(*nxt);
      }
      if (use_pool) {
        pool_->parallel_for(j_lo, j_hi, sweep_rows, row_grain);
      } else {
        sweep_rows(j_lo, j_hi);
      }
      std::swap(cur, nxt);
    }
    if (cur != &u_) {
      std::swap(u_, next_);
    }
  }

  // Linear-system defect before boundary/source reinforcement. Max-norm is
  // exact under any combine order, so the parallel reduction is bit-equal to
  // the serial scan for every pool size.
  auto defect_rows = [&](std::size_t row_begin, std::size_t row_end,
                         double acc) {
    const std::size_t ib = std::max<std::size_t>(i_lo, 1);
    const std::size_t ie = std::min(i_hi, nx - 1);
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const double* row = u_.values().data() + j * nx;
      const double* row_s = j > 0 ? row - nx : row;
      const double* row_n = j + 1 < ny ? row + nx : row;
      const double* rhs_row = rhs_.values().data() + j * nx;
      auto defect_cell = [&](std::size_t i) {
        const double c = row[i];
        const double west = i > 0 ? row[i - 1] : c;
        const double east = i + 1 < nx ? row[i + 1] : c;
        const double south = row_s[i];
        const double north = row_n[i];
        double defect = 0.0;
        if (!heterogeneous) {
          defect = (1.0 + 4.0 * tr) * c - tr * (west + east + south + north) -
                   rhs_row[i];
        } else {
          const double ww = i > 0 ? face_conductivity(i, j, i - 1, j) : 1.0;
          const double we = i + 1 < nx ? face_conductivity(i, j, i + 1, j) : 1.0;
          const double ws = j > 0 ? face_conductivity(i, j, i, j - 1) : 1.0;
          const double wn = j + 1 < ny ? face_conductivity(i, j, i, j + 1) : 1.0;
          defect = (1.0 + tr * (ww + we + ws + wn)) * c -
                   tr * (ww * west + we * east + ws * south + wn * north) -
                   rhs_row[i];
        }
        acc = std::max(acc, std::abs(defect));
      };
      if (i_lo < ib) {
        defect_cell(0);
      }
      if (!heterogeneous) {
        // Max-norm over a row is order-free (NaNs are ignored on every
        // path), so the vector kernel's lane merge is bit-equal.
        acc = kern.defect2d_row(rhs_row, row, row_s, row_n, tr, ib, ie, acc);
      } else {
        for (std::size_t i = ib; i < ie; ++i) {
          defect_cell(i);
        }
      }
      if (i_hi > ie) {
        defect_cell(nx - 1);
      }
    }
    return acc;
  };
  // Max-norm is exact under any combine order, so the serial scan below is
  // bit-equal to the pooled reduction (and vice versa) for every pool size.
  const double residual =
      fused ? fused_residual
      : use_pool
          ? pool_->parallel_reduce(j_lo, j_hi, 0.0, defect_rows,
                                   [](double a, double b) {
                                     return std::max(a, b);
                                   })
          : defect_rows(j_lo, j_hi, 0.0);

  apply_boundary(u_);
  apply_sources(u_);
  ++steps_;
  if (obs::enabled()) {
    static obs::Counter& cell_updates =
        obs::Registry::global().counter("heat2d.cell_updates");
    cell_updates.add(static_cast<std::uint64_t>(nx * ny) *
                     problem_.executed_sweeps);
  }
  return residual;
}

double HeatSolver::total_heat() const {
  return u_.sum() * problem_.dx * problem_.dx;
}

machine::ActivityRecord HeatSolver::step_activity() const {
  machine::ActivityRecord a;
  const double cells = static_cast<double>((problem_.nx - 2) * (problem_.ny - 2));
  // 6 flops per cell-update: 3 adds for the stencil sum, 1 multiply by r,
  // 1 add of the rhs, 1 multiply by the inverse diagonal.
  a.flops = problem_.modeled_sweeps * cells * 6.0;
  const double bytes_per_sweep =
      static_cast<double>(problem_.nx * problem_.ny) * sizeof(double) * 2.0;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      problem_.modeled_sweeps * bytes_per_sweep *
      problem_.dram_traffic_fraction)};
  a.active_cores = problem_.modeled_active_cores;
  a.core_utilization = 1.0;
  return a;
}

void HeatSolver::set_eigenmode(int p, int q, double amplitude) {
  GREENVIS_REQUIRE(problem_.boundary == BoundaryKind::kDirichlet);
  GREENVIS_REQUIRE(p >= 1 && q >= 1);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  for (std::size_t j = 0; j < problem_.ny; ++j) {
    for (std::size_t i = 0; i < problem_.nx; ++i) {
      u_.at(i, j) = amplitude *
                    std::sin(std::numbers::pi * p * static_cast<double>(i) / lx) *
                    std::sin(std::numbers::pi * q * static_cast<double>(j) / ly);
    }
  }
  apply_boundary(u_);
}

double HeatSolver::eigenmode_decay(int p, int q) const {
  const double r = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  const double sp = std::sin(std::numbers::pi * p / (2.0 * lx));
  const double sq = std::sin(std::numbers::pi * q / (2.0 * ly));
  const double mu = 4.0 * (sp * sp + sq * sq);
  return (1.0 - (1.0 - problem_.theta) * r * mu) /
         (1.0 + problem_.theta * r * mu);
}

}  // namespace greenvis::heat

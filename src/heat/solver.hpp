// The proxy heat-transfer simulation.
//
// A 2-D heat-conduction solve on a structured grid (the paper's proxy app,
// after Reddy & Gartling's finite-element heat transfer text [4] — we use
// the equivalent 5-point finite-difference discretization). Each timestep
// advances the backward-Euler system
//
//     (I - r L) u^{n+1} = u^n ,   r = alpha dt / dx^2,
//
// with damped-Jacobi sweeps on a double-buffered grid, parallelized across
// the thread pool exactly like the 16-thread testbed app. The default grid
// is 128x128 doubles = 128 KB, matching Sec. IV-C.
//
// Host-executed vs modeled work: we run enough Jacobi sweeps to converge our
// (moderately stiff) systems; the testbed's convergence-bound plain-Jacobi
// solve performed ~6.9e4 sweeps per step (the classical bound
// 2 (n/pi)^2 ln(1/eps) for n = 128, eps = 1e-8). The activity record charges
// the cost model with the testbed's sweep count so virtual stage durations
// match Fig. 4; numerical results come from the sweeps actually executed.
// See DESIGN.md, "Substitutions".
#pragma once

#include <cstddef>
#include <vector>

#include "src/machine/activity.hpp"
#include "src/util/field.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::heat {

using util::Field2D;

enum class BoundaryKind {
  kDirichlet,  // fixed temperature on all four edges
  kInsulated,  // zero-flux (Neumann) on all four edges
};

/// A circular region held at a fixed temperature (a heat source/sink).
struct HeatSource {
  double cx{0.0};
  double cy{0.0};
  double radius{0.0};
  double temperature{0.0};
};

struct HeatProblem {
  std::size_t nx{128};
  std::size_t ny{128};
  double alpha{1.0};  // thermal diffusivity
  double dx{1.0};     // grid spacing
  double dt{0.25};    // timestep (r = alpha dt / dx^2)
  /// Time-integration theta: 1.0 = backward Euler (the default, first-order,
  /// very damped — the testbed proxy's scheme), 0.5 = Crank-Nicolson
  /// (second-order). Must lie in [0.5, 1] for unconditional stability.
  double theta{1.0};
  BoundaryKind boundary{BoundaryKind::kDirichlet};
  double boundary_value{0.0};
  std::vector<HeatSource> sources;
  /// Optional heterogeneous relative conductivity per cell (empty = uniform
  /// 1.0). Face conductivities are harmonic means of the adjacent cells, so
  /// a zero-conductivity cell is a perfect insulator. Dimensions must match
  /// nx x ny.
  Field2D conductivity;
  /// Jacobi sweeps executed per step on the host (converges for moderate r).
  std::size_t executed_sweeps{40};
  /// Sweeps the testbed's convergence-bound plain-Jacobi solver performs —
  /// what the cost model is charged with.
  double modeled_sweeps{69000.0};
  /// Threads the testbed app runs (all 16 cores of the node).
  std::size_t modeled_active_cores{16};
  /// Fraction of sweep traffic that misses the LLC and reaches DRAM
  /// (the 128 KB grid is LLC-resident; evictions and cross-socket snoops
  /// still leak a share).
  double dram_traffic_fraction{0.3};
};

class HeatSolver {
 public:
  /// `pool` may be shared; pass nullptr for serial execution.
  HeatSolver(const HeatProblem& problem, util::ThreadPool* pool);

  /// Advance one timestep. Returns the final Jacobi residual (max-norm of
  /// the linear-system defect).
  double step();

  [[nodiscard]] const Field2D& temperature() const { return u_; }
  [[nodiscard]] Field2D& temperature() { return u_; }
  [[nodiscard]] int steps_taken() const { return steps_; }
  [[nodiscard]] const HeatProblem& problem() const { return problem_; }

  /// Total heat content (sum of cell temperatures x cell area) — conserved
  /// under insulated boundaries with no sources.
  [[nodiscard]] double total_heat() const;

  /// Machine-visible work of one timestep (modeled sweep count; see header
  /// comment).
  [[nodiscard]] machine::ActivityRecord step_activity() const;

  /// Set a smooth initial condition: the (p,q) Dirichlet eigenmode. Useful
  /// for analytic validation.
  void set_eigenmode(int p, int q, double amplitude);
  /// Discrete per-step decay factor of the (p,q) eigenmode under the
  /// configured theta scheme (the exact answer `step()` must reproduce once
  /// converged): (1 - (1-theta) r mu) / (1 + theta r mu).
  [[nodiscard]] double eigenmode_decay(int p, int q) const;

 private:
  void apply_boundary(Field2D& f) const;
  void apply_sources(Field2D& f) const;
  /// Harmonic-mean face conductivity between cells a and b (1.0 when the
  /// problem is homogeneous).
  [[nodiscard]] double face_conductivity(std::size_t ia, std::size_t ja,
                                         std::size_t ib, std::size_t jb) const;

  HeatProblem problem_;
  util::ThreadPool* pool_;
  Field2D u_;
  Field2D next_;
  Field2D rhs_;
  /// Ring-row scratch for the temporally fused sweep wavefront (lazily
  /// sized; cache-resident by construction).
  std::vector<double> fuse_rows_;
  int steps_{0};
};

}  // namespace greenvis::heat

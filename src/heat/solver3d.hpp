// 3-D heat-conduction solver — the volume-data producer for the volume
// rendering path (the paper's reference workloads visualize 3-D simulation
// data). Same scheme as the 2-D solver: backward Euler with a 7-point
// stencil, damped-Jacobi sweeps on double-buffered fields, threaded over
// z-slabs.
#pragma once

#include <vector>

#include "src/machine/activity.hpp"
#include "src/util/field3d.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::heat {

struct HeatSource3D {
  double cx{0.0}, cy{0.0}, cz{0.0};
  double radius{0.0};
  double temperature{0.0};
};

struct HeatProblem3D {
  std::size_t nx{64};
  std::size_t ny{64};
  std::size_t nz{64};
  double alpha{1.0};
  double dx{1.0};
  double dt{0.25};
  /// Dirichlet value on all faces (3-D insulated boundaries are handled by
  /// mirrored neighbors, as in 2-D).
  bool insulated{false};
  double boundary_value{0.0};
  std::vector<HeatSource3D> sources;
  std::size_t executed_sweeps{30};
  /// Testbed-calibrated sweep count. The plain-Jacobi convergence bound
  /// scales with n^2: 2 (n/pi)^2 ln(1/eps) ~ 1.7e4 for n = 64, eps = 1e-8
  /// (vs 6.9e4 for the 2-D proxy's n = 128).
  double modeled_sweeps{17000.0};
  std::size_t modeled_active_cores{16};
  double dram_traffic_fraction{0.6};  // 2 MiB/sweep streams past the LLC
};

class HeatSolver3D {
 public:
  HeatSolver3D(const HeatProblem3D& problem, util::ThreadPool* pool);

  /// Advance one timestep; returns the final linear-system residual.
  double step();

  [[nodiscard]] const util::Field3D& temperature() const { return u_; }
  [[nodiscard]] util::Field3D& temperature() { return u_; }
  [[nodiscard]] int steps_taken() const { return steps_; }
  [[nodiscard]] const HeatProblem3D& problem() const { return problem_; }

  [[nodiscard]] double total_heat() const;
  [[nodiscard]] machine::ActivityRecord step_activity() const;

  /// Dirichlet eigenmode helpers (validation).
  void set_eigenmode(int p, int q, int r, double amplitude);
  [[nodiscard]] double eigenmode_decay(int p, int q, int r) const;

 private:
  void apply_boundary(util::Field3D& f) const;
  void apply_sources(util::Field3D& f) const;

  HeatProblem3D problem_;
  util::ThreadPool* pool_;
  util::Field3D u_;
  util::Field3D next_;
  util::Field3D rhs_;
  int steps_{0};
};

}  // namespace greenvis::heat

#include "src/heat/solver3d.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"
#include "src/util/simd/simd.hpp"

namespace greenvis::heat {

HeatSolver3D::HeatSolver3D(const HeatProblem3D& problem,
                           util::ThreadPool* pool)
    : problem_(problem),
      pool_(pool),
      u_(problem.nx, problem.ny, problem.nz, 0.0, pool),
      next_(problem.nx, problem.ny, problem.nz, 0.0, pool),
      rhs_(problem.nx, problem.ny, problem.nz, 0.0, pool) {
  GREENVIS_REQUIRE(problem_.nx >= 3 && problem_.ny >= 3 && problem_.nz >= 3);
  GREENVIS_REQUIRE(problem_.alpha > 0.0 && problem_.dx > 0.0 &&
                   problem_.dt > 0.0);
  GREENVIS_REQUIRE(problem_.executed_sweeps >= 1);
  apply_boundary(u_);
  apply_sources(u_);
}

void HeatSolver3D::apply_boundary(util::Field3D& f) const {
  if (problem_.insulated) {
    return;
  }
  const std::size_t nx = problem_.nx, ny = problem_.ny, nz = problem_.nz;
  const double v = problem_.boundary_value;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      f.at(0, j, k) = v;
      f.at(nx - 1, j, k) = v;
    }
    for (std::size_t i = 0; i < nx; ++i) {
      f.at(i, 0, k) = v;
      f.at(i, ny - 1, k) = v;
    }
  }
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      f.at(i, j, 0) = v;
      f.at(i, j, nz - 1) = v;
    }
  }
}

void HeatSolver3D::apply_sources(util::Field3D& f) const {
  for (const HeatSource3D& s : problem_.sources) {
    const double r2 = s.radius * s.radius;
    for (std::size_t k = 0; k < problem_.nz; ++k) {
      for (std::size_t j = 0; j < problem_.ny; ++j) {
        for (std::size_t i = 0; i < problem_.nx; ++i) {
          const double dxs = static_cast<double>(i) - s.cx;
          const double dys = static_cast<double>(j) - s.cy;
          const double dzs = static_cast<double>(k) - s.cz;
          if (dxs * dxs + dys * dys + dzs * dzs <= r2) {
            f.at(i, j, k) = s.temperature;
          }
        }
      }
    }
  }
}

double HeatSolver3D::step() {
  static obs::Histogram& step_us = obs::Registry::global().histogram(
      "heat3d.step_us", obs::duration_us_bounds());
  obs::ScopedSpan span("heat3d.step", obs::kCatHeat, &step_us);
  const std::size_t nx = problem_.nx, ny = problem_.ny, nz = problem_.nz;
  const double r = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double inv_diag = 1.0 / (1.0 + 6.0 * r);
  const bool insulated = problem_.insulated;

  rhs_ = u_;
  const std::size_t lo = insulated ? 0 : 1;
  const std::size_t k_hi = insulated ? nz : nz - 1;
  const std::size_t j_hi = insulated ? ny : ny - 1;
  const std::size_t i_hi = insulated ? nx : nx - 1;

  util::Field3D* cur = &u_;
  util::Field3D* nxt = &next_;

  // Cache-blocked sweep: each k-slab walks j in tiles so the three planes a
  // stencil touches stay LLC-resident across consecutive k, and the inner
  // i-loop reads seven hoisted flat rows with no per-cell branches (the
  // boundary columns keep the mirrored-neighbor ternaries). Mirroring at
  // domain edges aliases the out-of-range row pointer onto the row itself,
  // reproducing the `? ... : c` arithmetic exactly.
  constexpr std::size_t kTileJ = 32;
  const std::size_t plane = nx * ny;
  const util::simd::KernelTable& kern = util::simd::kernels();
  auto sweep_slabs = [&](std::size_t k_begin, std::size_t k_end) {
    const double* rhs = rhs_.values().data();
    const double* u = cur->values().data();
    double* out = nxt->values().data();
    const std::size_t ib = std::max<std::size_t>(lo, 1);
    const std::size_t ie = std::min(i_hi, nx - 1);
    for (std::size_t jj = lo; jj < j_hi; jj += kTileJ) {
      const std::size_t jj_end = std::min(j_hi, jj + kTileJ);
      for (std::size_t k = k_begin; k < k_end; ++k) {
        for (std::size_t j = jj; j < jj_end; ++j) {
          const std::size_t base = k * plane + j * nx;
          const double* row = u + base;
          const double* row_s = j > 0 ? row - nx : row;
          const double* row_n = j + 1 < ny ? row + nx : row;
          const double* row_d = k > 0 ? row - plane : row;
          const double* row_u = k + 1 < nz ? row + plane : row;
          const double* rhs_row = rhs + base;
          double* out_row = out + base;
          auto update_cell = [&](std::size_t i) {
            const double c = row[i];
            const double west = i > 0 ? row[i - 1] : c;
            const double east = i + 1 < nx ? row[i + 1] : c;
            out_row[i] = (rhs_row[i] + r * (west + east + row_s[i] +
                                            row_n[i] + row_d[i] + row_u[i])) *
                         inv_diag;
          };
          if (lo < ib) {
            update_cell(0);
          }
          kern.jacobi3d_row(out_row, rhs_row, row, row_s, row_n, row_d,
                            row_u, r, inv_diag, ib, ie);
          if (i_hi > ie) {
            update_cell(nx - 1);
          }
        }
      }
    }
  };

  // Serial below one slab per executor or ~8k unknowns: dispatch overhead
  // would dominate (same policy as the 2-D solver).
  const std::size_t slabs_total = k_hi - lo;
  const std::size_t unknowns = slabs_total * (j_hi - lo) * (i_hi - lo);
  const bool use_pool = pool_ != nullptr && pool_->size() > 1 &&
                        slabs_total >= 2 * pool_->size() && unknowns >= 8192;

  for (std::size_t sweep = 0; sweep < problem_.executed_sweeps; ++sweep) {
    if (!insulated) {
      apply_boundary(*nxt);
    }
    if (use_pool) {
      pool_->parallel_for(lo, k_hi, sweep_slabs);
    } else {
      sweep_slabs(lo, k_hi);
    }
    std::swap(cur, nxt);
  }
  if (cur != &u_) {
    std::swap(u_, next_);
  }

  // Max-norm is exact under any combine order, so the parallel reduction is
  // bit-equal to the serial scan for every pool size.
  auto defect_slabs = [&](std::size_t k_begin, std::size_t k_end, double acc) {
    const double* rhs = rhs_.values().data();
    const double* u = u_.values().data();
    for (std::size_t k = k_begin; k < k_end; ++k) {
      for (std::size_t j = lo; j < j_hi; ++j) {
        const std::size_t base = k * plane + j * nx;
        const double* row = u + base;
        const double* row_s = j > 0 ? row - nx : row;
        const double* row_n = j + 1 < ny ? row + nx : row;
        const double* row_d = k > 0 ? row - plane : row;
        const double* row_u = k + 1 < nz ? row + plane : row;
        const double* rhs_row = rhs + base;
        auto defect_cell = [&](std::size_t i) {
          const double c = row[i];
          const double west = i > 0 ? row[i - 1] : c;
          const double east = i + 1 < nx ? row[i + 1] : c;
          const double defect =
              (1.0 + 6.0 * r) * c -
              r * (west + east + row_s[i] + row_n[i] + row_d[i] + row_u[i]) -
              rhs_row[i];
          acc = std::max(acc, std::abs(defect));
        };
        const std::size_t ib = std::max<std::size_t>(lo, 1);
        const std::size_t ie = std::min(i_hi, nx - 1);
        if (lo < ib) {
          defect_cell(0);
        }
        acc = kern.defect3d_row(rhs_row, row, row_s, row_n, row_d, row_u, r,
                                ib, ie, acc);
        if (i_hi > ie) {
          defect_cell(nx - 1);
        }
      }
    }
    return acc;
  };
  const double residual =
      use_pool ? pool_->parallel_reduce(
                     lo, k_hi, 0.0, defect_slabs,
                     [](double a, double b) { return std::max(a, b); })
               : defect_slabs(lo, k_hi, 0.0);

  apply_boundary(u_);
  apply_sources(u_);
  ++steps_;
  if (obs::enabled()) {
    static obs::Counter& cell_updates =
        obs::Registry::global().counter("heat3d.cell_updates");
    cell_updates.add(static_cast<std::uint64_t>(nx * ny * nz) *
                     problem_.executed_sweeps);
  }
  return residual;
}

double HeatSolver3D::total_heat() const {
  return u_.sum() * problem_.dx * problem_.dx * problem_.dx;
}

machine::ActivityRecord HeatSolver3D::step_activity() const {
  machine::ActivityRecord a;
  const double cells = static_cast<double>(
      (problem_.nx - 2) * (problem_.ny - 2) * (problem_.nz - 2));
  // 8 flops per cell-update: 5 adds for the stencil sum, multiply by r,
  // add the rhs, multiply by the inverse diagonal.
  a.flops = problem_.modeled_sweeps * cells * 8.0;
  const double bytes_per_sweep =
      static_cast<double>(problem_.nx * problem_.ny * problem_.nz) *
      sizeof(double) * 2.0;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      problem_.modeled_sweeps * bytes_per_sweep *
      problem_.dram_traffic_fraction)};
  a.active_cores = problem_.modeled_active_cores;
  return a;
}

void HeatSolver3D::set_eigenmode(int p, int q, int r, double amplitude) {
  GREENVIS_REQUIRE(!problem_.insulated);
  GREENVIS_REQUIRE(p >= 1 && q >= 1 && r >= 1);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  const double lz = static_cast<double>(problem_.nz - 1);
  for (std::size_t k = 0; k < problem_.nz; ++k) {
    for (std::size_t j = 0; j < problem_.ny; ++j) {
      for (std::size_t i = 0; i < problem_.nx; ++i) {
        u_.at(i, j, k) =
            amplitude *
            std::sin(std::numbers::pi * p * static_cast<double>(i) / lx) *
            std::sin(std::numbers::pi * q * static_cast<double>(j) / ly) *
            std::sin(std::numbers::pi * r * static_cast<double>(k) / lz);
      }
    }
  }
  apply_boundary(u_);
}

double HeatSolver3D::eigenmode_decay(int p, int q, int r) const {
  const double rr = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  const double lz = static_cast<double>(problem_.nz - 1);
  const double sp = std::sin(std::numbers::pi * p / (2.0 * lx));
  const double sq = std::sin(std::numbers::pi * q / (2.0 * ly));
  const double sr = std::sin(std::numbers::pi * r / (2.0 * lz));
  const double mu = 4.0 * (sp * sp + sq * sq + sr * sr);
  return 1.0 / (1.0 + rr * mu);
}

}  // namespace greenvis::heat

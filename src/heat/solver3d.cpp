#include "src/heat/solver3d.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/error.hpp"

namespace greenvis::heat {

HeatSolver3D::HeatSolver3D(const HeatProblem3D& problem,
                           util::ThreadPool* pool)
    : problem_(problem),
      pool_(pool),
      u_(problem.nx, problem.ny, problem.nz, 0.0),
      next_(problem.nx, problem.ny, problem.nz, 0.0),
      rhs_(problem.nx, problem.ny, problem.nz, 0.0) {
  GREENVIS_REQUIRE(problem_.nx >= 3 && problem_.ny >= 3 && problem_.nz >= 3);
  GREENVIS_REQUIRE(problem_.alpha > 0.0 && problem_.dx > 0.0 &&
                   problem_.dt > 0.0);
  GREENVIS_REQUIRE(problem_.executed_sweeps >= 1);
  apply_boundary(u_);
  apply_sources(u_);
}

void HeatSolver3D::apply_boundary(util::Field3D& f) const {
  if (problem_.insulated) {
    return;
  }
  const std::size_t nx = problem_.nx, ny = problem_.ny, nz = problem_.nz;
  const double v = problem_.boundary_value;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      f.at(0, j, k) = v;
      f.at(nx - 1, j, k) = v;
    }
    for (std::size_t i = 0; i < nx; ++i) {
      f.at(i, 0, k) = v;
      f.at(i, ny - 1, k) = v;
    }
  }
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      f.at(i, j, 0) = v;
      f.at(i, j, nz - 1) = v;
    }
  }
}

void HeatSolver3D::apply_sources(util::Field3D& f) const {
  for (const HeatSource3D& s : problem_.sources) {
    const double r2 = s.radius * s.radius;
    for (std::size_t k = 0; k < problem_.nz; ++k) {
      for (std::size_t j = 0; j < problem_.ny; ++j) {
        for (std::size_t i = 0; i < problem_.nx; ++i) {
          const double dxs = static_cast<double>(i) - s.cx;
          const double dys = static_cast<double>(j) - s.cy;
          const double dzs = static_cast<double>(k) - s.cz;
          if (dxs * dxs + dys * dys + dzs * dzs <= r2) {
            f.at(i, j, k) = s.temperature;
          }
        }
      }
    }
  }
}

double HeatSolver3D::step() {
  const std::size_t nx = problem_.nx, ny = problem_.ny, nz = problem_.nz;
  const double r = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double inv_diag = 1.0 / (1.0 + 6.0 * r);
  const bool insulated = problem_.insulated;

  rhs_ = u_;
  const std::size_t lo = insulated ? 0 : 1;
  const std::size_t k_hi = insulated ? nz : nz - 1;
  const std::size_t j_hi = insulated ? ny : ny - 1;
  const std::size_t i_hi = insulated ? nx : nx - 1;

  util::Field3D* cur = &u_;
  util::Field3D* nxt = &next_;

  auto sweep_slabs = [&](std::size_t k_begin, std::size_t k_end) {
    for (std::size_t k = k_begin; k < k_end; ++k) {
      for (std::size_t j = lo; j < j_hi; ++j) {
        for (std::size_t i = lo; i < i_hi; ++i) {
          const double c = cur->at(i, j, k);
          const double west = i > 0 ? cur->at(i - 1, j, k) : c;
          const double east = i + 1 < nx ? cur->at(i + 1, j, k) : c;
          const double south = j > 0 ? cur->at(i, j - 1, k) : c;
          const double north = j + 1 < ny ? cur->at(i, j + 1, k) : c;
          const double down = k > 0 ? cur->at(i, j, k - 1) : c;
          const double up = k + 1 < nz ? cur->at(i, j, k + 1) : c;
          nxt->at(i, j, k) =
              (rhs_.at(i, j, k) +
               r * (west + east + south + north + down + up)) *
              inv_diag;
        }
      }
    }
  };

  for (std::size_t sweep = 0; sweep < problem_.executed_sweeps; ++sweep) {
    if (!insulated) {
      apply_boundary(*nxt);
    }
    if (pool_ != nullptr) {
      pool_->parallel_for(lo, k_hi, sweep_slabs);
    } else {
      sweep_slabs(lo, k_hi);
    }
    std::swap(cur, nxt);
  }
  if (cur != &u_) {
    std::swap(u_, next_);
  }

  double residual = 0.0;
  for (std::size_t k = lo; k < k_hi; ++k) {
    for (std::size_t j = lo; j < j_hi; ++j) {
      for (std::size_t i = lo; i < i_hi; ++i) {
        const double c = u_.at(i, j, k);
        const double west = i > 0 ? u_.at(i - 1, j, k) : c;
        const double east = i + 1 < nx ? u_.at(i + 1, j, k) : c;
        const double south = j > 0 ? u_.at(i, j - 1, k) : c;
        const double north = j + 1 < ny ? u_.at(i, j + 1, k) : c;
        const double down = k > 0 ? u_.at(i, j, k - 1) : c;
        const double up = k + 1 < nz ? u_.at(i, j, k + 1) : c;
        const double defect =
            (1.0 + 6.0 * r) * c -
            r * (west + east + south + north + down + up) - rhs_.at(i, j, k);
        residual = std::max(residual, std::abs(defect));
      }
    }
  }

  apply_boundary(u_);
  apply_sources(u_);
  ++steps_;
  return residual;
}

double HeatSolver3D::total_heat() const {
  return u_.sum() * problem_.dx * problem_.dx * problem_.dx;
}

machine::ActivityRecord HeatSolver3D::step_activity() const {
  machine::ActivityRecord a;
  const double cells = static_cast<double>(
      (problem_.nx - 2) * (problem_.ny - 2) * (problem_.nz - 2));
  // 8 flops per cell-update: 5 adds for the stencil sum, multiply by r,
  // add the rhs, multiply by the inverse diagonal.
  a.flops = problem_.modeled_sweeps * cells * 8.0;
  const double bytes_per_sweep =
      static_cast<double>(problem_.nx * problem_.ny * problem_.nz) *
      sizeof(double) * 2.0;
  a.dram_bytes = util::Bytes{static_cast<std::uint64_t>(
      problem_.modeled_sweeps * bytes_per_sweep *
      problem_.dram_traffic_fraction)};
  a.active_cores = problem_.modeled_active_cores;
  return a;
}

void HeatSolver3D::set_eigenmode(int p, int q, int r, double amplitude) {
  GREENVIS_REQUIRE(!problem_.insulated);
  GREENVIS_REQUIRE(p >= 1 && q >= 1 && r >= 1);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  const double lz = static_cast<double>(problem_.nz - 1);
  for (std::size_t k = 0; k < problem_.nz; ++k) {
    for (std::size_t j = 0; j < problem_.ny; ++j) {
      for (std::size_t i = 0; i < problem_.nx; ++i) {
        u_.at(i, j, k) =
            amplitude *
            std::sin(std::numbers::pi * p * static_cast<double>(i) / lx) *
            std::sin(std::numbers::pi * q * static_cast<double>(j) / ly) *
            std::sin(std::numbers::pi * r * static_cast<double>(k) / lz);
      }
    }
  }
  apply_boundary(u_);
}

double HeatSolver3D::eigenmode_decay(int p, int q, int r) const {
  const double rr = problem_.alpha * problem_.dt / (problem_.dx * problem_.dx);
  const double lx = static_cast<double>(problem_.nx - 1);
  const double ly = static_cast<double>(problem_.ny - 1);
  const double lz = static_cast<double>(problem_.nz - 1);
  const double sp = std::sin(std::numbers::pi * p / (2.0 * lx));
  const double sq = std::sin(std::numbers::pi * q / (2.0 * ly));
  const double sr = std::sin(std::numbers::pi * r / (2.0 * lz));
  const double mu = 4.0 * (sp * sp + sq * sq + sr * sr);
  return 1.0 / (1.0 + rr * mu);
}

}  // namespace greenvis::heat

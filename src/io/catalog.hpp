// Dataset catalog: a manifest of written timesteps.
//
// The pipelines know their I/O schedule, but a post-hoc analyst (or another
// tool) does not — the catalog is the small index file a writer leaves
// behind so readers can discover which steps exist, how large they are, and
// what their payload checksums should be, without probing file names.
// Format (text, one line per step):
//
//   greenvis-catalog 1
//   step <n> bytes <payload-bytes> fnv <checksum-hex>
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/io/dataset.hpp"

namespace greenvis::io {

struct CatalogEntry {
  int step{0};
  std::uint64_t payload_bytes{0};
  std::uint64_t checksum{0};
};

class DatasetCatalog {
 public:
  /// Record one written step (writers call this after write_step).
  void record(int step, std::uint64_t payload_bytes, std::uint64_t checksum);

  [[nodiscard]] bool contains(int step) const {
    return entries_.contains(step);
  }
  [[nodiscard]] std::optional<CatalogEntry> entry(int step) const;
  /// All steps in ascending order.
  [[nodiscard]] std::vector<int> steps() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t total_payload_bytes() const;

  /// Serialize to the text format / parse it back (throws on malformed
  /// input).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static DatasetCatalog parse(std::string_view text);

  /// Persist to "<basename>.catalog" on the simulated filesystem (durable).
  void save(Filesystem& fs, const DatasetConfig& config) const;
  /// Load from the filesystem.
  [[nodiscard]] static DatasetCatalog load(Filesystem& fs,
                                           const DatasetConfig& config);
  [[nodiscard]] static std::string file_name(const DatasetConfig& config) {
    return config.basename + ".catalog";
  }

 private:
  std::map<int, CatalogEntry> entries_;
};

}  // namespace greenvis::io

#include "src/io/compress.hpp"

#include <bit>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::io {

namespace {

constexpr std::uint32_t kMagic = 0x47565A31;  // "GVZ1"

double lorenzo(const util::Field2D& f, std::size_t i, std::size_t j) {
  const double west = i > 0 ? f.at(i - 1, j) : 0.0;
  const double north = j > 0 ? f.at(i, j - 1) : 0.0;
  const double northwest = (i > 0 && j > 0) ? f.at(i - 1, j - 1) : 0.0;
  return west + north - northwest;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t& pos) {
  GREENVIS_REQUIRE_MSG(pos + 4 <= in.size(), "truncated compressed blob");
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) {
    v |= static_cast<std::uint32_t>(in[pos++]) << (8 * k);
  }
  return v;
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int k = 0; k < 8; ++k) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * k)));
  }
}

double get_f64(std::span<const std::uint8_t> in, std::size_t& pos) {
  GREENVIS_REQUIRE_MSG(pos + 8 <= in.size(), "truncated compressed blob");
  std::uint64_t bits = 0;
  for (int k = 0; k < 8; ++k) {
    bits |= static_cast<std::uint64_t>(in[pos++]) << (8 * k);
  }
  return std::bit_cast<double>(bits);
}

}  // namespace

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    GREENVIS_REQUIRE_MSG(pos < in.size(), "truncated varint");
    GREENVIS_REQUIRE_MSG(shift < 64, "varint overflow");
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

std::vector<std::uint8_t> compress_field(const util::Field2D& field,
                                         const CompressConfig& config) {
  GREENVIS_REQUIRE(field.size() > 0);
  if (config.mode == CompressionMode::kLossyAbsBound) {
    GREENVIS_REQUIRE_MSG(config.error_bound > 0.0,
                         "lossy mode needs a positive error bound");
  }
  std::vector<std::uint8_t> out;
  out.reserve(field.size());
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(config.mode));
  put_varint(out, field.nx());
  put_varint(out, field.ny());
  put_f64(out, config.error_bound);

  if (config.mode == CompressionMode::kLossless) {
    // Decoder reconstructs exactly, so predict from the original values.
    for (std::size_t j = 0; j < field.ny(); ++j) {
      for (std::size_t i = 0; i < field.nx(); ++i) {
        const double pred = lorenzo(field, i, j);
        const std::uint64_t delta = std::bit_cast<std::uint64_t>(
            field.at(i, j)) ^ std::bit_cast<std::uint64_t>(pred);
        put_varint(out, delta);
      }
    }
    return out;
  }

  // Lossy: quantize against the bound, predicting from the *reconstruction*
  // so the error never compounds.
  const double step = 2.0 * config.error_bound;
  util::Field2D recon(field.nx(), field.ny());
  for (std::size_t j = 0; j < field.ny(); ++j) {
    for (std::size_t i = 0; i < field.nx(); ++i) {
      const double pred = lorenzo(recon, i, j);
      const double q = std::round((field.at(i, j) - pred) / step);
      GREENVIS_REQUIRE_MSG(std::abs(q) < 9.0e18,
                           "value range too wide for the error bound");
      const auto qi = static_cast<std::int64_t>(q);
      put_varint(out, zigzag_encode(qi));
      recon.at(i, j) = pred + static_cast<double>(qi) * step;
    }
  }
  return out;
}

util::Field2D decompress_field(std::span<const std::uint8_t> blob) {
  std::size_t pos = 0;
  GREENVIS_REQUIRE_MSG(get_u32(blob, pos) == kMagic,
                       "bad magic in compressed blob");
  GREENVIS_REQUIRE_MSG(pos < blob.size(), "truncated compressed blob");
  const auto mode = static_cast<CompressionMode>(blob[pos++]);
  GREENVIS_REQUIRE_MSG(mode == CompressionMode::kLossless ||
                           mode == CompressionMode::kLossyAbsBound,
                       "unknown compression mode");
  const auto nx = static_cast<std::size_t>(get_varint(blob, pos));
  const auto ny = static_cast<std::size_t>(get_varint(blob, pos));
  GREENVIS_REQUIRE_MSG(nx > 0 && ny > 0 && nx < (1u << 20) && ny < (1u << 20),
                       "implausible field dimensions");
  const double bound = get_f64(blob, pos);

  util::Field2D field(nx, ny);
  if (mode == CompressionMode::kLossless) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const double pred = lorenzo(field, i, j);
        const std::uint64_t delta = get_varint(blob, pos);
        field.at(i, j) = std::bit_cast<double>(
            std::bit_cast<std::uint64_t>(pred) ^ delta);
      }
    }
    return field;
  }

  GREENVIS_REQUIRE_MSG(bound > 0.0, "lossy blob without error bound");
  const double step = 2.0 * bound;
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double pred = lorenzo(field, i, j);
      const std::int64_t q = zigzag_decode(get_varint(blob, pos));
      field.at(i, j) = pred + static_cast<double>(q) * step;
    }
  }
  return field;
}

double compression_ratio(const util::Field2D& field,
                         std::span<const std::uint8_t> blob) {
  GREENVIS_REQUIRE(!blob.empty());
  return static_cast<double>(field.serialized_bytes()) /
         static_cast<double>(blob.size());
}

}  // namespace greenvis::io

// Chunked timestep datasets.
//
// The proxy app writes its grid to disk every k-th iteration (Sec. IV-C:
// "grid size and chunk size were fixed at 128 KB") and the post-processing
// pipeline later reads the timesteps back for visualization. This layer
// implements that on the simulated filesystem:
//
//  * one file per timestep, each framed with a magic/step/size/FNV-64 header
//    so the reader can verify integrity — both pipelines must produce
//    *identical* images, so corruption anywhere in the storage stack is a
//    test failure, not a silent wrong answer;
//  * the writer emits O_SYNC chunks (checkpoint-style durability: a crashed
//    simulation must not lose committed steps), which is what makes the
//    write stage cost ~30% of case study 1;
//  * the reader consumes records through a cold cache with a deserialization
//    gap between records, reproducing the paper's read stage.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/storage/filesystem.hpp"

namespace greenvis::io {

using storage::Filesystem;

struct DatasetConfig {
  std::string basename{"heat"};
  /// Durable-write granularity (one fsync per chunk).
  util::Bytes chunk_size{util::kibibytes(4)};
  /// Read/deserialize granularity (per-element records of the FEM mesh).
  util::Bytes read_record{util::kibibytes(1)};
  storage::WriteMode write_mode{storage::WriteMode::kSync};
  storage::ReadMode read_mode{storage::ReadMode::kDirect};
  /// Host compute between records on the read path (deserialize + verify) —
  /// long enough that the platter rotates past the next sector.
  util::Seconds record_processing{util::microseconds(1200.0)};
  /// Host compute between chunks on the write path (serialize).
  util::Seconds chunk_processing{util::microseconds(150.0)};
};

/// Name of the file holding one timestep.
[[nodiscard]] std::string step_file_name(const DatasetConfig& config,
                                         int step);

class TimestepWriter {
 public:
  TimestepWriter(Filesystem& fs, const DatasetConfig& config)
      : fs_(&fs), config_(config) {}

  /// Persist one timestep's payload durably.
  void write_step(int step, std::span<const std::uint8_t> payload);

  [[nodiscard]] std::uint64_t steps_written() const { return steps_written_; }
  [[nodiscard]] util::Bytes payload_bytes_written() const {
    return payload_bytes_;
  }

  /// The in-memory manifest of everything written so far; persist it with
  /// DatasetCatalog::save (see io/catalog.hpp) so post-hoc tools can
  /// discover the steps.
  [[nodiscard]] const class DatasetCatalog& catalog() const;

 private:
  Filesystem* fs_;
  DatasetConfig config_;
  std::uint64_t steps_written_{0};
  util::Bytes payload_bytes_{0};
  std::shared_ptr<class DatasetCatalog> catalog_;
};

class TimestepReader {
 public:
  TimestepReader(Filesystem& fs, const DatasetConfig& config)
      : fs_(&fs), config_(config) {}

  [[nodiscard]] bool has_step(int step) const;

  /// Read one timestep back; throws ContractViolation on any header or
  /// checksum mismatch.
  [[nodiscard]] std::vector<std::uint8_t> read_step(int step);

  [[nodiscard]] std::uint64_t steps_read() const { return steps_read_; }

 private:
  Filesystem* fs_;
  DatasetConfig config_;
  std::uint64_t steps_read_{0};
};

}  // namespace greenvis::io

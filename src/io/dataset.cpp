#include "src/io/dataset.hpp"

#include "src/io/catalog.hpp"

#include <algorithm>
#include <cstring>

#include "src/util/checksum.hpp"
#include "src/util/error.hpp"

namespace greenvis::io {

namespace {

constexpr std::uint64_t kMagic = 0x475645'48454154ULL;  // "GVE-HEAT"
constexpr std::size_t kHeaderBytes = 32;

void put_u64(std::uint8_t* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t get_u64(const std::uint8_t* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::string step_file_name(const DatasetConfig& config, int step) {
  return config.basename + "_t" + std::to_string(step) + ".bin";
}

void TimestepWriter::write_step(int step,
                                std::span<const std::uint8_t> payload) {
  GREENVIS_REQUIRE(!payload.empty());
  Filesystem& fs = *fs_;
  const std::string name = step_file_name(config_, step);
  GREENVIS_REQUIRE_MSG(!fs.exists(name), "step already written: " + name);

  // Frame: header + payload, emitted in durable chunks.
  std::vector<std::uint8_t> framed(kHeaderBytes + payload.size());
  put_u64(framed.data(), kMagic);
  put_u64(framed.data() + 8, static_cast<std::uint64_t>(step));
  put_u64(framed.data() + 16, payload.size());
  put_u64(framed.data() + 24, util::fnv1a64(payload));
  std::copy(payload.begin(), payload.end(), framed.begin() + kHeaderBytes);

  const Filesystem::Fd fd = fs.create(name);
  const std::uint64_t chunk = config_.chunk_size.value();
  for (std::uint64_t off = 0; off < framed.size(); off += chunk) {
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk, framed.size() - off);
    fs.clock().advance(config_.chunk_processing);
    fs.write(fd,
             std::span<const std::uint8_t>{framed.data() + off,
                                           static_cast<std::size_t>(n)},
             config_.write_mode);
  }
  if (config_.write_mode == storage::WriteMode::kBuffered) {
    fs.fsync(fd);
  }
  fs.close(fd);
  ++steps_written_;
  payload_bytes_ += util::Bytes{payload.size()};
  if (catalog_ == nullptr) {
    catalog_ = std::make_shared<DatasetCatalog>();
  }
  catalog_->record(step, payload.size(), util::fnv1a64(payload));
}

const DatasetCatalog& TimestepWriter::catalog() const {
  static const DatasetCatalog kEmpty;
  return catalog_ == nullptr ? kEmpty : *catalog_;
}

bool TimestepReader::has_step(int step) const {
  return fs_->exists(step_file_name(config_, step));
}

std::vector<std::uint8_t> TimestepReader::read_step(int step) {
  Filesystem& fs = *fs_;
  const std::string name = step_file_name(config_, step);
  GREENVIS_REQUIRE_MSG(fs.exists(name), "no such step file: " + name);
  const std::uint64_t file_size = fs.file_size(name).value();
  GREENVIS_REQUIRE_MSG(file_size >= kHeaderBytes, "truncated step file");

  const Filesystem::Fd fd = fs.open(name);
  std::vector<std::uint8_t> framed(file_size);
  const std::uint64_t record = config_.read_record.value();
  std::uint64_t off = 0;
  while (off < file_size) {
    const std::uint64_t want = std::min<std::uint64_t>(record, file_size - off);
    const std::uint64_t got = fs.pread(
        fd,
        std::span<std::uint8_t>{framed.data() + off,
                                static_cast<std::size_t>(want)},
        off, config_.read_mode);
    GREENVIS_ENSURE(got == want);
    off += got;
    fs.clock().advance(config_.record_processing);
  }
  fs.close(fd);

  GREENVIS_REQUIRE_MSG(get_u64(framed.data()) == kMagic,
                       "bad magic in " + name);
  GREENVIS_REQUIRE_MSG(
      get_u64(framed.data() + 8) == static_cast<std::uint64_t>(step),
      "step index mismatch in " + name);
  const std::uint64_t payload_size = get_u64(framed.data() + 16);
  GREENVIS_REQUIRE_MSG(kHeaderBytes + payload_size == file_size,
                       "size mismatch in " + name);
  std::vector<std::uint8_t> payload(
      framed.begin() + kHeaderBytes,
      framed.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + payload_size));
  GREENVIS_REQUIRE_MSG(util::fnv1a64(payload) == get_u64(framed.data() + 24),
                       "checksum mismatch in " + name);
  ++steps_read_;
  return payload;
}

}  // namespace greenvis::io

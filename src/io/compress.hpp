// Field compression — "application-driven compression for visualizing
// large-scale time-varying data" (Wang, Yu & Ma [22], cited by the paper as
// an I/O-reduction technique for these pipelines).
//
// Two real codecs over 2-D double fields:
//
//  * lossless — Gorilla/FPZIP-style: XOR each value's IEEE-754 bits with a
//    Lorenzo-predicted value's bits and LEB128-encode the (mostly small)
//    deltas. Bit-exact round trip.
//  * lossy    — SZ-style bounded error: quantize the Lorenzo residual
//    against an absolute error bound, predicting from *reconstructed*
//    neighbors so the bound holds point-wise no matter how long the error
//    feedback chain gets.
//
// Both are streaming single-pass codecs with explicit headers; corrupt
// input fails loudly, never silently.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/field.hpp"

namespace greenvis::io {

enum class CompressionMode : std::uint8_t {
  kLossless = 0,
  kLossyAbsBound = 1,
};

struct CompressConfig {
  CompressionMode mode{CompressionMode::kLossless};
  /// Absolute per-value error bound (lossy mode; must be > 0 there).
  double error_bound{0.0};
};

[[nodiscard]] std::vector<std::uint8_t> compress_field(
    const util::Field2D& field, const CompressConfig& config);

/// Inverse of compress_field; throws ContractViolation on malformed input.
[[nodiscard]] util::Field2D decompress_field(
    std::span<const std::uint8_t> blob);

/// uncompressed bytes / compressed bytes for a given blob.
[[nodiscard]] double compression_ratio(const util::Field2D& field,
                                       std::span<const std::uint8_t> blob);

// -- building blocks (exposed for tests) --

/// LEB128 unsigned varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
[[nodiscard]] std::uint64_t get_varint(std::span<const std::uint8_t> in,
                                       std::size_t& pos);

/// ZigZag mapping of signed to unsigned.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace greenvis::io

#include "src/io/catalog.hpp"

#include <sstream>

#include "src/util/error.hpp"

namespace greenvis::io {

void DatasetCatalog::record(int step, std::uint64_t payload_bytes,
                            std::uint64_t checksum) {
  GREENVIS_REQUIRE_MSG(!entries_.contains(step),
                       "step already cataloged: " + std::to_string(step));
  entries_[step] = CatalogEntry{step, payload_bytes, checksum};
}

std::optional<CatalogEntry> DatasetCatalog::entry(int step) const {
  const auto it = entries_.find(step);
  return it == entries_.end() ? std::nullopt
                              : std::optional<CatalogEntry>{it->second};
}

std::vector<int> DatasetCatalog::steps() const {
  std::vector<int> out;
  out.reserve(entries_.size());
  for (const auto& [step, e] : entries_) {
    out.push_back(step);
  }
  return out;
}

std::uint64_t DatasetCatalog::total_payload_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [step, e] : entries_) {
    sum += e.payload_bytes;
  }
  return sum;
}

std::string DatasetCatalog::serialize() const {
  std::ostringstream os;
  os << "greenvis-catalog 1\n";
  os << std::hex;
  for (const auto& [step, e] : entries_) {
    os << std::dec << "step " << e.step << " bytes " << e.payload_bytes
       << " fnv " << std::hex << e.checksum << "\n";
  }
  return os.str();
}

DatasetCatalog DatasetCatalog::parse(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string header, version;
  is >> header >> version;
  GREENVIS_REQUIRE_MSG(header == "greenvis-catalog" && version == "1",
                       "not a greenvis catalog");
  DatasetCatalog catalog;
  std::string kw_step, kw_bytes, kw_fnv;
  int step = 0;
  std::uint64_t bytes = 0, checksum = 0;
  while (is >> kw_step >> step >> kw_bytes >> bytes >> kw_fnv >>
         std::hex >> checksum >> std::dec) {
    GREENVIS_REQUIRE_MSG(
        kw_step == "step" && kw_bytes == "bytes" && kw_fnv == "fnv",
        "malformed catalog line");
    catalog.record(step, bytes, checksum);
  }
  GREENVIS_REQUIRE_MSG(is.eof(), "trailing garbage in catalog");
  return catalog;
}

void DatasetCatalog::save(Filesystem& fs, const DatasetConfig& config) const {
  const std::string name = file_name(config);
  if (fs.exists(name)) {
    fs.remove(name);
  }
  const std::string text = serialize();
  const auto fd = fs.create(name);
  fs.write(fd,
           std::span<const std::uint8_t>{
               reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size()},
           storage::WriteMode::kBuffered);
  fs.fsync(fd);
  fs.close(fd);
}

DatasetCatalog DatasetCatalog::load(Filesystem& fs,
                                    const DatasetConfig& config) {
  const std::string name = file_name(config);
  GREENVIS_REQUIRE_MSG(fs.exists(name), "no catalog: " + name);
  const std::uint64_t size = fs.file_size(name).value();
  const auto fd = fs.open(name);
  std::vector<std::uint8_t> raw(size);
  fs.pread(fd, raw, 0, storage::ReadMode::kBuffered);
  fs.close(fd);
  return parse(std::string_view{reinterpret_cast<const char*>(raw.data()),
                                raw.size()});
}

}  // namespace greenvis::io

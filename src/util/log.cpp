#include "src/util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>

#include "src/obs/json.hpp"

namespace greenvis::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<bool> g_level_explicit{false};
std::once_flag g_env_once;
std::mutex g_mutex;
std::ostream* g_json_sink = nullptr;  // guarded by g_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> parse_level(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogLevel::kInfo;
  }
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

void apply_env_level() {
  if (g_level_explicit.load()) {
    return;  // an explicit set_log_level always wins
  }
  if (const auto parsed = parse_level(std::getenv("GREENVIS_LOG_LEVEL"))) {
    g_level.store(*parsed);
  }
}

void ensure_env_applied() {
  std::call_once(g_env_once, apply_env_level);
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level_explicit.store(true);
  g_level.store(level);
}

LogLevel log_level() {
  ensure_env_applied();
  return g_level.load();
}

LogLevel refresh_log_level_from_env() {
  ensure_env_applied();  // keep the once_flag consumed
  apply_env_level();
  return g_level.load();
}

void set_log_json_sink(std::ostream* sink) {
  std::lock_guard lock(g_mutex);
  g_json_sink = sink;
}

void log_line(LogLevel level, std::string_view message) {
  ensure_env_applied();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
  if (g_json_sink != nullptr) {
    *g_json_sink << "{\"level\":\"" << level_name(level) << "\",\"message\":";
    obs::detail::write_json_string(*g_json_sink, message);
    *g_json_sink << "}\n";
  }
}

}  // namespace greenvis::util

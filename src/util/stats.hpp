// Streaming and batch statistics used by the analysis layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace greenvis::util {

/// Welford online accumulator: mean/variance/min/max in one pass without
/// storing samples. Power profiles can run to hours of 1 Hz samples; the
/// profiler keeps one of these per channel.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator (Chan parallel combination).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Batch helpers over a sample vector.
[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);
[[nodiscard]] double min_value(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the edge
/// bins. Used to summarize power-sample distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;
  /// Smallest x such that at least `fraction` of samples are <= x (bin upper
  /// edge granularity).
  [[nodiscard]] double quantile_upper_bound(double fraction) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace greenvis::util

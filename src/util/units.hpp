// Strong SI unit types used throughout greenvis.
//
// The power/energy bookkeeping in this library is the whole point of the
// reproduction, so quantities that the paper reports (seconds, watts, joules,
// bytes) are distinct types: adding watts to joules is a compile error, and
// the only way to turn power into energy is to multiply by a duration.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace greenvis::util {

/// A dimensioned scalar. `Tag` distinguishes units; all arithmetic that keeps
/// the dimension is provided here, cross-dimension products are free functions
/// below (watts * seconds = joules, etc.).
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_;
  }

 private:
  double value_{0.0};
};

struct SecondsTag {};
struct JoulesTag {};
struct WattsTag {};

using Seconds = Quantity<SecondsTag>;
using Joules = Quantity<JoulesTag>;
using Watts = Quantity<WattsTag>;

/// Energy = power * time.
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value() * t.value()}; }
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
/// Power = energy / time.
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value() / t.value()}; }
/// Time = energy / power.
constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.value() / p.value()}; }

[[nodiscard]] constexpr Seconds milliseconds(double ms) { return Seconds{ms * 1e-3}; }
[[nodiscard]] constexpr Seconds microseconds(double us) { return Seconds{us * 1e-6}; }
[[nodiscard]] constexpr Joules kilojoules(double kj) { return Joules{kj * 1e3}; }

/// Byte counts are integral; `Bytes` is a thin wrapper to keep sizes from
/// mixing with unrelated integers in interfaces.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(value_);
  }
  [[nodiscard]] constexpr double megabytes() const {
    return as_double() / (1024.0 * 1024.0);
  }

  constexpr Bytes& operator+=(Bytes o) {
    value_ += o.value_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.value_ + b.value_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.value_ - b.value_};
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t s) {
    return Bytes{a.value_ * s};
  }
  friend constexpr auto operator<=>(Bytes a, Bytes b) = default;
  friend std::ostream& operator<<(std::ostream& os, Bytes b) {
    return os << b.value_;
  }

 private:
  std::uint64_t value_{0};
};

[[nodiscard]] constexpr Bytes kibibytes(std::uint64_t k) { return Bytes{k * 1024ULL}; }
[[nodiscard]] constexpr Bytes mebibytes(std::uint64_t m) {
  return Bytes{m * 1024ULL * 1024ULL};
}
[[nodiscard]] constexpr Bytes gibibytes(std::uint64_t g) {
  return Bytes{g * 1024ULL * 1024ULL * 1024ULL};
}

/// Transfer rate in bytes/second (kept as double: rates are model parameters).
struct BytesPerSecondTag {};
using BytesPerSecond = Quantity<BytesPerSecondTag>;

/// Time to move `b` bytes at rate `r`.
constexpr Seconds transfer_time(Bytes b, BytesPerSecond r) {
  return Seconds{b.as_double() / r.value()};
}

[[nodiscard]] constexpr BytesPerSecond mebibytes_per_second(double m) {
  return BytesPerSecond{m * 1024.0 * 1024.0};
}

}  // namespace greenvis::util

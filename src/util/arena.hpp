// Bump-allocated scratch arena for per-timestep temporaries.
//
// The hot loop of both pipelines allocates the same transient buffers every
// timestep (codec staging, contour segments, iso levels). A ScratchArena
// turns that churn into pointer bumps: callers alloc<T>() during a step and
// reset() between steps. Memory is retained across resets, so after a
// one-step warm-up the arena reaches its high-water capacity and the hot
// loop performs zero heap allocations (asserted in tests/codec_test.cpp).
//
// Only trivially-copyable, trivially-destructible types may live in the
// arena — reset() rewinds the bump pointer without running destructors.
// An arena is single-threaded; give each pipeline/codec its own.
//
// Slabs of >= 2 MB are mmap'd and advised MADV_HUGEPAGE (Linux), cutting TLB
// pressure for the streaming codec/staging buffers that dominate arena use.
// The hint is best-effort: when transparent huge pages are unavailable the
// kernel simply keeps 4 KB pages, and on mmap failure (or non-Linux hosts)
// the slab falls back to plain heap allocation. GREENVIS_HUGEPAGES=0
// disables the mmap path entirely (read at arena construction).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "src/util/error.hpp"

namespace greenvis::util {

class ScratchArena {
 public:
  /// `initial_capacity` pre-sizes the first slab (0 defers to first use).
  explicit ScratchArena(std::size_t initial_capacity = 0);

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Rewind to empty, keeping memory. If the previous cycle overflowed into
  /// extra slabs, they are coalesced into one slab sized to the high-water
  /// mark, so a stable workload stops allocating after its first cycle.
  void reset();

  /// Uninitialized storage for `count` objects of T, aligned for T.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void* p = alloc_bytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Total bytes owned across slabs.
  [[nodiscard]] std::size_t capacity() const;
  /// Largest bytes_used() seen over any cycle (including the current one).
  [[nodiscard]] std::size_t high_water() const;
  /// Number of slabs (1 once the workload's footprint has stabilized).
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  /// Bytes currently backed by huge-page-advised mappings (0 when the mmap
  /// path is disabled or every slab is below the 2 MB threshold).
  [[nodiscard]] std::size_t huge_bytes() const;

 private:
  struct Slab {
    Slab() = default;
    Slab(Slab&& other) noexcept;
    Slab& operator=(Slab&& other) noexcept;
    Slab(const Slab&) = delete;
    Slab& operator=(const Slab&) = delete;
    ~Slab();

    std::byte* mem{nullptr};
    std::size_t size{0};
    bool huge{false};  // mem came from mmap (unmap, don't delete)
  };

  [[nodiscard]] void* alloc_bytes(std::size_t bytes, std::size_t align);
  void add_slab(std::size_t min_bytes);

  std::vector<Slab> slabs_;
  std::size_t slab_index_{0};  // slab currently bumped
  std::size_t offset_{0};      // bump offset within that slab
  std::size_t used_{0};        // bytes handed out this cycle (incl. padding)
  std::size_t high_water_{0};
  bool huge_enabled_{false};   // GREENVIS_HUGEPAGES (see header comment)
};

/// A push_back-able sequence living inside a ScratchArena. Growth allocates
/// a doubled span from the arena and memcpys — the abandoned prefix is
/// reclaimed wholesale at the next reset(), so the waste never accumulates.
/// Invalidated by ScratchArena::reset(); do not hold across cycles.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  explicit ArenaVec(ScratchArena& arena, std::size_t initial_capacity = 16)
      : arena_(&arena) {
    data_ = arena.alloc<T>(initial_capacity).data();
    capacity_ = initial_capacity;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      grow();
    }
    data_[size_++] = value;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::span<T> span() { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

 private:
  void grow() {
    const std::size_t next = capacity_ == 0 ? 16 : capacity_ * 2;
    T* fresh = arena_->alloc<T>(next).data();
    if (size_ > 0) {
      std::memcpy(static_cast<void*>(fresh), data_, size_ * sizeof(T));
    }
    data_ = fresh;
    capacity_ = next;
  }

  ScratchArena* arena_;
  T* data_{nullptr};
  std::size_t size_{0};
  std::size_t capacity_{0};
};

}  // namespace greenvis::util

// Dense row-major 3-D scalar field (x fastest, then y, then z).
//
// The paper's reference workloads (volume rendering studies [7][8][27][29])
// operate on 3-D data; the 3-D solver and the volume renderer exchange
// these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/field_storage.hpp"

namespace greenvis::util {

class ThreadPool;

class Field3D {
 public:
  Field3D() = default;
  Field3D(std::size_t nx, std::size_t ny, std::size_t nz, double fill = 0.0)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {
    GREENVIS_REQUIRE(nx > 0 && ny > 0 && nz > 0);
  }
  /// First-touch construction (see Field2D and numa.hpp).
  Field3D(std::size_t nx, std::size_t ny, std::size_t nz, double fill,
          ThreadPool* pool);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(k * ny_ + j) * nx_ + i];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(k * ny_ + j) * nx_ + i];
  }

  [[nodiscard]] std::span<double> values() {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const double> values() const {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double sum() const;

  [[nodiscard]] std::size_t serialized_bytes() const {
    return 24 + data_.size() * sizeof(double);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Field3D deserialize(std::span<const std::uint8_t> raw);

  friend bool operator==(const Field3D& a, const Field3D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.nz_ == b.nz_ &&
           a.data_ == b.data_;
  }

 private:
  std::size_t nx_{0};
  std::size_t ny_{0};
  std::size_t nz_{0};
  FieldStorage data_;
};

}  // namespace greenvis::util

// FNV-1a 64-bit checksum — used by the dataset layer to verify that what the
// post-processing pipeline reads back is bit-identical to what the
// simulation wrote.
#pragma once

#include <cstdint>
#include <span>

namespace greenvis::util {

[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::span<const std::uint8_t> data,
    std::uint64_t seed = 0xCBF29CE484222325ULL) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace greenvis::util

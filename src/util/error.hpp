// Assertion and contract macros (Core Guidelines I.6 / E.12 style).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace greenvis::util {

/// Thrown when a GREENVIS_REQUIRE/ENSURE contract is violated. Using an
/// exception rather than abort() keeps the simulators testable: gtest can
/// assert that invalid configurations are rejected.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& msg) : std::logic_error(msg) {}
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& detail) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!detail.empty()) {
    os << " — " << detail;
  }
  throw ContractViolation(os.str());
}

}  // namespace greenvis::util

/// Precondition check; always on (cost is negligible next to simulation work).
#define GREENVIS_REQUIRE(expr)                                                \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::greenvis::util::contract_fail("precondition", #expr, __FILE__,        \
                                      __LINE__, "");                          \
    }                                                                         \
  } while (false)

#define GREENVIS_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::greenvis::util::contract_fail("precondition", #expr, __FILE__,        \
                                      __LINE__, (msg));                       \
    }                                                                         \
  } while (false)

/// Postcondition / internal invariant check.
#define GREENVIS_ENSURE(expr)                                                 \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::greenvis::util::contract_fail("invariant", #expr, __FILE__, __LINE__, \
                                      "");                                    \
    }                                                                         \
  } while (false)

// A persistent-worker thread pool with chunked work-stealing dispatch.
//
// The heat solvers and the renderers split their grids across worker threads
// (the proxy app in the paper runs on all 16 cores of the node). The pool is
// created once per solver/pipeline and reused across timesteps, so thread
// creation cost never shows up in per-step work.
//
// Dispatch model: `parallel_for` publishes one stack-allocated descriptor
// per call (no per-task heap allocation, no task queue). Workers and the
// calling thread claim chunks of the index range from a shared atomic
// counter until the range is exhausted — dynamic chunking, so an uneven
// load (e.g. the volume ray marcher's early-terminated rows) self-balances.
// The pool mutex is touched only to park/wake threads between dispatches,
// never on the chunk-claim fast path.
//
// Determinism: `parallel_for` bodies write disjoint index ranges, so results
// are independent of how chunks land on threads. `parallel_reduce` uses a
// chunk plan that depends only on the range size (never on the pool size)
// and combines partials in chunk order, so even non-associative combines
// (floating-point sums) are byte-identical for any pool size, including 1.
//
// Observability: when `obs::enabled()`, every dispatch records a span on the
// caller, every worker records a per-thread drain span, and the registry
// accumulates dispatch/chunk counts plus per-worker busy and idle
// nanoseconds. All of it observes host wall-clock only — work placement and
// results are untouched — and when disabled the cost is one relaxed load
// per dispatch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"

namespace greenvis::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1). The pool spawns
  /// `threads - 1` workers; the thread calling `parallel_for` is the final
  /// executor, so `ThreadPool(1)` runs everything inline with zero
  /// synchronization.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of executing threads (workers + the caller).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run `body` over [begin, end), split into dynamically claimed chunks;
  /// returns when the whole range has completed. `body(lo, hi)` must not
  /// touch indices outside [lo, hi) of shared mutable state. If `body`
  /// throws, the remaining chunks are abandoned, the first exception is
  /// rethrown here, and the pool stays usable. Bodies must not dispatch on
  /// the same pool (no nested parallelism).
  ///
  /// `grain` is the minimum chunk size in indices: when per-index work is
  /// tiny (a few ns), a larger grain keeps the atomic claim and wake cost
  /// amortized. Ranges no longer than the grain run inline on the caller.
  /// Chunk placement never affects results (bodies own disjoint ranges), so
  /// grain is a pure tuning knob.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 1);

  /// True when workers are pinned round-robin across NUMA nodes (multi-node
  /// host, or forced via GREENVIS_NUMA=1).
  [[nodiscard]] bool numa_pinning() const { return numa_pinning_; }

  /// Parallel fold over [begin, end). `body(lo, hi, acc)` folds a subrange
  /// into `acc` (seeded with `init`) and returns it; `combine(a, b)` merges
  /// two partials. Partials are combined in ascending chunk order with a
  /// pool-size-independent chunk plan, so the result is byte-identical to a
  /// serial fold chunked the same way for any pool size.
  template <typename T, typename Body, typename Combine>
  [[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T init,
                                  Body body, Combine combine) {
    if (begin >= end) {
      return init;
    }
    const std::size_t total = end - begin;
    const std::size_t chunk = reduce_chunk(total);
    const std::size_t chunks = (total + chunk - 1) / chunk;
    if (obs::enabled()) {
      reduces_->add(1);
      reduce_chunks_->add(chunks);
    }
    if (chunks == 1) {
      return body(begin, end, init);
    }
    std::vector<T> partials(chunks, init);
    parallel_for(0, chunks, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        partials[c] = body(lo, hi, partials[c]);
      }
    });
    T result = std::move(partials[0]);
    for (std::size_t c = 1; c < chunks; ++c) {
      result = combine(std::move(result), std::move(partials[c]));
    }
    return result;
  }

 private:
  /// One in-flight parallel_for: the shared chunk counter plus completion
  /// bookkeeping. Lives on the dispatching thread's stack.
  struct Dispatch {
    std::size_t begin{0};
    std::size_t end{0};
    std::size_t chunk{1};
    const std::function<void(std::size_t, std::size_t)>* body{nullptr};
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    /// Non-null when this dispatch is observed: drain() adds the chunks it
    /// executed (one add per thread per dispatch, off the claim fast path).
    obs::Counter* chunks_claimed{nullptr};
  };

  /// Fixed fan-out of the reduce chunk plan (a function of the range only).
  [[nodiscard]] static std::size_t reduce_chunk(std::size_t total) {
    constexpr std::size_t kReduceChunks = 64;
    return total < kReduceChunks ? 1 : (total + kReduceChunks - 1) / kReduceChunks;
  }

  void worker_loop(std::size_t index);
  /// Claim and run chunks of `d` until the range is exhausted.
  static void drain(Dispatch& d);

  std::vector<std::thread> workers_;
  bool numa_pinning_{false};

  // Observability handles (resolved once; hot paths gate on obs::enabled()).
  obs::Counter* dispatches_{nullptr};
  obs::Counter* chunks_claimed_{nullptr};
  obs::Counter* reduces_{nullptr};
  obs::Counter* reduce_chunks_{nullptr};
  obs::Counter* worker_busy_ns_{nullptr};
  obs::Counter* worker_idle_ns_{nullptr};
  obs::Histogram* dispatch_us_{nullptr};

  std::mutex dispatch_mutex_;  // serializes concurrent parallel_for callers
  std::mutex mutex_;
  std::condition_variable wake_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for workers to detach
  std::uint64_t generation_{0};
  Dispatch* current_{nullptr};
  std::size_t attached_{0};  // workers currently referencing current_
  bool stopping_{false};
};

}  // namespace greenvis::util

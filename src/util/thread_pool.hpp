// A small fixed-size thread pool with a blocking parallel_for.
//
// The heat solver and the rasterizer split their grids across worker threads
// (the proxy app in the paper runs on all 16 cores of the node). The pool is
// created once per solver/pipeline and reused across timesteps so thread
// creation cost never shows up in per-step work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace greenvis::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Split [begin, end) into one contiguous range per worker and run `body`
  /// on each; returns when every range has completed. `body(lo, hi)` must not
  /// touch indices outside [lo, hi) of shared mutable state.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_{false};
};

}  // namespace greenvis::util

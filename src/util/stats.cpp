#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

double max_value(std::span<const double> xs) {
  GREENVIS_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double min_value(std::span<const double> xs) {
  GREENVIS_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  GREENVIS_REQUIRE(!xs.empty());
  GREENVIS_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  GREENVIS_REQUIRE(hi > lo);
  GREENVIS_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double idx = (x - lo_) / width;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  GREENVIS_REQUIRE(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  GREENVIS_REQUIRE(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::quantile_upper_bound(double fraction) const {
  GREENVIS_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
  GREENVIS_REQUIRE(total_ > 0);
  const auto target = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(total_)));
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) {
      return bin_high(i);
    }
  }
  return hi_;
}

}  // namespace greenvis::util

#include "src/util/table.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/csv.hpp"
#include "src/util/error.hpp"

namespace greenvis::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  GREENVIS_REQUIRE(!headers_.empty());
  aligns_.front() = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  GREENVIS_REQUIRE_MSG(cells.size() == headers_.size(),
                       "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  GREENVIS_REQUIRE(column < aligns_.size());
  aligns_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << "  ";
      }
      const std::size_t pad = widths[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) {
        os << std::string(pad, ' ') << cells[c];
      } else {
        os << cells[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string cell(double value, int decimals) {
  return format_fixed(value, decimals);
}

std::string cell_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace greenvis::util

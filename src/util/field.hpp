// Dense row-major 2-D scalar field — the common currency between the heat
// solver (which produces temperature fields) and the visualization pipeline
// (which consumes them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/field_storage.hpp"

namespace greenvis::util {

class ThreadPool;

class Field2D {
 public:
  Field2D() = default;
  Field2D(std::size_t nx, std::size_t ny, double fill = 0.0)
      : nx_(nx), ny_(ny), data_(nx * ny, fill) {
    GREENVIS_REQUIRE(nx > 0 && ny > 0);
  }
  /// First-touch construction: the fill is partitioned over `pool`'s
  /// workers so each page is committed on the node of the worker that will
  /// sweep it (see numa.hpp). Values are identical to the serial ctor.
  Field2D(std::size_t nx, std::size_t ny, double fill, ThreadPool* pool);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t i, std::size_t j) {
    return data_[j * nx_ + i];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return data_[j * nx_ + i];
  }

  [[nodiscard]] std::span<double> values() {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const double> values() const {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double sum() const;

  /// Size of the serialized form (16-byte dims header + doubles).
  [[nodiscard]] std::size_t serialized_bytes() const {
    return 16 + data_.size() * sizeof(double);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Field2D deserialize(std::span<const std::uint8_t> raw);

  friend bool operator==(const Field2D& a, const Field2D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
  }

 private:
  std::size_t nx_{0};
  std::size_t ny_{0};
  FieldStorage data_;
};

}  // namespace greenvis::util

#include "src/util/thread_pool.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::drain(Dispatch& d) {
  const std::size_t total = d.end - d.begin;
  for (;;) {
    const std::size_t claimed =
        d.next.fetch_add(d.chunk, std::memory_order_relaxed);
    if (claimed >= total) {
      return;
    }
    const std::size_t lo = d.begin + claimed;
    const std::size_t hi = d.begin + std::min(total, claimed + d.chunk);
    try {
      (*d.body)(lo, hi);
    } catch (...) {
      {
        std::lock_guard lock(d.error_mutex);
        if (!d.error) {
          d.error = std::current_exception();
        }
      }
      // Abandon the remaining chunks so every thread exits promptly; the
      // caller rethrows once the dispatch has quiesced.
      d.next.store(total, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) {
      return;
    }
    seen = generation_;
    Dispatch* d = current_;
    if (d == nullptr) {
      continue;  // the dispatch finished before this worker woke
    }
    ++attached_;
    lock.unlock();
    drain(*d);
    lock.lock();
    if (--attached_ == 0) {
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  GREENVIS_REQUIRE(begin <= end);
  if (begin == end) {
    return;
  }
  const std::size_t total = end - begin;
  if (workers_.empty() || total == 1) {
    body(begin, end);
    return;
  }

  // One dispatch at a time: concurrent external callers serialize here
  // (uncontended in the one-pipeline-per-pool pattern the codebase uses).
  std::lock_guard dispatch_guard(dispatch_mutex_);

  // Over-partition ~4x per executor so a slow chunk (NUMA miss, early-
  // terminated rays next to dense ones) is balanced by the others.
  Dispatch d;
  d.begin = begin;
  d.end = end;
  d.chunk = std::max<std::size_t>(1, total / (size() * 4));
  d.body = &body;

  {
    std::lock_guard lock(mutex_);
    current_ = &d;
    ++generation_;
  }
  wake_cv_.notify_all();

  drain(d);

  // The range is exhausted; wait until no worker still references `d`
  // (workers that never woke will see current_ == nullptr and skip it).
  {
    std::unique_lock lock(mutex_);
    current_ = nullptr;
    done_cv_.wait(lock, [&] { return attached_ == 0; });
  }
  if (d.error) {
    std::rethrow_exception(d.error);
  }
}

}  // namespace greenvis::util

#include "src/util/thread_pool.hpp"

#include <algorithm>

#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"
#include "src/util/numa.hpp"

namespace greenvis::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  auto& registry = obs::Registry::global();
  dispatches_ = &registry.counter("pool.dispatches");
  chunks_claimed_ = &registry.counter("pool.chunks_claimed");
  reduces_ = &registry.counter("pool.reduces");
  reduce_chunks_ = &registry.counter("pool.reduce_chunks");
  worker_busy_ns_ = &registry.counter("pool.worker_busy_ns");
  worker_idle_ns_ = &registry.counter("pool.worker_idle_ns");
  dispatch_us_ =
      &registry.histogram("pool.dispatch_us", obs::duration_us_bounds());
  numa_pinning_ = threads > 1 && numa::pinning_enabled();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::drain(Dispatch& d) {
  const std::size_t total = d.end - d.begin;
  std::size_t executed = 0;
  for (;;) {
    const std::size_t claimed =
        d.next.fetch_add(d.chunk, std::memory_order_relaxed);
    if (claimed >= total) {
      if (d.chunks_claimed != nullptr && executed > 0) {
        d.chunks_claimed->add(executed);
      }
      return;
    }
    ++executed;
    const std::size_t lo = d.begin + claimed;
    const std::size_t hi = d.begin + std::min(total, claimed + d.chunk);
    try {
      (*d.body)(lo, hi);
    } catch (...) {
      {
        std::lock_guard lock(d.error_mutex);
        if (!d.error) {
          d.error = std::current_exception();
        }
      }
      // Abandon the remaining chunks so every thread exits promptly; the
      // caller rethrows once the dispatch has quiesced.
      d.next.store(total, std::memory_order_relaxed);
      if (d.chunks_claimed != nullptr && executed > 0) {
        d.chunks_claimed->add(executed);
      }
      return;
    }
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  obs::Tracer::global().set_thread_name("pool-worker");
  if (numa_pinning_) {
    // Round-robin workers over nodes; first-touch fills then place each
    // range's pages on the node whose worker sweeps it. Failure is benign.
    (void)numa::pin_to_node(index % numa::topology().node_count());
  }
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    // Idle time is only metered while observability is on, so toggling it
    // mid-run undercounts at most one park interval.
    const bool meter_idle = obs::enabled();
    const std::uint64_t idle_t0 =
        meter_idle ? obs::Tracer::global().now_ns() : 0;
    wake_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (meter_idle) {
      worker_idle_ns_->add(obs::Tracer::global().now_ns() - idle_t0);
    }
    if (stopping_) {
      return;
    }
    seen = generation_;
    Dispatch* d = current_;
    if (d == nullptr) {
      continue;  // the dispatch finished before this worker woke
    }
    ++attached_;
    lock.unlock();
    if (obs::enabled()) {
      const std::uint64_t busy_t0 = obs::Tracer::global().now_ns();
      drain(*d);
      const std::uint64_t busy_t1 = obs::Tracer::global().now_ns();
      worker_busy_ns_->add(busy_t1 - busy_t0);
      obs::Tracer::global().record("pool.drain", obs::kCatPool, busy_t0,
                                   busy_t1);
    } else {
      drain(*d);
    }
    lock.lock();
    if (--attached_ == 0) {
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  GREENVIS_REQUIRE(begin <= end);
  if (begin == end) {
    return;
  }
  const bool observed = obs::enabled();
  obs::ScopedSpan span("pool.dispatch", obs::kCatPool,
                       observed ? dispatch_us_ : nullptr);
  if (observed) {
    dispatches_->add(1);
  }
  const std::size_t total = end - begin;
  if (workers_.empty() || total <= std::max<std::size_t>(grain, 1)) {
    if (observed) {
      chunks_claimed_->add(1);
    }
    body(begin, end);
    return;
  }

  // One dispatch at a time: concurrent external callers serialize here
  // (uncontended in the one-pipeline-per-pool pattern the codebase uses).
  std::lock_guard dispatch_guard(dispatch_mutex_);

  // Over-partition ~4x per executor so a slow chunk (NUMA miss, early-
  // terminated rays next to dense ones) is balanced by the others.
  Dispatch d;
  d.begin = begin;
  d.end = end;
  d.chunk = std::max({std::size_t{1}, grain, total / (size() * 4)});
  d.body = &body;
  d.chunks_claimed = observed ? chunks_claimed_ : nullptr;

  {
    std::lock_guard lock(mutex_);
    current_ = &d;
    ++generation_;
  }
  wake_cv_.notify_all();

  drain(d);

  // The range is exhausted; wait until no worker still references `d`
  // (workers that never woke will see current_ == nullptr and skip it).
  {
    std::unique_lock lock(mutex_);
    current_ = nullptr;
    done_cv_.wait(lock, [&] { return attached_ == 0; });
  }
  if (d.error) {
    std::rethrow_exception(d.error);
  }
}

}  // namespace greenvis::util

#include "src/util/thread_pool.hpp"

#include <atomic>

#include "src/util/error.hpp"

namespace greenvis::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    GREENVIS_REQUIRE_MSG(!stopping_, "submit after shutdown");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  GREENVIS_REQUIRE(begin <= end);
  if (begin == end) {
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, workers_.size());
  if (chunks <= 1) {
    body(begin, end);
    return;
  }

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;
  std::size_t lo = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t hi = lo + len;
    submit([&, lo, hi] {
      body(lo, hi);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
    lo = hi;
  }
  GREENVIS_ENSURE(lo == end);

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock,
               [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

}  // namespace greenvis::util

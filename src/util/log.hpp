// Minimal leveled logger.
//
// Experiments are long batch runs; the logger gives the bench/example binaries
// a uniform way to narrate progress without pulling in a dependency. Output is
// line-buffered to stderr so it interleaves sanely with table output on
// stdout.
#pragma once

#include <sstream>
#include <string_view>

namespace greenvis::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Default: kInfo.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line: "[LEVEL] message".
void log_line(LogLevel level, std::string_view message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogStream log_debug() {
  return detail::LogStream{LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogStream log_info() {
  return detail::LogStream{LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogStream log_warn() {
  return detail::LogStream{LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogStream log_error() {
  return detail::LogStream{LogLevel::kError};
}

}  // namespace greenvis::util

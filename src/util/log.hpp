// Minimal leveled logger.
//
// Experiments are long batch runs; the logger gives the bench/example binaries
// a uniform way to narrate progress without pulling in a dependency. Output is
// line-buffered to stderr so it interleaves sanely with table output on
// stdout. `log_line` is thread-safe: concurrent callers never interleave
// within a line.
//
// The threshold can be set from the environment: GREENVIS_LOG_LEVEL accepts
// a level name (debug|info|warn|error, case-insensitive) or its numeric
// value (0-3). The variable is read once, on the first log call; an explicit
// `set_log_level` always wins over the environment.
#pragma once

#include <ostream>
#include <sstream>
#include <string_view>

namespace greenvis::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Default: kInfo, or
/// GREENVIS_LOG_LEVEL when set. An explicit call overrides the environment.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Re-read GREENVIS_LOG_LEVEL and apply it unless `set_log_level` was called
/// explicitly. Returns the resulting threshold. Mainly for tests; normal
/// code never needs it (the environment is applied lazily on first use).
LogLevel refresh_log_level_from_env();

/// Emit one line: "[LEVEL] message".
void log_line(LogLevel level, std::string_view message);

/// Mirror every emitted line to `sink` as a JSON object per line:
///   {"level":"INFO","message":"..."}
/// Pass nullptr to detach. The sink must outlive its registration; writes
/// happen under the logger mutex, so the stream needs no locking of its own.
void set_log_json_sink(std::ostream* sink);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogStream log_debug() {
  return detail::LogStream{LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogStream log_info() {
  return detail::LogStream{LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogStream log_warn() {
  return detail::LogStream{LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogStream log_error() {
  return detail::LogStream{LogLevel::kError};
}

}  // namespace greenvis::util

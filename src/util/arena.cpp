#include "src/util/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace greenvis::util {

namespace {
constexpr std::size_t kMinSlabBytes = 4096;
}  // namespace

ScratchArena::ScratchArena(std::size_t initial_capacity) {
  if (initial_capacity > 0) {
    add_slab(initial_capacity);
  }
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Slab& slab : slabs_) {
    total += slab.size;
  }
  return total;
}

std::size_t ScratchArena::high_water() const {
  return std::max(high_water_, used_);
}

void ScratchArena::reset() {
  high_water_ = std::max(high_water_, used_);
  if (slabs_.size() > 1) {
    // Coalesce: one slab covering the worst cycle seen, so the next cycle
    // of the same workload bumps through a single contiguous block.
    slabs_.clear();
    add_slab(high_water_);
  }
  slab_index_ = 0;
  offset_ = 0;
  used_ = 0;
}

void ScratchArena::add_slab(std::size_t min_bytes) {
  Slab slab;
  slab.size = std::max({min_bytes, kMinSlabBytes, capacity()});
  slab.mem = std::make_unique<std::byte[]>(slab.size);
  slabs_.push_back(std::move(slab));
}

void* ScratchArena::alloc_bytes(std::size_t bytes, std::size_t align) {
  GREENVIS_REQUIRE(align > 0 && (align & (align - 1)) == 0);
  if (slabs_.empty()) {
    add_slab(bytes);
  }
  for (;;) {
    Slab& slab = slabs_[slab_index_];
    const auto base = reinterpret_cast<std::uintptr_t>(slab.mem.get());
    const std::size_t aligned =
        ((base + offset_ + align - 1) & ~(std::uintptr_t{align} - 1)) - base;
    if (aligned + bytes <= slab.size) {
      used_ += (aligned - offset_) + bytes;
      offset_ = aligned + bytes;
      return slab.mem.get() + aligned;
    }
    // Current slab exhausted: move to the next, creating one when needed
    // (doubling policy via add_slab's max-with-capacity).
    used_ += slab.size - offset_;
    if (++slab_index_ == slabs_.size()) {
      add_slab(bytes + align);
    }
    offset_ = 0;
  }
}

}  // namespace greenvis::util

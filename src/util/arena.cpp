#include "src/util/arena.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace greenvis::util {

namespace {

constexpr std::size_t kMinSlabBytes = 4096;
constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

bool hugepages_wanted() {
  const char* env = std::getenv("GREENVIS_HUGEPAGES");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    return false;
  }
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

/// mmap an anonymous MADV_HUGEPAGE region of `bytes` (rounded up to the
/// 2 MB huge-page granule). Returns nullptr on any failure — the caller
/// falls back to the heap.
std::byte* map_huge(std::size_t bytes) {
#if defined(__linux__)
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return nullptr;
  }
  // Best-effort: THP disabled or defragmentation declined just leaves the
  // mapping on base pages, which is still correct.
  (void)::madvise(p, bytes, MADV_HUGEPAGE);
  return static_cast<std::byte*>(p);
#else
  (void)bytes;
  return nullptr;
#endif
}

}  // namespace

ScratchArena::Slab::Slab(Slab&& other) noexcept
    : mem(std::exchange(other.mem, nullptr)),
      size(std::exchange(other.size, 0)),
      huge(std::exchange(other.huge, false)) {}

ScratchArena::Slab& ScratchArena::Slab::operator=(Slab&& other) noexcept {
  if (this != &other) {
    Slab doomed(std::move(other));
    std::swap(mem, doomed.mem);
    std::swap(size, doomed.size);
    std::swap(huge, doomed.huge);
  }  // doomed's dtor releases the replaced mapping/allocation
  return *this;
}

ScratchArena::Slab::~Slab() {
  if (mem == nullptr) {
    return;
  }
#if defined(__linux__)
  if (huge) {
    (void)::munmap(mem, size);
    mem = nullptr;
    return;
  }
#endif
  ::operator delete[](mem);
  mem = nullptr;
}

ScratchArena::ScratchArena(std::size_t initial_capacity)
    : huge_enabled_(hugepages_wanted()) {
  if (initial_capacity > 0) {
    add_slab(initial_capacity);
  }
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Slab& slab : slabs_) {
    total += slab.size;
  }
  return total;
}

std::size_t ScratchArena::huge_bytes() const {
  std::size_t total = 0;
  for (const Slab& slab : slabs_) {
    if (slab.huge) {
      total += slab.size;
    }
  }
  return total;
}

std::size_t ScratchArena::high_water() const {
  return std::max(high_water_, used_);
}

void ScratchArena::reset() {
  high_water_ = std::max(high_water_, used_);
  if (slabs_.size() > 1) {
    // Coalesce: one slab covering the worst cycle seen, so the next cycle
    // of the same workload bumps through a single contiguous block.
    slabs_.clear();
    add_slab(high_water_);
  }
  slab_index_ = 0;
  offset_ = 0;
  used_ = 0;
}

void ScratchArena::add_slab(std::size_t min_bytes) {
  Slab slab;
  slab.size = std::max({min_bytes, kMinSlabBytes, capacity()});
  if (huge_enabled_ && slab.size >= kHugePageBytes) {
    const std::size_t rounded =
        (slab.size + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    if (std::byte* mapped = map_huge(rounded)) {
      slab.mem = mapped;
      slab.size = rounded;
      slab.huge = true;
      slabs_.push_back(std::move(slab));
      return;
    }
  }
  slab.mem = static_cast<std::byte*>(::operator new[](slab.size));
  slabs_.push_back(std::move(slab));
}

void* ScratchArena::alloc_bytes(std::size_t bytes, std::size_t align) {
  GREENVIS_REQUIRE(align > 0 && (align & (align - 1)) == 0);
  if (slabs_.empty()) {
    add_slab(bytes);
  }
  for (;;) {
    Slab& slab = slabs_[slab_index_];
    const auto base = reinterpret_cast<std::uintptr_t>(slab.mem);
    const std::size_t aligned =
        ((base + offset_ + align - 1) & ~(std::uintptr_t{align} - 1)) - base;
    if (aligned + bytes <= slab.size) {
      used_ += (aligned - offset_) + bytes;
      offset_ = aligned + bytes;
      return slab.mem + aligned;
    }
    // Current slab exhausted: move to the next, creating one when needed
    // (doubling policy via add_slab's max-with-capacity).
    used_ += slab.size - offset_;
    if (++slab_index_ == slabs_.size()) {
      add_slab(bytes + align);
    }
    offset_ = 0;
  }
}

}  // namespace greenvis::util

// Small dense linear algebra: just enough for least-squares fits of the
// power models (normal equations on a handful of unknowns).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace greenvis::util {

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting. A is n-by-n.
/// Throws ContractViolation on a (numerically) singular system.
[[nodiscard]] std::vector<double> solve_linear_system(Matrix a,
                                                      std::vector<double> b);

/// Ordinary least squares: minimize ||X beta - y||_2 over beta, where each
/// row of `features` is one observation. Solved via the normal equations
/// (fine for the well-conditioned handful-of-parameters fits we do). A tiny
/// ridge term stabilizes collinear columns (e.g., a phase that never
/// occurred in the training window).
[[nodiscard]] std::vector<double> least_squares(
    const std::vector<std::vector<double>>& features,
    std::span<const double> targets, double ridge = 1e-9);

}  // namespace greenvis::util

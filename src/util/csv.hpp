// Minimal CSV writer for exporting power traces and experiment results.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace greenvis::util {

/// Streams rows to an std::ostream, quoting fields only when required.
/// The writer owns no buffer: benches hand it a std::ofstream or
/// std::ostringstream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a header or data row from strings.
  void row(std::initializer_list<std::string_view> fields);
  void row(const std::vector<std::string>& fields);

  /// Incremental interface: field()...end_row().
  void field(std::string_view text);
  void field(double value);
  void field(long long value);
  void end_row();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// RFC-4180 quoting: wrap in quotes when the field contains a comma, quote,
  /// or newline; double embedded quotes.
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  void write_separator();
  std::ostream* out_;
  bool at_row_start_{true};
  std::size_t rows_{0};
};

/// Format a double with fixed precision — CSV exports of power samples use a
/// stable textual form so traces diff cleanly between runs.
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace greenvis::util

// Scalar reference kernels — the arithmetic contract every ISA path must
// match bit-for-bit. Compiled with -ffp-contract=off (see CMakeLists) so no
// FMA contraction can sneak in on targets where FMA is baseline.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/kernels_impl.hpp"

namespace greenvis::util::simd {
namespace {

void jacobi2d_row_scalar(double* out, const double* rhs, const double* row,
                         const double* row_s, const double* row_n, double tr,
                         double inv_diag, std::size_t ib, std::size_t ie) {
  for (std::size_t i = ib; i < ie; ++i) {
    out[i] = detail::jacobi2d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], tr, inv_diag);
  }
}

void jacobi3d_row_scalar(double* out, const double* rhs, const double* row,
                         const double* row_s, const double* row_n,
                         const double* row_d, const double* row_u, double r,
                         double inv_diag, std::size_t ib, std::size_t ie) {
  for (std::size_t i = ib; i < ie; ++i) {
    out[i] = detail::jacobi3d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], row_d[i], row_u[i], r, inv_diag);
  }
}

double defect2d_row_scalar(const double* rhs, const double* row,
                           const double* row_s, const double* row_n,
                           double tr, std::size_t ib, std::size_t ie,
                           double acc) {
  for (std::size_t i = ib; i < ie; ++i) {
    const double defect = detail::defect2d_cell(
        rhs[i], row[i], row[i - 1], row[i + 1], row_s[i], row_n[i], tr);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

double defect3d_row_scalar(const double* rhs, const double* row,
                           const double* row_s, const double* row_n,
                           const double* row_d, const double* row_u, double r,
                           std::size_t ib, std::size_t ie, double acc) {
  for (std::size_t i = ib; i < ie; ++i) {
    const double defect =
        detail::defect3d_cell(rhs[i], row[i], row[i - 1], row[i + 1],
                              row_s[i], row_n[i], row_d[i], row_u[i], r);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

ScanResult scan_abs_finite_scalar(const double* v, std::size_t n) {
  ScanResult r;
  for (std::size_t i = 0; i < n; ++i) {
    r.max_abs = std::max(r.max_abs, std::fabs(v[i]));
    r.finite = r.finite && (v[i] - v[i] == 0.0);
  }
  return r;
}

void quantize_scalar(const double* v, std::int64_t* q, double inv,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = detail::quantize_one(v[i], inv);
  }
}

std::uint64_t delta_zigzag_scalar(const std::int64_t* q, std::uint64_t* zz,
                                  std::size_t n) {
  std::uint64_t all = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t z = detail::zigzag(q[i] - q[i - 1]);
    zz[i] = z;
    all |= z;
  }
  return all;
}

std::size_t pack_deltas_scalar(const std::uint64_t* zz, std::uint8_t bits,
                               std::uint64_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  unsigned used = 0;
  std::size_t w = 0;
  auto insert = [&](std::uint64_t chunk, unsigned width) {
    acc |= chunk << used;
    used += width;
    if (used >= 64) {
      words[w++] = acc;
      used -= 64;
      acc = used == 0 ? 0 : chunk >> (width - used);
    }
  };
  std::size_t i = 1;
  // The stream is LSB-first, so packing consecutive values is associative:
  // pre-ORing a group into one chunk and inserting it at the combined width
  // emits exactly the same bits, but pays the accumulator/spill bookkeeping
  // once per group instead of once per value.
  if (bits <= 16) {
    const unsigned b = bits;
    for (; i + 4 <= n; i += 4) {
      insert(zz[i] | (zz[i + 1] << b) | (zz[i + 2] << (2 * b)) |
                 (zz[i + 3] << (3 * b)),
             4 * b);
    }
  } else if (bits <= 32) {
    const unsigned b = bits;
    for (; i + 2 <= n; i += 2) {
      insert(zz[i] | (zz[i + 1] << b), 2 * b);
    }
  }
  for (; i < n; ++i) {
    insert(zz[i], bits);
  }
  if (used > 0) {
    words[w++] = acc;
  }
  return w;
}

void unpack_deltas_scalar(const std::uint8_t* packed, std::size_t nwords,
                          std::uint8_t bits, std::int64_t* deltas,
                          std::size_t n) {
  (void)nwords;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::size_t bitpos = 0;
  for (std::size_t i = 1; i < n; ++i) {
    deltas[i] = detail::unpack_one(packed, bitpos, bits, mask);
    bitpos += bits;
  }
}

void trilinear_block_scalar(const double* field, std::size_t nx,
                            std::size_t ny, std::size_t nz, const double* xs,
                            const double* ys, const double* zs, double* out,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::trilinear_one(field, nx, ny, nz, xs[i], ys[i], zs[i]);
  }
}

bool composite_block_scalar(const double* vs, std::size_t n,
                            const CompositeTf* tf, double step, double early,
                            double* acc) {
  for (std::size_t s = 0; s < n; ++s) {
    if (detail::composite_one(detail::composite_intensity(vs[s], *tf), *tf,
                              step, early, acc)) {
      return true;
    }
  }
  return false;
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable t{
      IsaPath::kScalar,     jacobi2d_row_scalar,   jacobi3d_row_scalar,
      defect2d_row_scalar,  defect3d_row_scalar,   scan_abs_finite_scalar,
      quantize_scalar,      delta_zigzag_scalar,   pack_deltas_scalar,
      unpack_deltas_scalar, trilinear_block_scalar,
      composite_block_scalar};
  return t;
}

}  // namespace greenvis::util::simd

// NEON kernels (2-wide doubles, aarch64). NEON is baseline on aarch64 so no
// extra -m flags; -ffp-contract=off matters here because GCC contracts
// mul+add into fused ops by default on this target.
//
// Only the stencil kernels are vectorized: aarch64 integer NEON lacks the
// 64-bit variable shifts and gathers the codec loops lean on, and the
// stencils dominate the paper's workloads. The rest inherit scalar pointers.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/kernels_impl.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>

namespace greenvis::util::simd {
namespace {

void jacobi2d_row_neon(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n, double tr,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const float64x2_t vtr = vdupq_n_f64(tr);
  const float64x2_t vinv = vdupq_n_f64(inv_diag);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float64x2_t w = vld1q_f64(row + i - 1);
    const float64x2_t e = vld1q_f64(row + i + 1);
    const float64x2_t s = vld1q_f64(row_s + i);
    const float64x2_t n = vld1q_f64(row_n + i);
    const float64x2_t sum = vaddq_f64(vaddq_f64(vaddq_f64(w, e), s), n);
    const float64x2_t r = vaddq_f64(vld1q_f64(rhs + i), vmulq_f64(vtr, sum));
    vst1q_f64(out + i, vmulq_f64(r, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi2d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], tr, inv_diag);
  }
}

void jacobi3d_row_neon(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n,
                       const double* row_d, const double* row_u, double r,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const float64x2_t vr = vdupq_n_f64(r);
  const float64x2_t vinv = vdupq_n_f64(inv_diag);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    float64x2_t sum = vaddq_f64(vld1q_f64(row + i - 1), vld1q_f64(row + i + 1));
    sum = vaddq_f64(sum, vld1q_f64(row_s + i));
    sum = vaddq_f64(sum, vld1q_f64(row_n + i));
    sum = vaddq_f64(sum, vld1q_f64(row_d + i));
    sum = vaddq_f64(sum, vld1q_f64(row_u + i));
    const float64x2_t acc =
        vaddq_f64(vld1q_f64(rhs + i), vmulq_f64(vr, sum));
    vst1q_f64(out + i, vmulq_f64(acc, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi3d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], row_d[i], row_u[i], r, inv_diag);
  }
}

double defect2d_row_neon(const double* rhs, const double* row,
                         const double* row_s, const double* row_n, double tr,
                         std::size_t ib, std::size_t ie, double acc) {
  const float64x2_t vtr = vdupq_n_f64(tr);
  const float64x2_t vdiag = vdupq_n_f64(1.0 + 4.0 * tr);
  float64x2_t vmax = vdupq_n_f64(0.0);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float64x2_t c = vld1q_f64(row + i);
    const float64x2_t sum = vaddq_f64(
        vaddq_f64(vaddq_f64(vld1q_f64(row + i - 1), vld1q_f64(row + i + 1)),
                  vld1q_f64(row_s + i)),
        vld1q_f64(row_n + i));
    const float64x2_t defect = vsubq_f64(
        vsubq_f64(vmulq_f64(vdiag, c), vmulq_f64(vtr, sum)),
        vld1q_f64(rhs + i));
    // std::max(acc, cand) ignores NaN candidates; vmaxq would propagate
    // them, so select explicitly: cand > acc ? cand : acc.
    const float64x2_t cand = vabsq_f64(defect);
    vmax = vbslq_f64(vcgtq_f64(cand, vmax), cand, vmax);
  }
  acc = std::max(acc, vgetq_lane_f64(vmax, 0));
  acc = std::max(acc, vgetq_lane_f64(vmax, 1));
  for (; i < ie; ++i) {
    const double defect = detail::defect2d_cell(
        rhs[i], row[i], row[i - 1], row[i + 1], row_s[i], row_n[i], tr);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

double defect3d_row_neon(const double* rhs, const double* row,
                         const double* row_s, const double* row_n,
                         const double* row_d, const double* row_u, double r,
                         std::size_t ib, std::size_t ie, double acc) {
  const float64x2_t vr = vdupq_n_f64(r);
  const float64x2_t vdiag = vdupq_n_f64(1.0 + 6.0 * r);
  float64x2_t vmax = vdupq_n_f64(0.0);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float64x2_t c = vld1q_f64(row + i);
    float64x2_t sum =
        vaddq_f64(vld1q_f64(row + i - 1), vld1q_f64(row + i + 1));
    sum = vaddq_f64(sum, vld1q_f64(row_s + i));
    sum = vaddq_f64(sum, vld1q_f64(row_n + i));
    sum = vaddq_f64(sum, vld1q_f64(row_d + i));
    sum = vaddq_f64(sum, vld1q_f64(row_u + i));
    const float64x2_t defect = vsubq_f64(
        vsubq_f64(vmulq_f64(vdiag, c), vmulq_f64(vr, sum)),
        vld1q_f64(rhs + i));
    const float64x2_t cand = vabsq_f64(defect);
    vmax = vbslq_f64(vcgtq_f64(cand, vmax), cand, vmax);
  }
  acc = std::max(acc, vgetq_lane_f64(vmax, 0));
  acc = std::max(acc, vgetq_lane_f64(vmax, 1));
  for (; i < ie; ++i) {
    const double defect =
        detail::defect3d_cell(rhs[i], row[i], row[i - 1], row[i + 1],
                              row_s[i], row_n[i], row_d[i], row_u[i], r);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

bool composite_block_neon(const double* vs, std::size_t n,
                          const CompositeTf* tf, double step, double early,
                          double* acc) {
  // Same structure as the SSE2 row: vector lanes carry the clamped
  // intensities and skip whole transparent (all v <= lo) blocks; the alpha
  // chain stays sequential through the shared reference op. NaN lanes take
  // the reference op (vcle/vceq are false on NaN; vmin/vmax would disagree
  // with the branch clamp there).
  std::size_t s = 0;
  if (tf->hi > tf->lo) {
    const bool zero_transparent =
        detail::composite_zero_opacity(*tf, step) <= 0.0;
    const float64x2_t vlo = vdupq_n_f64(tf->lo);
    const float64x2_t vrange = vdupq_n_f64(tf->hi - tf->lo);
    const float64x2_t vone = vdupq_n_f64(1.0);
    const float64x2_t vzero = vdupq_n_f64(0.0);
    const auto both = [](uint64x2_t m) {
      return vgetq_lane_u64(m, 0) != 0 && vgetq_lane_u64(m, 1) != 0;
    };
    double ts[2];
    for (; s + 2 <= n; s += 2) {
      const float64x2_t v = vld1q_f64(vs + s);
      if (zero_transparent && both(vcleq_f64(v, vlo))) {
        continue;
      }
      if (!both(vceqq_f64(v, v))) {
        for (std::size_t k = s; k < s + 2; ++k) {
          if (detail::composite_one(detail::composite_intensity(vs[k], *tf),
                                    *tf, step, early, acc)) {
            return true;
          }
        }
        continue;
      }
      const float64x2_t raw = vdivq_f64(vsubq_f64(v, vlo), vrange);
      vst1q_f64(ts, vmaxq_f64(vminq_f64(raw, vone), vzero));
      for (double t : ts) {
        if (detail::composite_one(t, *tf, step, early, acc)) {
          return true;
        }
      }
    }
  }
  for (; s < n; ++s) {
    if (detail::composite_one(detail::composite_intensity(vs[s], *tf), *tf,
                              step, early, acc)) {
      return true;
    }
  }
  return false;
}

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable t = [] {
    KernelTable k = scalar_table();
    k.path = IsaPath::kNeon;
    k.jacobi2d_row = &jacobi2d_row_neon;
    k.jacobi3d_row = &jacobi3d_row_neon;
    k.defect2d_row = &defect2d_row_neon;
    k.defect3d_row = &defect3d_row_neon;
    k.composite_block = &composite_block_neon;
    return k;
  }();
  return &t;
}

}  // namespace greenvis::util::simd

#else  // !__aarch64__

namespace greenvis::util::simd {
const KernelTable* neon_table() { return nullptr; }
}  // namespace greenvis::util::simd

#endif

// NEON kernels (2-wide doubles, aarch64). NEON is baseline on aarch64 so no
// extra -m flags; -ffp-contract=off matters here because GCC contracts
// mul+add into fused ops by default on this target.
//
// Only the stencil kernels are vectorized: aarch64 integer NEON lacks the
// 64-bit variable shifts and gathers the codec loops lean on, and the
// stencils dominate the paper's workloads. The rest inherit scalar pointers.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/kernels_impl.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>

namespace greenvis::util::simd {
namespace {

void jacobi2d_row_neon(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n, double tr,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const float64x2_t vtr = vdupq_n_f64(tr);
  const float64x2_t vinv = vdupq_n_f64(inv_diag);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float64x2_t w = vld1q_f64(row + i - 1);
    const float64x2_t e = vld1q_f64(row + i + 1);
    const float64x2_t s = vld1q_f64(row_s + i);
    const float64x2_t n = vld1q_f64(row_n + i);
    const float64x2_t sum = vaddq_f64(vaddq_f64(vaddq_f64(w, e), s), n);
    const float64x2_t r = vaddq_f64(vld1q_f64(rhs + i), vmulq_f64(vtr, sum));
    vst1q_f64(out + i, vmulq_f64(r, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi2d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], tr, inv_diag);
  }
}

void jacobi3d_row_neon(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n,
                       const double* row_d, const double* row_u, double r,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const float64x2_t vr = vdupq_n_f64(r);
  const float64x2_t vinv = vdupq_n_f64(inv_diag);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    float64x2_t sum = vaddq_f64(vld1q_f64(row + i - 1), vld1q_f64(row + i + 1));
    sum = vaddq_f64(sum, vld1q_f64(row_s + i));
    sum = vaddq_f64(sum, vld1q_f64(row_n + i));
    sum = vaddq_f64(sum, vld1q_f64(row_d + i));
    sum = vaddq_f64(sum, vld1q_f64(row_u + i));
    const float64x2_t acc =
        vaddq_f64(vld1q_f64(rhs + i), vmulq_f64(vr, sum));
    vst1q_f64(out + i, vmulq_f64(acc, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi3d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], row_d[i], row_u[i], r, inv_diag);
  }
}

double defect2d_row_neon(const double* rhs, const double* row,
                         const double* row_s, const double* row_n, double tr,
                         std::size_t ib, std::size_t ie, double acc) {
  const float64x2_t vtr = vdupq_n_f64(tr);
  const float64x2_t vdiag = vdupq_n_f64(1.0 + 4.0 * tr);
  float64x2_t vmax = vdupq_n_f64(0.0);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float64x2_t c = vld1q_f64(row + i);
    const float64x2_t sum = vaddq_f64(
        vaddq_f64(vaddq_f64(vld1q_f64(row + i - 1), vld1q_f64(row + i + 1)),
                  vld1q_f64(row_s + i)),
        vld1q_f64(row_n + i));
    const float64x2_t defect = vsubq_f64(
        vsubq_f64(vmulq_f64(vdiag, c), vmulq_f64(vtr, sum)),
        vld1q_f64(rhs + i));
    // std::max(acc, cand) ignores NaN candidates; vmaxq would propagate
    // them, so select explicitly: cand > acc ? cand : acc.
    const float64x2_t cand = vabsq_f64(defect);
    vmax = vbslq_f64(vcgtq_f64(cand, vmax), cand, vmax);
  }
  acc = std::max(acc, vgetq_lane_f64(vmax, 0));
  acc = std::max(acc, vgetq_lane_f64(vmax, 1));
  for (; i < ie; ++i) {
    const double defect = detail::defect2d_cell(
        rhs[i], row[i], row[i - 1], row[i + 1], row_s[i], row_n[i], tr);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

double defect3d_row_neon(const double* rhs, const double* row,
                         const double* row_s, const double* row_n,
                         const double* row_d, const double* row_u, double r,
                         std::size_t ib, std::size_t ie, double acc) {
  const float64x2_t vr = vdupq_n_f64(r);
  const float64x2_t vdiag = vdupq_n_f64(1.0 + 6.0 * r);
  float64x2_t vmax = vdupq_n_f64(0.0);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float64x2_t c = vld1q_f64(row + i);
    float64x2_t sum =
        vaddq_f64(vld1q_f64(row + i - 1), vld1q_f64(row + i + 1));
    sum = vaddq_f64(sum, vld1q_f64(row_s + i));
    sum = vaddq_f64(sum, vld1q_f64(row_n + i));
    sum = vaddq_f64(sum, vld1q_f64(row_d + i));
    sum = vaddq_f64(sum, vld1q_f64(row_u + i));
    const float64x2_t defect = vsubq_f64(
        vsubq_f64(vmulq_f64(vdiag, c), vmulq_f64(vr, sum)),
        vld1q_f64(rhs + i));
    const float64x2_t cand = vabsq_f64(defect);
    vmax = vbslq_f64(vcgtq_f64(cand, vmax), cand, vmax);
  }
  acc = std::max(acc, vgetq_lane_f64(vmax, 0));
  acc = std::max(acc, vgetq_lane_f64(vmax, 1));
  for (; i < ie; ++i) {
    const double defect =
        detail::defect3d_cell(rhs[i], row[i], row[i - 1], row[i + 1],
                              row_s[i], row_n[i], row_d[i], row_u[i], r);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable t = [] {
    KernelTable k = scalar_table();
    k.path = IsaPath::kNeon;
    k.jacobi2d_row = &jacobi2d_row_neon;
    k.jacobi3d_row = &jacobi3d_row_neon;
    k.defect2d_row = &defect2d_row_neon;
    k.defect3d_row = &defect3d_row_neon;
    return k;
  }();
  return &t;
}

}  // namespace greenvis::util::simd

#else  // !__aarch64__

namespace greenvis::util::simd {
const KernelTable* neon_table() { return nullptr; }
}  // namespace greenvis::util::simd

#endif

// Runtime-dispatched SIMD kernel layer for the three hottest inner loops:
// the Jacobi stencil row sweeps (2-D/3-D solvers), the delta+bitpack codec
// scan/quantize/zigzag/unpack loops, and the volume ray-marcher's trilinear
// sample blocks.
//
// Dispatch model: the CPU is probed once at first use (AVX2 on x86 when the
// CPUID feature bit is set, SSE2 as the x86-64 baseline, NEON on aarch64,
// scalar everywhere else) and a kernel table for the best supported path is
// published through one atomic pointer. `GREENVIS_SIMD=scalar|sse2|neon|
// avx2|auto` overrides the choice at startup; `set_path()` swaps it at
// runtime so oracles and tests can compare paths inside one process.
//
// Bit-identity contract: every vector implementation performs exactly the
// per-element operation sequence of the scalar reference — same association,
// same rounding, no FMA contraction (the kernel TUs are compiled with
// -ffp-contract=off and without -mfma) — so all paths produce bit-identical
// results. The `simd.scalar_vs_vector` differential oracle and the per-ISA
// generative properties in src/qa enforce this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace greenvis::util::simd {

enum class IsaPath : int { kScalar = 0, kSse2 = 1, kNeon = 2, kAvx2 = 3 };

/// Result of the codec's combined max-abs/finiteness prescan.
struct ScanResult {
  double max_abs{0.0};
  bool finite{true};
};

/// Flattened transfer function + piecewise-linear colormap for the volume
/// compositing kernel: plain arrays so the kernel TUs need no vis types.
/// The stop arrays are SoA views owned by the caller (positions strictly
/// increasing, front 0.0, back 1.0, stop_count >= 2 — ColorMap's own
/// invariants).
struct CompositeTf {
  double lo{0.0};
  double hi{1.0};
  double opacity_scale{0.0};
  double gamma{1.0};
  const double* stop_pos{nullptr};
  const double* stop_r{nullptr};
  const double* stop_g{nullptr};
  const double* stop_b{nullptr};
  std::size_t stop_count{0};
};

/// One function pointer per vectorized inner loop. All rows/blocks are
/// length-parameterized so callers keep their own blocking and boundary
/// handling; kernels only ever touch [ib, ie) / [0, n).
struct KernelTable {
  IsaPath path;

  /// out[i] = (rhs[i] + tr*(((row[i-1]+row[i+1]) + row_s[i]) + row_n[i]))
  ///          * inv_diag  for i in [ib, ie).
  void (*jacobi2d_row)(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n, double tr,
                       double inv_diag, std::size_t ib, std::size_t ie);
  /// Seven-point 3-D analog (adds row_d/row_u planes, weight r).
  void (*jacobi3d_row)(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n,
                       const double* row_d, const double* row_u, double r,
                       double inv_diag, std::size_t ib, std::size_t ie);
  /// Max-norm residual of one interior row:
  /// acc = max(acc, |(1+4tr)*c - tr*sum4 - rhs[i]|). NaN defects are
  /// ignored exactly as std::max(acc, NaN) ignores them.
  double (*defect2d_row)(const double* rhs, const double* row,
                         const double* row_s, const double* row_n, double tr,
                         std::size_t ib, std::size_t ie, double acc);
  double (*defect3d_row)(const double* rhs, const double* row,
                         const double* row_s, const double* row_n,
                         const double* row_d, const double* row_u, double r,
                         std::size_t ib, std::size_t ie, double acc);

  /// max|v[i]| plus all-finite flag (finite iff v[i]-v[i]==0 for all i).
  ScanResult (*scan_abs_finite)(const double* v, std::size_t n);
  /// q[i] = (int64)(t + copysign(0.5, t)) with t = v[i]*inv. Precondition:
  /// every v[i] finite and |t| bounded by the caller's kMaxQuantum check.
  void (*quantize)(const double* v, std::int64_t* q, double inv,
                   std::size_t n);
  /// zz[i] = zigzag(q[i]-q[i-1]) for i in [1, n); returns the OR of all
  /// zigzags (the codec derives the bit width from it). q is not modified.
  std::uint64_t (*delta_zigzag)(const std::int64_t* q, std::uint64_t* zz,
                                std::size_t n);
  /// Pack zz[1..n) at `bits` bits per value into 64-bit words; returns the
  /// word count. Sequential OR-chaining (shared scalar implementation; the
  /// vector win upstream is the quantize/zigzag production of zz).
  std::size_t (*pack_deltas)(const std::uint64_t* zz, std::uint8_t bits,
                             std::uint64_t* words, std::size_t n);
  /// Extract and unzigzag the n-1 deltas of width `bits` (1..63) from the
  /// little-endian packed words into deltas[1..n).
  void (*unpack_deltas)(const std::uint8_t* packed, std::size_t nwords,
                        std::uint8_t bits, std::int64_t* deltas,
                        std::size_t n);

  /// Trilinear-sample the row-major field at n (xs, ys, zs) points —
  /// exactly vis::trilinear_sample per element (clamp, truncate, 7 lerps).
  void (*trilinear_block)(const double* field, std::size_t nx, std::size_t ny,
                          std::size_t nz, const double* xs, const double* ys,
                          const double* zs, double* out, std::size_t n);

  /// Front-to-back alpha-composite the n samples in vs into acc[4] =
  /// {r, g, b, a}: per sample, intensity clamp((v-lo)/(hi-lo)), opacity
  /// clamp(scale*pow(t,gamma)*step), transparent samples skipped, colormap
  /// segment lerp quantized to uint8 channels, w = (1-acc_a)*a accumulate.
  /// Returns true when acc[3] crossed early_termination; samples after the
  /// crossing are not consumed. The alpha chain is sequential, so vector
  /// rows win on the intensity arithmetic and on skipping whole blocks of
  /// transparent (v <= lo) samples — results stay bit-identical to scalar.
  bool (*composite_block)(const double* vs, std::size_t n,
                          const CompositeTf* tf, double step,
                          double early_termination, double* acc);
};

[[nodiscard]] const char* path_name(IsaPath path);
/// Parse "scalar|sse2|neon|avx2|auto" ("auto" = detected best); REQUIREs a
/// known name.
[[nodiscard]] IsaPath parse_path(const std::string& name);
/// A path is supported when its TU was compiled for this target AND the CPU
/// reports the feature (scalar is always supported).
[[nodiscard]] bool path_supported(IsaPath path);
[[nodiscard]] std::vector<IsaPath> supported_paths();
/// Best supported path on this host (ignores overrides).
[[nodiscard]] IsaPath detected_path();
/// Path the hot loops currently dispatch to.
[[nodiscard]] IsaPath active_path();
/// Force a path at runtime (REQUIREs it supported). Not synchronized with
/// concurrently running kernels — switch between workloads, not inside one.
void set_path(IsaPath path);
/// Table for an explicit path (REQUIREs it supported) — for tests/bench.
[[nodiscard]] const KernelTable& table_for(IsaPath path);
/// The active table: one relaxed atomic load; hoist out of inner loops.
[[nodiscard]] const KernelTable& kernels();

}  // namespace greenvis::util::simd

// Internal glue between the dispatch shim and the per-ISA kernel TUs.
//
// `detail` holds the per-element reference operations — the single source of
// truth for the arithmetic every path must reproduce bit-for-bit. Vector
// TUs use them for their remainder loops, so a tail element goes through
// literally the same inline function as the scalar path.
//
// Not installed API: include only from src/util/simd/*.cpp and tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/simd.hpp"

namespace greenvis::util::simd {

/// Scalar reference table (always available).
[[nodiscard]] const KernelTable& scalar_table();
/// Per-ISA tables; nullptr when the TU was compiled without that ISA.
[[nodiscard]] const KernelTable* sse2_table();
[[nodiscard]] const KernelTable* neon_table();
[[nodiscard]] const KernelTable* avx2_table();

namespace detail {

inline double jacobi2d_cell(double rhs, double w, double e, double s,
                            double n, double tr, double inv_diag) {
  return (rhs + tr * ((w + e) + s + n)) * inv_diag;
}

inline double jacobi3d_cell(double rhs, double w, double e, double s,
                            double n, double d, double u, double r,
                            double inv_diag) {
  return (rhs + r * ((w + e) + s + n + d + u)) * inv_diag;
}

inline double defect2d_cell(double rhs, double c, double w, double e,
                            double s, double n, double tr) {
  return (1.0 + 4.0 * tr) * c - tr * (w + e + s + n) - rhs;
}

inline double defect3d_cell(double rhs, double c, double w, double e,
                            double s, double n, double d, double u,
                            double r) {
  return (1.0 + 6.0 * r) * c - r * (w + e + s + n + d + u) - rhs;
}

inline std::int64_t quantize_one(double v, double inv) {
  const double t = v * inv;
  return static_cast<std::int64_t>(t + std::copysign(0.5, t));
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Little-endian 64-bit load, byte-assembled (endian-correct everywhere;
/// folds to one load on LE targets).
inline std::uint64_t load_le_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  }
  return v;
}

/// One bit-extracted delta at bit position `bitpos` (conditional borrow from
/// the next word, exactly as the original decode loop).
inline std::int64_t unpack_one(const std::uint8_t* packed, std::size_t bitpos,
                               unsigned bits, std::uint64_t mask) {
  const std::size_t w = bitpos >> 6;
  const unsigned off = bitpos & 63;
  std::uint64_t val = load_le_u64(packed + w * 8) >> off;
  if (off + bits > 64) {
    val |= load_le_u64(packed + (w + 1) * 8) << (64 - off);
  }
  return unzigzag(val & mask);
}

/// Exactly vis::trilinear_sample on a raw row-major (x fastest) buffer.
inline double trilinear_one(const double* f, std::size_t nx, std::size_t ny,
                            std::size_t nz, double x, double y, double z) {
  const double mx = static_cast<double>(nx - 1);
  const double my = static_cast<double>(ny - 1);
  const double mz = static_cast<double>(nz - 1);
  x = x < 0.0 ? 0.0 : (mx < x ? mx : x);
  y = y < 0.0 ? 0.0 : (my < y ? my : y);
  z = z < 0.0 ? 0.0 : (mz < z ? mz : z);
  const auto i0 = static_cast<std::size_t>(x);
  const auto j0 = static_cast<std::size_t>(y);
  const auto k0 = static_cast<std::size_t>(z);
  const std::size_t i1 = i0 + 1 < nx ? i0 + 1 : nx - 1;
  const std::size_t j1 = j0 + 1 < ny ? j0 + 1 : ny - 1;
  const std::size_t k1 = k0 + 1 < nz ? k0 + 1 : nz - 1;
  const double fx = x - static_cast<double>(i0);
  const double fy = y - static_cast<double>(j0);
  const double fz = z - static_cast<double>(k0);
  const auto at = [&](std::size_t i, std::size_t j, std::size_t k) {
    return f[(k * ny + j) * nx + i];
  };
  const auto lerp = [](double a, double b, double t) {
    return a + (b - a) * t;
  };
  const double c00 = lerp(at(i0, j0, k0), at(i1, j0, k0), fx);
  const double c10 = lerp(at(i0, j1, k0), at(i1, j1, k0), fx);
  const double c01 = lerp(at(i0, j0, k1), at(i1, j0, k1), fx);
  const double c11 = lerp(at(i0, j1, k1), at(i1, j1, k1), fx);
  return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
}

}  // namespace detail
}  // namespace greenvis::util::simd

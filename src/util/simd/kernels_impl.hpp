// Internal glue between the dispatch shim and the per-ISA kernel TUs.
//
// `detail` holds the per-element reference operations — the single source of
// truth for the arithmetic every path must reproduce bit-for-bit. Vector
// TUs use them for their remainder loops, so a tail element goes through
// literally the same inline function as the scalar path.
//
// Not installed API: include only from src/util/simd/*.cpp and tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/simd.hpp"

namespace greenvis::util::simd {

/// Scalar reference table (always available).
[[nodiscard]] const KernelTable& scalar_table();
/// Per-ISA tables; nullptr when the TU was compiled without that ISA.
[[nodiscard]] const KernelTable* sse2_table();
[[nodiscard]] const KernelTable* neon_table();
[[nodiscard]] const KernelTable* avx2_table();

namespace detail {

inline double jacobi2d_cell(double rhs, double w, double e, double s,
                            double n, double tr, double inv_diag) {
  return (rhs + tr * ((w + e) + s + n)) * inv_diag;
}

inline double jacobi3d_cell(double rhs, double w, double e, double s,
                            double n, double d, double u, double r,
                            double inv_diag) {
  return (rhs + r * ((w + e) + s + n + d + u)) * inv_diag;
}

inline double defect2d_cell(double rhs, double c, double w, double e,
                            double s, double n, double tr) {
  return (1.0 + 4.0 * tr) * c - tr * (w + e + s + n) - rhs;
}

inline double defect3d_cell(double rhs, double c, double w, double e,
                            double s, double n, double d, double u,
                            double r) {
  return (1.0 + 6.0 * r) * c - r * (w + e + s + n + d + u) - rhs;
}

inline std::int64_t quantize_one(double v, double inv) {
  const double t = v * inv;
  return static_cast<std::int64_t>(t + std::copysign(0.5, t));
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Little-endian 64-bit load, byte-assembled (endian-correct everywhere;
/// folds to one load on LE targets).
inline std::uint64_t load_le_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  }
  return v;
}

/// One bit-extracted delta at bit position `bitpos` (conditional borrow from
/// the next word, exactly as the original decode loop).
inline std::int64_t unpack_one(const std::uint8_t* packed, std::size_t bitpos,
                               unsigned bits, std::uint64_t mask) {
  const std::size_t w = bitpos >> 6;
  const unsigned off = bitpos & 63;
  std::uint64_t val = load_le_u64(packed + w * 8) >> off;
  if (off + bits > 64) {
    val |= load_le_u64(packed + (w + 1) * 8) << (64 - off);
  }
  return unzigzag(val & mask);
}

/// Exactly vis::trilinear_sample on a raw row-major (x fastest) buffer.
inline double trilinear_one(const double* f, std::size_t nx, std::size_t ny,
                            std::size_t nz, double x, double y, double z) {
  const double mx = static_cast<double>(nx - 1);
  const double my = static_cast<double>(ny - 1);
  const double mz = static_cast<double>(nz - 1);
  x = x < 0.0 ? 0.0 : (mx < x ? mx : x);
  y = y < 0.0 ? 0.0 : (my < y ? my : y);
  z = z < 0.0 ? 0.0 : (mz < z ? mz : z);
  const auto i0 = static_cast<std::size_t>(x);
  const auto j0 = static_cast<std::size_t>(y);
  const auto k0 = static_cast<std::size_t>(z);
  const std::size_t i1 = i0 + 1 < nx ? i0 + 1 : nx - 1;
  const std::size_t j1 = j0 + 1 < ny ? j0 + 1 : ny - 1;
  const std::size_t k1 = k0 + 1 < nz ? k0 + 1 : nz - 1;
  const double fx = x - static_cast<double>(i0);
  const double fy = y - static_cast<double>(j0);
  const double fz = z - static_cast<double>(k0);
  const auto at = [&](std::size_t i, std::size_t j, std::size_t k) {
    return f[(k * ny + j) * nx + i];
  };
  const auto lerp = [](double a, double b, double t) {
    return a + (b - a) * t;
  };
  const double c00 = lerp(at(i0, j0, k0), at(i1, j0, k0), fx);
  const double c10 = lerp(at(i0, j1, k0), at(i1, j1, k0), fx);
  const double c01 = lerp(at(i0, j0, k1), at(i1, j0, k1), fx);
  const double c11 = lerp(at(i0, j1, k1), at(i1, j1, k1), fx);
  return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
}

/// Exactly vis::TransferFunction::intensity: clamp((v-lo)/(hi-lo)) with a
/// degenerate range mapping to 0 (branch clamps match std::clamp for
/// non-NaN operands; NaN passes through, as in the original).
inline double composite_intensity(double v, const CompositeTf& tf) {
  if (tf.hi <= tf.lo) {
    return 0.0;
  }
  const double t = (v - tf.lo) / (tf.hi - tf.lo);
  return t < 0.0 ? 0.0 : (1.0 < t ? 1.0 : t);
}

/// Composite one sample of precomputed intensity t into acc[4] = {r,g,b,a}
/// — the exact per-sample sequence of the original ray-marcher loop:
/// opacity ramp, transparent skip, ColorMap::map's segment search + uint8
/// channel quantization, front-to-back weight. Returns true when the
/// accumulated opacity crossed `early` on this sample.
inline bool composite_one(double t, const CompositeTf& tf, double step,
                          double early, double* acc) {
  const double per_length = tf.opacity_scale * std::pow(t, tf.gamma);
  double a = per_length * step;
  a = a < 0.0 ? 0.0 : (1.0 < a ? 1.0 : a);
  if (a <= 0.0) {
    return false;
  }
  std::size_t hi = 1;
  while (hi + 1 < tf.stop_count && tf.stop_pos[hi] < t) {
    ++hi;
  }
  const double p0 = tf.stop_pos[hi - 1];
  const double f = (t - p0) / (tf.stop_pos[hi] - p0);
  const auto chan = [f](double x, double y) {
    const double c = x + f * (y - x);
    const double cl = c < 0.0 ? 0.0 : (1.0 < c ? 1.0 : c);
    // Round-trip through uint8 exactly as ColorMap::map does before the
    // accumulator promotes the channel back to double.
    return static_cast<double>(
        static_cast<std::uint8_t>(std::lround(cl * 255.0)));
  };
  const double w = (1.0 - acc[3]) * a;
  acc[0] += w * chan(tf.stop_r[hi - 1], tf.stop_r[hi]);
  acc[1] += w * chan(tf.stop_g[hi - 1], tf.stop_g[hi]);
  acc[2] += w * chan(tf.stop_b[hi - 1], tf.stop_b[hi]);
  acc[3] += w;
  return acc[3] >= early;
}

/// Per-sample opacity at zero intensity — when this is 0 the vector rows
/// may skip whole blocks of v <= lo samples without touching pow or the
/// colormap.
inline double composite_zero_opacity(const CompositeTf& tf, double step) {
  const double per_length = tf.opacity_scale * std::pow(0.0, tf.gamma);
  const double a = per_length * step;
  return a < 0.0 ? 0.0 : (1.0 < a ? 1.0 : a);
}

}  // namespace detail
}  // namespace greenvis::util::simd

// AVX2 kernels (4-wide doubles / 64-bit lanes). Compiled with -mavx2
// -ffp-contract=off on x86; on other targets this TU compiles to a null
// table and the dispatcher never offers the path.
//
// Bit-identity notes:
//  - Floating kernels use explicit add/mul intrinsics in the scalar
//    association order; -mfma is deliberately absent so nothing contracts.
//  - _mm256_max_pd(candidate, acc) returns acc when candidate is NaN,
//    matching std::max(acc, candidate)'s NaN-ignoring behavior; lane
//    accumulators therefore never absorb a NaN, so the horizontal max is
//    order-free.
//  - Quantize rounds with copysign(0.5) built from sign-bit masking, then
//    truncates via cvttpd_epi32 (toward zero, like the scalar int64 cast)
//    when all lanes fit int32 — the overwhelmingly common case given the
//    codec's kMaxQuantum guard — and falls back per-lane otherwise.
//  - Integer zigzag/delta/unpack lanes are exact; AVX2 implies x86 implies
//    little-endian, so the word gathers equal the byte-assembled loads.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/kernels_impl.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

namespace greenvis::util::simd {
namespace {

void jacobi2d_row_avx2(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n, double tr,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const __m256d vtr = _mm256_set1_pd(tr);
  const __m256d vinv = _mm256_set1_pd(inv_diag);
  // One lane group's worth of work in the scalar association order; lane
  // groups are independent, so the 2x unroll below only widens the
  // instruction window (hides load latency), it cannot reorder arithmetic.
  const auto lane4 = [&](std::size_t i) {
    const __m256d w = _mm256_loadu_pd(row + i - 1);
    const __m256d e = _mm256_loadu_pd(row + i + 1);
    const __m256d s = _mm256_loadu_pd(row_s + i);
    const __m256d n = _mm256_loadu_pd(row_n + i);
    const __m256d sum =
        _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(w, e), s), n);
    const __m256d r =
        _mm256_add_pd(_mm256_loadu_pd(rhs + i), _mm256_mul_pd(vtr, sum));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(r, vinv));
  };
  std::size_t i = ib;
  for (; i + 8 <= ie; i += 8) {
    lane4(i);
    lane4(i + 4);
  }
  for (; i + 4 <= ie; i += 4) {
    lane4(i);
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi2d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], tr, inv_diag);
  }
}

void jacobi3d_row_avx2(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n,
                       const double* row_d, const double* row_u, double r,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const __m256d vr = _mm256_set1_pd(r);
  const __m256d vinv = _mm256_set1_pd(inv_diag);
  std::size_t i = ib;
  for (; i + 4 <= ie; i += 4) {
    const __m256d w = _mm256_loadu_pd(row + i - 1);
    const __m256d e = _mm256_loadu_pd(row + i + 1);
    __m256d sum = _mm256_add_pd(w, e);
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_s + i));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_n + i));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_d + i));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_u + i));
    const __m256d acc =
        _mm256_add_pd(_mm256_loadu_pd(rhs + i), _mm256_mul_pd(vr, sum));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(acc, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi3d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], row_d[i], row_u[i], r, inv_diag);
  }
}

double defect2d_row_avx2(const double* rhs, const double* row,
                         const double* row_s, const double* row_n, double tr,
                         std::size_t ib, std::size_t ie, double acc) {
  const __m256d vtr = _mm256_set1_pd(tr);
  const __m256d vdiag = _mm256_set1_pd(1.0 + 4.0 * tr);
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d vmax = _mm256_setzero_pd();
  // Second accumulator breaks the max-latency chain; max is a selection
  // (exact, order-free given the NaN handling above), so splitting the
  // reduction cannot change the result.
  __m256d vmax2 = _mm256_setzero_pd();
  const auto lane4 = [&](std::size_t i, __m256d acc4) {
    const __m256d c = _mm256_loadu_pd(row + i);
    const __m256d w = _mm256_loadu_pd(row + i - 1);
    const __m256d e = _mm256_loadu_pd(row + i + 1);
    const __m256d s = _mm256_loadu_pd(row_s + i);
    const __m256d n = _mm256_loadu_pd(row_n + i);
    const __m256d sum =
        _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(w, e), s), n);
    const __m256d defect = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_mul_pd(vdiag, c), _mm256_mul_pd(vtr, sum)),
        _mm256_loadu_pd(rhs + i));
    return _mm256_max_pd(_mm256_andnot_pd(sign, defect), acc4);
  };
  std::size_t i = ib;
  for (; i + 8 <= ie; i += 8) {
    vmax = lane4(i, vmax);
    vmax2 = lane4(i + 4, vmax2);
  }
  for (; i + 4 <= ie; i += 4) {
    vmax = lane4(i, vmax);
  }
  vmax = _mm256_max_pd(vmax, vmax2);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  acc = std::max(acc, lanes[0]);
  acc = std::max(acc, lanes[1]);
  acc = std::max(acc, lanes[2]);
  acc = std::max(acc, lanes[3]);
  for (; i < ie; ++i) {
    const double defect = detail::defect2d_cell(
        rhs[i], row[i], row[i - 1], row[i + 1], row_s[i], row_n[i], tr);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

double defect3d_row_avx2(const double* rhs, const double* row,
                         const double* row_s, const double* row_n,
                         const double* row_d, const double* row_u, double r,
                         std::size_t ib, std::size_t ie, double acc) {
  const __m256d vr = _mm256_set1_pd(r);
  const __m256d vdiag = _mm256_set1_pd(1.0 + 6.0 * r);
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d vmax = _mm256_setzero_pd();
  std::size_t i = ib;
  for (; i + 4 <= ie; i += 4) {
    const __m256d c = _mm256_loadu_pd(row + i);
    __m256d sum = _mm256_add_pd(_mm256_loadu_pd(row + i - 1),
                                _mm256_loadu_pd(row + i + 1));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_s + i));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_n + i));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_d + i));
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(row_u + i));
    const __m256d defect = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_mul_pd(vdiag, c), _mm256_mul_pd(vr, sum)),
        _mm256_loadu_pd(rhs + i));
    vmax = _mm256_max_pd(_mm256_andnot_pd(sign, defect), vmax);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  acc = std::max(acc, lanes[0]);
  acc = std::max(acc, lanes[1]);
  acc = std::max(acc, lanes[2]);
  acc = std::max(acc, lanes[3]);
  for (; i < ie; ++i) {
    const double defect =
        detail::defect3d_cell(rhs[i], row[i], row[i - 1], row[i + 1],
                              row_s[i], row_n[i], row_d[i], row_u[i], r);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

ScanResult scan_abs_finite_avx2(const double* v, std::size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d zero = _mm256_setzero_pd();
  __m256d vmax = zero;
  __m256d vfin = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    vmax = _mm256_max_pd(_mm256_andnot_pd(sign, x), vmax);
    const __m256d d = _mm256_sub_pd(x, x);
    vfin = _mm256_and_pd(vfin, _mm256_cmp_pd(d, zero, _CMP_EQ_OQ));
  }
  ScanResult r;
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  r.max_abs = std::max(std::max(lanes[0], lanes[1]),
                       std::max(lanes[2], lanes[3]));
  r.finite = _mm256_movemask_pd(vfin) == 0xF;
  for (; i < n; ++i) {
    r.max_abs = std::max(r.max_abs, std::fabs(v[i]));
    r.finite = r.finite && (v[i] - v[i] == 0.0);
  }
  return r;
}

void quantize_avx2(const double* v, std::int64_t* q, double inv,
                   std::size_t n) {
  const __m256d vinv = _mm256_set1_pd(inv);
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lim = _mm256_set1_pd(2147483648.0);  // 2^31
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_mul_pd(_mm256_loadu_pd(v + i), vinv);
    const __m256d h = _mm256_or_pd(_mm256_and_pd(t, sign), half);
    const __m256d s = _mm256_add_pd(t, h);
    const __m256d abs_s = _mm256_andnot_pd(sign, s);
    if (_mm256_movemask_pd(_mm256_cmp_pd(abs_s, lim, _CMP_LT_OQ)) == 0xF) {
      const __m128i s32 = _mm256_cvttpd_epi32(s);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i),
                          _mm256_cvtepi32_epi64(s32));
    } else {
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, s);
      q[i + 0] = static_cast<std::int64_t>(tmp[0]);
      q[i + 1] = static_cast<std::int64_t>(tmp[1]);
      q[i + 2] = static_cast<std::int64_t>(tmp[2]);
      q[i + 3] = static_cast<std::int64_t>(tmp[3]);
    }
  }
  for (; i < n; ++i) {
    q[i] = detail::quantize_one(v[i], inv);
  }
}

std::uint64_t delta_zigzag_avx2(const std::int64_t* q, std::uint64_t* zz,
                                std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i vall = zero;
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i - 1));
    const __m256i d = _mm256_sub_epi64(cur, prev);
    // cmpgt(0, d) is all-ones exactly when d < 0: the arithmetic >>63 mask.
    const __m256i mask = _mm256_cmpgt_epi64(zero, d);
    const __m256i z = _mm256_xor_si256(_mm256_slli_epi64(d, 1), mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(zz + i), z);
    vall = _mm256_or_si256(vall, z);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vall);
  std::uint64_t all = lanes[0] | lanes[1] | lanes[2] | lanes[3];
  for (; i < n; ++i) {
    const std::uint64_t z = detail::zigzag(q[i] - q[i - 1]);
    zz[i] = z;
    all |= z;
  }
  return all;
}

void unpack_deltas_avx2(const std::uint8_t* packed, std::size_t nwords,
                        std::uint8_t bits, std::int64_t* deltas,
                        std::size_t n) {
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  const auto* words = reinterpret_cast<const long long*>(packed);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i v63 = _mm256_set1_epi64x(63);
  const __m256i v64 = _mm256_set1_epi64x(64);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  // GCC's unmasked gather expands through _mm256_undefined_*, which trips
  // -Wmaybe-uninitialized under -Werror; the all-ones-masked form is the
  // same instruction with a defined (ignored) source.
  const __m256i ones = _mm256_set1_epi64x(-1);
  const long long b = bits;
  const __m256i lane_off = _mm256_set_epi64x(3 * b, 2 * b, b, 0);
  std::size_t i = 1;
  std::uint64_t bitpos = 0;  // bit position of element i's delta
  for (; i + 4 <= n; i += 4, bitpos += 4 * static_cast<std::uint64_t>(bits)) {
    // The unconditional w+1 gather must stay inside the word array; hand the
    // last few elements to the (conditionally borrowing) scalar tail.
    const std::uint64_t last = bitpos + 3 * static_cast<std::uint64_t>(bits);
    if ((last >> 6) + 2 > nwords) {
      break;
    }
    const __m256i vb = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(bitpos)), lane_off);
    const __m256i w = _mm256_srli_epi64(vb, 6);
    const __m256i off = _mm256_and_si256(vb, v63);
    const __m256i lo = _mm256_srlv_epi64(
        _mm256_mask_i64gather_epi64(zero, words, w, ones, 8), off);
    // When off+bits <= 64 the borrow shift is >= bits, so the mask kills the
    // spurious high bits (and a shift count of 64 yields 0 under sllv).
    const __m256i hi = _mm256_sllv_epi64(
        _mm256_mask_i64gather_epi64(zero, words, _mm256_add_epi64(w, one),
                                    ones, 8),
        _mm256_sub_epi64(v64, off));
    const __m256i val =
        _mm256_and_si256(_mm256_or_si256(lo, hi), vmask);
    const __m256i d = _mm256_xor_si256(
        _mm256_srli_epi64(val, 1),
        _mm256_sub_epi64(zero, _mm256_and_si256(val, one)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(deltas + i), d);
  }
  for (; i < n; ++i) {
    deltas[i] =
        detail::unpack_one(packed, static_cast<std::size_t>(bitpos), bits,
                           mask);
    bitpos += bits;
  }
}

void trilinear_block_avx2(const double* field, std::size_t nx, std::size_t ny,
                          std::size_t nz, const double* xs, const double* ys,
                          const double* zs, double* out, std::size_t n) {
  // i32gather indices must fit int32; fields are bounded far below this
  // (kMaxDim = 2^20 per axis), but guard anyway.
  if (nx * ny * nz > (std::size_t{1} << 31)) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = detail::trilinear_one(field, nx, ny, nz, xs[i], ys[i], zs[i]);
    }
    return;
  }
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vmx = _mm256_set1_pd(static_cast<double>(nx - 1));
  const __m256d vmy = _mm256_set1_pd(static_cast<double>(ny - 1));
  const __m256d vmz = _mm256_set1_pd(static_cast<double>(nz - 1));
  const __m128i imx = _mm_set1_epi32(static_cast<int>(nx - 1));
  const __m128i imy = _mm_set1_epi32(static_cast<int>(ny - 1));
  const __m128i imz = _mm_set1_epi32(static_cast<int>(nz - 1));
  const __m128i inx = _mm_set1_epi32(static_cast<int>(nx));
  const __m128i iny = _mm_set1_epi32(static_cast<int>(ny));
  const __m128i ione = _mm_set1_epi32(1);
  // std::clamp bit-exactly: v<lo -> lo, else hi<v -> hi, else v (keeps -0.0).
  const auto clamp = [&](__m256d v, __m256d hi) {
    v = _mm256_blendv_pd(v, zero, _mm256_cmp_pd(v, zero, _CMP_LT_OQ));
    return _mm256_blendv_pd(v, hi, _mm256_cmp_pd(hi, v, _CMP_LT_OQ));
  };
  const auto lerp = [](__m256d a, __m256d b, __m256d t) {
    return _mm256_add_pd(a, _mm256_mul_pd(_mm256_sub_pd(b, a), t));
  };
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = clamp(_mm256_loadu_pd(xs + i), vmx);
    const __m256d y = clamp(_mm256_loadu_pd(ys + i), vmy);
    const __m256d z = clamp(_mm256_loadu_pd(zs + i), vmz);
    const __m128i i0 = _mm256_cvttpd_epi32(x);
    const __m128i j0 = _mm256_cvttpd_epi32(y);
    const __m128i k0 = _mm256_cvttpd_epi32(z);
    const __m128i i1 = _mm_min_epi32(_mm_add_epi32(i0, ione), imx);
    const __m128i j1 = _mm_min_epi32(_mm_add_epi32(j0, ione), imy);
    const __m128i k1 = _mm_min_epi32(_mm_add_epi32(k0, ione), imz);
    const __m256d fx = _mm256_sub_pd(x, _mm256_cvtepi32_pd(i0));
    const __m256d fy = _mm256_sub_pd(y, _mm256_cvtepi32_pd(j0));
    const __m256d fz = _mm256_sub_pd(z, _mm256_cvtepi32_pd(k0));
    // Row bases (k*ny + j)*nx for the four (j,k) corner pairs.
    const auto base = [&](__m128i j, __m128i k) {
      return _mm_mullo_epi32(
          _mm_add_epi32(_mm_mullo_epi32(k, iny), j), inx);
    };
    const __m128i b00 = base(j0, k0);
    const __m128i b10 = base(j1, k0);
    const __m128i b01 = base(j0, k1);
    const __m128i b11 = base(j1, k1);
    // All-ones-masked gather: see unpack_deltas_avx2 for why not the
    // unmasked intrinsic.
    const __m256d gmask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const auto gather = [&](__m128i row_base, __m128i col) {
      return _mm256_mask_i32gather_pd(zero, field,
                                      _mm_add_epi32(row_base, col), gmask, 8);
    };
    const __m256d c00 = lerp(gather(b00, i0), gather(b00, i1), fx);
    const __m256d c10 = lerp(gather(b10, i0), gather(b10, i1), fx);
    const __m256d c01 = lerp(gather(b01, i0), gather(b01, i1), fx);
    const __m256d c11 = lerp(gather(b11, i0), gather(b11, i1), fx);
    _mm256_storeu_pd(out + i, lerp(lerp(c00, c10, fy), lerp(c01, c11, fy),
                                   fz));
  }
  for (; i < n; ++i) {
    out[i] = detail::trilinear_one(field, nx, ny, nz, xs[i], ys[i], zs[i]);
  }
}

bool composite_block_avx2(const double* vs, std::size_t n,
                          const CompositeTf* tf, double step, double early,
                          double* acc) {
  // Same structure as the SSE2 row at 4-wide: the alpha chain stays
  // sequential through the shared reference op; the vector lanes produce
  // the clamped intensities and skip whole transparent (all v <= lo)
  // blocks. NaN lanes fall back to the reference op — the branch clamp and
  // min/max disagree on NaN.
  std::size_t s = 0;
  if (tf->hi > tf->lo) {
    const bool zero_transparent =
        detail::composite_zero_opacity(*tf, step) <= 0.0;
    const __m256d vlo = _mm256_set1_pd(tf->lo);
    const __m256d vrange = _mm256_set1_pd(tf->hi - tf->lo);
    const __m256d vone = _mm256_set1_pd(1.0);
    const __m256d vzero = _mm256_setzero_pd();
    alignas(32) double ts[4];
    for (; s + 4 <= n; s += 4) {
      const __m256d v = _mm256_loadu_pd(vs + s);
      if (zero_transparent &&
          _mm256_movemask_pd(_mm256_cmp_pd(v, vlo, _CMP_LE_OQ)) == 0xF) {
        continue;
      }
      if (_mm256_movemask_pd(_mm256_cmp_pd(v, v, _CMP_EQ_OQ)) != 0xF) {
        for (std::size_t k = s; k < s + 4; ++k) {
          if (detail::composite_one(detail::composite_intensity(vs[k], *tf),
                                    *tf, step, early, acc)) {
            return true;
          }
        }
        continue;
      }
      const __m256d raw = _mm256_div_pd(_mm256_sub_pd(v, vlo), vrange);
      _mm256_store_pd(ts, _mm256_max_pd(_mm256_min_pd(raw, vone), vzero));
      for (double t : ts) {
        if (detail::composite_one(t, *tf, step, early, acc)) {
          return true;
        }
      }
    }
  }
  for (; s < n; ++s) {
    if (detail::composite_one(detail::composite_intensity(vs[s], *tf), *tf,
                              step, early, acc)) {
      return true;
    }
  }
  return false;
}

}  // namespace

const KernelTable* avx2_table() {
  static const KernelTable t = [] {
    KernelTable k = scalar_table();
    k.path = IsaPath::kAvx2;
    k.jacobi2d_row = &jacobi2d_row_avx2;
    k.jacobi3d_row = &jacobi3d_row_avx2;
    k.defect2d_row = &defect2d_row_avx2;
    k.defect3d_row = &defect3d_row_avx2;
    k.scan_abs_finite = &scan_abs_finite_avx2;
    k.quantize = &quantize_avx2;
    k.delta_zigzag = &delta_zigzag_avx2;
    k.unpack_deltas = &unpack_deltas_avx2;
    k.trilinear_block = &trilinear_block_avx2;
    k.composite_block = &composite_block_avx2;
    return k;
  }();
  return &t;
}

}  // namespace greenvis::util::simd

#else  // !__AVX2__

namespace greenvis::util::simd {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace greenvis::util::simd

#endif

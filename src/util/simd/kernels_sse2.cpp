// SSE2 kernels (2-wide doubles). SSE2 is the x86-64 baseline, so this TU
// needs no extra -m flags — only -ffp-contract=off to pin the arithmetic.
//
// SSE2 has no gathers, no variable 64-bit shifts, and no 64-bit compare, so
// only the stencil rows, the codec prescan/quantize/zigzag, and nothing else
// are vectorized here; the remaining entries inherit the scalar pointers.
// Missing 64-bit ops are emulated:
//  - int32 -> int64 sign extension: unpacklo with the srai(31) sign word
//    (cvtepi32_epi64 is SSE4.1);
//  - the >>63 zigzag sign mask: srai_epi32 on the high halves, then
//    shuffle_epi32 to replicate them across each 64-bit lane.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/util/simd/kernels_impl.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#include <emmintrin.h>

namespace greenvis::util::simd {
namespace {

void jacobi2d_row_sse2(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n, double tr,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const __m128d vtr = _mm_set1_pd(tr);
  const __m128d vinv = _mm_set1_pd(inv_diag);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const __m128d w = _mm_loadu_pd(row + i - 1);
    const __m128d e = _mm_loadu_pd(row + i + 1);
    const __m128d s = _mm_loadu_pd(row_s + i);
    const __m128d n = _mm_loadu_pd(row_n + i);
    const __m128d sum = _mm_add_pd(_mm_add_pd(_mm_add_pd(w, e), s), n);
    const __m128d r = _mm_add_pd(_mm_loadu_pd(rhs + i), _mm_mul_pd(vtr, sum));
    _mm_storeu_pd(out + i, _mm_mul_pd(r, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi2d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], tr, inv_diag);
  }
}

void jacobi3d_row_sse2(double* out, const double* rhs, const double* row,
                       const double* row_s, const double* row_n,
                       const double* row_d, const double* row_u, double r,
                       double inv_diag, std::size_t ib, std::size_t ie) {
  const __m128d vr = _mm_set1_pd(r);
  const __m128d vinv = _mm_set1_pd(inv_diag);
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    __m128d sum =
        _mm_add_pd(_mm_loadu_pd(row + i - 1), _mm_loadu_pd(row + i + 1));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_s + i));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_n + i));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_d + i));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_u + i));
    const __m128d acc =
        _mm_add_pd(_mm_loadu_pd(rhs + i), _mm_mul_pd(vr, sum));
    _mm_storeu_pd(out + i, _mm_mul_pd(acc, vinv));
  }
  for (; i < ie; ++i) {
    out[i] = detail::jacobi3d_cell(rhs[i], row[i - 1], row[i + 1], row_s[i],
                                   row_n[i], row_d[i], row_u[i], r, inv_diag);
  }
}

double defect2d_row_sse2(const double* rhs, const double* row,
                         const double* row_s, const double* row_n, double tr,
                         std::size_t ib, std::size_t ie, double acc) {
  const __m128d vtr = _mm_set1_pd(tr);
  const __m128d vdiag = _mm_set1_pd(1.0 + 4.0 * tr);
  const __m128d sign = _mm_set1_pd(-0.0);
  __m128d vmax = _mm_setzero_pd();
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const __m128d c = _mm_loadu_pd(row + i);
    const __m128d sum = _mm_add_pd(
        _mm_add_pd(_mm_add_pd(_mm_loadu_pd(row + i - 1),
                              _mm_loadu_pd(row + i + 1)),
                   _mm_loadu_pd(row_s + i)),
        _mm_loadu_pd(row_n + i));
    const __m128d defect =
        _mm_sub_pd(_mm_sub_pd(_mm_mul_pd(vdiag, c), _mm_mul_pd(vtr, sum)),
                   _mm_loadu_pd(rhs + i));
    // max_pd(candidate, acc) keeps acc when the candidate is NaN — same as
    // std::max(acc, candidate).
    vmax = _mm_max_pd(_mm_andnot_pd(sign, defect), vmax);
  }
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, vmax);
  acc = std::max(acc, lanes[0]);
  acc = std::max(acc, lanes[1]);
  for (; i < ie; ++i) {
    const double defect = detail::defect2d_cell(
        rhs[i], row[i], row[i - 1], row[i + 1], row_s[i], row_n[i], tr);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

double defect3d_row_sse2(const double* rhs, const double* row,
                         const double* row_s, const double* row_n,
                         const double* row_d, const double* row_u, double r,
                         std::size_t ib, std::size_t ie, double acc) {
  const __m128d vr = _mm_set1_pd(r);
  const __m128d vdiag = _mm_set1_pd(1.0 + 6.0 * r);
  const __m128d sign = _mm_set1_pd(-0.0);
  __m128d vmax = _mm_setzero_pd();
  std::size_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const __m128d c = _mm_loadu_pd(row + i);
    __m128d sum =
        _mm_add_pd(_mm_loadu_pd(row + i - 1), _mm_loadu_pd(row + i + 1));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_s + i));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_n + i));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_d + i));
    sum = _mm_add_pd(sum, _mm_loadu_pd(row_u + i));
    const __m128d defect =
        _mm_sub_pd(_mm_sub_pd(_mm_mul_pd(vdiag, c), _mm_mul_pd(vr, sum)),
                   _mm_loadu_pd(rhs + i));
    vmax = _mm_max_pd(_mm_andnot_pd(sign, defect), vmax);
  }
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, vmax);
  acc = std::max(acc, lanes[0]);
  acc = std::max(acc, lanes[1]);
  for (; i < ie; ++i) {
    const double defect =
        detail::defect3d_cell(rhs[i], row[i], row[i - 1], row[i + 1],
                              row_s[i], row_n[i], row_d[i], row_u[i], r);
    acc = std::max(acc, std::abs(defect));
  }
  return acc;
}

ScanResult scan_abs_finite_sse2(const double* v, std::size_t n) {
  const __m128d sign = _mm_set1_pd(-0.0);
  const __m128d zero = _mm_setzero_pd();
  __m128d vmax = zero;
  __m128d vfin = _mm_castsi128_pd(_mm_set1_epi32(-1));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(v + i);
    vmax = _mm_max_pd(_mm_andnot_pd(sign, x), vmax);
    const __m128d d = _mm_sub_pd(x, x);
    vfin = _mm_and_pd(vfin, _mm_cmpeq_pd(d, zero));
  }
  ScanResult r;
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, vmax);
  r.max_abs = std::max(lanes[0], lanes[1]);
  r.finite = _mm_movemask_pd(vfin) == 0x3;
  for (; i < n; ++i) {
    r.max_abs = std::max(r.max_abs, std::fabs(v[i]));
    r.finite = r.finite && (v[i] - v[i] == 0.0);
  }
  return r;
}

void quantize_sse2(const double* v, std::int64_t* q, double inv,
                   std::size_t n) {
  const __m128d vinv = _mm_set1_pd(inv);
  const __m128d sign = _mm_set1_pd(-0.0);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d lim = _mm_set1_pd(2147483648.0);  // 2^31
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d t = _mm_mul_pd(_mm_loadu_pd(v + i), vinv);
    const __m128d h = _mm_or_pd(_mm_and_pd(t, sign), half);
    const __m128d s = _mm_add_pd(t, h);
    const __m128d abs_s = _mm_andnot_pd(sign, s);
    if (_mm_movemask_pd(_mm_cmplt_pd(abs_s, lim)) == 0x3) {
      const __m128i s32 = _mm_cvttpd_epi32(s);  // int32 in lanes 0,1
      const __m128i ext = _mm_srai_epi32(s32, 31);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                       _mm_unpacklo_epi32(s32, ext));
    } else {
      alignas(16) double tmp[2];
      _mm_store_pd(tmp, s);
      q[i + 0] = static_cast<std::int64_t>(tmp[0]);
      q[i + 1] = static_cast<std::int64_t>(tmp[1]);
    }
  }
  for (; i < n; ++i) {
    q[i] = detail::quantize_one(v[i], inv);
  }
}

std::uint64_t delta_zigzag_sse2(const std::int64_t* q, std::uint64_t* zz,
                                std::size_t n) {
  __m128i vall = _mm_setzero_si128();
  std::size_t i = 1;
  for (; i + 2 <= n; i += 2) {
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i - 1));
    const __m128i d = _mm_sub_epi64(cur, prev);
    // d >> 63 (arithmetic, per 64-bit lane): sign of the high words,
    // replicated across each lane.
    const __m128i mask =
        _mm_shuffle_epi32(_mm_srai_epi32(d, 31), _MM_SHUFFLE(3, 3, 1, 1));
    const __m128i z = _mm_xor_si128(_mm_slli_epi64(d, 1), mask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(zz + i), z);
    vall = _mm_or_si128(vall, z);
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vall);
  std::uint64_t all = lanes[0] | lanes[1];
  for (; i < n; ++i) {
    const std::uint64_t z = detail::zigzag(q[i] - q[i - 1]);
    zz[i] = z;
    all |= z;
  }
  return all;
}

bool composite_block_sse2(const double* vs, std::size_t n,
                          const CompositeTf* tf, double step, double early,
                          double* acc) {
  // The alpha chain is sequential, so accumulation runs per lane through
  // the shared reference op. Two block-level wins: (a) when zero-intensity
  // samples are transparent (the common transfer function), a block whose
  // samples are all v <= lo skips pow and the colormap entirely; (b) other
  // blocks reuse the vector-computed clamped intensities, bit-identical to
  // the scalar clamp for non-NaN samples (NaN lanes take the reference op:
  // cmple/cmpeq are false on NaN, and min/max would disagree with the
  // branch clamp there).
  std::size_t s = 0;
  if (tf->hi > tf->lo) {
    const bool zero_transparent =
        detail::composite_zero_opacity(*tf, step) <= 0.0;
    const __m128d vlo = _mm_set1_pd(tf->lo);
    const __m128d vrange = _mm_set1_pd(tf->hi - tf->lo);
    const __m128d vone = _mm_set1_pd(1.0);
    const __m128d vzero = _mm_setzero_pd();
    alignas(16) double ts[2];
    for (; s + 2 <= n; s += 2) {
      const __m128d v = _mm_loadu_pd(vs + s);
      if (zero_transparent &&
          _mm_movemask_pd(_mm_cmple_pd(v, vlo)) == 0x3) {
        continue;
      }
      if (_mm_movemask_pd(_mm_cmpeq_pd(v, v)) != 0x3) {
        for (std::size_t k = s; k < s + 2; ++k) {
          if (detail::composite_one(detail::composite_intensity(vs[k], *tf),
                                    *tf, step, early, acc)) {
            return true;
          }
        }
        continue;
      }
      const __m128d raw = _mm_div_pd(_mm_sub_pd(v, vlo), vrange);
      _mm_store_pd(ts, _mm_max_pd(_mm_min_pd(raw, vone), vzero));
      for (double t : ts) {
        if (detail::composite_one(t, *tf, step, early, acc)) {
          return true;
        }
      }
    }
  }
  for (; s < n; ++s) {
    if (detail::composite_one(detail::composite_intensity(vs[s], *tf), *tf,
                              step, early, acc)) {
      return true;
    }
  }
  return false;
}

}  // namespace

const KernelTable* sse2_table() {
  static const KernelTable t = [] {
    KernelTable k = scalar_table();
    k.path = IsaPath::kSse2;
    k.jacobi2d_row = &jacobi2d_row_sse2;
    k.jacobi3d_row = &jacobi3d_row_sse2;
    k.defect2d_row = &defect2d_row_sse2;
    k.defect3d_row = &defect3d_row_sse2;
    k.scan_abs_finite = &scan_abs_finite_sse2;
    k.quantize = &quantize_sse2;
    k.delta_zigzag = &delta_zigzag_sse2;
    k.composite_block = &composite_block_sse2;
    return k;
  }();
  return &t;
}

}  // namespace greenvis::util::simd

#else  // !__SSE2__

namespace greenvis::util::simd {
const KernelTable* sse2_table() { return nullptr; }
}  // namespace greenvis::util::simd

#endif

// Runtime ISA dispatch: probe once, publish the chosen kernel table through
// a single atomic pointer, honor the GREENVIS_SIMD override at startup, and
// let tests/oracles swap paths at runtime via set_path().
#include "src/util/simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/log.hpp"
#include "src/util/simd/kernels_impl.hpp"

namespace greenvis::util::simd {
namespace {

const KernelTable* table_or_null(IsaPath path) {
  switch (path) {
    case IsaPath::kScalar:
      return &scalar_table();
    case IsaPath::kSse2:
      return sse2_table();
    case IsaPath::kNeon:
      return neon_table();
    case IsaPath::kAvx2:
      return avx2_table();
  }
  return nullptr;
}

/// Best path the hardware supports: the TU must be compiled for the ISA and
/// the CPU must report the feature (compile-time baselines need no probe).
IsaPath probe_best() {
#if defined(__AVX2__)
  // Built with AVX2 as baseline: no runtime check needed.
  if (avx2_table() != nullptr) {
    return IsaPath::kAvx2;
  }
#elif defined(__x86_64__) || defined(__i386__)
  if (avx2_table() != nullptr && __builtin_cpu_supports("avx2")) {
    return IsaPath::kAvx2;
  }
#endif
  if (sse2_table() != nullptr) {
    return IsaPath::kSse2;
  }
  if (neon_table() != nullptr) {
    return IsaPath::kNeon;
  }
  return IsaPath::kScalar;
}

struct Dispatcher {
  IsaPath detected;
  std::atomic<const KernelTable*> active;

  Dispatcher() : detected(probe_best()), active(table_or_null(detected)) {
    const char* env = std::getenv("GREENVIS_SIMD");
    if (env == nullptr || *env == '\0') {
      return;
    }
    const std::string name(env);
    IsaPath forced = detected;
    if (name == "auto") {
      return;
    } else if (name == "scalar") {
      forced = IsaPath::kScalar;
    } else if (name == "sse2") {
      forced = IsaPath::kSse2;
    } else if (name == "neon") {
      forced = IsaPath::kNeon;
    } else if (name == "avx2") {
      forced = IsaPath::kAvx2;
    } else {
      GREENVIS_REQUIRE_MSG(false, "GREENVIS_SIMD: unknown path '" + name +
                                      "' (scalar|sse2|neon|avx2|auto)");
    }
    const KernelTable* t = table_or_null(forced);
    GREENVIS_REQUIRE_MSG(t != nullptr,
                         "GREENVIS_SIMD=" + name +
                             " is not supported on this host");
    if (forced != detected) {
      log_debug() << "simd: GREENVIS_SIMD forces " << path_name(forced)
                  << " (detected " << path_name(detected) << ")";
    }
    active.store(t, std::memory_order_relaxed);
  }
};

Dispatcher& dispatcher() {
  static Dispatcher d;
  return d;
}

}  // namespace

const char* path_name(IsaPath path) {
  switch (path) {
    case IsaPath::kScalar:
      return "scalar";
    case IsaPath::kSse2:
      return "sse2";
    case IsaPath::kNeon:
      return "neon";
    case IsaPath::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IsaPath parse_path(const std::string& name) {
  if (name == "auto") {
    return detected_path();
  }
  if (name == "scalar") {
    return IsaPath::kScalar;
  }
  if (name == "sse2") {
    return IsaPath::kSse2;
  }
  if (name == "neon") {
    return IsaPath::kNeon;
  }
  if (name == "avx2") {
    return IsaPath::kAvx2;
  }
  GREENVIS_REQUIRE_MSG(
      false, "unknown SIMD path '" + name + "' (scalar|sse2|neon|avx2|auto)");
  return IsaPath::kScalar;  // unreachable
}

bool path_supported(IsaPath path) {
  if (path == IsaPath::kScalar) {
    return true;
  }
  if (table_or_null(path) == nullptr) {
    return false;
  }
  // The table existing means the TU was compiled for the ISA; it is usable
  // only when the probe would pick it or a weaker baseline covers it.
  switch (path) {
    case IsaPath::kSse2:
    case IsaPath::kNeon:
      return true;  // compile-time baselines on their targets
    case IsaPath::kAvx2:
      return dispatcher().detected == IsaPath::kAvx2;
    case IsaPath::kScalar:
      return true;
  }
  return false;
}

std::vector<IsaPath> supported_paths() {
  std::vector<IsaPath> out;
  for (IsaPath p : {IsaPath::kScalar, IsaPath::kSse2, IsaPath::kNeon,
                    IsaPath::kAvx2}) {
    if (path_supported(p)) {
      out.push_back(p);
    }
  }
  return out;
}

IsaPath detected_path() { return dispatcher().detected; }

IsaPath active_path() {
  return dispatcher().active.load(std::memory_order_relaxed)->path;
}

void set_path(IsaPath path) {
  GREENVIS_REQUIRE_MSG(path_supported(path),
                       std::string("SIMD path '") + path_name(path) +
                           "' is not supported on this host");
  dispatcher().active.store(table_or_null(path), std::memory_order_relaxed);
}

const KernelTable& table_for(IsaPath path) {
  GREENVIS_REQUIRE_MSG(path_supported(path),
                       std::string("SIMD path '") + path_name(path) +
                           "' is not supported on this host");
  return *table_or_null(path);
}

const KernelTable& kernels() {
  return *dispatcher().active.load(std::memory_order_relaxed);
}

}  // namespace greenvis::util::simd

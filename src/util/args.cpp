#include "src/util/args.hpp"

#include "src/util/error.hpp"

namespace greenvis::util {

ArgParser::ArgParser(int argc, const char* const* argv, int first) {
  GREENVIS_REQUIRE(first >= 0);
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      GREENVIS_REQUIRE_MSG(token.size() > 2, "empty option name '--'");
      const std::size_t eq = token.find('=', 2);
      if (eq != std::string::npos) {
        GREENVIS_REQUIRE_MSG(eq > 2, "empty option name in '" + token + "'");
        options_[token.substr(2, eq - 2)] = token.substr(eq + 1);
      } else {
        const std::string key = token.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = std::string(argv[++i]);
        } else {
          options_[key] = std::nullopt;
        }
      }
    } else {
      positional_.push_back(token);
    }
  }
}

void ArgParser::allow_only(const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : options_) {
    bool ok = false;
    for (const auto& a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    GREENVIS_REQUIRE_MSG(ok, "unknown option --" + key);
  }
}

bool ArgParser::has_value(const std::string& key) const {
  const auto it = options_.find(key);
  return it != options_.end() && it->second.has_value();
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) {
    return fallback;
  }
  return it->second.value_or(std::string{});
}

double ArgParser::get(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) {
    return fallback;
  }
  GREENVIS_REQUIRE_MSG(it->second.has_value(),
                       "option --" + key + " expects a value");
  try {
    std::size_t used = 0;
    const double v = std::stod(*it->second, &used);
    GREENVIS_REQUIRE(used == it->second->size());
    return v;
  } catch (const ContractViolation&) {
    throw ContractViolation("option --" + key + " expects a number, got '" +
                            *it->second + "'");
  } catch (const std::exception&) {
    throw ContractViolation("option --" + key + " expects a number, got '" +
                            *it->second + "'");
  }
}

long long ArgParser::get(const std::string& key, long long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) {
    return fallback;
  }
  GREENVIS_REQUIRE_MSG(it->second.has_value(),
                       "option --" + key + " expects a value");
  try {
    std::size_t used = 0;
    const long long v = std::stoll(*it->second, &used);
    GREENVIS_REQUIRE(used == it->second->size());
    return v;
  } catch (const ContractViolation&) {
    throw ContractViolation("option --" + key + " expects an integer, got '" +
                            *it->second + "'");
  } catch (const std::exception&) {
    throw ContractViolation("option --" + key + " expects an integer, got '" +
                            *it->second + "'");
  }
}

std::string ArgParser::require(const std::string& key) const {
  const auto it = options_.find(key);
  GREENVIS_REQUIRE_MSG(it != options_.end(), "missing required --" + key);
  GREENVIS_REQUIRE_MSG(it->second.has_value(),
                       "option --" + key + " expects a value");
  return *it->second;
}

}  // namespace greenvis::util

#include "src/util/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::util {

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  GREENVIS_REQUIRE(a.cols() == n);
  GREENVIS_REQUIRE(b.size() == n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) {
        pivot = r;
      }
    }
    GREENVIS_REQUIRE_MSG(std::abs(a.at(pivot, col)) > 1e-12,
                         "singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) {
      sum -= a.at(i, c) * x[c];
    }
    x[i] = sum / a.at(i, i);
  }
  return x;
}

std::vector<double> least_squares(
    const std::vector<std::vector<double>>& features,
    std::span<const double> targets, double ridge) {
  GREENVIS_REQUIRE(!features.empty());
  GREENVIS_REQUIRE(features.size() == targets.size());
  const std::size_t k = features.front().size();
  GREENVIS_REQUIRE(k >= 1);

  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (std::size_t row = 0; row < features.size(); ++row) {
    const auto& f = features[row];
    GREENVIS_REQUIRE_MSG(f.size() == k, "ragged feature rows");
    for (std::size_t i = 0; i < k; ++i) {
      xty[i] += f[i] * targets[row];
      for (std::size_t j = 0; j < k; ++j) {
        xtx.at(i, j) += f[i] * f[j];
      }
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    xtx.at(i, i) += ridge;
  }
  return solve_linear_system(std::move(xtx), std::move(xty));
}

}  // namespace greenvis::util

// Work-stealing sharded job execution on top of ThreadPool.
//
// `parallel_for` balances fine-grained index ranges; batch/campaign jobs are
// the opposite shape: few-to-tens-of-thousands of *heavy, uneven* jobs (a
// whole pipeline run each). run_sharded partitions the job index space into
// contiguous shards, hands whole shards to pool executors through one
// parallel_for dispatch, and lets an executor that drains its shards steal
// remaining jobs one at a time from the fullest victim shard. Placement is
// therefore dynamic, but since every job writes only its own output slot the
// caller's results are independent of which thread ran what — byte-identical
// to a serial loop over [0, jobs).
//
// Exceptions: `job` must not throw. Callers that can fail per job (the batch
// runner, the campaign engine) catch inside the callback and rethrow the
// first error after the dispatch drains, so one bad job never abandons the
// rest of the batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/obs/registry.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::util {

struct ShardedOptions {
  /// Shard count; 0 = one shard per executing thread (capped at the job
  /// count). More shards than threads smooths very uneven job mixes at the
  /// cost of more steal traffic.
  std::size_t shards{0};
  /// When non-null and observability is enabled, each executor records one
  /// span with this (static-storage) name around its drain participation.
  const char* span_name{nullptr};
  /// When non-null and observability is enabled, receives the number of
  /// jobs executed by a thread other than the shard's initial owner.
  obs::Counter* steal_counter{nullptr};
};

struct ShardedRunStats {
  std::size_t shards{0};
  /// Jobs claimed from a shard after its initial owner moved on (work the
  /// stealing actually re-balanced).
  std::uint64_t steals{0};
};

/// Run `job(i)` for every i in [0, jobs) across `pool` with work-stealing
/// shards. Returns when all jobs completed. Deterministic output contract:
/// see file comment.
ShardedRunStats run_sharded(ThreadPool& pool, std::size_t jobs,
                            const std::function<void(std::size_t)>& job,
                            const ShardedOptions& options = {});

}  // namespace greenvis::util

// Command-line argument parsing for the CLI and example binaries.
//
// Supports `--key value`, `--key=value`, bare `--flag`, and positional
// arguments. Typed getters with defaults; optional strict mode rejects
// unknown options so typos fail loudly instead of silently using defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace greenvis::util {

class ArgParser {
 public:
  /// Parse argv[first..argc). A token starting with "--" is an option: with
  /// an embedded '=' the value follows in the same token; otherwise it
  /// consumes the next token as its value unless that token is itself an
  /// option (then it is a flag). Everything else is positional.
  ArgParser(int argc, const char* const* argv, int first = 1);

  /// Restrict options to `allowed`; any other --option throws
  /// ContractViolation. Call right after construction.
  void allow_only(const std::vector<std::string>& allowed) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options_.contains(key);
  }
  /// True when the option carries a value — `--key value` or `--key=`
  /// (explicit empty). A bare `--key` flag is present but value-less, so
  /// `has("k") && !has_value("k")` identifies flag form.
  [[nodiscard]] bool has_value(const std::string& key) const;

  /// Typed getters; return `fallback` when absent. Malformed numbers and
  /// numeric lookups of a value-less flag throw. The string getter maps a
  /// bare flag to "" for convenience; use has_value() to distinguish it
  /// from an explicit `--key=`.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] long long get(const std::string& key,
                              long long fallback) const;

  /// Value of a required option; throws when missing or value-less.
  [[nodiscard]] std::string require(const std::string& key) const;

 private:
  std::vector<std::string> positional_;
  /// nullopt = bare flag; "" = explicit empty via `--key=`. A repeated
  /// option keeps the last occurrence (last-wins).
  std::map<std::string, std::optional<std::string>> options_;
};

}  // namespace greenvis::util

#include "src/util/numa.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "src/util/thread_pool.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace greenvis::util::numa {
namespace {

/// Parse a sysfs cpulist like "0-3,8-11" into cpu ids.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const char c = list[pos];
    if (c < '0' || c > '9') {
      ++pos;
      continue;
    }
    std::size_t next = pos;
    const int lo = std::stoi(list.substr(pos), &next);
    pos += next;
    int hi = lo;
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      hi = std::stoi(list.substr(pos), &next);
      pos += next;
    }
    for (int cpu = lo; cpu <= hi; ++cpu) {
      cpus.push_back(cpu);
    }
  }
  return cpus;
}

Topology probe() {
  Topology topo;
#if defined(__linux__)
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::pair<int, std::vector<int>>> nodes;
  for (const auto& entry : fs::directory_iterator("/sys/devices/system/node",
                                                  ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0 || name.size() <= 4) {
      continue;
    }
    const std::string digits = name.substr(4);
    if (digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    std::ifstream in(entry.path() / "cpulist");
    std::string list;
    if (!in || !std::getline(in, list)) {
      continue;
    }
    std::vector<int> cpus = parse_cpulist(list);
    if (!cpus.empty()) {
      nodes.emplace_back(std::stoi(digits), std::move(cpus));
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, cpus] : nodes) {
    topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> all(hw);
    for (unsigned i = 0; i < hw; ++i) {
      all[i] = static_cast<int>(i);
    }
    topo.node_cpus.push_back(std::move(all));
  }
  return topo;
}

}  // namespace

const Topology& topology() {
  static const Topology topo = probe();
  return topo;
}

bool pinning_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("GREENVIS_NUMA");
    if (env != nullptr && *env != '\0') {
      return std::string(env) != "0";
    }
    return topology().node_count() > 1;
  }();
  return enabled;
}

bool pin_to_node(std::size_t node) {
#if defined(__linux__)
  const Topology& topo = topology();
  if (topo.node_count() == 0) {
    return false;
  }
  const std::vector<int>& cpus = topo.node_cpus[node % topo.node_count()];
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(static_cast<std::size_t>(cpu), &set);
      any = true;
    }
  }
  if (!any) {
    return false;
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

void first_touch_fill(double* data, std::size_t count, double value,
                      ThreadPool* pool) {
  // 8192 doubles = 64 KiB: each chunk spans whole pages (and whole 2 MB-page
  // fractions worth touching) so placement follows the sweep partitioning.
  constexpr std::size_t kGrain = 8192;
  constexpr std::size_t kMinParallel = std::size_t{1} << 16;
  if (pool == nullptr || pool->size() <= 1 || count < kMinParallel) {
    std::fill_n(data, count, value);
    return;
  }
  pool->parallel_for(
      0, count,
      [&](std::size_t lo, std::size_t hi) {
        std::fill(data + lo, data + hi, value);
      },
      kGrain);
}

}  // namespace greenvis::util::numa

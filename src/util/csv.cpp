#include "src/util/csv.hpp"

#include <cstdio>

namespace greenvis::util {

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  for (std::string_view f : fields) {
    field(f);
  }
  end_row();
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const std::string& f : fields) {
    field(f);
  }
  end_row();
}

void CsvWriter::write_separator() {
  if (!at_row_start_) {
    *out_ << ',';
  }
  at_row_start_ = false;
}

void CsvWriter::field(std::string_view text) {
  write_separator();
  *out_ << escape(text);
}

void CsvWriter::field(double value) {
  write_separator();
  *out_ << format_fixed(value, 6);
}

void CsvWriter::field(long long value) {
  write_separator();
  *out_ << value;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  at_row_start_ = true;
  ++rows_;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string{field};
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string{buf};
}

}  // namespace greenvis::util

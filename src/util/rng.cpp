#include "src/util/rng.hpp"

#include <cmath>

namespace greenvis::util {

double Xoshiro256::normal() {
  // Marsaglia polar method.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace greenvis::util

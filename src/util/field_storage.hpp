// Aligned backing store for Field2D/Field3D.
//
// A thin replacement for std::vector<double> with two properties the fields
// need and the vector can't give:
//
//   * 64-byte alignment — cache-line (and vector-register) aligned rows for
//     the SIMD stencil/codec kernels, regardless of allocator whim;
//   * first-touch-friendly construction — the buffer can be allocated
//     *uninitialized* so the initial fill (which commits the pages) can be
//     routed through numa::first_touch_fill on the owning workers instead of
//     being serially touched by whichever thread ran the constructor.
//
// Semantics otherwise match vector<double> where the fields rely on them:
// element-wise operator== (so NaN-carrying fields compare like before),
// contiguous double* iterators, copy preserving bytes exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>
#include <utility>

namespace greenvis::util {

class FieldStorage {
 public:
  /// Tag: allocate without writing, so the caller controls first touch.
  struct Uninitialized {};

  FieldStorage() = default;
  FieldStorage(std::size_t count, Uninitialized) { allocate(count); }
  FieldStorage(std::size_t count, double fill) {
    allocate(count);
    std::fill_n(data_, count, fill);
  }

  FieldStorage(const FieldStorage& other) {
    allocate(other.size_);
    if (size_ > 0) {
      std::memcpy(data_, other.data_, size_ * sizeof(double));
    }
  }
  FieldStorage& operator=(const FieldStorage& other) {
    if (this != &other) {
      if (other.size_ > capacity_) {
        release();
        allocate(other.size_);
      } else {
        size_ = other.size_;
      }
      if (size_ > 0) {
        std::memcpy(data_, other.data_, size_ * sizeof(double));
      }
    }
    return *this;
  }

  FieldStorage(FieldStorage&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  FieldStorage& operator=(FieldStorage&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~FieldStorage() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] double* begin() { return data_; }
  [[nodiscard]] double* end() { return data_ + size_; }
  [[nodiscard]] const double* begin() const { return data_; }
  [[nodiscard]] const double* end() const { return data_ + size_; }
  [[nodiscard]] double& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] double operator[](std::size_t i) const { return data_[i]; }

  friend bool operator==(const FieldStorage& a, const FieldStorage& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  static constexpr std::size_t kAlignment = 64;

 private:
  void allocate(std::size_t count) {
    size_ = count;
    capacity_ = count;
    data_ = count == 0
                ? nullptr
                : static_cast<double*>(::operator new(
                      count * sizeof(double), std::align_val_t{kAlignment}));
  }
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  double* data_{nullptr};
  std::size_t size_{0};
  std::size_t capacity_{0};
};

}  // namespace greenvis::util

// Fixed-width console table rendering.
//
// The bench binaries print the paper's tables/figure series in the same
// row/column layout the paper uses; this helper keeps them aligned and
// readable in a terminal.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace greenvis::util {

enum class Align { kLeft, kRight };

/// Collects rows, then renders with per-column widths computed from content.
class TextTable {
 public:
  /// `headers` defines the column count for all subsequent rows.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Column alignment (defaults: first column left, the rest right — the shape
  /// of a metrics table).
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with a header underline and two-space column gutters.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shorthand numeric cell formatting used by all bench binaries.
[[nodiscard]] std::string cell(double value, int decimals = 1);
[[nodiscard]] std::string cell_percent(double fraction, int decimals = 0);

}  // namespace greenvis::util

#include "src/util/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"

namespace greenvis::util {

namespace {

/// One shard: a claim cursor over a contiguous job range. Owned fields sit
/// on their own cache line so cross-shard steal probes do not false-share
/// with the owner's claim traffic.
struct alignas(64) Shard {
  std::atomic<std::size_t> next{0};
  std::size_t end{0};
};

}  // namespace

ShardedRunStats run_sharded(ThreadPool& pool, std::size_t jobs,
                            const std::function<void(std::size_t)>& job,
                            const ShardedOptions& options) {
  ShardedRunStats stats;
  if (jobs == 0) {
    return stats;
  }
  std::size_t shard_count =
      options.shards == 0 ? pool.size() : options.shards;
  shard_count = std::clamp<std::size_t>(shard_count, 1, jobs);
  stats.shards = shard_count;

  std::vector<Shard> shards(shard_count);
  const std::size_t base = jobs / shard_count;
  const std::size_t extra = jobs % shard_count;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards[s].next.store(cursor, std::memory_order_relaxed);
    cursor += base + (s < extra ? 1 : 0);
    shards[s].end = cursor;
  }
  GREENVIS_ENSURE(cursor == jobs);

  std::atomic<std::uint64_t> steals{0};
  // An executor drains the shards parallel_for assigned it, then turns
  // thief: it rescans for the fullest remaining shard and claims one job at
  // a time until every cursor is exhausted.
  pool.parallel_for(0, shard_count, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedSpan span(options.span_name != nullptr ? options.span_name
                                                      : "sharded.drain",
                         obs::kCatPool);
    for (std::size_t s = lo; s < hi; ++s) {
      for (;;) {
        const std::size_t i =
            shards[s].next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards[s].end) {
          break;
        }
        job(i);
      }
    }
    std::uint64_t stolen = 0;
    for (;;) {
      // Fullest victim first: steal pressure goes where the backlog is.
      std::size_t victim = shard_count;
      std::size_t victim_remaining = 0;
      for (std::size_t s = 0; s < shard_count; ++s) {
        const std::size_t next = shards[s].next.load(std::memory_order_relaxed);
        const std::size_t remaining = next < shards[s].end
                                          ? shards[s].end - next
                                          : 0;
        if (remaining > victim_remaining) {
          victim = s;
          victim_remaining = remaining;
        }
      }
      if (victim == shard_count) {
        break;
      }
      const std::size_t i =
          shards[victim].next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards[victim].end) {
        continue;  // lost the race; rescan
      }
      job(i);
      ++stolen;
    }
    if (stolen > 0) {
      steals.fetch_add(stolen, std::memory_order_relaxed);
    }
  });

  stats.steals = steals.load(std::memory_order_relaxed);
  if (options.steal_counter != nullptr && obs::enabled() && stats.steals > 0) {
    options.steal_counter->add(stats.steals);
  }
  return stats;
}

}  // namespace greenvis::util

// NUMA topology probe, worker pinning, and first-touch page placement.
//
// Linux commits anonymous pages on first write, on the node of the writing
// CPU. The pool therefore pins its workers round-robin across nodes
// (ThreadPool does this using `topology()`), and fields route their initial
// fill through `first_touch_fill` so each worker faults in the pages of the
// range it will later sweep — the same parallel_for partitioning the solvers
// use. On single-node hosts all of this degrades to a plain fill.
//
// Environment: GREENVIS_NUMA=0 disables pinning entirely; GREENVIS_NUMA=1
// forces pinning even on single-node hosts (test hook). Default: pin only
// when more than one node is present.
#pragma once

#include <cstddef>
#include <vector>

namespace greenvis::util {

class ThreadPool;

namespace numa {

/// Host topology: one entry per NUMA node, each listing its online CPU ids.
/// Probed once from /sys/devices/system/node; falls back to a single node
/// holding all CPUs when sysfs is unavailable (non-Linux, containers).
struct Topology {
  std::vector<std::vector<int>> node_cpus;

  [[nodiscard]] std::size_t node_count() const { return node_cpus.size(); }
};

[[nodiscard]] const Topology& topology();

/// Whether worker pinning is wanted on this host (see GREENVIS_NUMA above).
[[nodiscard]] bool pinning_enabled();

/// Pin the calling thread to every CPU of `node` (modulo node count).
/// Returns true when the affinity call succeeded; failure is benign — the
/// thread simply stays unpinned.
bool pin_to_node(std::size_t node);

/// Fill count doubles with `value`, partitioned over the pool's workers so
/// each worker first-touches the pages of its own range. Serial when the
/// pool is null/too small or the range is small; the result is identical
/// either way (every byte gets the same value).
void first_touch_fill(double* data, std::size_t count, double value,
                      ThreadPool* pool);

}  // namespace numa
}  // namespace greenvis::util

// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulators (measurement noise on the power
// meters, seek-distance jitter, thermal perturbations in the heat source)
// draws from an explicitly seeded xoshiro256** stream so that experiments are
// bit-reproducible across hosts and runs.
#pragma once

#include <cstdint>

namespace greenvis::util {

/// SplitMix64 — used only to expand a single seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and good enough for
/// simulation noise; not for cryptography.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64_next(sm);
    }
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire-style rejection is overkill for simulation noise; modulo bias on
    // a 64-bit stream is < 2^-40 for any n we use.
    return next() % n;
  }

  /// Standard normal via Marsaglia polar method (no cached spare, to keep the
  /// generator state trivially copyable and the draw count predictable enough
  /// for tests).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace greenvis::util

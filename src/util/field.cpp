#include "src/util/field.hpp"

#include <algorithm>

#include "src/util/numa.hpp"

namespace greenvis::util {

Field2D::Field2D(std::size_t nx, std::size_t ny, double fill, ThreadPool* pool)
    : nx_(nx), ny_(ny), data_(nx * ny, FieldStorage::Uninitialized{}) {
  GREENVIS_REQUIRE(nx > 0 && ny > 0);
  numa::first_touch_fill(data_.data(), data_.size(), fill, pool);
}

double Field2D::min_value() const {
  GREENVIS_REQUIRE(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Field2D::max_value() const {
  GREENVIS_REQUIRE(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Field2D::sum() const {
  double s = 0.0;
  for (double v : data_) {
    s += v;
  }
  return s;
}

std::vector<std::uint8_t> Field2D::serialize() const {
  std::vector<std::uint8_t> out(serialized_bytes());
  auto put_u64 = [&](std::size_t pos, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  put_u64(0, nx_);
  put_u64(8, ny_);
  std::memcpy(out.data() + 16, data_.data(), data_.size() * sizeof(double));
  return out;
}

Field2D Field2D::deserialize(std::span<const std::uint8_t> raw) {
  GREENVIS_REQUIRE(raw.size() >= 16);
  auto get_u64 = [&](std::size_t pos) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(raw[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  };
  const auto nx = static_cast<std::size_t>(get_u64(0));
  const auto ny = static_cast<std::size_t>(get_u64(8));
  GREENVIS_REQUIRE(raw.size() == 16 + nx * ny * sizeof(double));
  Field2D f(nx, ny);
  std::memcpy(f.data_.data(), raw.data() + 16, nx * ny * sizeof(double));
  return f;
}

}  // namespace greenvis::util

#include "src/codec/field_codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/simd/simd.hpp"
#include "src/util/thread_pool.hpp"

namespace greenvis::codec {

namespace {

// Container layout (little-endian):
//   0   u64  magic "GVCODEC1"
//   8   u8   version (1)
//   9   u8   rank (2 | 3)
//   10  u8   declared kind
//   11  u8   reserved (0)
//   12  u32  chunk edge (cells per side)
//   16  u64  nx
//   24  u64  ny
//   32  u64  nz (1 in 2-D)
//   40  f64  tolerance (0 when no quantized chunks can appear)
//   48  ...  chunks, row-major in (cz, cy, cx) order, each:
//              u8 encoding, u8 bits, u16 reserved, u32 payload bytes,
//              payload
constexpr std::uint64_t kMagic = 0x314345444F435647ULL;  // "GVCODEC1"
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kContainerHeader = 48;
constexpr std::size_t kChunkHeader = 8;
constexpr std::uint64_t kMaxDim = 1ULL << 20;
constexpr std::uint64_t kMaxCells = 1ULL << 32;
/// Quanta above this magnitude risk int64 overflow in the delta chain; the
/// chunk falls back to raw instead.
constexpr double kMaxQuantum = 9.0e15;  // < 2^53

constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

void put_u64(std::uint8_t* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u32(std::uint8_t* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t get_u64(const std::uint8_t* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

double double_of(std::uint64_t u) {
  double v = 0.0;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

/// Serialize the 48-byte container header (layout above).
void write_container_header(std::vector<std::uint8_t>& out, Kind kind,
                            double tolerance, std::size_t chunk_edge,
                            std::size_t nx, std::size_t ny, std::size_t nz,
                            std::uint8_t rank) {
  out.resize(kContainerHeader);
  put_u64(out.data(), kMagic);
  out[8] = kVersion;
  out[9] = rank;
  out[10] = static_cast<std::uint8_t>(kind);
  out[11] = 0;
  put_u32(out.data() + 12, static_cast<std::uint32_t>(chunk_edge));
  put_u64(out.data() + 16, nx);
  put_u64(out.data() + 24, ny);
  put_u64(out.data() + 32, nz);
  put_u64(out.data() + 40, bits_of(kind == Kind::kDelta ? tolerance : 0.0));
}

/// Fields below this stay on the serial path even with a pool attached; the
/// dispatch overhead would dominate (the 128x128 case-study fields land
/// here, keeping the hot loop allocation-free and single-threaded).
constexpr std::size_t kParallelMinCells = std::size_t{1} << 16;

/// Bounds-checked cursor over an encoded blob: every read REQUIREs the
/// bytes exist, so truncation surfaces as ContractViolation, never UB.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos{0};

  void need(std::size_t n) const {
    GREENVIS_REQUIRE_MSG(pos + n <= data.size(),
                         "codec: truncated blob (need " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos) + ")");
  }
  std::uint8_t u8() {
    need(1);
    return data[pos++];
  }
  std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>(
        data[pos] | (static_cast<std::uint16_t>(data[pos + 1]) << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = get_u64(data.data() + pos);
    pos += 8;
    return v;
  }
  const std::uint8_t* bytes(std::size_t n) {
    need(n);
    const std::uint8_t* p = data.data() + pos;
    pos += n;
    return p;
  }
};

/// RLE size (bytes) of `v[0..count)` under bitwise-run coding.
std::size_t rle_bytes(const double* v, std::size_t count) {
  std::size_t runs = 1;
  std::uint64_t prev = bits_of(v[0]);
  for (std::size_t i = 1; i < count; ++i) {
    const std::uint64_t cur = bits_of(v[i]);
    runs += cur != prev;
    prev = cur;
  }
  return runs * 12;
}

}  // namespace

Kind parse_kind(const std::string& name) {
  if (name == "raw") {
    return Kind::kRaw;
  }
  if (name == "delta") {
    return Kind::kDelta;
  }
  if (name == "rle") {
    return Kind::kRle;
  }
  GREENVIS_REQUIRE_MSG(false, "unknown codec '" + name +
                                  "' (expected raw|delta|rle)");
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kRaw:
      return "raw";
    case Kind::kDelta:
      return "delta";
    case Kind::kRle:
      return "rle";
  }
  return "?";
}

FieldCodec::FieldCodec(const CodecConfig& config, util::ScratchArena* arena)
    : config_(config), arena_(arena) {
  GREENVIS_REQUIRE(config_.chunk_edge >= 1 && config_.chunk_edge <= 1024);
  if (config_.kind == Kind::kDelta) {
    GREENVIS_REQUIRE_MSG(config_.tolerance > 0.0 &&
                             std::isfinite(config_.tolerance),
                         "delta codec needs a positive finite tolerance");
  }
}

std::span<double> FieldCodec::chunk_scratch(std::size_t count) {
  if (arena_ != nullptr) {
    return arena_->alloc<double>(count);
  }
  if (chunk_buf_.size() < count) {
    chunk_buf_.resize(count);
  }
  return {chunk_buf_.data(), count};
}

std::span<std::uint64_t> FieldCodec::word_scratch(std::size_t count) {
  if (arena_ != nullptr) {
    return arena_->alloc<std::uint64_t>(count);
  }
  if (word_buf_.size() < count) {
    word_buf_.resize(count);
  }
  return {word_buf_.data(), count};
}

FieldCodec::ChunkResult FieldCodec::encode_chunk(
    const double* v, std::size_t count, std::span<std::int64_t> q,
    std::span<std::uint64_t> zz, std::span<std::uint64_t> words,
    std::uint8_t* dst) const {
  const std::size_t raw_payload = count * sizeof(double);
  const util::simd::KernelTable& kern = util::simd::kernels();

  auto put_header = [&](ChunkEncoding enc, std::uint8_t bits,
                        std::uint32_t payload) {
    dst[0] = static_cast<std::uint8_t>(enc);
    dst[1] = bits;
    dst[2] = 0;
    dst[3] = 0;
    put_u32(dst + 4, payload);
  };
  auto put_raw = [&]() -> ChunkResult {
    put_header(ChunkEncoding::kRaw, 0,
               static_cast<std::uint32_t>(raw_payload));
    std::memcpy(dst + kChunkHeader, v, raw_payload);
    return {kChunkHeader + raw_payload, ChunkEncoding::kRaw};
  };
  auto put_rle = [&](std::size_t payload) -> ChunkResult {
    put_header(ChunkEncoding::kRle, 0, static_cast<std::uint32_t>(payload));
    std::uint8_t* cur = dst + kChunkHeader;
    std::uint64_t run_value = bits_of(v[0]);
    std::uint32_t run_len = 1;
    for (std::size_t i = 1; i < count; ++i) {
      const std::uint64_t b = bits_of(v[i]);
      if (b == run_value) {
        ++run_len;
      } else {
        put_u64(cur, run_value);
        put_u32(cur + 8, run_len);
        cur += 12;
        run_value = b;
        run_len = 1;
      }
    }
    put_u64(cur, run_value);
    put_u32(cur + 8, run_len);
    cur += 12;
    GREENVIS_ENSURE(static_cast<std::size_t>(cur - dst) ==
                    kChunkHeader + payload);
    return {kChunkHeader + payload, ChunkEncoding::kRle};
  };

  if (config_.kind == Kind::kRle) {
    const std::size_t rle = rle_bytes(v, count);
    return rle < raw_payload ? put_rle(rle) : put_raw();
  }

  // kind == kDelta: quantize when every value is finite and its quantum
  // fits the delta chain; otherwise degrade to rle/raw, preserving bits.
  const double inv = 1.0 / config_.tolerance;
  const util::simd::ScanResult scan = kern.scan_abs_finite(v, count);
  if (!scan.finite || scan.max_abs * inv > kMaxQuantum) {
    const std::size_t rle = rle_bytes(v, count);
    return rle < raw_payload ? put_rle(rle) : put_raw();
  }

  // Quantize (branch-free: round-half-away via copysign), then zigzag the
  // deltas into `zz` (q keeps the absolute quanta; q[0] heads the payload).
  kern.quantize(v, q.data(), inv, count);
  const std::uint64_t all = kern.delta_zigzag(q.data(), zz.data(), count);
  std::uint8_t bits = 0;
  while (all >> bits != 0) {
    ++bits;
  }
  const std::size_t nwords =
      bits == 0 ? 0 : ((count - 1) * bits + 63) / 64;
  const std::size_t payload = 8 + nwords * 8;
  if (payload >= raw_payload) {
    return put_raw();
  }

  put_header(ChunkEncoding::kDeltaBitpack, bits,
             static_cast<std::uint32_t>(payload));
  put_u64(dst + kChunkHeader, static_cast<std::uint64_t>(q[0]));
  if (bits > 0) {
    const std::size_t w = kern.pack_deltas(zz.data(), bits, words.data(),
                                           count);
    GREENVIS_ENSURE(w == nwords);
    for (std::size_t k = 0; k < nwords; ++k) {
      put_u64(dst + kChunkHeader + 8 + k * 8, words[k]);
    }
  }
  return {kChunkHeader + payload, ChunkEncoding::kDeltaBitpack};
}

void FieldCodec::bump_chunk_stats(ChunkEncoding encoding) {
  switch (encoding) {
    case ChunkEncoding::kRaw:
      ++stats_.chunks_raw;
      break;
    case ChunkEncoding::kDeltaBitpack:
      ++stats_.chunks_delta;
      break;
    case ChunkEncoding::kRle:
      ++stats_.chunks_rle;
      break;
  }
}

void FieldCodec::encode_values(std::span<const double> values, std::size_t nx,
                               std::size_t ny, std::size_t nz,
                               std::uint8_t rank,
                               std::vector<std::uint8_t>& out) {
  const std::size_t e = config_.chunk_edge;
  const std::size_t chunk_count = ((nx + e - 1) / e) * ((ny + e - 1) / e) *
                                  (rank == 3 ? (nz + e - 1) / e : 1);
  // Per-chunk tasks are short once the kernels are vectorized, so the pool
  // only pays off with a couple of chunks per executor; below that the
  // dispatch wake/claim overhead loses to the serial loop.
  if (pool_ != nullptr && pool_->size() > 1 &&
      values.size() >= kParallelMinCells &&
      chunk_count >= std::max<std::size_t>(2, 2 * pool_->size())) {
    encode_values_parallel(values, nx, ny, nz, rank, out);
    return;
  }

  const std::size_t max_cells = rank == 2 ? e * e : e * e * e;
  const std::span<double> staging = chunk_scratch(max_cells);
  std::span<std::int64_t> q{};
  std::span<std::uint64_t> zz{};
  std::span<std::uint64_t> words{};
  if (config_.kind == Kind::kDelta) {
    if (arena_ != nullptr) {
      q = arena_->alloc<std::int64_t>(max_cells);
      zz = arena_->alloc<std::uint64_t>(max_cells);
    } else {
      if (q_buf_.size() < max_cells) {
        q_buf_.resize(max_cells);
      }
      if (zz_buf_.size() < max_cells) {
        zz_buf_.resize(max_cells);
      }
      q = {q_buf_.data(), max_cells};
      zz = {zz_buf_.data(), max_cells};
    }
    words = word_scratch(max_cells);  // bits <= 63 < 64: never more words
  }

  write_container_header(out, config_.kind, config_.tolerance, e, nx, ny, nz,
                         rank);

  const double* src = values.data();
  for (std::size_t z0 = 0; z0 < nz; z0 += (rank == 3 ? e : nz)) {
    const std::size_t z1 = rank == 3 ? std::min(nz, z0 + e) : nz;
    for (std::size_t y0 = 0; y0 < ny; y0 += e) {
      const std::size_t y1 = std::min(ny, y0 + e);
      for (std::size_t x0 = 0; x0 < nx; x0 += e) {
        const std::size_t x1 = std::min(nx, x0 + e);
        // Gather the chunk into contiguous SoA order (x fastest).
        const std::size_t w = x1 - x0;
        double* dst = staging.data();
        for (std::size_t z = z0; z < z1; ++z) {
          for (std::size_t y = y0; y < y1; ++y) {
            std::memcpy(dst, src + (z * ny + y) * nx + x0,
                        w * sizeof(double));
            dst += w;
          }
        }
        const std::size_t count =
            static_cast<std::size_t>(dst - staging.data());
        // Worst-case bound-sized emission, trimmed to what was written —
        // byte-identical to an append-based emit.
        const std::size_t bound = kChunkHeader + count * sizeof(double);
        const std::size_t pos = out.size();
        out.resize(pos + bound);
        const ChunkResult r = encode_chunk(staging.data(), count, q, zz,
                                           words, out.data() + pos);
        out.resize(pos + r.bytes);
        bump_chunk_stats(r.encoding);
      }
    }
  }
}

void FieldCodec::encode_values_parallel(std::span<const double> values,
                                        std::size_t nx, std::size_t ny,
                                        std::size_t nz, std::uint8_t rank,
                                        std::vector<std::uint8_t>& out) {
  const std::size_t e = config_.chunk_edge;

  // Plan: one descriptor per chunk in the serial (cz, cy, cx) order, with
  // prefix sums for per-chunk scratch cells and bound-spaced output offsets.
  chunk_descs_.clear();
  std::size_t total_cells = 0;
  std::size_t bound_end = kContainerHeader;
  for (std::size_t z0 = 0; z0 < nz; z0 += (rank == 3 ? e : nz)) {
    const std::size_t z1 = rank == 3 ? std::min(nz, z0 + e) : nz;
    for (std::size_t y0 = 0; y0 < ny; y0 += e) {
      const std::size_t y1 = std::min(ny, y0 + e);
      for (std::size_t x0 = 0; x0 < nx; x0 += e) {
        const std::size_t x1 = std::min(nx, x0 + e);
        ChunkDesc d;
        d.x0 = x0, d.x1 = x1, d.y0 = y0, d.y1 = y1, d.z0 = z0, d.z1 = z1;
        d.cells = (x1 - x0) * (y1 - y0) * (z1 - z0);
        d.cell_offset = total_cells;
        d.dst_offset = bound_end;
        total_cells += d.cells;
        bound_end += kChunkHeader + d.cells * sizeof(double);
        chunk_descs_.push_back(d);
      }
    }
  }
  chunk_results_.assign(chunk_descs_.size(), ChunkResult{});

  // Scratch pools carved per chunk via cell_offset. Allocation happens here,
  // on the calling thread (ScratchArena is single-threaded); workers only
  // index into their disjoint slices.
  const bool delta = config_.kind == Kind::kDelta;
  std::span<double> stage{};
  std::span<std::int64_t> q{};
  std::span<std::uint64_t> zz{};
  std::span<std::uint64_t> words{};
  if (arena_ != nullptr) {
    stage = arena_->alloc<double>(total_cells);
    if (delta) {
      q = arena_->alloc<std::int64_t>(total_cells);
      zz = arena_->alloc<std::uint64_t>(total_cells);
      words = arena_->alloc<std::uint64_t>(total_cells);
    }
  } else {
    if (pstage_buf_.size() < total_cells) {
      pstage_buf_.resize(total_cells);
    }
    stage = {pstage_buf_.data(), total_cells};
    if (delta) {
      if (pq_buf_.size() < total_cells) {
        pq_buf_.resize(total_cells);
      }
      if (pzz_buf_.size() < total_cells) {
        pzz_buf_.resize(total_cells);
      }
      if (pword_buf_.size() < total_cells) {
        pword_buf_.resize(total_cells);
      }
      q = {pq_buf_.data(), total_cells};
      zz = {pzz_buf_.data(), total_cells};
      words = {pword_buf_.data(), total_cells};
    }
  }

  write_container_header(out, config_.kind, config_.tolerance, e, nx, ny, nz,
                         rank);
  out.resize(bound_end);  // worst case per chunk; compacted below

  const double* src = values.data();
  pool_->parallel_for(0, chunk_descs_.size(), [&](std::size_t lo,
                                                  std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const ChunkDesc& d = chunk_descs_[c];
      // Gather into this chunk's scratch slice (x fastest, as serial).
      double* g = stage.data() + d.cell_offset;
      const std::size_t w = d.x1 - d.x0;
      for (std::size_t z = d.z0; z < d.z1; ++z) {
        for (std::size_t y = d.y0; y < d.y1; ++y) {
          std::memcpy(g, src + (z * ny + y) * nx + d.x0, w * sizeof(double));
          g += w;
        }
      }
      chunk_results_[c] = encode_chunk(
          stage.data() + d.cell_offset, d.cells,
          delta ? q.subspan(d.cell_offset, d.cells)
                : std::span<std::int64_t>{},
          delta ? zz.subspan(d.cell_offset, d.cells)
                : std::span<std::uint64_t>{},
          delta ? words.subspan(d.cell_offset, d.cells)
                : std::span<std::uint64_t>{},
          out.data() + d.dst_offset);
    }
  });

  // Serial compaction: slide chunks left to their packed positions and bump
  // stats in chunk order — bytes and counters identical to the serial path
  // for any pool size. memmove is safe: cursor <= dst_offset always.
  std::size_t cursor = kContainerHeader;
  for (std::size_t c = 0; c < chunk_descs_.size(); ++c) {
    const ChunkResult& r = chunk_results_[c];
    if (cursor != chunk_descs_[c].dst_offset) {
      std::memmove(out.data() + cursor,
                   out.data() + chunk_descs_[c].dst_offset, r.bytes);
    }
    cursor += r.bytes;
    bump_chunk_stats(r.encoding);
  }
  out.resize(cursor);
}

void FieldCodec::encode(const util::Field2D& field,
                        std::vector<std::uint8_t>& out) {
  out.clear();
  stats_ = {};
  stats_.raw_bytes = field.serialized_bytes();
  if (config_.kind == Kind::kRaw) {
    // Identity: exactly the legacy serialization, byte for byte.
    out.resize(field.serialized_bytes());
    put_u64(out.data(), field.nx());
    put_u64(out.data() + 8, field.ny());
    std::memcpy(out.data() + 16, field.values().data(),
                field.size() * sizeof(double));
  } else {
    encode_values(field.values(), field.nx(), field.ny(), 1, 2, out);
  }
  stats_.encoded_bytes = out.size();
}

void FieldCodec::encode(const util::Field3D& field,
                        std::vector<std::uint8_t>& out) {
  out.clear();
  stats_ = {};
  stats_.raw_bytes = field.serialized_bytes();
  if (config_.kind == Kind::kRaw) {
    out.resize(field.serialized_bytes());
    put_u64(out.data(), field.nx());
    put_u64(out.data() + 8, field.ny());
    put_u64(out.data() + 16, field.nz());
    std::memcpy(out.data() + 24, field.values().data(),
                field.size() * sizeof(double));
  } else {
    encode_values(field.values(), field.nx(), field.ny(), field.nz(), 3, out);
  }
  stats_.encoded_bytes = out.size();
}

std::vector<std::uint8_t> FieldCodec::encode(const util::Field2D& field) {
  std::vector<std::uint8_t> out;
  encode(field, out);
  return out;
}

std::vector<std::uint8_t> FieldCodec::encode(const util::Field3D& field) {
  std::vector<std::uint8_t> out;
  encode(field, out);
  return out;
}

bool FieldCodec::is_container(std::span<const std::uint8_t> blob) {
  return blob.size() >= 8 && get_u64(blob.data()) == kMagic;
}

FieldCodec::ContainerInfo FieldCodec::parse_header(
    std::span<const std::uint8_t> blob) {
  Reader r{blob};
  GREENVIS_REQUIRE_MSG(r.u64() == kMagic, "codec: bad container magic");
  ContainerInfo info;
  info.version = r.u8();
  GREENVIS_REQUIRE_MSG(info.version == kVersion,
                       "codec: unsupported container version " +
                           std::to_string(info.version));
  info.rank = r.u8();
  GREENVIS_REQUIRE_MSG(info.rank == 2 || info.rank == 3,
                       "codec: bad rank " + std::to_string(info.rank));
  const std::uint8_t kind = r.u8();
  GREENVIS_REQUIRE_MSG(kind <= 2, "codec: bad kind byte");
  info.kind = static_cast<Kind>(kind);
  (void)r.u8();  // reserved
  info.chunk_edge = r.u32();
  GREENVIS_REQUIRE_MSG(info.chunk_edge >= 1 && info.chunk_edge <= 1024,
                       "codec: bad chunk edge");
  info.nx = r.u64();
  info.ny = r.u64();
  info.nz = r.u64();
  GREENVIS_REQUIRE_MSG(info.nx >= 1 && info.nx <= kMaxDim &&  //
                           info.ny >= 1 && info.ny <= kMaxDim &&
                           info.nz >= 1 && info.nz <= kMaxDim,
                       "codec: implausible dimensions");
  GREENVIS_REQUIRE_MSG(info.rank == 3 || info.nz == 1,
                       "codec: 2-D container with nz != 1");
  GREENVIS_REQUIRE_MSG(info.nx * info.ny * info.nz <= kMaxCells,
                       "codec: implausible cell count");
  info.tolerance = double_of(r.u64());
  GREENVIS_REQUIRE_MSG(
      std::isfinite(info.tolerance) && info.tolerance >= 0.0,
      "codec: bad tolerance");
  return info;
}

void FieldCodec::decode_chunks(std::span<const std::uint8_t> blob,
                               const ContainerInfo& info, double* dst) {
  Reader r{blob};
  r.pos = kContainerHeader;
  const std::size_t e = info.chunk_edge;
  const std::size_t nx = info.nx, ny = info.ny, nz = info.nz;
  const std::size_t max_cells = info.rank == 2 ? e * e : e * e * e;
  const std::span<double> staging = chunk_scratch(max_cells);
  // Delta chunks unpack into an int64 scratch first (vectorizable bit
  // extraction), then a scalar prefix sum rebuilds the quanta.
  std::span<std::int64_t> deltas{};
  if (info.tolerance > 0.0) {  // delta chunks can only appear with it
    if (arena_ != nullptr) {
      deltas = arena_->alloc<std::int64_t>(max_cells);
    } else {
      if (q_buf_.size() < max_cells) {
        q_buf_.resize(max_cells);
      }
      deltas = {q_buf_.data(), max_cells};
    }
  }
  const util::simd::KernelTable& kern = util::simd::kernels();

  for (std::size_t z0 = 0; z0 < nz; z0 += (info.rank == 3 ? e : nz)) {
    const std::size_t z1 = info.rank == 3 ? std::min(nz, z0 + e) : nz;
    for (std::size_t y0 = 0; y0 < ny; y0 += e) {
      const std::size_t y1 = std::min(ny, y0 + e);
      for (std::size_t x0 = 0; x0 < nx; x0 += e) {
        const std::size_t x1 = std::min(nx, x0 + e);
        const std::size_t count = (x1 - x0) * (y1 - y0) * (z1 - z0);

        const auto enc = r.u8();
        const std::uint8_t bits = r.u8();
        (void)r.u16();  // reserved
        const std::uint32_t payload = r.u32();

        if (enc == static_cast<std::uint8_t>(ChunkEncoding::kRaw)) {
          GREENVIS_REQUIRE_MSG(payload == count * sizeof(double),
                               "codec: raw chunk size mismatch");
          std::memcpy(staging.data(), r.bytes(payload), payload);
        } else if (enc == static_cast<std::uint8_t>(ChunkEncoding::kRle)) {
          GREENVIS_REQUIRE_MSG(payload % 12 == 0 && payload > 0,
                               "codec: rle chunk size mismatch");
          std::size_t filled = 0;
          for (std::size_t k = 0; k < payload / 12; ++k) {
            const double value = double_of(r.u64());
            const std::uint32_t len = r.u32();
            GREENVIS_REQUIRE_MSG(len > 0 && filled + len <= count,
                                 "codec: rle run overflows chunk");
            for (std::size_t i = 0; i < len; ++i) {
              staging[filled + i] = value;
            }
            filled += len;
          }
          GREENVIS_REQUIRE_MSG(filled == count,
                               "codec: rle runs do not cover chunk");
        } else if (enc ==
                   static_cast<std::uint8_t>(ChunkEncoding::kDeltaBitpack)) {
          GREENVIS_REQUIRE_MSG(info.tolerance > 0.0,
                               "codec: delta chunk without tolerance");
          GREENVIS_REQUIRE_MSG(bits <= 63, "codec: bad delta bit width");
          const std::size_t nwords =
              bits == 0 ? 0 : ((count - 1) * bits + 63) / 64;
          GREENVIS_REQUIRE_MSG(payload == 8 + nwords * 8,
                               "codec: delta chunk size mismatch");
          std::int64_t qv = static_cast<std::int64_t>(r.u64());
          const double tol = info.tolerance;
          staging[0] = static_cast<double>(qv) * tol;
          if (bits == 0) {
            for (std::size_t i = 1; i < count; ++i) {
              staging[i] = staging[0];
            }
          } else {
            const std::uint8_t* packed = r.bytes(nwords * 8);
            GREENVIS_REQUIRE_MSG(!deltas.empty(),
                                 "codec: delta chunk in non-delta container");
            kern.unpack_deltas(packed, nwords, bits, deltas.data(), count);
            for (std::size_t i = 1; i < count; ++i) {
              qv += deltas[i];
              staging[i] = static_cast<double>(qv) * tol;
            }
          }
        } else {
          GREENVIS_REQUIRE_MSG(false, "codec: unknown chunk encoding " +
                                          std::to_string(enc));
        }

        // Scatter the SoA chunk back into the row-major field.
        const std::size_t w = x1 - x0;
        const double* src = staging.data();
        for (std::size_t z = z0; z < z1; ++z) {
          for (std::size_t y = y0; y < y1; ++y) {
            std::memcpy(dst + (z * ny + y) * nx + x0, src,
                        w * sizeof(double));
            src += w;
          }
        }
      }
    }
  }
  GREENVIS_REQUIRE_MSG(r.pos == blob.size(),
                       "codec: trailing bytes after last chunk");
}

void FieldCodec::decode_into(std::span<const std::uint8_t> blob,
                             util::Field2D& out) {
  if (!is_container(blob)) {
    // Legacy plain serialization; decode in place when dimensions match.
    GREENVIS_REQUIRE_MSG(blob.size() >= 16, "codec: truncated legacy field");
    const std::size_t nx = get_u64(blob.data());
    const std::size_t ny = get_u64(blob.data() + 8);
    if (out.nx() == nx && out.ny() == ny) {
      GREENVIS_REQUIRE(blob.size() == 16 + nx * ny * sizeof(double));
      std::memcpy(out.values().data(), blob.data() + 16,
                  nx * ny * sizeof(double));
    } else {
      out = util::Field2D::deserialize(blob);
    }
    return;
  }
  const ContainerInfo info = parse_header(blob);
  GREENVIS_REQUIRE_MSG(info.rank == 2, "codec: expected a 2-D container");
  if (out.nx() != info.nx || out.ny() != info.ny) {
    out = util::Field2D(info.nx, info.ny);
  }
  decode_chunks(blob, info, out.values().data());
}

void FieldCodec::decode_into(std::span<const std::uint8_t> blob,
                             util::Field3D& out) {
  if (!is_container(blob)) {
    GREENVIS_REQUIRE_MSG(blob.size() >= 24, "codec: truncated legacy field");
    const std::size_t nx = get_u64(blob.data());
    const std::size_t ny = get_u64(blob.data() + 8);
    const std::size_t nz = get_u64(blob.data() + 16);
    if (out.nx() == nx && out.ny() == ny && out.nz() == nz) {
      GREENVIS_REQUIRE(blob.size() == 24 + nx * ny * nz * sizeof(double));
      std::memcpy(out.values().data(), blob.data() + 24,
                  nx * ny * nz * sizeof(double));
    } else {
      out = util::Field3D::deserialize(blob);
    }
    return;
  }
  const ContainerInfo info = parse_header(blob);
  GREENVIS_REQUIRE_MSG(info.rank == 3, "codec: expected a 3-D container");
  if (out.nx() != info.nx || out.ny() != info.ny || out.nz() != info.nz) {
    out = util::Field3D(info.nx, info.ny, info.nz);
  }
  decode_chunks(blob, info, out.values().data());
}

util::Field2D FieldCodec::decode2d(std::span<const std::uint8_t> blob) {
  FieldCodec codec;
  util::Field2D out;
  codec.decode_into(blob, out);
  return out;
}

util::Field3D FieldCodec::decode3d(std::span<const std::uint8_t> blob) {
  FieldCodec codec;
  util::Field3D out;
  codec.decode_into(blob, out);
  return out;
}

}  // namespace greenvis::codec

// Chunked field codec for snapshot I/O — the paper's Sec. VI direction of
// *software-directed data reorganization*: shrink the bytes written and
// re-read between the simulate and visualize phases and the post-processing
// pipeline's time/energy gap closes with them (the Fig. 10 savings are
// driven almost entirely by I/O time). Follows the in-situ float-compression
// line of work (ISABELA-style quantized residuals, Gorilla/SZ-style delta
// coding) cited in PAPERS.md.
//
// Format: a field is split into fixed-edge 2-D/3-D chunks; each chunk is
// gathered into a contiguous SoA staging buffer and encoded independently by
// the cheapest admissible encoder:
//
//   * raw           — the 8-byte IEEE-754 values verbatim (bit-exact,
//                     NaN/Inf safe);
//   * delta+bitpack — values quantized to an absolute tolerance
//                     (|x - decode(encode(x))| <= tolerance), first quantum
//                     stored whole, successive deltas zigzag-mapped and
//                     packed at the chunk's max bit width;
//   * rle           — runs of bitwise-identical values (constant regions
//                     collapse to one run).
//
// The container header is self-describing (magic, rank, dims, chunk edge,
// tolerance), so readback auto-detects the encoding — including the legacy
// plain Field2D/Field3D serialization, which has no magic. Kind::kRaw is an
// identity codec: it emits exactly the legacy bytes, keeping every existing
// figure byte-identical. Corrupt or truncated input fails loudly
// (ContractViolation), never with UB. See DESIGN.md §3b.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/field.hpp"
#include "src/util/field3d.hpp"

namespace greenvis::util {
class ThreadPool;
}

namespace greenvis::codec {

/// Container-level codec selection (the `--codec=` flag / Workload knob).
enum class Kind : std::uint8_t {
  kRaw = 0,    // identity: legacy plain serialization, byte-identical
  kDelta = 1,  // quantized delta+bitpack (lossy within `tolerance`)
  kRle = 2,    // run-length only (lossless; wins on constant regions)
};

/// Per-chunk encoding chosen by the heuristic (stored in the chunk header).
enum class ChunkEncoding : std::uint8_t {
  kRaw = 0,
  kDeltaBitpack = 1,
  kRle = 2,
};

struct CodecConfig {
  Kind kind{Kind::kRaw};
  /// Absolute per-value error bound for delta+bitpack (must be > 0 when
  /// kind == kDelta; reconstruction error is <= tolerance/2).
  double tolerance{1e-3};
  /// Cells per chunk side (chunks are edge x edge in 2-D, edge^3 in 3-D;
  /// boundary chunks are partial).
  std::size_t chunk_edge{32};
};

/// Parse "raw" | "delta" | "rle" (throws ContractViolation otherwise).
[[nodiscard]] Kind parse_kind(const std::string& name);
[[nodiscard]] const char* kind_name(Kind kind);

struct EncodeStats {
  std::uint64_t raw_bytes{0};
  std::uint64_t encoded_bytes{0};
  std::uint64_t chunks_raw{0};
  std::uint64_t chunks_delta{0};
  std::uint64_t chunks_rle{0};

  /// Uncompressed payload bytes / encoded payload bytes.
  [[nodiscard]] double ratio() const {
    return encoded_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(encoded_bytes);
  }
};

/// Encoder/decoder instance. Holds reusable staging buffers (and optionally
/// bumps an external ScratchArena), so steady-state encode/decode performs
/// zero heap allocations. One instance per pipeline; calls on one instance
/// must not race. encode() itself may fan per-chunk work out across an
/// attached ThreadPool (set_pool) when the field is large enough — chunks
/// are gathered and laid out in a deterministic order, so the encoded bytes
/// are identical to the serial path for any pool size.
class FieldCodec {
 public:
  explicit FieldCodec(const CodecConfig& config = {},
                      util::ScratchArena* arena = nullptr);

  /// Attach a pool for per-chunk parallel encode (nullptr = serial). Small
  /// fields stay on the serial path (worth_parallel gate).
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Rebind the scratch arena (e.g. to the staging slot an async pipeline
  /// is encoding into). Pass nullptr to fall back to retained members.
  void set_arena(util::ScratchArena* arena) { arena_ = arena; }

  /// True when this codec changes bytes (kind != kRaw) and hence when the
  /// pipeline should charge modeled encode/decode compute.
  [[nodiscard]] bool active() const { return config_.kind != Kind::kRaw; }

  /// Encode into `out` (cleared first; capacity reused across calls).
  /// kind == kRaw emits exactly `field.serialize()`.
  void encode(const util::Field2D& field, std::vector<std::uint8_t>& out);
  void encode(const util::Field3D& field, std::vector<std::uint8_t>& out);
  [[nodiscard]] std::vector<std::uint8_t> encode(const util::Field2D& field);
  [[nodiscard]] std::vector<std::uint8_t> encode(const util::Field3D& field);

  /// Decode, auto-detecting container vs legacy plain serialization. The
  /// `_into` forms reuse `out`'s storage when the dimensions match.
  void decode_into(std::span<const std::uint8_t> blob, util::Field2D& out);
  void decode_into(std::span<const std::uint8_t> blob, util::Field3D& out);
  [[nodiscard]] static util::Field2D decode2d(
      std::span<const std::uint8_t> blob);
  [[nodiscard]] static util::Field3D decode3d(
      std::span<const std::uint8_t> blob);

  /// True when `blob` starts with the codec container magic.
  [[nodiscard]] static bool is_container(std::span<const std::uint8_t> blob);

  /// Stats of the most recent encode() on this instance.
  [[nodiscard]] const EncodeStats& last_stats() const { return stats_; }
  [[nodiscard]] const CodecConfig& config() const { return config_; }

 private:
  /// Parsed-and-validated container header.
  struct ContainerInfo {
    std::uint8_t version{0};
    std::uint8_t rank{0};
    Kind kind{Kind::kRaw};
    std::uint32_t chunk_edge{0};
    std::uint64_t nx{0};
    std::uint64_t ny{0};
    std::uint64_t nz{0};
    double tolerance{0.0};
  };
  [[nodiscard]] static ContainerInfo parse_header(
      std::span<const std::uint8_t> blob);

  /// One chunk's extent in the source field plus its scratch/output
  /// placement in the parallel encode plan.
  struct ChunkDesc {
    std::size_t x0{0}, x1{0}, y0{0}, y1{0}, z0{0}, z1{0};
    std::size_t cells{0};
    std::size_t cell_offset{0};  // into the per-chunk scratch pools
    std::size_t dst_offset{0};   // bound-spaced offset into `out`
  };
  struct ChunkResult {
    std::size_t bytes{0};  // header + payload actually written
    ChunkEncoding encoding{ChunkEncoding::kRaw};
  };

  void encode_values(std::span<const double> values, std::size_t nx,
                     std::size_t ny, std::size_t nz, std::uint8_t rank,
                     std::vector<std::uint8_t>& out);
  void encode_values_parallel(std::span<const double> values, std::size_t nx,
                              std::size_t ny, std::size_t nz,
                              std::uint8_t rank,
                              std::vector<std::uint8_t>& out);
  /// Encode one SoA-gathered chunk into `dst` (header + payload; `dst` must
  /// have room for kChunkHeader + count*8 bytes, the worst case). `q`/`zz`/
  /// `words` are caller-provided scratch (delta kind only). Thread-safe:
  /// touches no instance state.
  [[nodiscard]] ChunkResult encode_chunk(const double* values,
                                         std::size_t count,
                                         std::span<std::int64_t> q,
                                         std::span<std::uint64_t> zz,
                                         std::span<std::uint64_t> words,
                                         std::uint8_t* dst) const;
  void bump_chunk_stats(ChunkEncoding encoding);
  /// Decode every chunk of a validated container into `dst` (sized
  /// nx*ny*nz, row-major).
  void decode_chunks(std::span<const std::uint8_t> blob,
                     const ContainerInfo& info, double* dst);

  /// Chunk-sized scratch: either arena-backed per call or retained members.
  [[nodiscard]] std::span<double> chunk_scratch(std::size_t count);
  [[nodiscard]] std::span<std::uint64_t> word_scratch(std::size_t count);

  CodecConfig config_;
  util::ScratchArena* arena_;
  util::ThreadPool* pool_{nullptr};
  std::vector<double> chunk_buf_;  // used when arena_ == nullptr
  std::vector<std::uint64_t> word_buf_;
  std::vector<std::uint64_t> zz_buf_;
  std::vector<std::int64_t> q_buf_;
  // Parallel-encode plan scratch (reused; grows once, steady state is
  // zero-alloc like the serial path).
  std::vector<ChunkDesc> chunk_descs_;
  std::vector<ChunkResult> chunk_results_;
  std::vector<double> pstage_buf_;  // when arena_ == nullptr
  std::vector<std::int64_t> pq_buf_;
  std::vector<std::uint64_t> pzz_buf_;
  std::vector<std::uint64_t> pword_buf_;
  EncodeStats stats_;
};

}  // namespace greenvis::codec

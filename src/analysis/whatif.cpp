#include "src/analysis/whatif.hpp"

namespace greenvis::analysis {

ReorganizationWhatIf reorganization_whatif(const fio::FioResult& seq_read,
                                           const fio::FioResult& rand_read,
                                           const fio::FioResult& seq_write,
                                           const fio::FioResult& rand_write) {
  ReorganizationWhatIf w;
  w.random_io_energy =
      rand_read.full_system_energy + rand_write.full_system_energy;
  w.reorganized_energy =
      seq_read.full_system_energy + seq_write.full_system_energy;
  w.insitu_io_energy = util::Joules{0.0};
  return w;
}

PipelineSwitchWhatIf pipeline_switch_whatif(util::Joules post_energy,
                                            util::Seconds post_time,
                                            util::Joules insitu_energy,
                                            util::Seconds insitu_time) {
  PipelineSwitchWhatIf w;
  w.post_energy = post_energy;
  w.post_time = post_time;
  w.insitu_energy = insitu_energy;
  w.insitu_time = insitu_time;
  return w;
}

}  // namespace greenvis::analysis

// Disk power-model fitting — the paper's proposed runtime component:
// "development of power models that estimates the hard disk power based on
// the number of disk accesses, size of each access, and the corresponding
// access pattern" (Sec. VI-A).
//
// The fitter regresses per-window disk power against the mechanical duty
// cycles a drive's activity log exposes (seek / rotate / read / write /
// flush fractions), recovering an idle floor plus per-phase active powers —
// exactly the shape of power::DiskPowerParams. A runtime that knows these
// coefficients can price any planned access pattern before issuing it,
// which is what the advisor consumes.
#pragma once

#include "src/power/calibration.hpp"
#include "src/power/trace.hpp"
#include "src/storage/activity_log.hpp"

namespace greenvis::analysis {

struct DiskPowerFit {
  power::DiskPowerParams params;
  /// RMS of (observed - predicted) over the training windows.
  double rms_residual_watts{0.0};
  std::size_t windows{0};
};

/// Fit a disk power model from a run: `log` is the drive's activity,
/// `trace` the measured power (its disk_model channel plays the role of the
/// subtraction-derived disk power on the real testbed). Windows follow the
/// trace's sampling period.
[[nodiscard]] DiskPowerFit fit_disk_power(const storage::DiskActivityLog& log,
                                          const power::PowerTrace& trace);

/// Predict the disk power of a window with the fitted model.
[[nodiscard]] util::Watts predict_disk_power(
    const power::DiskPowerParams& params, const storage::PhaseDurations& duty,
    util::Seconds window);

}  // namespace greenvis::analysis

// Profile analytics: everything Sec. V derives from the power traces.
#pragma once

#include <map>
#include <string>

#include "src/core/experiment.hpp"
#include "src/power/trace.hpp"
#include "src/trace/timeline.hpp"

namespace greenvis::analysis {

using util::Joules;
using util::Seconds;
using util::Watts;

/// Per-phase power statistics, computed by attributing each 1 Hz sample to
/// the phase active at its interval midpoint.
struct PhaseStats {
  Seconds time{0.0};
  Watts average_power{0.0};
  Joules energy{0.0};
  std::size_t samples{0};
};

[[nodiscard]] std::map<std::string, PhaseStats> phase_power_stats(
    const power::PowerTrace& trace, const trace::Timeline& timeline);

/// Head-to-head comparison of the two pipelines (Figs. 7-11).
struct PipelineComparison {
  std::string case_name;
  Seconds time_post{0.0};
  Seconds time_insitu{0.0};
  Joules energy_post{0.0};
  Joules energy_insitu{0.0};
  Watts avg_power_post{0.0};
  Watts avg_power_insitu{0.0};
  Watts peak_power_post{0.0};
  Watts peak_power_insitu{0.0};

  [[nodiscard]] double time_reduction() const {
    return 1.0 - time_insitu / time_post;
  }
  [[nodiscard]] double energy_savings() const {
    return 1.0 - energy_insitu / energy_post;
  }
  [[nodiscard]] double avg_power_increase() const {
    return avg_power_insitu / avg_power_post - 1.0;
  }
  /// Efficiency improvement (Fig. 11): identical science output, so the
  /// improvement is E_post / E_insitu - 1.
  [[nodiscard]] double efficiency_improvement() const {
    return energy_post / energy_insitu - 1.0;
  }
};

[[nodiscard]] PipelineComparison compare(const core::PipelineMetrics& post,
                                         const core::PipelineMetrics& insitu);

/// Sec. V-C: how much of the in-situ savings comes from avoided data
/// movement (dynamic) versus avoided idling (static). Following the paper's
/// method: dynamic savings = the I/O stages' average *dynamic* power times
/// the execution-time difference; static savings = the rest.
struct SavingsBreakdown {
  Joules total_savings{0.0};
  Joules dynamic_savings{0.0};
  Joules static_savings{0.0};

  [[nodiscard]] double dynamic_fraction() const {
    return total_savings.value() > 0.0
               ? dynamic_savings / total_savings
               : 0.0;
  }
  [[nodiscard]] double static_fraction() const {
    return total_savings.value() > 0.0 ? static_savings / total_savings : 0.0;
  }
};

[[nodiscard]] SavingsBreakdown savings_breakdown(
    const core::PipelineMetrics& post, const core::PipelineMetrics& insitu,
    Watts io_stage_dynamic_power);

}  // namespace greenvis::analysis

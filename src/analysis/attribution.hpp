// Energy-profile reporting: the human/CI-facing side of obs::EnergyReport.
//
// The attributor (src/obs/energy.hpp) produces a conservation-checked
// per-stage rail breakdown; this layer ranks it, formats the "where do the
// joules go" table, and serializes the deterministic ENERGY_profile.json
// artifact the --energy-smoke gate diffs against a committed golden. Every
// number is virtual-clock derived, so the file is byte-identical across
// hosts, thread counts, and reruns.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/energy.hpp"

namespace greenvis::analysis {

/// One row of the top-consumers ranking.
struct EnergyConsumer {
  std::string stage;
  util::Joules joules{0.0};
  /// Fraction of the report total in [0, 1].
  double share{0.0};
};

/// Stages ranked by total joules, descending (ties broken by name so the
/// ordering is deterministic); at most `n` entries. Zero-energy stages are
/// skipped.
[[nodiscard]] std::vector<EnergyConsumer> top_consumers(
    const obs::EnergyReport& report, std::size_t n);

/// Serialize schema "greenvis.energy_profile.v1": per-stage energy table
/// (static/dynamic split and per-rail joules), top-`top_n` consumers, and
/// the report-level totals with the paper's Table II static-vs-dynamic
/// split. Deterministic: doubles at max precision, stages in sorted order.
void write_energy_profile_json(std::ostream& os,
                               const obs::EnergyReport& report,
                               const std::string& pipeline,
                               const std::string& case_name,
                               std::size_t top_n = 5);

}  // namespace greenvis::analysis

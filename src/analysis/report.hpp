// Markdown study reports.
//
// Packages a full greenness study (both pipelines, any number of case
// studies) into a self-contained markdown document: the deliverable a
// facility engineer would circulate after running the audit.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/metrics.hpp"

namespace greenvis::analysis {

struct StudyCase {
  core::PipelineMetrics post;
  core::PipelineMetrics insitu;
};

struct ReportConfig {
  std::string title{"Greenness audit"};
  std::string testbed_description{
      "simulated 2x Xeon E5-2665, 64 GB DDR3-1333, Seagate 7200rpm"};
  /// I/O-stage dynamic power for the Sec. V-C decomposition (from a Table
  /// II-style stage measurement).
  util::Watts io_stage_dynamic_power{10.0};
};

/// Render the report. Sections: summary table, per-case detail (phase
/// powers, savings decomposition), and a recommendation paragraph.
[[nodiscard]] std::string render_report(const std::vector<StudyCase>& cases,
                                        const ReportConfig& config = {});

}  // namespace greenvis::analysis

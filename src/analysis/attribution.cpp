#include "src/analysis/attribution.hpp"

#include <algorithm>
#include <iomanip>

#include "src/obs/json.hpp"

namespace greenvis::analysis {

namespace {

void json_double(std::ostream& os, double v) {
  os << std::setprecision(17) << v;
}

void json_rails(std::ostream& os, const obs::RailEnergy& rails) {
  os << "{\"cpu_j\": ";
  json_double(os, rails.cpu.value());
  os << ", \"dram_j\": ";
  json_double(os, rails.dram.value());
  os << ", \"disk_j\": ";
  json_double(os, rails.disk.value());
  os << ", \"rest_j\": ";
  json_double(os, rails.rest.value());
  os << ", \"total_j\": ";
  json_double(os, rails.total().value());
  os << "}";
}

}  // namespace

std::vector<EnergyConsumer> top_consumers(const obs::EnergyReport& report,
                                          std::size_t n) {
  const double total = report.total().value();
  std::vector<EnergyConsumer> ranked;
  ranked.reserve(report.stages.size());
  for (const obs::StageEnergy& s : report.stages) {
    const util::Joules j = s.total();
    if (j.value() <= 0.0) {
      continue;
    }
    ranked.push_back(
        EnergyConsumer{s.name, j, total > 0.0 ? j.value() / total : 0.0});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const EnergyConsumer& a, const EnergyConsumer& b) {
              if (a.joules != b.joules) {
                return a.joules > b.joules;
              }
              return a.stage < b.stage;
            });
  if (ranked.size() > n) {
    ranked.resize(n);
  }
  return ranked;
}

void write_energy_profile_json(std::ostream& os,
                               const obs::EnergyReport& report,
                               const std::string& pipeline,
                               const std::string& case_name,
                               std::size_t top_n) {
  os << "{\n  \"schema\": \"greenvis.energy_profile.v1\",\n  \"pipeline\": ";
  obs::detail::write_json_string(os, pipeline);
  os << ",\n  \"case\": ";
  obs::detail::write_json_string(os, case_name);
  os << ",\n  \"duration_s\": ";
  json_double(os, report.duration.value());
  os << ",\n  \"total_j\": ";
  json_double(os, report.total().value());
  os << ",\n  \"static_j\": ";
  json_double(os, report.static_total().value());
  os << ",\n  \"dynamic_j\": ";
  json_double(os, report.dynamic_total().value());
  os << ",\n  \"static_share\": ";
  json_double(os, report.static_share());
  os << ",\n  \"conservation_error\": ";
  json_double(os, report.conservation_error);
  os << ",\n  \"rails\": {\"static\": ";
  json_rails(os, report.static_rails);
  os << ", \"dynamic\": ";
  json_rails(os, report.dynamic_rails);
  os << "},\n  \"stages\": [";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const obs::StageEnergy& s = report.stages[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    obs::detail::write_json_string(os, s.name);
    os << ", \"busy_s\": ";
    json_double(os, s.busy.value());
    os << ", \"total_j\": ";
    json_double(os, s.total().value());
    os << ", \"static\": ";
    json_rails(os, s.static_rails);
    os << ", \"dynamic\": ";
    json_rails(os, s.dynamic_rails);
    os << "}";
  }
  os << "\n  ],\n  \"top_consumers\": [";
  const std::vector<EnergyConsumer> ranked = top_consumers(report, top_n);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"stage\": ";
    obs::detail::write_json_string(os, ranked[i].stage);
    os << ", \"joules\": ";
    json_double(os, ranked[i].joules.value());
    os << ", \"share\": ";
    json_double(os, ranked[i].share);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace greenvis::analysis

// Energy-delay metrics and Pareto-front utilities.
//
// The sampling/compression/triage ablations trade a cost (energy) against a
// quality loss (RMS error, dropped frames) or a delay. These helpers give
// the benches and downstream users a principled way to compare such
// configurations: energy-delay products for pipeline runs, and Pareto
// filtering for two-objective sweeps.
#pragma once

#include <string>
#include <vector>

#include "src/core/experiment.hpp"

namespace greenvis::analysis {

/// Energy-delay product (J*s) — penalizes slow-but-frugal configurations.
[[nodiscard]] double energy_delay_product(const core::PipelineMetrics& m);
/// ED^2P (J*s^2) — the delay-dominated variant used for latency-critical
/// settings.
[[nodiscard]] double energy_delay_squared_product(
    const core::PipelineMetrics& m);

/// A candidate configuration in a two-objective sweep: lower is better on
/// both axes.
struct ParetoPoint {
  std::string label;
  double cost{0.0};     // e.g. energy (J)
  double penalty{0.0};  // e.g. RMS error, stall seconds, frames dropped
};

/// The subset of `points` not dominated by any other (a point dominates
/// another when it is no worse on both axes and strictly better on one).
/// Returned sorted by cost; ties and duplicates are kept.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(
    std::vector<ParetoPoint> points);

/// True when `a` dominates `b`.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

}  // namespace greenvis::analysis

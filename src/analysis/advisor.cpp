#include "src/analysis/advisor.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::analysis {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kKeepPostProcessing:
      return "keep post-processing";
    case Strategy::kInSitu:
      return "in-situ visualization";
    case Strategy::kDataReorganization:
      return "data reorganization";
    case Strategy::kFrequencyScaling:
      return "frequency scaling during I/O";
  }
  return "?";
}

AccessPattern snapshot_access_pattern(util::Bytes written, util::Bytes read,
                                      std::uint64_t accesses,
                                      bool exploratory_analysis_required) {
  AccessPattern p;
  p.accesses = accesses;
  const std::uint64_t total = written.value() + read.value();
  p.bytes_per_access = util::Bytes{accesses > 0 ? total / accesses : 0};
  p.random_fraction = 0.0;  // whole-file snapshot streams
  p.read_fraction =
      total > 0 ? read.as_double() / static_cast<double>(total) : 0.5;
  p.exploratory_analysis_required = exploratory_analysis_required;
  return p;
}

Advisor::Advisor(const machine::NodeSpec& node,
                 const power::DiskPowerParams& disk_power,
                 util::Watts idle_system_power)
    : node_(node), disk_power_(disk_power), idle_power_(idle_system_power) {}

util::Seconds Advisor::predict_io_time(const AccessPattern& pattern) const {
  GREENVIS_REQUIRE(pattern.random_fraction >= 0.0 &&
                   pattern.random_fraction <= 1.0);
  const auto& d = node_.disk;
  const double per_random =
      d.average_seek.value() + d.average_rotational_latency().value() +
      pattern.bytes_per_access.as_double() / d.sustained_rate.value();
  const double per_sequential =
      pattern.bytes_per_access.as_double() / d.sustained_rate.value();
  const double n = static_cast<double>(pattern.accesses);
  return util::Seconds{n * (pattern.random_fraction * per_random +
                            (1.0 - pattern.random_fraction) * per_sequential)};
}

util::Joules Advisor::predict_io_energy(const AccessPattern& pattern) const {
  const util::Seconds t = predict_io_time(pattern);
  // Seek-bound time draws seek power, streaming time draws transfer power.
  const util::Watts transfer =
      disk_power_.read_transfer * pattern.read_fraction +
      disk_power_.write_transfer * (1.0 - pattern.read_fraction);
  const util::Watts disk_dynamic =
      disk_power_.seek * pattern.random_fraction +
      transfer * (1.0 - pattern.random_fraction);
  return (idle_power_ + disk_dynamic) * t;
}

Recommendation Advisor::recommend(const AccessPattern& pattern) const {
  Recommendation rec;

  // Baseline: leave the pipeline alone.
  StrategyEstimate keep;
  keep.strategy = Strategy::kKeepPostProcessing;
  keep.io_time = predict_io_time(pattern);
  keep.io_energy = predict_io_energy(pattern);
  keep.preserves_exploration = true;
  keep.rationale = "baseline";
  rec.all.push_back(keep);

  // In-situ: the I/O disappears entirely, and exploration with it.
  StrategyEstimate insitu;
  insitu.strategy = Strategy::kInSitu;
  insitu.io_time = util::Seconds{0.0};
  insitu.io_energy = util::Joules{0.0};
  insitu.preserves_exploration = false;
  insitu.rationale = "eliminates all off-chip data movement and idle time";
  rec.all.push_back(insitu);

  // Reorganization: the same bytes move, but sequentially.
  AccessPattern sequential = pattern;
  sequential.random_fraction = 0.0;
  StrategyEstimate reorg;
  reorg.strategy = Strategy::kDataReorganization;
  reorg.io_time = predict_io_time(sequential);
  reorg.io_energy = predict_io_energy(sequential);
  reorg.preserves_exploration = true;
  reorg.rationale = "software-directed layout turns random I/O sequential";
  rec.all.push_back(reorg);

  // Frequency scaling: I/O time is disk-bound, so dropping the CPU clock
  // during I/O trims the static floor without slowing the stage. The gain is
  // bounded: only the core dynamic/idle share scales.
  StrategyEstimate dvfs;
  dvfs.strategy = Strategy::kFrequencyScaling;
  dvfs.io_time = keep.io_time;
  // Conservative estimate: ~8 W of package power recovered during I/O.
  dvfs.io_energy = keep.io_energy - util::Watts{8.0} * keep.io_time;
  dvfs.preserves_exploration = true;
  dvfs.rationale = "disk-bound I/O tolerates a lower CPU clock";
  rec.all.push_back(dvfs);

  // Choose: cheapest strategy satisfying the exploration requirement.
  const StrategyEstimate* best = nullptr;
  for (const auto& e : rec.all) {
    if (pattern.exploratory_analysis_required && !e.preserves_exploration) {
      continue;
    }
    if (best == nullptr || e.io_energy < best->io_energy) {
      best = &e;
    }
  }
  GREENVIS_ENSURE(best != nullptr);
  rec.chosen = *best;
  return rec;
}

}  // namespace greenvis::analysis

// Sec. V-D: the data-reorganization what-if.
//
// "For an application exhibiting random I/O behavior, we could save 242.2 kJ
// of energy by adopting in-situ visualization. However, we will lose the
// capability for exploratory analysis. But, if we were to adopt
// data-rearrangement techniques on the post-processing pipeline, we will
// lose out only 7.3 kJ of energy, instead of 242.2 kJ, while at the same
// time retaining all of the exploratory analysis capabilities."
//
// The analysis takes the four fio rows and prices the three strategies; the
// bench additionally demonstrates a live reorganization with the storage
// layer's Reorganizer.
#pragma once

#include "src/fio/job.hpp"
#include "src/util/units.hpp"

namespace greenvis::analysis {

struct ReorganizationWhatIf {
  /// Random-I/O post-processing app: random read + random write energy.
  util::Joules random_io_energy{0.0};
  /// After software-directed reorganization: sequential read + write energy.
  util::Joules reorganized_energy{0.0};
  /// In-situ: no disk I/O at all.
  util::Joules insitu_io_energy{0.0};

  /// Energy the in-situ switch would save over the random-I/O app.
  [[nodiscard]] util::Joules insitu_savings() const {
    return random_io_energy - insitu_io_energy;
  }
  /// Energy still "lost" after reorganization, relative to in-situ.
  [[nodiscard]] util::Joules reorganization_residual() const {
    return reorganized_energy - insitu_io_energy;
  }
};

/// Build the what-if from Table III results (full-system energies).
[[nodiscard]] ReorganizationWhatIf reorganization_whatif(
    const fio::FioResult& seq_read, const fio::FioResult& rand_read,
    const fio::FioResult& seq_write, const fio::FioResult& rand_write);

/// Sec. V-A/V-B priced from measured pipelines: what switching one workload
/// from post-processing to in-situ buys (the campaign engine's warm cache
/// supplies both sides of every pair — see campaign/query.hpp).
struct PipelineSwitchWhatIf {
  util::Joules post_energy{0.0};
  util::Joules insitu_energy{0.0};
  util::Seconds post_time{0.0};
  util::Seconds insitu_time{0.0};

  [[nodiscard]] util::Joules energy_savings() const {
    return post_energy - insitu_energy;
  }
  [[nodiscard]] util::Seconds time_savings() const {
    return post_time - insitu_time;
  }
  /// Post-processing energy per in-situ joule (Fig. 9's ratio view).
  [[nodiscard]] double energy_ratio() const {
    return insitu_energy.value() > 0.0 ? post_energy / insitu_energy : 0.0;
  }
};

[[nodiscard]] PipelineSwitchWhatIf pipeline_switch_whatif(
    util::Joules post_energy, util::Seconds post_time,
    util::Joules insitu_energy, util::Seconds insitu_time);

}  // namespace greenvis::analysis

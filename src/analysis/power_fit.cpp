#include "src/analysis/power_fit.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/linalg.hpp"

namespace greenvis::analysis {

namespace {

std::vector<double> duty_features(const storage::PhaseDurations& duty,
                                  double window) {
  std::vector<double> f(1 + storage::kDiskPhaseCount);
  f[0] = 1.0;  // idle / intercept
  for (std::size_t p = 0; p < storage::kDiskPhaseCount; ++p) {
    f[1 + p] = std::min(1.0, duty.busy[p].value() / window);
  }
  return f;
}

}  // namespace

util::Watts predict_disk_power(const power::DiskPowerParams& params,
                               const storage::PhaseDurations& duty,
                               util::Seconds window) {
  GREENVIS_REQUIRE(window.value() > 0.0);
  const auto f = duty_features(duty, window.value());
  return params.idle + params.seek * f[1] + params.rotate_wait * f[2] +
         params.read_transfer * f[3] + params.write_transfer * f[4] +
         params.flush * f[5];
}

DiskPowerFit fit_disk_power(const storage::DiskActivityLog& log,
                            const power::PowerTrace& trace) {
  GREENVIS_REQUIRE_MSG(!trace.empty(), "need at least one sample to fit");
  const double period = trace.period().value();

  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  for (const auto& s : trace.samples()) {
    const util::Seconds t1 = s.time;
    const util::Seconds t0 = t1 - trace.period();
    features.push_back(duty_features(log.duty_in(t0, t1), period));
    targets.push_back(s.disk_model.value());
  }
  // A modest ridge keeps phases absent from the training run near zero
  // instead of exploding on collinearity.
  const auto beta = util::least_squares(features, targets, 1e-6);

  DiskPowerFit fit;
  fit.windows = targets.size();
  fit.params.idle = util::Watts{beta[0]};
  fit.params.seek = util::Watts{beta[1]};
  fit.params.rotate_wait = util::Watts{beta[2]};
  fit.params.read_transfer = util::Watts{beta[3]};
  fit.params.write_transfer = util::Watts{beta[4]};
  fit.params.flush = util::Watts{beta[5]};

  double ss = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < beta.size(); ++j) {
      pred += features[i][j] * beta[j];
    }
    const double r = targets[i] - pred;
    ss += r * r;
  }
  fit.rms_residual_watts = std::sqrt(ss / static_cast<double>(targets.size()));
  return fit;
}

}  // namespace greenvis::analysis

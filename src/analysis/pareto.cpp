#include "src/analysis/pareto.hpp"

#include <algorithm>

namespace greenvis::analysis {

double energy_delay_product(const core::PipelineMetrics& m) {
  return m.energy.value() * m.duration.value();
}

double energy_delay_squared_product(const core::PipelineMetrics& m) {
  return m.energy.value() * m.duration.value() * m.duration.value();
}

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.cost <= b.cost && a.penalty <= b.penalty;
  const bool strictly_better = a.cost < b.cost || a.penalty < b.penalty;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  std::vector<ParetoPoint> front;
  for (const ParetoPoint& candidate : points) {
    bool dominated = false;
    for (const ParetoPoint& other : points) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      front.push_back(candidate);
    }
  }
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.cost < b.cost;
            });
  return front;
}

}  // namespace greenvis::analysis

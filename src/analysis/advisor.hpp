// Power-optimization advisor — the runtime system sketched in the paper's
// future work: "the runtime will decide the power optimization technique to
// be used" from a characterization of the workload's disk accesses.
//
// Given an access-pattern summary and the user's need for post-hoc
// exploratory analysis, the advisor prices each strategy with the disk power
// model and recommends the cheapest one that preserves the requirements.
#pragma once

#include <string>
#include <vector>

#include "src/machine/spec.hpp"
#include "src/power/calibration.hpp"
#include "src/util/units.hpp"

namespace greenvis::analysis {

/// Characterization of an application's I/O behaviour (the inputs the
/// paper's proposed power model needs: number of accesses, sizes, pattern).
struct AccessPattern {
  std::uint64_t accesses{0};
  util::Bytes bytes_per_access{0};
  /// Fraction of accesses to non-contiguous locations.
  double random_fraction{0.0};
  /// Reads as a fraction of all accesses.
  double read_fraction{0.5};
  /// Does the scientist need post-hoc exploratory analysis?
  bool exploratory_analysis_required{true};
};

/// Characterize a pipeline's snapshot traffic (totals a campaign result
/// records) as an AccessPattern the advisor can price. Snapshot I/O is
/// streamed whole-file, so the pattern is sequential; `accesses` is the
/// number of snapshot writes + reads.
[[nodiscard]] AccessPattern snapshot_access_pattern(
    util::Bytes written, util::Bytes read, std::uint64_t accesses,
    bool exploratory_analysis_required);

enum class Strategy {
  kKeepPostProcessing,
  kInSitu,
  kDataReorganization,
  kFrequencyScaling,
};

[[nodiscard]] const char* strategy_name(Strategy strategy);

struct StrategyEstimate {
  Strategy strategy{Strategy::kKeepPostProcessing};
  util::Seconds io_time{0.0};
  util::Joules io_energy{0.0};
  bool preserves_exploration{true};
  std::string rationale;
};

struct Recommendation {
  StrategyEstimate chosen;
  std::vector<StrategyEstimate> all;
};

class Advisor {
 public:
  Advisor(const machine::NodeSpec& node,
          const power::DiskPowerParams& disk_power,
          util::Watts idle_system_power);

  /// Predicted I/O time of the pattern on the HDD model (the disk power
  /// model of the paper's future work).
  [[nodiscard]] util::Seconds predict_io_time(
      const AccessPattern& pattern) const;
  /// Predicted full-system energy attributable to the I/O phase.
  [[nodiscard]] util::Joules predict_io_energy(
      const AccessPattern& pattern) const;

  [[nodiscard]] Recommendation recommend(const AccessPattern& pattern) const;

 private:
  machine::NodeSpec node_;
  power::DiskPowerParams disk_power_;
  util::Watts idle_power_;
};

}  // namespace greenvis::analysis

#include "src/analysis/report.hpp"

#include <sstream>

#include "src/util/error.hpp"
#include "src/util/table.hpp"

namespace greenvis::analysis {

namespace {

std::string md_row(std::initializer_list<std::string> cells) {
  std::string out = "|";
  for (const auto& c : cells) {
    out += " " + c + " |";
  }
  out += "\n";
  return out;
}

}  // namespace

std::string render_report(const std::vector<StudyCase>& cases,
                          const ReportConfig& config) {
  GREENVIS_REQUIRE(!cases.empty());
  std::ostringstream md;
  md << "# " << config.title << "\n\n";
  md << "Testbed: " << config.testbed_description << ".\n\n";

  // ---- summary ----
  md << "## Summary\n\n";
  md << md_row({"Case", "Pipeline", "Time (s)", "Avg W", "Peak W",
                "Energy (kJ)", "Savings"});
  md << md_row({"---", "---", "---:", "---:", "---:", "---:", "---:"});
  for (const auto& c : cases) {
    const PipelineComparison cmp = compare(c.post, c.insitu);
    md << md_row({c.post.case_name, c.post.pipeline_name,
                  util::cell(cmp.time_post.value()),
                  util::cell(cmp.avg_power_post.value()),
                  util::cell(cmp.peak_power_post.value()),
                  util::cell(cmp.energy_post.value() / 1000.0), "--"});
    md << md_row({c.insitu.case_name, c.insitu.pipeline_name,
                  util::cell(cmp.time_insitu.value()),
                  util::cell(cmp.avg_power_insitu.value()),
                  util::cell(cmp.peak_power_insitu.value()),
                  util::cell(cmp.energy_insitu.value() / 1000.0),
                  util::cell_percent(cmp.energy_savings())});
  }
  md << "\n";

  // ---- per-case detail ----
  for (const auto& c : cases) {
    const PipelineComparison cmp = compare(c.post, c.insitu);
    md << "## " << c.post.case_name << "\n\n";
    md << "In-situ finishes " << util::cell_percent(cmp.time_reduction())
       << " sooner at " << util::cell_percent(cmp.avg_power_increase())
       << " higher average power, for a net energy saving of "
       << util::cell_percent(cmp.energy_savings())
       << " and an energy-efficiency gain of "
       << util::cell_percent(cmp.efficiency_improvement()) << ".\n\n";

    md << "### Stage power (post-processing)\n\n";
    md << md_row({"Stage", "Time (s)", "Avg W", "Energy (kJ)"});
    md << md_row({"---", "---:", "---:", "---:"});
    for (const auto& [phase, stats] :
         phase_power_stats(c.post.trace, c.post.timeline)) {
      md << md_row({phase, util::cell(stats.time.value()),
                    util::cell(stats.average_power.value()),
                    util::cell(stats.energy.value() / 1000.0)});
    }
    md << "\n";

    const SavingsBreakdown b =
        savings_breakdown(c.post, c.insitu, config.io_stage_dynamic_power);
    md << "### Where the savings come from\n\n";
    md << "Of the " << util::cell(b.total_savings.value() / 1000.0)
       << " kJ saved, " << util::cell(b.dynamic_savings.value() / 1000.0)
       << " kJ (" << util::cell_percent(b.dynamic_fraction())
       << ") is avoided data movement and "
       << util::cell(b.static_savings.value() / 1000.0) << " kJ ("
       << util::cell_percent(b.static_fraction())
       << ") is avoided idle time.\n\n";
  }

  // ---- recommendation ----
  const PipelineComparison first = compare(cases.front().post,
                                           cases.front().insitu);
  md << "## Recommendation\n\n";
  if (first.energy_savings() > 0.25) {
    md << "The workload is I/O-bound enough that in-situ visualization "
          "pays substantially. If post-hoc exploration is required, "
          "consider data reorganization or compression instead — most of "
          "the savings above come from idle time that those techniques "
          "also reclaim.\n";
  } else {
    md << "The I/O share of this workload is modest; in-situ helps but "
          "the simpler post-processing pipeline costs little extra. "
          "Revisit if output frequency or data volume grows.\n";
  }
  return md.str();
}

}  // namespace greenvis::analysis

#include "src/analysis/metrics.hpp"

#include "src/util/error.hpp"

namespace greenvis::analysis {

std::map<std::string, PhaseStats> phase_power_stats(
    const power::PowerTrace& trace, const trace::Timeline& timeline) {
  std::map<std::string, PhaseStats> stats;
  std::map<std::string, double> power_sum;
  const Seconds period = trace.period();
  for (const auto& s : trace.samples()) {
    const Seconds mid = s.time - period / 2.0;
    std::string phase = timeline.category_at(mid);
    if (phase.empty()) {
      phase = "Idle";
    }
    auto& ps = stats[phase];
    ps.time += period;
    ps.energy += s.system * period;
    power_sum[phase] += s.system.value();
    ++ps.samples;
  }
  for (auto& [name, ps] : stats) {
    ps.average_power =
        Watts{power_sum[name] / static_cast<double>(ps.samples)};
  }
  return stats;
}

PipelineComparison compare(const core::PipelineMetrics& post,
                           const core::PipelineMetrics& insitu) {
  GREENVIS_REQUIRE_MSG(post.case_name == insitu.case_name,
                       "comparing different case studies");
  PipelineComparison c;
  c.case_name = post.case_name;
  c.time_post = post.duration;
  c.time_insitu = insitu.duration;
  c.energy_post = post.energy;
  c.energy_insitu = insitu.energy;
  c.avg_power_post = post.average_power;
  c.avg_power_insitu = insitu.average_power;
  c.peak_power_post = post.peak_power;
  c.peak_power_insitu = insitu.peak_power;
  return c;
}

SavingsBreakdown savings_breakdown(const core::PipelineMetrics& post,
                                   const core::PipelineMetrics& insitu,
                                   Watts io_stage_dynamic_power) {
  SavingsBreakdown b;
  b.total_savings = post.energy - insitu.energy;
  const Seconds time_diff = post.duration - insitu.duration;
  // Paper, Sec. V-C: "The dynamic energy savings is calculated by
  // multiplying the average dynamic power [of the nnread/nnwrite stages]
  // with the corresponding time spent, i.e. the difference in execution
  // time between in-situ and post-processing pipelines."
  b.dynamic_savings = io_stage_dynamic_power * time_diff;
  b.static_savings = b.total_savings - b.dynamic_savings;
  return b;
}

}  // namespace greenvis::analysis

#include "src/trace/timeline.hpp"

#include <algorithm>

#include "src/trace/clock.hpp"
#include "src/util/csv.hpp"
#include "src/util/error.hpp"

namespace greenvis::trace {

void Timeline::record(std::string_view category, Seconds begin, Seconds end) {
  GREENVIS_REQUIRE_MSG(end >= begin, "interval must not be negative");
  intervals_.push_back(Interval{std::string{category}, begin, end});
}

Seconds Timeline::total(std::string_view category) const {
  Seconds sum{0.0};
  for (const auto& iv : intervals_) {
    if (iv.category == category) {
      sum += iv.duration();
    }
  }
  return sum;
}

Seconds Timeline::total_recorded() const {
  Seconds sum{0.0};
  for (const auto& iv : intervals_) {
    sum += iv.duration();
  }
  return sum;
}

Seconds Timeline::span_begin() const {
  if (intervals_.empty()) {
    return Seconds{0.0};
  }
  auto it = std::min_element(
      intervals_.begin(), intervals_.end(),
      [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  return it->begin;
}

Seconds Timeline::span_end() const {
  if (intervals_.empty()) {
    return Seconds{0.0};
  }
  auto it = std::max_element(
      intervals_.begin(), intervals_.end(),
      [](const Interval& a, const Interval& b) { return a.end < b.end; });
  return it->end;
}

std::map<std::string, double> Timeline::fractions() const {
  std::map<std::string, double> out;
  const Seconds total_time = total_recorded();
  if (total_time.value() <= 0.0) {
    return out;
  }
  for (const auto& iv : intervals_) {
    out[iv.category] += iv.duration() / total_time;
  }
  return out;
}

std::string Timeline::category_at(Seconds t) const {
  // Intervals are half-open, so at an abutting boundary (end == next begin)
  // only the later phase contains t and it wins automatically. Among
  // overlapping intervals the one that began last wins — the innermost,
  // most recently started phase — independent of recording order. Recording
  // order breaks exact begin ties only (later recording wins).
  const Interval* best = nullptr;
  for (const auto& iv : intervals_) {
    if (t >= iv.begin && t < iv.end &&
        (best == nullptr || iv.begin >= best->begin)) {
      best = &iv;
    }
  }
  return best == nullptr ? std::string{} : best->category;
}

std::vector<Interval> Timeline::gaps() const {
  std::vector<Interval> out;
  if (intervals_.empty()) {
    return out;
  }
  std::vector<Interval> sorted = intervals_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  Seconds covered_to = sorted.front().begin;
  for (const auto& iv : sorted) {
    if (iv.begin > covered_to) {
      out.push_back(Interval{"", covered_to, iv.begin});
    }
    covered_to = std::max(covered_to, iv.end);
  }
  return out;
}

void Timeline::write_csv(std::ostream& os) const {
  util::CsvWriter csv{os};
  csv.row({"category", "begin_s", "end_s", "duration_s"});
  for (const auto& iv : intervals_) {
    csv.field(iv.category);
    csv.field(iv.begin.value());
    csv.field(iv.end.value());
    csv.field(iv.duration().value());
    csv.end_row();
  }
}

ScopedPhase::ScopedPhase(Timeline& timeline, const VirtualClock& clock,
                         std::string category)
    : timeline_(timeline),
      clock_(clock),
      category_(std::move(category)),
      begin_(clock.now()) {}

ScopedPhase::~ScopedPhase() {
  timeline_.record(category_, begin_, clock_.now());
}

}  // namespace greenvis::trace

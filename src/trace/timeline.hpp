// Phase timeline.
//
// Records labeled intervals of virtual time ("simulation", "write", "read",
// "visualization", ...). The analysis layer uses it for Fig. 4 (percentage of
// execution time per stage) and for segmenting power profiles into the two
// "major power phases" the paper describes in Sec. V-A.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/units.hpp"

namespace greenvis::trace {

using util::Seconds;

struct Interval {
  std::string category;
  Seconds begin{0.0};
  Seconds end{0.0};

  [[nodiscard]] Seconds duration() const { return end - begin; }
};

class Timeline {
 public:
  /// Record a closed interval. `end >= begin` required.
  void record(std::string_view category, Seconds begin, Seconds end);

  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }

  /// Sum of interval durations for one category.
  [[nodiscard]] Seconds total(std::string_view category) const;

  /// Sum over all intervals.
  [[nodiscard]] Seconds total_recorded() const;

  /// Earliest begin / latest end over all intervals; zero when empty.
  [[nodiscard]] Seconds span_begin() const;
  [[nodiscard]] Seconds span_end() const;

  /// Category → fraction of total recorded time. This is exactly the Fig. 4
  /// quantity.
  [[nodiscard]] std::map<std::string, double> fractions() const;

  /// The category active at time `t`, or empty string if none. Intervals are
  /// half-open [begin, end), so when phases abut (end == next begin) a
  /// boundary sample belongs to the later phase — matching how a 1 Hz
  /// sampler attributes it. Among overlapping intervals the latest-started
  /// one wins (the innermost phase), independent of recording order.
  [[nodiscard]] std::string category_at(Seconds t) const;

  /// Maximal uncovered stretches strictly inside [span_begin, span_end):
  /// times where no interval is active. Categories are empty strings.
  /// Useful for spotting unattributed time in a phase breakdown.
  [[nodiscard]] std::vector<Interval> gaps() const;

  /// CSV: category,begin_s,end_s,duration_s
  void write_csv(std::ostream& os) const;

 private:
  std::vector<Interval> intervals_;
};

/// RAII phase marker: records [t_open, t_close) on destruction.
class ScopedPhase {
 public:
  ScopedPhase(Timeline& timeline, const class VirtualClock& clock,
              std::string category);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Timeline& timeline_;
  const VirtualClock& clock_;
  std::string category_;
  Seconds begin_;
};

}  // namespace greenvis::trace

// Virtual time.
//
// The paper measures wall-clock seconds on a physical node. We replace the
// wall clock with a virtual clock owned by the simulated node: stages advance
// it by their *modeled* duration (derived from operation counts), which makes
// every experiment deterministic and host-independent while preserving the
// 1 Hz sampling discipline of the paper's meters.
#pragma once

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace greenvis::trace {

using util::Seconds;

/// Monotonic simulated clock. Never goes backwards; `advance` with a negative
/// duration is a contract violation.
class VirtualClock {
 public:
  [[nodiscard]] Seconds now() const { return now_; }

  void advance(Seconds dt) {
    GREENVIS_REQUIRE_MSG(dt.value() >= 0.0, "clock cannot run backwards");
    now_ += dt;
  }

  /// Jump to an absolute time at or after `now()`.
  void advance_to(Seconds t) {
    GREENVIS_REQUIRE_MSG(t >= now_, "clock cannot run backwards");
    now_ = t;
  }

  void reset() { now_ = Seconds{0.0}; }

 private:
  Seconds now_{0.0};
};

}  // namespace greenvis::trace

// Disk activity log.
//
// Block devices record what their mechanics were doing (seeking, waiting on
// rotation, transferring, flushing) as labeled intervals of virtual time.
// The power model turns per-phase duty cycles into the disk's dynamic power,
// which is how the paper derives Table III's "disk dynamic power" column.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "src/util/units.hpp"

namespace greenvis::storage {

using util::Seconds;

enum class DiskPhase : std::size_t {
  kSeek = 0,
  kRotate = 1,
  kReadTransfer = 2,
  kWriteTransfer = 3,
  kFlush = 4,
};
inline constexpr std::size_t kDiskPhaseCount = 5;

[[nodiscard]] const char* disk_phase_name(DiskPhase phase);

struct DiskSegment {
  Seconds begin{0.0};
  Seconds end{0.0};
  DiskPhase phase{DiskPhase::kSeek};
};

/// Per-phase busy time within a window.
struct PhaseDurations {
  std::array<Seconds, kDiskPhaseCount> busy{};

  [[nodiscard]] Seconds of(DiskPhase phase) const {
    return busy[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] Seconds total() const {
    Seconds sum{0.0};
    for (Seconds s : busy) {
      sum += s;
    }
    return sum;
  }
};

class DiskActivityLog {
 public:
  /// Record a busy interval; intervals must be appended in non-decreasing
  /// begin order (devices service requests serially).
  void record(DiskPhase phase, Seconds begin, Seconds end);

  [[nodiscard]] const std::vector<DiskSegment>& segments() const {
    return segments_;
  }

  /// Busy time per phase overlapping [t0, t1).
  [[nodiscard]] PhaseDurations duty_in(Seconds t0, Seconds t1) const;

  /// Busy time per phase over the whole log.
  [[nodiscard]] PhaseDurations totals() const { return totals_; }

  void clear();

 private:
  std::vector<DiskSegment> segments_;
  PhaseDurations totals_;
};

}  // namespace greenvis::storage

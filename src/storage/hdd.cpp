#include "src/storage/hdd.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace greenvis::storage {

HddModel::HddModel(const HddParams& params)
    : params_(params), name_(params.spec.model) {
  GREENVIS_REQUIRE(params_.spec.capacity.value() > 0);
  GREENVIS_REQUIRE(params_.spec.sustained_rate.value() > 0.0);
  GREENVIS_REQUIRE(params_.zone_amplitude >= 0.0 && params_.zone_amplitude < 1.0);
  GREENVIS_REQUIRE(params_.write_rate_scale > 0.0);
}

Seconds HddModel::seek_time(std::uint64_t from, std::uint64_t to) const {
  const double distance =
      static_cast<double>(from > to ? from - to : to - from);
  // Within roughly one track the head does not move: short skips cost only
  // the rotational wait for the target sector to come around.
  const double track_bytes = params_.spec.sustained_rate.value() *
                             params_.spec.rotation_period().value();
  if (distance < track_bytes) {
    return Seconds{0.0};
  }
  const double fraction = distance / params_.spec.capacity.as_double();
  const double settle = params_.spec.settle_time.value();
  const double full = params_.spec.full_stroke_seek.value();
  return Seconds{settle + (full - settle) * std::sqrt(fraction)};
}

util::BytesPerSecond HddModel::media_rate(std::uint64_t offset,
                                          IoKind kind) const {
  const double radius_fraction =
      static_cast<double>(offset) / params_.spec.capacity.as_double();
  const double zone_factor =
      1.0 + params_.zone_amplitude * (1.0 - 2.0 * radius_fraction);
  double rate = params_.spec.sustained_rate.value() * zone_factor;
  if (kind == IoKind::kWrite) {
    rate *= params_.write_rate_scale;
  }
  // The SATA link is an upper bound, never reached by the media.
  rate = std::min(rate, params_.spec.interface_rate.value());
  return util::BytesPerSecond{rate};
}

double HddModel::angle_at(Seconds t) const {
  const double period = params_.spec.rotation_period().value();
  const double turns = t.value() / period;
  return turns - std::floor(turns);
}

double HddModel::target_angle(std::uint64_t offset) const {
  // A track holds one rotation's worth of data at the average media rate;
  // the byte offset within its track determines the angle at which it passes
  // under the head.
  const double track_bytes = params_.spec.sustained_rate.value() *
                             params_.spec.rotation_period().value();
  const double pos = static_cast<double>(offset) / track_bytes;
  return pos - std::floor(pos);
}

Seconds HddModel::service_mechanical(const IoRequest& request, Seconds start) {
  GREENVIS_REQUIRE_MSG(
      request.offset + request.length <= params_.spec.capacity.value(),
      "request beyond device capacity");
  Seconds t = start;

  // Seek.
  const Seconds seek = seek_time(head_pos_, request.offset);
  if (seek.value() > 0.0) {
    log_.record(DiskPhase::kSeek, t, t + seek);
    t += seek;
  }

  // Rotational latency. A request that picks up exactly where the head
  // stands, promptly, is a streaming continuation: the sector is under the
  // head already. Anything else waits for the target angle to come around.
  const bool streaming =
      request.offset == head_pos_ &&
      (t - last_busy_end_) <= params_.streaming_window;
  if (!streaming) {
    const double period = params_.spec.rotation_period().value();
    const double current = angle_at(t);
    const double target = target_angle(request.offset);
    double wait_turns = target - current;
    if (wait_turns < 0.0) {
      wait_turns += 1.0;
    }
    const Seconds wait{wait_turns * period};
    if (wait.value() > 0.0) {
      log_.record(DiskPhase::kRotate, t, t + wait);
      t += wait;
    }
  }

  // Media transfer.
  const auto rate = media_rate(request.offset, request.kind);
  const Seconds xfer = util::transfer_time(util::Bytes{request.length}, rate);
  log_.record(request.kind == IoKind::kRead ? DiskPhase::kReadTransfer
                                            : DiskPhase::kWriteTransfer,
              t, t + xfer);
  t += xfer;

  last_busy_end_ = t;
  head_pos_ = request.offset + request.length;
  if (request.kind == IoKind::kRead) {
    ++counters_.reads;
    counters_.bytes_read += util::Bytes{request.length};
  } else {
    ++counters_.writes;
    counters_.bytes_written += util::Bytes{request.length};
  }
  return t;
}

Seconds HddModel::service(const IoRequest& request, Seconds start) {
  if (request.kind == IoKind::kRead) {
    return service_mechanical(request, start);
  }

  // Write path: absorb into the volatile cache when it fits.
  const std::uint64_t cache_size = params_.write_cache.value();
  if (request.length > cache_size) {
    // Larger than the whole cache: stream through mechanically.
    return service_mechanical(request, start);
  }
  Seconds t = start;
  if (cached_bytes_ + request.length > cache_size) {
    t = flush(t);
  }
  // Interface-speed absorption. Charged only when the cache was empty: with
  // writeback pending, the wire transfer overlaps the mechanical drain whose
  // full cost is charged at flush time, so charging both would double-count
  // (and would cap streaming writes below the media rate).
  const bool was_empty = cached_writes_.empty();
  cached_writes_.push_back(request);
  cached_bytes_ += request.length;
  ++counters_.writes;
  counters_.bytes_written += util::Bytes{request.length};
  if (was_empty) {
    t += util::transfer_time(util::Bytes{request.length},
                             params_.spec.interface_rate);
  }
  return t;
}

Seconds HddModel::flush(Seconds start) {
  if (cached_writes_.empty()) {
    return start;
  }
  // Drain in elevator order. Counters were already credited on absorption;
  // bypass `service_mechanical`'s counting by adjusting afterwards.
  std::vector<IoRequest> pending;
  pending.swap(cached_writes_);
  cached_bytes_ = 0;
  std::sort(pending.begin(), pending.end(),
            [](const IoRequest& a, const IoRequest& b) {
              return a.offset < b.offset;
            });
  Seconds t = start;
  for (const IoRequest& r : pending) {
    const std::uint64_t writes_before = counters_.writes;
    const util::Bytes bytes_before = counters_.bytes_written;
    t = service_mechanical(r, t);
    counters_.writes = writes_before;
    counters_.bytes_written = bytes_before;
  }
  return t;
}

}  // namespace greenvis::storage

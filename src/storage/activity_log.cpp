#include "src/storage/activity_log.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::storage {

const char* disk_phase_name(DiskPhase phase) {
  switch (phase) {
    case DiskPhase::kSeek:
      return "seek";
    case DiskPhase::kRotate:
      return "rotate";
    case DiskPhase::kReadTransfer:
      return "read";
    case DiskPhase::kWriteTransfer:
      return "write";
    case DiskPhase::kFlush:
      return "flush";
  }
  return "?";
}

void DiskActivityLog::record(DiskPhase phase, Seconds begin, Seconds end) {
  GREENVIS_REQUIRE(end >= begin);
  if (end == begin) {
    return;  // zero-length phases carry no duty
  }
  if (!segments_.empty()) {
    GREENVIS_REQUIRE_MSG(begin >= segments_.back().begin,
                         "segments must be appended in time order");
  }
  segments_.push_back(DiskSegment{begin, end, phase});
  totals_.busy[static_cast<std::size_t>(phase)] += end - begin;
}

PhaseDurations DiskActivityLog::duty_in(Seconds t0, Seconds t1) const {
  GREENVIS_REQUIRE(t1 >= t0);
  PhaseDurations out;
  if (segments_.empty() || t1 == t0) {
    return out;
  }
  // First segment that could overlap: begin ordered, so binary search on
  // begin and walk forward; segments are short (one mechanical phase), so we
  // also step back while predecessors still span t0.
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), t0,
      [](const DiskSegment& s, Seconds t) { return s.begin < t; });
  while (it != segments_.begin() && std::prev(it)->end > t0) {
    --it;
  }
  for (; it != segments_.end() && it->begin < t1; ++it) {
    const Seconds lo = std::max(it->begin, t0);
    const Seconds hi = std::min(it->end, t1);
    if (hi > lo) {
      out.busy[static_cast<std::size_t>(it->phase)] += hi - lo;
    }
  }
  return out;
}

void DiskActivityLog::clear() {
  segments_.clear();
  totals_ = PhaseDurations{};
}

}  // namespace greenvis::storage

// Solid-state device models (SSD and NVRAM).
//
// The paper's future-work list includes "evaluation on systems using ...
// solid-state drives and other flash-based devices such as NVRAM". These
// models support the storage-device ablation bench: fixed per-request access
// latency plus bandwidth-limited transfer, no mechanical phases. Activity is
// logged as transfer time only (flash has no seek/rotate), which the disk
// power model prices with device-specific active-power constants.
#pragma once

#include <string>

#include "src/storage/block_device.hpp"

namespace greenvis::storage {

struct SolidStateParams {
  std::string name{"Generic SSD"};
  util::Bytes capacity{util::gibibytes(500)};
  /// Fixed access latency per request (controller + flash page access).
  Seconds read_latency{util::microseconds(90.0)};
  Seconds write_latency{util::microseconds(60.0)};
  util::BytesPerSecond read_rate{util::mebibytes_per_second(500.0)};
  util::BytesPerSecond write_rate{util::mebibytes_per_second(450.0)};
};

/// SATA-era consumer SSD.
[[nodiscard]] SolidStateParams sata_ssd_params();
/// Byte-addressable NVRAM on the memory bus (as in the Gamell et al. deep
/// memory hierarchy study the paper cites).
[[nodiscard]] SolidStateParams nvram_params();

class SolidStateModel final : public BlockDevice {
 public:
  explicit SolidStateModel(const SolidStateParams& params);

  Seconds service(const IoRequest& request, Seconds start) override;
  Seconds flush(Seconds start) override;

  [[nodiscard]] Bytes capacity() const override { return params_.capacity; }
  [[nodiscard]] std::string_view name() const override { return params_.name; }
  [[nodiscard]] const DiskActivityLog& activity() const override {
    return log_;
  }
  [[nodiscard]] const DeviceCounters& counters() const override {
    return counters_;
  }

 private:
  SolidStateParams params_;
  DiskActivityLog log_;
  DeviceCounters counters_;
};

}  // namespace greenvis::storage

// Block-level I/O requests.
#pragma once

#include <cstdint>

namespace greenvis::storage {

enum class IoKind { kRead, kWrite };

/// One request against a block device. Offsets/lengths are bytes from the
/// start of the device (logical block addressing).
struct IoRequest {
  IoKind kind{IoKind::kRead};
  std::uint64_t offset{0};
  std::uint32_t length{0};
};

}  // namespace greenvis::storage

#include "src/storage/solid_state.hpp"

#include "src/util/error.hpp"

namespace greenvis::storage {

SolidStateParams sata_ssd_params() { return SolidStateParams{}; }

SolidStateParams nvram_params() {
  SolidStateParams p;
  p.name = "NVRAM";
  p.capacity = util::gibibytes(128);
  p.read_latency = util::microseconds(1.0);
  p.write_latency = util::microseconds(2.0);
  p.read_rate = util::mebibytes_per_second(6000.0);
  p.write_rate = util::mebibytes_per_second(2500.0);
  return p;
}

SolidStateModel::SolidStateModel(const SolidStateParams& params)
    : params_(params) {
  GREENVIS_REQUIRE(params_.capacity.value() > 0);
  GREENVIS_REQUIRE(params_.read_rate.value() > 0.0);
  GREENVIS_REQUIRE(params_.write_rate.value() > 0.0);
}

Seconds SolidStateModel::service(const IoRequest& request, Seconds start) {
  GREENVIS_REQUIRE_MSG(
      request.offset + request.length <= params_.capacity.value(),
      "request beyond device capacity");
  const bool is_read = request.kind == IoKind::kRead;
  const Seconds latency = is_read ? params_.read_latency : params_.write_latency;
  const Seconds xfer =
      util::transfer_time(util::Bytes{request.length},
                          is_read ? params_.read_rate : params_.write_rate);
  const Seconds busy = latency + xfer;
  log_.record(is_read ? DiskPhase::kReadTransfer : DiskPhase::kWriteTransfer,
              start, start + busy);
  if (is_read) {
    ++counters_.reads;
    counters_.bytes_read += util::Bytes{request.length};
  } else {
    ++counters_.writes;
    counters_.bytes_written += util::Bytes{request.length};
  }
  return start + busy;
}

Seconds SolidStateModel::flush(Seconds start) {
  // No volatile cache in the model: writes are durable on completion.
  return start;
}

}  // namespace greenvis::storage

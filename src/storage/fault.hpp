// Fault injection for the storage stack.
//
// Aging drives degrade before they die: marginal sectors need re-reads
// (each retry waits a full platter rotation for the sector to come around
// again), and some LBAs become unreadable outright. The decorator wraps any
// BlockDevice and injects both failure modes deterministically, so tests
// can ask two questions the paper's energy argument depends on:
//
//   * soft degradation — how much energy does a retry-prone disk add to the
//     post-processing pipeline (and none to in-situ, which never touches
//     it)?
//   * hard faults — do errors surface loudly through the filesystem and
//     dataset layers (checksummed frames), never as silent corruption?
//
// Retries are modeled as genuine re-issues of the same request against the
// wrapped device, so their seek/rotation time lands in the wrapped device's
// activity log and is priced by the power model like any other mechanical
// work.
#pragma once

#include <stdexcept>
#include <vector>

#include "src/storage/block_device.hpp"
#include "src/util/rng.hpp"

namespace greenvis::storage {

// DeviceError lives in block_device.hpp so the queue layer can attach it to
// completion records without depending on the fault decorator.

struct FaultConfig {
  /// Probability a request needs at least one retry.
  double retry_probability{0.0};
  /// Retries per affected request.
  std::size_t retries{1};
  /// Unreadable byte ranges: requests touching one fail hard (after
  /// consuming the configured retries' worth of time).
  struct BadRange {
    std::uint64_t offset{0};
    std::uint64_t length{0};
  };
  std::vector<BadRange> bad_ranges;
  /// Also fail writes touching a bad range (media past remapping — lets
  /// tests surface hard faults on the writer/stager path).
  bool fail_writes{false};
  std::uint64_t seed{0xFA17u};
};

class FaultyDisk final : public BlockDevice {
 public:
  FaultyDisk(BlockDevice& inner, const FaultConfig& config);

  Seconds service(const IoRequest& request, Seconds start) override;
  /// Fault-aware timing: a hard fault consumes the retries' worth of device
  /// time and is reported on the outcome instead of thrown, so the async
  /// layer can pin it to the right completion record.
  IoOutcome service_outcome(const IoRequest& request, Seconds start) override;
  Seconds flush(Seconds start) override;

  [[nodiscard]] std::uint64_t head_hint() const override {
    return inner_->head_hint();
  }
  [[nodiscard]] bool reorders_batches() const override {
    return inner_->reorders_batches();
  }
  [[nodiscard]] std::size_t channels() const override {
    return inner_->channels();
  }
  [[nodiscard]] Bytes capacity() const override { return inner_->capacity(); }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const DiskActivityLog& activity() const override {
    return inner_->activity();
  }
  [[nodiscard]] const DeviceCounters& counters() const override {
    return inner_->counters();
  }

  [[nodiscard]] std::uint64_t retries_injected() const { return retries_; }
  [[nodiscard]] std::uint64_t hard_errors() const { return hard_errors_; }

  /// Declare a range unreadable mid-run (media degradation while in use).
  void mark_bad(std::uint64_t offset, std::uint64_t length) {
    config_.bad_ranges.push_back(FaultConfig::BadRange{offset, length});
  }

 private:
  [[nodiscard]] bool touches_bad_range(const IoRequest& request) const;

  BlockDevice* inner_;
  FaultConfig config_;
  std::string name_;
  util::Xoshiro256 rng_;
  std::uint64_t retries_{0};
  std::uint64_t hard_errors_{0};
};

}  // namespace greenvis::storage

#include "src/storage/page_cache.hpp"

#include <algorithm>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/util/error.hpp"

namespace greenvis::storage {

PageCache::PageCache(AsyncBlockDevice& queue, const PageCacheParams& params)
    : queue_(queue), params_(params) {
  GREENVIS_REQUIRE(params_.page_size.value() > 0);
  GREENVIS_REQUIRE(params_.capacity.value() >= params_.page_size.value());
}

PageCache::PageCache(BlockDevice& device, const PageCacheParams& params)
    : owned_queue_(std::make_unique<AsyncBlockDevice>(device)),
      queue_(*owned_queue_),
      params_(params) {
  GREENVIS_REQUIRE(params_.page_size.value() > 0);
  GREENVIS_REQUIRE(params_.capacity.value() >= params_.page_size.value());
}

IoSchedulerKind PageCache::writeback_scheduler() const {
  const IoSchedulerKind configured = queue_.config().scheduler;
  return configured == IoSchedulerKind::kDevice ? IoSchedulerKind::kNoop
                                                : configured;
}

// One submission window per call: coalesce contiguous dirty pages, cap each
// request at 4 MiB (kernel writeback chunking; also keeps lengths in range),
// and hand the whole set to the queue.
Seconds PageCache::write_back_runs(const std::vector<std::uint64_t>& dirty,
                                   Seconds t) {
  const std::uint64_t page_bytes = params_.page_size.value();
  const std::uint64_t max_run =
      std::max<std::uint64_t>(1, util::mebibytes(4).value() / page_bytes);
  std::vector<IoRequest> requests;
  std::size_t i = 0;
  while (i < dirty.size()) {
    std::size_t j = i + 1;
    while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1 &&
           j - i < max_run) {
      ++j;
    }
    const std::uint64_t bytes = (dirty[j - 1] - dirty[i] + 1) * page_bytes;
    requests.push_back(IoRequest{IoKind::kWrite, dirty[i] * page_bytes,
                                 static_cast<std::uint32_t>(bytes)});
    i = j;
  }
  return queue_.run_batch(requests, t, writeback_scheduler());
}

Seconds PageCache::touch(std::uint64_t page, bool dirty, Seconds now) {
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++dirty_count_;
    }
    return now;
  }
  while (pages_.size() >= max_pages()) {
    now = evict_one(now);
  }
  lru_.push_front(page);
  pages_.emplace(page, PageState{lru_.begin(), dirty});
  if (dirty) {
    ++dirty_count_;
  }
  return now;
}

Seconds PageCache::evict_one(Seconds now) {
  GREENVIS_REQUIRE(!lru_.empty());
  const std::uint64_t victim = lru_.back();
  auto it = pages_.find(victim);
  GREENVIS_ENSURE(it != pages_.end());
  if (it->second.dirty) {
    const std::uint64_t page_bytes = params_.page_size.value();
    const IoRequest wb{IoKind::kWrite, victim * page_bytes,
                       static_cast<std::uint32_t>(page_bytes)};
    now = queue_.execute(wb, now);
    --dirty_count_;
    ++counters_.writeback_pages;
  }
  lru_.pop_back();
  pages_.erase(it);
  ++counters_.evictions;
  return now;
}

Seconds PageCache::read(std::uint64_t offset, std::uint64_t length,
                        Seconds start, bool allow_readahead) {
  GREENVIS_REQUIRE(length > 0);
  const std::uint64_t page_bytes = params_.page_size.value();
  const std::uint64_t first = page_of(offset);
  const std::uint64_t last = page_of(offset + length - 1);

  // Sequential-access detection for readahead.
  const bool sequential = first == last_read_end_page_ + 1 || first == last_read_end_page_;
  std::uint64_t ra_last = last;
  if (allow_readahead && sequential) {
    const std::uint64_t ra_pages = params_.readahead_window.value() / page_bytes;
    ra_last = last + ra_pages;
    const std::uint64_t device_last =
        (queue_.backend().capacity().value() / page_bytes) - 1;
    ra_last = std::min(ra_last, device_last);
  }

  const std::uint64_t hits0 = counters_.hits;
  const std::uint64_t misses0 = counters_.misses;

  Seconds t = start;
  // Coalesce runs of missing pages into single device reads (capped at 4 MiB
  // per request, as in flush_range).
  const std::uint64_t max_run = std::max<std::uint64_t>(
      1, util::mebibytes(4).value() / page_bytes);
  std::uint64_t run_start = 0;
  bool in_run = false;
  auto flush_run = [&](std::uint64_t run_end_exclusive) {
    for (std::uint64_t p = run_start; p < run_end_exclusive; p += max_run) {
      const std::uint64_t pages = std::min(max_run, run_end_exclusive - p);
      const IoRequest req{IoKind::kRead, p * page_bytes,
                          static_cast<std::uint32_t>(pages * page_bytes)};
      t = queue_.execute(req, t);
    }
    in_run = false;
  };

  for (std::uint64_t p = first; p <= ra_last; ++p) {
    const bool resident = pages_.contains(p);
    const bool demanded = p <= last;
    if (resident) {
      if (in_run) {
        flush_run(p);
      }
      if (demanded) {
        ++counters_.hits;
      }
    } else {
      if (!in_run) {
        run_start = p;
        in_run = true;
      }
      if (demanded) {
        ++counters_.misses;
      } else {
        ++counters_.readahead_pages;
      }
    }
  }
  if (in_run) {
    flush_run(ra_last + 1);
  }
  // Make everything we just read resident (touch order: ascending).
  for (std::uint64_t p = first; p <= ra_last; ++p) {
    t = touch(p, /*dirty=*/false, t);
  }
  last_read_end_page_ = last;
  if (obs::enabled()) {
    static obs::Counter& hits =
        obs::Registry::global().counter("storage.page_cache.hits");
    static obs::Counter& misses =
        obs::Registry::global().counter("storage.page_cache.misses");
    hits.add(counters_.hits - hits0);
    misses.add(counters_.misses - misses0);
  }
  return t;
}

Seconds PageCache::write(std::uint64_t offset, std::uint64_t length,
                         Seconds start) {
  GREENVIS_REQUIRE(length > 0);
  const std::uint64_t first = page_of(offset);
  const std::uint64_t last = page_of(offset + length - 1);
  Seconds t = start;
  for (std::uint64_t p = first; p <= last; ++p) {
    t = touch(p, /*dirty=*/true, t);
  }
  return t;
}

Seconds PageCache::flush_range(std::uint64_t offset, std::uint64_t length,
                               Seconds start) {
  const std::uint64_t first = page_of(offset);
  const std::uint64_t last = length == 0 ? first : page_of(offset + length - 1);

  std::vector<std::uint64_t> dirty;
  for (const auto& [page, state] : pages_) {
    if (state.dirty && page >= first && page <= last) {
      dirty.push_back(page);
    }
  }
  std::sort(dirty.begin(), dirty.end());

  const Seconds t = write_back_runs(dirty, start);
  for (std::uint64_t p : dirty) {
    auto it = pages_.find(p);
    GREENVIS_ENSURE(it != pages_.end());
    if (it->second.dirty) {
      it->second.dirty = false;
      --dirty_count_;
      ++counters_.writeback_pages;
    }
  }
  return t;
}

Seconds PageCache::flush_all(Seconds start) {
  return flush_range(0, queue_.backend().capacity().value(), start);
}

Seconds PageCache::flush_pages(std::span<const std::uint64_t> pages,
                               Seconds start) {
  std::vector<std::uint64_t> dirty;
  dirty.reserve(pages.size());
  for (std::uint64_t p : pages) {
    if (is_dirty(p)) {
      dirty.push_back(p);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  const Seconds t = write_back_runs(dirty, start);
  for (std::uint64_t p : dirty) {
    auto it = pages_.find(p);
    GREENVIS_ENSURE(it != pages_.end());
    it->second.dirty = false;
    --dirty_count_;
    ++counters_.writeback_pages;
  }
  return t;
}

Seconds PageCache::insert_clean(std::span<const std::uint64_t> pages,
                                Seconds start) {
  Seconds t = start;
  for (std::uint64_t p : pages) {
    t = touch(p, /*dirty=*/false, t);
  }
  return t;
}

void PageCache::drop_clean() {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (!it->second.dirty) {
      lru_.erase(it->second.lru_pos);
      it = pages_.erase(it);
      ++counters_.evictions;
    } else {
      ++it;
    }
  }
  last_read_end_page_ = ~0ULL;
}

}  // namespace greenvis::storage

// Software-directed data reorganization.
//
// Sec. V-D of the paper argues that instead of abandoning post-processing,
// one can apply data-rearrangement techniques (refs [30], [31]: Zhang et
// al., Son & Kandemir) so that reads which *would* have been random become
// sequential, recovering almost all of in-situ's energy advantage while
// keeping exploratory analysis. The Reorganizer models that transformation:
// it streams a fragmented file into a contiguous layout, charging the full
// I/O cost of the move through the normal filesystem machinery.
#pragma once

#include <string>

#include "src/storage/filesystem.hpp"

namespace greenvis::storage::layout {

struct ReorganizeReport {
  /// Virtual time the reorganization itself took.
  Seconds duration{0.0};
  /// Fragmentation before/after (see Filesystem::fragmentation).
  double fragmentation_before{0.0};
  double fragmentation_after{0.0};
  util::Bytes bytes_moved{0};
};

class Reorganizer {
 public:
  explicit Reorganizer(Filesystem& fs) : fs_(&fs) {}

  /// Rewrite `name` into a contiguous layout: cold-read the fragmented
  /// blocks (in physical elevator order, as the cited schemes schedule disk
  /// accesses), buffer them, stream them back out sequentially, sync.
  ReorganizeReport reorganize(const std::string& name);

 private:
  Filesystem* fs_;
};

}  // namespace greenvis::storage::layout

// Extent filesystem with an ext3-style journal.
//
// This is the substrate under the paper's I/O stages. It provides:
//   * named files whose payload bytes are really stored (pipelines verify
//     data integrity end to end) or synthetically generated for multi-GB
//     benchmark files;
//   * block allocation with two policies — contiguous (fresh filesystem) and
//     aged (blocks scattered round-robin across block groups, modeling the
//     fragmented 500 GB disk of the testbed);
//   * buffered and O_SYNC write modes; buffered and direct (no readahead)
//     read modes;
//   * fsync with ordered-journal semantics: flush file data, write-barrier,
//     journal descriptor write, barrier, commit record (which pays a missed
//     rotation — the reason small sync writes run at ~100 KB/s on the
//     testbed, and hence why the paper's write stage takes 30% of the run);
//   * the sync + drop_caches discipline of Sec. IV-C.
//
// All operations advance the shared virtual clock.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/storage/block_device.hpp"
#include "src/storage/page_cache.hpp"
#include "src/trace/clock.hpp"

namespace greenvis::storage {

enum class AllocationPolicy {
  kContiguous,  // fresh filesystem: files are laid out sequentially
  kAged,        // aged filesystem: blocks scatter across block groups
};

enum class WriteMode {
  kBuffered,  // dirty the page cache, defer media writes
  kSync,      // O_SYNC: write-through with a journal commit per write
};

enum class ReadMode {
  kBuffered,  // page cache + readahead
  kDirect,    // O_DIRECT: bypasses the page cache entirely, no readahead
};

struct FsParams {
  util::Bytes block_size{util::kibibytes(4)};
  AllocationPolicy allocation{AllocationPolicy::kContiguous};
  /// Aged policy: number of block groups the allocator round-robins across.
  std::size_t aged_scatter_groups{4};
  /// Fraction of the device the block groups span (the contiguous
  /// preallocation region follows, in the mid-disk zones).
  double aged_region_fraction{0.6};
  /// Journal placement (fraction of capacity) and size.
  double journal_position_fraction{0.85};
  util::Bytes journal_size{util::mebibytes(128)};
  /// Bytes per journal descriptor+metadata write.
  util::Bytes journal_record{util::kibibytes(8)};
  /// Host-side delay between the descriptor write completing and the commit
  /// record being issued (interrupt + CPU path). It exceeds the drive's
  /// streaming window, so the commit pays a missed rotation — the dominant
  /// cost of a barrier on a spinning disk.
  Seconds journal_commit_gap{util::microseconds(500.0)};
  /// One cold metadata (indirect-pointer) block read per this many data
  /// blocks when reading a file whose metadata is not cached (ext3: a 4 KiB
  /// indirect block holds 1024 pointers).
  std::size_t metadata_stride_blocks{1024};
  /// Kernel entry + bookkeeping per read/write call (2012-era kernel).
  Seconds syscall_overhead{util::microseconds(110.0)};
  /// Per-file cap on really-stored payload; larger files must be synthetic.
  util::Bytes max_real_content{util::mebibytes(256)};
  PageCacheParams cache{};
  /// Submission-queue configuration for every request the filesystem (and
  /// its page cache) issues: queue depth and I/O scheduler. Defaults keep
  /// the legacy device-preferred behavior bit-for-bit.
  AsyncDeviceConfig io_queue{};
};

struct FsCounters {
  std::uint64_t syscalls{0};
  std::uint64_t journal_commits{0};
  std::uint64_t metadata_block_reads{0};
  util::Bytes logical_bytes_written{0};
  util::Bytes logical_bytes_read{0};
};

/// Contiguous run of device blocks belonging to a file.
struct Extent {
  std::uint64_t device_offset{0};
  std::uint64_t length{0};  // bytes
};

class Filesystem {
 public:
  using Fd = int;

  Filesystem(BlockDevice& device, trace::VirtualClock& clock,
             const FsParams& params = {});

  /// Create a new empty file (fails if it exists). Returns an open handle
  /// positioned at offset 0. `force_contiguous` overrides the filesystem's
  /// allocation policy for this file (a large preallocated benchmark file
  /// gets contiguous extents even on an aged filesystem).
  Fd create(const std::string& name, bool force_contiguous = false);
  /// Open an existing file at offset 0.
  Fd open(const std::string& name);
  void close(Fd fd);

  [[nodiscard]] bool exists(const std::string& name) const;
  void remove(const std::string& name);
  [[nodiscard]] util::Bytes file_size(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> list_files() const;

  /// Append real payload at the cursor.
  void write(Fd fd, std::span<const std::uint8_t> data, WriteMode mode);
  /// Append `length` synthetic bytes (content derivable from file id +
  /// offset; nothing stored). A file is either real or synthetic.
  void write_synthetic(Fd fd, util::Bytes length, WriteMode mode);
  /// Overwrite at an absolute offset (synthetic files only; used by fio).
  void pwrite_synthetic(Fd fd, std::uint64_t offset, std::uint64_t length,
                        WriteMode mode);

  /// Read from the cursor into `out`; returns bytes read (short at EOF).
  std::uint64_t read(Fd fd, std::span<std::uint8_t> out, ReadMode mode);
  /// Positional read.
  std::uint64_t pread(Fd fd, std::span<std::uint8_t> out, std::uint64_t offset,
                      ReadMode mode);
  /// Timing-only positional read (no payload copy). Returns bytes "read".
  std::uint64_t pread_timed(Fd fd, std::uint64_t offset, std::uint64_t length,
                            ReadMode mode);
  /// Mark a logical range dirty without changing its payload — models an
  /// in-place rewrite (used by the layout reorganizer).
  void mark_dirty(const std::string& name, std::uint64_t offset,
                  std::uint64_t length);
  /// Positional batch read with queue depth: all offsets are submitted
  /// together so the device can reorder (fio's iodepth > 1). Timing only;
  /// no payload copy.
  void pread_batch(Fd fd, std::span<const std::uint64_t> offsets,
                   std::uint64_t length, ReadMode mode);

  void seek_to(Fd fd, std::uint64_t offset);
  [[nodiscard]] std::uint64_t tell(Fd fd) const;

  /// Flush the file's dirty data and commit the journal (ordered mode).
  void fsync(Fd fd);
  /// sync(2): flush everything and commit.
  void sync_all();
  /// The paper's between-phases discipline: sync, then drop clean pages.
  void drop_caches();

  /// The synthetic byte at (file opened as fd, offset). Deterministic.
  [[nodiscard]] static std::uint8_t synthetic_byte(std::uint64_t file_id,
                                                   std::uint64_t offset);

  /// Physical layout of a file (coalesced, in logical order). Used by the
  /// data-reorganization experiment of Sec. V-D.
  [[nodiscard]] std::vector<Extent> extents(const std::string& name) const;
  /// Fraction of logically-adjacent block pairs that are physically
  /// discontiguous (0 = perfectly laid out).
  [[nodiscard]] double fragmentation(const std::string& name) const;

  [[nodiscard]] BlockDevice& device() { return device_; }
  /// The submission queue all filesystem/cache requests flow through.
  [[nodiscard]] AsyncBlockDevice& io_queue() { return queue_; }
  [[nodiscard]] const AsyncBlockDevice& io_queue() const { return queue_; }
  [[nodiscard]] PageCache& cache() { return cache_; }
  [[nodiscard]] const FsCounters& counters() const { return counters_; }
  [[nodiscard]] const FsParams& params() const { return params_; }
  [[nodiscard]] trace::VirtualClock& clock() { return clock_; }

  /// Re-home an existing file onto freshly allocated *contiguous* blocks.
  /// Payload is preserved; only the physical layout (and thus future read
  /// cost) changes. The I/O cost of the move itself is NOT charged — use
  /// layout::Reorganizer to model the cost of reorganization online.
  void rehome_contiguous(const std::string& name);

 private:
  struct FileNode {
    std::uint64_t id{0};
    std::uint64_t size{0};
    std::vector<std::uint64_t> blocks;       // device offset per block
    std::vector<std::uint64_t> meta_blocks;  // indirect-pointer blocks
    std::vector<std::uint8_t> content;       // empty when synthetic
    bool synthetic{false};
    bool contiguous{false};  // allocation-policy override
  };
  struct OpenFile {
    std::string name;
    std::uint64_t cursor{0};
  };

  [[nodiscard]] FileNode& node_for(Fd fd);
  [[nodiscard]] const FileNode& node_for(Fd fd) const;
  /// Allocate one data block (and a metadata block every stride).
  std::uint64_t allocate_block(FileNode& node);
  /// Ensure the file has blocks covering [0, size).
  void grow_to(FileNode& node, std::uint64_t size);
  void charge_syscall();
  /// Journal commit: descriptor write, barrier, commit record, barrier.
  void journal_commit();
  /// Flush the file's dirty pages + barrier (no journal).
  void flush_file_data(const FileNode& node);
  /// Read [offset, offset+length) of `node` through the cache, including
  /// cold metadata fetches. Payload copy into `out` if non-empty.
  std::uint64_t read_internal(FileNode& node, std::span<std::uint8_t> out,
                              std::uint64_t offset, std::uint64_t length,
                              ReadMode mode);
  void do_write(Fd fd, std::span<const std::uint8_t> data,
                std::uint64_t synthetic_len, std::uint64_t offset,
                WriteMode mode);

  BlockDevice& device_;
  trace::VirtualClock& clock_;
  FsParams params_;
  AsyncBlockDevice queue_;  // must precede cache_, which issues through it
  PageCache cache_;
  std::map<std::string, FileNode> files_;
  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_{3};
  std::uint64_t next_file_id_{1};
  std::vector<std::uint64_t> group_next_;  // next free offset per block group
  std::uint64_t contig_next_{0};           // contiguous-preallocation region
  std::uint64_t journal_head_{0};          // offset within journal region
  FsCounters counters_;
};

}  // namespace greenvis::storage

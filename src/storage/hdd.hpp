// Mechanical model of the testbed's Seagate 7200 rpm disk.
//
// Service time for a request decomposes into the three classic components —
// seek (settle + square-root-of-distance law), rotational latency (the
// platter angle is a deterministic function of virtual time, so back-to-back
// sequential transfers incur no rotational wait at all), and media transfer
// (zoned bit recording: outer tracks ~18% faster than average, inner ~18%
// slower). A small volatile write-back cache absorbs writes at interface
// speed until `flush` (a write barrier) drains it in elevator order, which is
// what lets Table III's random-write test keep up with the sequential one.
//
// Each mechanical phase is logged to the DiskActivityLog so the power model
// can convert duty cycles into the "disk dynamic power" column of Table III.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/machine/spec.hpp"
#include "src/storage/block_device.hpp"

namespace greenvis::storage {

struct HddParams {
  machine::DiskSpec spec{};
  /// Media write rate relative to the read rate. Table III implies the drive
  /// streams writes ~1/3 faster than reads (27.0 s vs 35.9 s for 4 GB).
  double write_rate_scale{35.9 / 27.0};
  /// Volatile on-drive write-back cache.
  util::Bytes write_cache{util::mebibytes(32)};
  /// A request that continues exactly where the head stands, issued within
  /// this window of the previous mechanical activity, is a streaming
  /// continuation and pays no rotational latency. Longer host-side gaps let
  /// the platter rotate past the next sector.
  Seconds streaming_window{util::microseconds(400.0)};
  /// Zoned-bit-recording amplitude: transfer rate factor runs linearly from
  /// (1 + amplitude) at LBA 0 to (1 - amplitude) at the last LBA.
  double zone_amplitude{0.18};
};

class HddModel final : public BlockDevice {
 public:
  explicit HddModel(const HddParams& params);

  Seconds service(const IoRequest& request, Seconds start) override;
  Seconds flush(Seconds start) override;

  /// NCQ: AsyncBlockDevice's kDevice scheduler resolves to an elevator
  /// sweep seeded from the head position.
  [[nodiscard]] bool reorders_batches() const override { return true; }
  [[nodiscard]] std::uint64_t head_hint() const override { return head_pos_; }

  [[nodiscard]] Bytes capacity() const override {
    return params_.spec.capacity;
  }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const DiskActivityLog& activity() const override {
    return log_;
  }
  [[nodiscard]] const DeviceCounters& counters() const override {
    return counters_;
  }

  /// Current head byte position (exposed for tests).
  [[nodiscard]] std::uint64_t head_position() const { return head_pos_; }
  [[nodiscard]] util::Bytes cached_write_bytes() const {
    return util::Bytes{cached_bytes_};
  }
  [[nodiscard]] const HddParams& params() const { return params_; }

  /// Model internals, exposed for tests and for the fio composite engines.
  [[nodiscard]] Seconds seek_time(std::uint64_t from, std::uint64_t to) const;
  [[nodiscard]] util::BytesPerSecond media_rate(std::uint64_t offset,
                                                IoKind kind) const;
  /// Platter angle in [0,1) at absolute time t.
  [[nodiscard]] double angle_at(Seconds t) const;
  /// Angle at which the sector at `offset` passes under the head.
  [[nodiscard]] double target_angle(std::uint64_t offset) const;

 private:
  /// Mechanically execute one request (no caching), logging phases.
  Seconds service_mechanical(const IoRequest& request, Seconds start);

  HddParams params_;
  std::string name_;
  DiskActivityLog log_;
  DeviceCounters counters_;
  std::uint64_t head_pos_{0};
  Seconds last_busy_end_{-1.0};
  std::vector<IoRequest> cached_writes_;
  std::uint64_t cached_bytes_{0};
};

}  // namespace greenvis::storage

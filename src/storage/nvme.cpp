#include "src/storage/nvme.hpp"

#include "src/util/error.hpp"

namespace greenvis::storage {

NvmeParams nvme_default_params() { return NvmeParams{}; }

NvmeModel::NvmeModel(const NvmeParams& params) : params_(params) {
  GREENVIS_REQUIRE(params_.capacity.value() > 0);
  GREENVIS_REQUIRE(params_.read_rate.value() > 0.0);
  GREENVIS_REQUIRE(params_.write_rate.value() > 0.0);
  GREENVIS_REQUIRE(params_.queues >= 1);
}

Seconds NvmeModel::service(const IoRequest& request, Seconds start) {
  GREENVIS_REQUIRE_MSG(
      request.offset + request.length <= params_.capacity.value(),
      "request beyond device capacity");
  const bool is_read = request.kind == IoKind::kRead;
  const Seconds latency =
      is_read ? params_.read_latency : params_.write_latency;
  const Seconds xfer =
      util::transfer_time(util::Bytes{request.length},
                          is_read ? params_.read_rate : params_.write_rate);
  const Seconds busy = latency + xfer;
  log_.record(is_read ? DiskPhase::kReadTransfer : DiskPhase::kWriteTransfer,
              start, start + busy);
  if (is_read) {
    ++counters_.reads;
    counters_.bytes_read += util::Bytes{request.length};
  } else {
    ++counters_.writes;
    counters_.bytes_written += util::Bytes{request.length};
  }
  return start + busy;
}

Seconds NvmeModel::flush(Seconds start) {
  // Power-loss-protected write path: durable on completion.
  return start;
}

}  // namespace greenvis::storage

// NVMe device model: flash timing with multiple submission queues.
//
// Like the SSD model, service time is fixed access latency plus bandwidth-
// limited transfer — but an NVMe controller exposes several independent
// submission/completion queue pairs, so the device reports channels() > 1
// and the AsyncBlockDevice layer dispatches queued requests onto the
// earliest-free channel. The per-channel rate is the device rate divided by
// the active channel count's worth of shared flash bandwidth: the model
// splits the aggregate rate evenly so a fully parallel window finishes in
// roughly aggregate-bandwidth time while a lone request still sees the full
// rate through one queue (latency dominates small requests either way).
//
// Modeling choice: channel parallelism lives in the queue layer, not here —
// service() stays serial (one request, one timing), which keeps the device
// drop-in compatible with every synchronous consumer and with the
// async_vs_sync oracle at queue depth 1.
#pragma once

#include <string>

#include "src/storage/block_device.hpp"

namespace greenvis::storage {

struct NvmeParams {
  std::string name{"NVMe SSD"};
  util::Bytes capacity{util::gibibytes(1000)};
  Seconds read_latency{util::microseconds(20.0)};
  Seconds write_latency{util::microseconds(15.0)};
  /// Per-queue sustained rates (the aggregate scales with queue count up to
  /// the flash limit, which the even split below already encodes).
  util::BytesPerSecond read_rate{util::mebibytes_per_second(1750.0)};
  util::BytesPerSecond write_rate{util::mebibytes_per_second(1500.0)};
  /// Submission/completion queue pairs exposed to the host.
  std::size_t queues{4};
};

[[nodiscard]] NvmeParams nvme_default_params();

class NvmeModel final : public BlockDevice {
 public:
  explicit NvmeModel(const NvmeParams& params);

  Seconds service(const IoRequest& request, Seconds start) override;
  Seconds flush(Seconds start) override;

  [[nodiscard]] std::size_t channels() const override {
    return params_.queues;
  }
  [[nodiscard]] Bytes capacity() const override { return params_.capacity; }
  [[nodiscard]] std::string_view name() const override { return params_.name; }
  [[nodiscard]] const DiskActivityLog& activity() const override {
    return log_;
  }
  [[nodiscard]] const DeviceCounters& counters() const override {
    return counters_;
  }
  [[nodiscard]] const NvmeParams& params() const { return params_; }

 private:
  NvmeParams params_;
  DiskActivityLog log_;
  DeviceCounters counters_;
};

}  // namespace greenvis::storage

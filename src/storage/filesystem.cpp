#include "src/storage/filesystem.hpp"

#include <algorithm>

#include "src/obs/registry.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace greenvis::storage {

Filesystem::Filesystem(BlockDevice& device, trace::VirtualClock& clock,
                       const FsParams& params)
    : device_(device), clock_(clock), params_(params),
      queue_(device, params.io_queue), cache_(queue_, params.cache) {
  GREENVIS_REQUIRE(params_.block_size.value() > 0);
  GREENVIS_REQUIRE(params_.block_size.value() ==
                   params_.cache.page_size.value());
  GREENVIS_REQUIRE(params_.aged_scatter_groups >= 1);
  GREENVIS_REQUIRE(params_.aged_region_fraction > 0.0 &&
                   params_.aged_region_fraction < params_.journal_position_fraction);
  GREENVIS_REQUIRE(params_.metadata_stride_blocks >= 1);

  const std::size_t groups = params_.allocation == AllocationPolicy::kAged
                                 ? params_.aged_scatter_groups
                                 : 1;
  const double region =
      device_.capacity().as_double() * params_.aged_region_fraction;
  group_next_.resize(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const double start = region * static_cast<double>(g) /
                         static_cast<double>(groups);
    // Align group starts to the block size.
    const std::uint64_t bs = params_.block_size.value();
    group_next_[g] = (static_cast<std::uint64_t>(start) / bs) * bs;
  }
}

void Filesystem::charge_syscall() {
  ++counters_.syscalls;
  clock_.advance(params_.syscall_overhead);
}

Filesystem::Fd Filesystem::create(const std::string& name,
                                  bool force_contiguous) {
  GREENVIS_REQUIRE_MSG(!files_.contains(name), "file already exists: " + name);
  charge_syscall();
  FileNode node;
  node.id = next_file_id_++;
  node.contiguous = force_contiguous;
  files_.emplace(name, std::move(node));
  const Fd fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{name, 0});
  return fd;
}

Filesystem::Fd Filesystem::open(const std::string& name) {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  charge_syscall();
  const Fd fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{name, 0});
  return fd;
}

void Filesystem::close(Fd fd) {
  GREENVIS_REQUIRE_MSG(open_files_.erase(fd) == 1, "close of unknown fd");
}

bool Filesystem::exists(const std::string& name) const {
  return files_.contains(name);
}

void Filesystem::remove(const std::string& name) {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  charge_syscall();
  files_.erase(name);
}

util::Bytes Filesystem::file_size(const std::string& name) const {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  return util::Bytes{files_.at(name).size};
}

std::vector<std::string> Filesystem::list_files() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, node] : files_) {
    names.push_back(name);
  }
  return names;
}

Filesystem::FileNode& Filesystem::node_for(Fd fd) {
  auto it = open_files_.find(fd);
  GREENVIS_REQUIRE_MSG(it != open_files_.end(), "unknown fd");
  return files_.at(it->second.name);
}

const Filesystem::FileNode& Filesystem::node_for(Fd fd) const {
  auto it = open_files_.find(fd);
  GREENVIS_REQUIRE_MSG(it != open_files_.end(), "unknown fd");
  return files_.at(it->second.name);
}

std::uint64_t Filesystem::allocate_block(FileNode& node) {
  const std::uint64_t bs = params_.block_size.value();
  const std::size_t groups = group_next_.size();
  // Metadata (indirect-pointer) block every `stride` data blocks. Metadata
  // always lives in the block groups (inode tables), even for files whose
  // data is preallocated contiguously. A freshly written metadata block is
  // memory-resident: insert it into the page cache so only *cold* reads pay
  // for it (the journal commit models its durability cost).
  // Preallocated files are extent-mapped (ext4-style): their whole map fits
  // one metadata block. Aged files use ext3-style indirect blocks, one per
  // stride.
  const bool needs_meta =
      node.contiguous ? node.meta_blocks.empty()
                      : node.blocks.size() % params_.metadata_stride_blocks == 0;
  if (needs_meta) {
    const std::size_t mg =
        (node.meta_blocks.size() + static_cast<std::size_t>(node.id)) % groups;
    const std::uint64_t meta = group_next_[mg];
    group_next_[mg] += bs;
    node.meta_blocks.push_back(meta);
    const std::uint64_t meta_page = meta / bs;
    cache_.insert_clean(std::span<const std::uint64_t>{&meta_page, 1},
                        clock_.now());
  }

  std::uint64_t off = 0;
  if (node.contiguous) {
    // Preallocated data draws from a dedicated region between the block
    // groups and the journal.
    if (contig_next_ == 0) {
      contig_next_ = static_cast<std::uint64_t>(
          device_.capacity().as_double() * params_.aged_region_fraction);
      contig_next_ = (contig_next_ / bs) * bs;
    }
    off = contig_next_;
    contig_next_ += bs;
    GREENVIS_ENSURE(off + bs <= static_cast<std::uint64_t>(
        device_.capacity().as_double() * params_.journal_position_fraction));
  } else {
    const std::size_t g =
        (node.blocks.size() + static_cast<std::size_t>(node.id)) % groups;
    off = group_next_[g];
    group_next_[g] += bs;
    GREENVIS_ENSURE(off + bs <= device_.capacity().value());
  }
  node.blocks.push_back(off);
  return off;
}

void Filesystem::grow_to(FileNode& node, std::uint64_t size) {
  const std::uint64_t bs = params_.block_size.value();
  while (node.blocks.size() * bs < size) {
    allocate_block(node);
  }
  node.size = std::max(node.size, size);
}

void Filesystem::do_write(Fd fd, std::span<const std::uint8_t> data,
                          std::uint64_t synthetic_len, std::uint64_t offset,
                          WriteMode mode) {
  FileNode& node = node_for(fd);
  const std::uint64_t length =
      data.empty() ? synthetic_len : static_cast<std::uint64_t>(data.size());
  GREENVIS_REQUIRE(length > 0);

  if (data.empty()) {
    GREENVIS_REQUIRE_MSG(node.content.empty(),
                         "cannot mix synthetic and real payload");
    node.synthetic = true;
  } else {
    GREENVIS_REQUIRE_MSG(!node.synthetic,
                         "cannot mix real and synthetic payload");
    GREENVIS_REQUIRE_MSG(
        offset + length <= params_.max_real_content.value(),
        "real payload exceeds max_real_content; use write_synthetic");
    if (node.content.size() < offset + length) {
      node.content.resize(offset + length);
    }
    std::copy(data.begin(), data.end(),
              node.content.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  charge_syscall();
  grow_to(node, offset + length);
  counters_.logical_bytes_written += util::Bytes{length};
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    static obs::Counter& writes = registry.counter("storage.writes");
    static obs::Counter& written = registry.counter("storage.bytes_written");
    writes.add(1);
    written.add(length);
  }

  // Dirty the covered pages, coalescing device-contiguous block runs.
  const std::uint64_t bs = params_.block_size.value();
  const std::uint64_t first_block = offset / bs;
  const std::uint64_t last_block = (offset + length - 1) / bs;
  Seconds t = clock_.now();
  std::uint64_t run_dev = node.blocks[first_block];
  std::uint64_t run_len = bs;
  for (std::uint64_t b = first_block + 1; b <= last_block; ++b) {
    const std::uint64_t dev = node.blocks[b];
    if (dev == run_dev + run_len) {
      run_len += bs;
    } else {
      t = cache_.write(run_dev, run_len, t);
      run_dev = dev;
      run_len = bs;
    }
  }
  t = cache_.write(run_dev, run_len, t);
  clock_.advance_to(t);

  if (mode == WriteMode::kSync) {
    flush_file_data(node);
    journal_commit();
  }
}

void Filesystem::write(Fd fd, std::span<const std::uint8_t> data,
                       WriteMode mode) {
  auto& of = open_files_.at(fd);
  do_write(fd, data, 0, of.cursor, mode);
  of.cursor += data.size();
}

void Filesystem::write_synthetic(Fd fd, util::Bytes length, WriteMode mode) {
  auto& of = open_files_.at(fd);
  do_write(fd, {}, length.value(), of.cursor, mode);
  of.cursor += length.value();
}

void Filesystem::pwrite_synthetic(Fd fd, std::uint64_t offset,
                                  std::uint64_t length, WriteMode mode) {
  do_write(fd, {}, length, offset, mode);
}

std::uint8_t Filesystem::synthetic_byte(std::uint64_t file_id,
                                        std::uint64_t offset) {
  std::uint64_t s = file_id * 0x9E3779B97F4A7C15ULL + offset;
  return static_cast<std::uint8_t>(util::splitmix64_next(s) & 0xFF);
}

std::uint64_t Filesystem::read_internal(FileNode& node,
                                        std::span<std::uint8_t> out,
                                        std::uint64_t offset,
                                        std::uint64_t length, ReadMode mode) {
  if (offset >= node.size) {
    return 0;
  }
  length = std::min(length, node.size - offset);
  if (length == 0) {
    return 0;
  }
  charge_syscall();
  counters_.logical_bytes_read += util::Bytes{length};
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    static obs::Counter& reads = registry.counter("storage.reads");
    static obs::Counter& read_bytes = registry.counter("storage.bytes_read");
    reads.add(1);
    read_bytes.add(length);
  }

  const std::uint64_t bs = params_.block_size.value();
  const std::uint64_t first_block = offset / bs;
  const std::uint64_t last_block = (offset + length - 1) / bs;
  Seconds t = clock_.now();

  // Cold metadata: fetch the indirect block covering each stride once
  // (extent-mapped files have a single map block).
  for (std::uint64_t b = first_block; b <= last_block; ++b) {
    const std::size_t meta_idx =
        node.contiguous
            ? 0
            : static_cast<std::size_t>(b / params_.metadata_stride_blocks);
    GREENVIS_ENSURE(meta_idx < node.meta_blocks.size());
    const std::uint64_t meta_dev = node.meta_blocks[meta_idx];
    if (!cache_.is_resident(meta_dev / bs)) {
      ++counters_.metadata_block_reads;
      t = cache_.read(meta_dev, bs, t, /*allow_readahead=*/false);
    }
  }

  // Data: coalesce device-contiguous runs. O_DIRECT bypasses the page cache
  // and transfers exactly the byte range requested (block-granular device
  // access would be an option; real O_DIRECT requires sector alignment and
  // we model the common aligned case).
  const bool direct = mode == ReadMode::kDirect;
  const std::uint64_t first_byte_in_block = offset - first_block * bs;
  const std::uint64_t last_byte_in_block = (offset + length - 1) - last_block * bs;
  auto issue = [&](std::uint64_t dev, std::uint64_t len, bool is_first,
                   bool is_last) {
    if (direct) {
      std::uint64_t dev_off = dev;
      std::uint64_t dev_len = len;
      if (is_first) {
        dev_off += first_byte_in_block;
        dev_len -= first_byte_in_block;
      }
      if (is_last) {
        dev_len -= (bs - 1 - last_byte_in_block);
      }
      const IoRequest req{IoKind::kRead, dev_off,
                          static_cast<std::uint32_t>(dev_len)};
      t = queue_.execute(req, t);
    } else {
      t = cache_.read(dev, len, t, /*allow_readahead=*/true);
    }
  };
  std::uint64_t run_dev = node.blocks[first_block];
  std::uint64_t run_len = bs;
  bool run_is_first = true;
  for (std::uint64_t b = first_block + 1; b <= last_block; ++b) {
    const std::uint64_t dev = node.blocks[b];
    if (dev == run_dev + run_len) {
      run_len += bs;
    } else {
      issue(run_dev, run_len, run_is_first, /*is_last=*/false);
      run_is_first = false;
      run_dev = dev;
      run_len = bs;
    }
  }
  issue(run_dev, run_len, run_is_first, /*is_last=*/true);
  clock_.advance_to(t);

  // Payload.
  if (!out.empty()) {
    const std::uint64_t n = std::min<std::uint64_t>(out.size(), length);
    for (std::uint64_t i = 0; i < n; ++i) {
      out[i] = node.synthetic ? synthetic_byte(node.id, offset + i)
                              : node.content[offset + i];
    }
  }
  return length;
}

std::uint64_t Filesystem::read(Fd fd, std::span<std::uint8_t> out,
                               ReadMode mode) {
  auto& of = open_files_.at(fd);
  FileNode& node = files_.at(of.name);
  const std::uint64_t n =
      read_internal(node, out, of.cursor, out.size(), mode);
  of.cursor += n;
  return n;
}

std::uint64_t Filesystem::pread(Fd fd, std::span<std::uint8_t> out,
                                std::uint64_t offset, ReadMode mode) {
  return read_internal(node_for(fd), out, offset, out.size(), mode);
}

std::uint64_t Filesystem::pread_timed(Fd fd, std::uint64_t offset,
                                      std::uint64_t length, ReadMode mode) {
  return read_internal(node_for(fd), {}, offset, length, mode);
}

void Filesystem::mark_dirty(const std::string& name, std::uint64_t offset,
                            std::uint64_t length) {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  FileNode& node = files_.at(name);
  GREENVIS_REQUIRE(length > 0 && offset + length <= node.size);
  charge_syscall();
  const std::uint64_t bs = params_.block_size.value();
  const std::uint64_t first_block = offset / bs;
  const std::uint64_t last_block = (offset + length - 1) / bs;
  Seconds t = clock_.now();
  std::uint64_t run_dev = node.blocks[first_block];
  std::uint64_t run_len = bs;
  for (std::uint64_t b = first_block + 1; b <= last_block; ++b) {
    const std::uint64_t dev = node.blocks[b];
    if (dev == run_dev + run_len) {
      run_len += bs;
    } else {
      t = cache_.write(run_dev, run_len, t);
      run_dev = dev;
      run_len = bs;
    }
  }
  t = cache_.write(run_dev, run_len, t);
  clock_.advance_to(t);
}

void Filesystem::pread_batch(Fd fd, std::span<const std::uint64_t> offsets,
                             std::uint64_t length, ReadMode mode) {
  FileNode& node = node_for(fd);
  GREENVIS_REQUIRE(length > 0);
  charge_syscall();
  const std::uint64_t bs = params_.block_size.value();

  std::vector<IoRequest> batch;
  std::vector<std::uint64_t> pages;
  for (std::uint64_t off : offsets) {
    GREENVIS_REQUIRE(off + length <= node.size);
    counters_.logical_bytes_read += util::Bytes{length};
    const std::uint64_t first_block = off / bs;
    const std::uint64_t last_block = (off + length - 1) / bs;
    for (std::uint64_t b = first_block; b <= last_block; ++b) {
      const std::uint64_t dev = node.blocks[b];
      if (mode == ReadMode::kBuffered && cache_.is_resident(dev / bs)) {
        continue;
      }
      batch.push_back(
          IoRequest{IoKind::kRead, dev, static_cast<std::uint32_t>(bs)});
      pages.push_back(dev / bs);
    }
  }
  Seconds t = queue_.run_batch(batch, clock_.now(), params_.io_queue.scheduler);
  if (mode == ReadMode::kBuffered) {
    t = cache_.insert_clean(pages, t);
  }
  clock_.advance_to(t);
}

void Filesystem::seek_to(Fd fd, std::uint64_t offset) {
  open_files_.at(fd).cursor = offset;
}

std::uint64_t Filesystem::tell(Fd fd) const {
  return open_files_.at(fd).cursor;
}

void Filesystem::flush_file_data(const FileNode& node) {
  const std::uint64_t bs = params_.block_size.value();
  std::vector<std::uint64_t> pages;
  pages.reserve(node.blocks.size());
  for (std::uint64_t dev : node.blocks) {
    pages.push_back(dev / bs);
  }
  Seconds t = cache_.flush_pages(pages, clock_.now());
  t = queue_.flush(t);
  clock_.advance_to(t);
}

void Filesystem::journal_commit() {
  ++counters_.journal_commits;
  const std::uint64_t base = static_cast<std::uint64_t>(
      device_.capacity().as_double() * params_.journal_position_fraction);
  const std::uint64_t record = params_.journal_record.value();
  const std::uint64_t commit_block = params_.block_size.value();
  if (journal_head_ + record + commit_block > params_.journal_size.value()) {
    journal_head_ = 0;
  }

  Seconds t = clock_.now();
  // Descriptor + metadata write, then a barrier to make it durable.
  const IoRequest desc{IoKind::kWrite, base + journal_head_,
                       static_cast<std::uint32_t>(record)};
  t = queue_.execute(desc, t);
  t = queue_.flush(t);
  // The commit record is only issued once the descriptor IO has completed
  // and the host has taken an interrupt — by which time the platter has
  // rotated past, so the commit pays (most of) a full rotation.
  t += params_.journal_commit_gap;
  const IoRequest commit{IoKind::kWrite, base + journal_head_ + record,
                         static_cast<std::uint32_t>(commit_block)};
  t = queue_.execute(commit, t);
  t = queue_.flush(t);
  journal_head_ += record + commit_block;
  clock_.advance_to(t);
}

void Filesystem::fsync(Fd fd) {
  const FileNode& node = node_for(fd);
  charge_syscall();
  const std::uint64_t bs = params_.block_size.value();
  bool any_dirty = false;
  for (std::uint64_t dev : node.blocks) {
    if (cache_.is_dirty(dev / bs)) {
      any_dirty = true;
      break;
    }
  }
  if (!any_dirty) {
    return;
  }
  flush_file_data(node);
  journal_commit();
}

void Filesystem::sync_all() {
  charge_syscall();
  const bool had_dirty = cache_.dirty_pages() > 0;
  Seconds t = cache_.flush_all(clock_.now());
  t = queue_.flush(t);
  clock_.advance_to(t);
  if (had_dirty) {
    journal_commit();
  }
}

void Filesystem::drop_caches() {
  sync_all();
  cache_.drop_clean();
}

std::vector<Extent> Filesystem::extents(const std::string& name) const {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  const FileNode& node = files_.at(name);
  const std::uint64_t bs = params_.block_size.value();
  std::vector<Extent> out;
  for (std::uint64_t dev : node.blocks) {
    if (!out.empty() &&
        out.back().device_offset + out.back().length == dev) {
      out.back().length += bs;
    } else {
      out.push_back(Extent{dev, bs});
    }
  }
  return out;
}

double Filesystem::fragmentation(const std::string& name) const {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  const FileNode& node = files_.at(name);
  if (node.blocks.size() < 2) {
    return 0.0;
  }
  const std::uint64_t bs = params_.block_size.value();
  std::size_t breaks = 0;
  for (std::size_t i = 1; i < node.blocks.size(); ++i) {
    if (node.blocks[i] != node.blocks[i - 1] + bs) {
      ++breaks;
    }
  }
  return static_cast<double>(breaks) /
         static_cast<double>(node.blocks.size() - 1);
}

void Filesystem::rehome_contiguous(const std::string& name) {
  GREENVIS_REQUIRE_MSG(files_.contains(name), "no such file: " + name);
  FileNode& node = files_.at(name);
  const std::uint64_t bs = params_.block_size.value();
  // Carve a contiguous run from group 0's free space.
  std::uint64_t base = group_next_[0];
  group_next_[0] += node.blocks.size() * bs;
  GREENVIS_ENSURE(group_next_[0] <= device_.capacity().value());
  for (auto& dev : node.blocks) {
    dev = base;
    base += bs;
  }
  // Metadata becomes contiguous with the data (extent-mapped after rewrite).
  std::uint64_t meta_base = group_next_[0];
  group_next_[0] += node.meta_blocks.size() * bs;
  for (auto& dev : node.meta_blocks) {
    dev = meta_base;
    meta_base += bs;
  }
}

}  // namespace greenvis::storage

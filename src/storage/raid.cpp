#include "src/storage/raid.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace greenvis::storage {

Raid0Model::Raid0Model(std::vector<std::unique_ptr<BlockDevice>> children,
                       util::Bytes stripe)
    : children_(std::move(children)), stripe_(stripe) {
  GREENVIS_REQUIRE_MSG(!children_.empty(), "RAID0 needs at least one child");
  GREENVIS_REQUIRE(stripe_.value() > 0);
  util::Bytes smallest = children_.front()->capacity();
  for (const auto& child : children_) {
    GREENVIS_REQUIRE(child != nullptr);
    smallest = std::min(smallest, child->capacity());
  }
  const std::uint64_t stripes_per_child = smallest.value() / stripe_.value();
  GREENVIS_REQUIRE_MSG(stripes_per_child > 0, "stripe larger than children");
  capacity_ = util::Bytes{children_.size() * stripes_per_child *
                          stripe_.value()};
  name_ = "RAID0 x" + std::to_string(children_.size()) + " (" +
          std::string(children_.front()->name()) + ")";
  merged_segments_.assign(children_.size(), 0);
}

Raid0Model::ChildExtent Raid0Model::child_extent(std::size_t child,
                                                 std::uint64_t offset,
                                                 std::uint64_t length) const {
  const std::uint64_t S = stripe_.value();
  const std::uint64_t N = children_.size();
  const std::uint64_t end = offset + length;
  const std::uint64_t s0 = offset / S;
  const std::uint64_t sl = (end - 1) / S;
  // Smallest and largest stripe indices in [s0, sl] owned by this child.
  const std::uint64_t s_first = s0 + (child + N - s0 % N) % N;
  if (s_first > sl) {
    return ChildExtent{};
  }
  const std::uint64_t s_last = sl - (sl % N + N - child) % N;
  // Consecutive stripes of one child are adjacent on that child, so the
  // covered child range is a single extent, ragged only at the volume
  // request's first and last stripes.
  const std::uint64_t begin_off =
      (s_first / N) * S + (s_first == s0 ? offset % S : 0);
  const std::uint64_t end_off =
      (s_last / N) * S + (s_last == sl ? (end - 1) % S + 1 : S);
  return ChildExtent{begin_off, end_off - begin_off};
}

Seconds Raid0Model::service(const IoRequest& request, Seconds start) {
  GREENVIS_REQUIRE(request.length > 0);
  GREENVIS_REQUIRE_MSG(request.offset + request.length <= capacity_.value(),
                       "request beyond volume capacity");
  Seconds end = start;
  for (std::size_t c = 0; c < children_.size(); ++c) {
    const ChildExtent extent =
        child_extent(c, request.offset, request.length);
    if (extent.length == 0) {
      continue;
    }
    const IoRequest child_request{request.kind, extent.offset,
                                  static_cast<std::uint32_t>(extent.length)};
    // Spindles work in parallel: the volume completes with the slowest.
    end = std::max(end, children_[c]->service(child_request, start));
  }

  if (request.kind == IoKind::kRead) {
    ++counters_.reads;
    counters_.bytes_read += util::Bytes{request.length};
  } else {
    ++counters_.writes;
    counters_.bytes_written += util::Bytes{request.length};
  }

  merge_child_activity();
  return end;
}

Seconds Raid0Model::flush(Seconds start) {
  Seconds end = start;
  for (const auto& child : children_) {
    end = std::max(end, child->flush(start));
  }
  merge_child_activity();
  return end;
}

// Pull each child's newly recorded segments into the volume log, sorted by
// begin so the shared log's append-order contract holds across spindles.
void Raid0Model::merge_child_activity() {
  std::vector<DiskSegment> fresh;
  for (std::size_t c = 0; c < children_.size(); ++c) {
    const auto& segments = children_[c]->activity().segments();
    fresh.insert(fresh.end(), segments.begin() + merged_segments_[c],
                 segments.end());
    merged_segments_[c] = segments.size();
  }
  std::stable_sort(fresh.begin(), fresh.end(),
                   [](const DiskSegment& a, const DiskSegment& b) {
                     return a.begin < b.begin;
                   });
  for (const DiskSegment& segment : fresh) {
    log_.record(segment.phase, segment.begin, segment.end);
  }
}

}  // namespace greenvis::storage

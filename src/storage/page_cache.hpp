// OS page cache model.
//
// Sits between the filesystem and a block device: 4 KiB pages, LRU eviction,
// dirty tracking with elevator-ordered writeback, and sequential readahead.
// The paper's methodology depends on cache discipline — "we perform a sync
// operation and drop the caches between phases. This ensures that the data
// does not get cached in memory and is actually written to the disk"
// (Sec. IV-C) — so `flush_*` and `drop_clean` model exactly those controls.
//
// Pages carry no payload (data lives with the filesystem); the cache is a
// timing and traffic model.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/storage/async_device.hpp"
#include "src/storage/block_device.hpp"

namespace greenvis::storage {

struct PageCacheParams {
  util::Bytes page_size{util::kibibytes(4)};
  /// Pages available to the cache (the testbed has 64 GB of DRAM; the kernel
  /// will happily use most of it).
  util::Bytes capacity{util::gibibytes(48)};
  /// Maximum readahead window for sequential reads.
  util::Bytes readahead_window{util::kibibytes(128)};
};

struct PageCacheCounters {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t readahead_pages{0};
  std::uint64_t writeback_pages{0};
  std::uint64_t evictions{0};
};

class PageCache {
 public:
  /// Issue through an existing submission queue (shared with the
  /// filesystem, so writeback and demand reads honor one scheduler config).
  PageCache(AsyncBlockDevice& queue, const PageCacheParams& params);
  /// Convenience: wrap a bare device in a private default queue.
  PageCache(BlockDevice& device, const PageCacheParams& params);

  /// Read device range [offset, offset+length); misses go to the device
  /// (coalesced, with readahead when the access continues the previous one
  /// and `allow_readahead` is set). Returns completion time.
  Seconds read(std::uint64_t offset, std::uint64_t length, Seconds start,
               bool allow_readahead = true);

  /// Buffered write: pages become resident+dirty, no device traffic now.
  Seconds write(std::uint64_t offset, std::uint64_t length, Seconds start);

  /// Write back dirty pages intersecting [offset, offset+length) in elevator
  /// order; pages stay resident and clean. No device barrier — callers
  /// decide when to pay for one.
  Seconds flush_range(std::uint64_t offset, std::uint64_t length,
                      Seconds start);
  Seconds flush_all(Seconds start);
  /// Write back exactly those of `pages` that are dirty (elevator order).
  /// Used by fsync: the filesystem knows which pages belong to the file.
  Seconds flush_pages(std::span<const std::uint64_t> pages, Seconds start);

  /// Insert pages as resident+clean without device traffic (the caller
  /// already performed the device reads, e.g. a queued batch).
  Seconds insert_clean(std::span<const std::uint64_t> pages, Seconds start);

  [[nodiscard]] bool is_resident(std::uint64_t page) const {
    return pages_.contains(page);
  }
  [[nodiscard]] bool is_dirty(std::uint64_t page) const {
    auto it = pages_.find(page);
    return it != pages_.end() && it->second.dirty;
  }

  /// Evict all clean pages (echo 3 > /proc/sys/vm/drop_caches). Dirty pages
  /// survive, as in the kernel.
  void drop_clean();

  [[nodiscard]] std::uint64_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] std::uint64_t dirty_pages() const { return dirty_count_; }
  [[nodiscard]] const PageCacheCounters& counters() const { return counters_; }
  [[nodiscard]] const PageCacheParams& params() const { return params_; }

 private:
  struct PageState {
    std::list<std::uint64_t>::iterator lru_pos;
    bool dirty{false};
  };

  [[nodiscard]] std::uint64_t page_of(std::uint64_t offset) const {
    return offset / params_.page_size.value();
  }
  [[nodiscard]] std::uint64_t max_pages() const {
    return params_.capacity.value() / params_.page_size.value();
  }

  /// Insert or touch a page; may evict (and write back) the LRU victim.
  Seconds touch(std::uint64_t page, bool dirty, Seconds now);
  Seconds evict_one(Seconds now);
  /// Write back the coalesced dirty runs in `dirty` (ascending pages).
  Seconds write_back_runs(const std::vector<std::uint64_t>& dirty, Seconds t);
  /// Scheduler for writeback batches: legacy discipline is ascending page
  /// order, so kDevice resolves to FIFO (the runs are already sorted).
  [[nodiscard]] IoSchedulerKind writeback_scheduler() const;

  std::unique_ptr<AsyncBlockDevice> owned_queue_;
  AsyncBlockDevice& queue_;
  PageCacheParams params_;
  std::unordered_map<std::uint64_t, PageState> pages_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::uint64_t dirty_count_{0};
  std::uint64_t last_read_end_page_{~0ULL};
  PageCacheCounters counters_;
};

}  // namespace greenvis::storage

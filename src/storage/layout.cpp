#include "src/storage/layout.hpp"

#include <algorithm>
#include <vector>

#include "src/util/error.hpp"

namespace greenvis::storage::layout {

ReorganizeReport Reorganizer::reorganize(const std::string& name) {
  Filesystem& fs = *fs_;
  GREENVIS_REQUIRE(fs.exists(name));

  ReorganizeReport report;
  report.fragmentation_before = fs.fragmentation(name);
  const Seconds start = fs.clock().now();
  const std::uint64_t size = fs.file_size(name).value();
  const std::uint64_t bs = fs.params().block_size.value();

  // Read every block once, scheduled in *physical* order (one elevator sweep
  // over the platter — the essence of software-directed access scheduling).
  const auto extents = fs.extents(name);
  struct Piece {
    std::uint64_t device_offset;
    std::uint64_t logical_offset;
    std::uint64_t length;
  };
  std::vector<Piece> pieces;
  std::uint64_t logical = 0;
  for (const Extent& e : extents) {
    pieces.push_back(Piece{e.device_offset, logical, e.length});
    logical += e.length;
  }
  std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
    return a.device_offset < b.device_offset;
  });

  const Filesystem::Fd fd = fs.open(name);
  for (const Piece& p : pieces) {
    for (std::uint64_t off = 0; off < p.length; off += bs) {
      const std::uint64_t lo = p.logical_offset + off;
      if (lo >= size) {
        break;
      }
      const std::uint64_t n = std::min<std::uint64_t>(bs, size - lo);
      fs.pread_timed(fd, lo, n, ReadMode::kDirect);
    }
  }

  // Re-home onto contiguous blocks and stream the payload back out in one
  // sequential pass.
  fs.rehome_contiguous(name);
  const std::uint64_t chunk = util::mebibytes(1).value();
  for (std::uint64_t off = 0; off < size; off += chunk) {
    fs.mark_dirty(name, off, std::min<std::uint64_t>(chunk, size - off));
  }
  fs.fsync(fd);
  fs.close(fd);

  report.duration = fs.clock().now() - start;
  report.fragmentation_after = fs.fragmentation(name);
  report.bytes_moved = util::Bytes{2 * size};  // read once + write once
  return report;
}

}  // namespace greenvis::storage::layout

#include "src/storage/async_device.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "src/obs/registry.hpp"
#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"

namespace greenvis::storage {

const char* io_scheduler_name(IoSchedulerKind kind) {
  switch (kind) {
    case IoSchedulerKind::kDevice:
      return "device";
    case IoSchedulerKind::kNoop:
      return "noop";
    case IoSchedulerKind::kElevator:
      return "elevator";
    case IoSchedulerKind::kDeadline:
      return "deadline";
  }
  return "?";
}

std::optional<IoSchedulerKind> parse_io_scheduler(std::string_view name) {
  if (name == "device") {
    return IoSchedulerKind::kDevice;
  }
  if (name == "noop") {
    return IoSchedulerKind::kNoop;
  }
  if (name == "elevator") {
    return IoSchedulerKind::kElevator;
  }
  if (name == "deadline") {
    return IoSchedulerKind::kDeadline;
  }
  return std::nullopt;
}

bool AsyncBlockDevice::layer_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("GREENVIS_STORAGE_ASYNC");
    return env == nullptr || std::string_view{env} != "0";
  }();
  return enabled;
}

AsyncBlockDevice::AsyncBlockDevice(BlockDevice& backend,
                                   AsyncDeviceConfig config)
    : backend_(&backend), config_(config) {
  channel_free_.assign(std::max<std::size_t>(1, backend_->channels()),
                       Seconds{0.0});
}

IoSchedulerKind AsyncBlockDevice::resolve(IoSchedulerKind kind) const {
  if (kind != IoSchedulerKind::kDevice) {
    return kind;
  }
  return backend_->reorders_batches() ? IoSchedulerKind::kElevator
                                      : IoSchedulerKind::kNoop;
}

void AsyncBlockDevice::note_occupancy() const {
  if (obs::enabled()) {
    static obs::Gauge& occupancy =
        obs::Registry::global().gauge("storage.async.queue_occupancy");
    occupancy.set(static_cast<double>(pending_.size()));
  }
}

RequestHandle AsyncBlockDevice::submit(const IoRequest& request,
                                       Seconds submit_time) {
  const RequestHandle handle = next_handle_++;
  pending_.push_back(Pending{handle, request, submit_time});
  ++stats_.submitted;
  if (obs::enabled()) {
    static obs::Counter& submitted =
        obs::Registry::global().counter("storage.async.submitted");
    submitted.add();
  }
  note_occupancy();
  if (config_.queue_depth > 0) {
    while (pending_.size() >= config_.queue_depth) {
      dispatch_window(config_.queue_depth, resolve(config_.scheduler),
                      &completed_);
    }
  }
  return handle;
}

std::size_t AsyncBlockDevice::poll(std::vector<CompletionRecord>& out) {
  if (completed_.empty()) {
    return 0;
  }
  obs::ScopedSpan span("storage.complete", obs::kCatIo);
  const std::size_t n = completed_.size();
  out.insert(out.end(), std::make_move_iterator(completed_.begin()),
             std::make_move_iterator(completed_.end()));
  completed_.clear();
  return n;
}

Seconds AsyncBlockDevice::drain() {
  while (!pending_.empty()) {
    dispatch_window(config_.queue_depth, resolve(config_.scheduler),
                    &completed_);
  }
  return horizon_;
}

Seconds AsyncBlockDevice::drain_checked() {
  const Seconds end = drain();
  for (const CompletionRecord& record : completed_) {
    if (!record.ok) {
      throw DeviceError(record.error);
    }
  }
  if (sticky_error_) {
    // Layer bookkeeping disabled: the error was noted but no record exists.
    std::string message = *sticky_error_;
    sticky_error_.reset();
    throw DeviceError(message);
  }
  return end;
}

Seconds AsyncBlockDevice::execute(const IoRequest& request, Seconds start) {
  GREENVIS_REQUIRE_MSG(pending_.empty(),
                       "execute() may not interleave with queued submissions");
  const IoOutcome outcome = backend_->service_outcome(request, start);
  horizon_ = std::max(horizon_, outcome.end);
  if (!channel_free_.empty()) {
    auto slot = std::min_element(channel_free_.begin(), channel_free_.end());
    *slot = std::max(*slot, outcome.end);
  }
  ++stats_.submitted;
  ++stats_.completed;
  if (!outcome.ok) {
    ++stats_.errors;
  }
  last_batch_.clear();
  if (layer_enabled()) {
    last_batch_.push_back(CompletionRecord{
        next_handle_++, request.kind, request.offset, request.length, start,
        start, outcome.end, outcome.ok, outcome.error});
  }
  if (!outcome.ok) {
    throw DeviceError(outcome.error);
  }
  return outcome.end;
}

Seconds AsyncBlockDevice::run_batch(std::span<const IoRequest> requests,
                                    Seconds start, IoSchedulerKind scheduler) {
  GREENVIS_REQUIRE_MSG(
      pending_.empty(),
      "run_batch() may not interleave with queued submissions");
  last_batch_.clear();
  sticky_error_.reset();
  if (requests.empty()) {
    return start;
  }
  // Batch semantics are self-contained: the device is considered idle (all
  // channels free) at `start`, exactly like the legacy service_batch call.
  channel_free_.assign(std::max<std::size_t>(1, backend_->channels()), start);
  last_dispatch_start_ = start;
  for (const IoRequest& request : requests) {
    pending_.push_back(Pending{next_handle_++, request, start});
    ++stats_.submitted;
  }
  const IoSchedulerKind resolved = resolve(scheduler);
  Seconds end = start;
  while (!pending_.empty()) {
    end = std::max(end, dispatch_window(config_.queue_depth, resolved,
                                        layer_enabled() ? &last_batch_
                                                        : nullptr));
  }
  for (const CompletionRecord& record : last_batch_) {
    if (!record.ok) {
      throw DeviceError(record.error);
    }
  }
  if (sticky_error_) {
    std::string message = *sticky_error_;
    sticky_error_.reset();
    throw DeviceError(message);
  }
  return end;
}

Seconds AsyncBlockDevice::flush(Seconds start) {
  GREENVIS_REQUIRE_MSG(pending_.empty(), "flush() requires a drained queue");
  const Seconds end = backend_->flush(start);
  horizon_ = std::max(horizon_, end);
  return end;
}

Seconds AsyncBlockDevice::dispatch_window(std::size_t limit,
                                          IoSchedulerKind scheduler,
                                          std::vector<CompletionRecord>* sink) {
  const std::size_t n =
      limit == 0 ? pending_.size() : std::min(limit, pending_.size());
  if (n == 0) {
    return horizon_;
  }
  obs::ScopedSpan span("storage.submit", obs::kCatIo);
  std::vector<Pending> window(pending_.begin(), pending_.begin() + n);
  pending_.erase(pending_.begin(), pending_.begin() + n);
  ++stats_.dispatch_windows;

  Seconds window_end{0.0};
  switch (scheduler) {
    case IoSchedulerKind::kDevice:  // resolved by callers; treat as FIFO
    case IoSchedulerKind::kNoop:
      for (const Pending& p : window) {
        window_end = std::max(window_end, service_one(p, sink));
      }
      break;
    case IoSchedulerKind::kElevator: {
      // One sweep, byte-for-byte the HddModel NCQ ordering: ascending
      // offsets at or beyond the head first, then wrap to the lowest.
      const std::uint64_t head = backend_->head_hint();
      std::stable_sort(window.begin(), window.end(),
                       [head](const Pending& a, const Pending& b) {
                         const bool a_ahead = a.request.offset >= head;
                         const bool b_ahead = b.request.offset >= head;
                         if (a_ahead != b_ahead) {
                           return a_ahead;
                         }
                         return a.request.offset < b.request.offset;
                       });
      for (const Pending& p : window) {
        window_end = std::max(window_end, service_one(p, sink));
      }
      break;
    }
    case IoSchedulerKind::kDeadline: {
      // Incremental elevator with aging: before each pick, any request
      // whose wait exceeds the deadline window jumps the sweep (oldest
      // first); otherwise take the elevator-next offset from the simulated
      // head. Guarantees bounded starvation: a request can be overtaken
      // only until its deadline expires, after which every later pick is a
      // request that expired even earlier or was already in service.
      std::uint64_t head = backend_->head_hint();
      std::vector<Pending> left = std::move(window);
      while (!left.empty()) {
        const Seconds now =
            *std::min_element(channel_free_.begin(), channel_free_.end());
        std::size_t pick = left.size();
        // Oldest expired request, in submission order.
        for (std::size_t i = 0; i < left.size(); ++i) {
          if (left[i].submit + config_.deadline_window <= now &&
              (pick == left.size() || left[i].submit < left[pick].submit)) {
            pick = i;
          }
        }
        if (pick == left.size()) {
          // Elevator-next: smallest offset at or beyond the head, else the
          // smallest offset overall (sweep wrap).
          for (std::size_t i = 0; i < left.size(); ++i) {
            if (pick == left.size()) {
              pick = i;
              continue;
            }
            const bool i_ahead = left[i].request.offset >= head;
            const bool p_ahead = left[pick].request.offset >= head;
            if (i_ahead != p_ahead) {
              if (i_ahead) {
                pick = i;
              }
              continue;
            }
            if (left[i].request.offset < left[pick].request.offset) {
              pick = i;
            }
          }
        }
        const Pending chosen = left[pick];
        left.erase(left.begin() + static_cast<std::ptrdiff_t>(pick));
        head = chosen.request.offset + chosen.request.length;
        window_end = std::max(window_end, service_one(chosen, sink));
      }
      break;
    }
  }
  note_occupancy();
  return window_end;
}

Seconds AsyncBlockDevice::service_one(const Pending& p,
                                      std::vector<CompletionRecord>* sink) {
  auto slot = std::min_element(channel_free_.begin(), channel_free_.end());
  Seconds start = std::max(*slot, p.submit);
  if (channel_free_.size() > 1) {
    // Parallel channels could otherwise hand the shared activity log a
    // service start earlier than an already-recorded one.
    start = std::max(start, last_dispatch_start_);
  }
  const IoOutcome outcome = backend_->service_outcome(p.request, start);
  *slot = outcome.end;
  last_dispatch_start_ = std::max(last_dispatch_start_, start);
  horizon_ = std::max(horizon_, outcome.end);
  ++stats_.completed;
  if (!outcome.ok) {
    ++stats_.errors;
    if ((sink == nullptr || !layer_enabled()) && !sticky_error_) {
      sticky_error_ = outcome.error;
    }
  }
  if (obs::enabled()) {
    static obs::Counter& completed =
        obs::Registry::global().counter("storage.async.completed");
    static obs::Counter& errors =
        obs::Registry::global().counter("storage.async.errors");
    completed.add();
    if (!outcome.ok) {
      errors.add();
    }
  }
  if (sink != nullptr && layer_enabled()) {
    sink->push_back(CompletionRecord{p.handle, p.request.kind,
                                     p.request.offset, p.request.length,
                                     p.submit, start, outcome.end, outcome.ok,
                                     outcome.error});
  }
  return outcome.end;
}

}  // namespace greenvis::storage

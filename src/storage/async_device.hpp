// Async submission queue over a BlockDevice — the one request path every
// storage consumer shares.
//
// The underlying devices (hdd.hpp, solid_state.hpp, nvme.hpp, raid.hpp)
// still model *serial service timing*: one request in, one completion time
// out. This layer adds what real hosts put in front of a device:
//
//   * a submission queue with a configurable depth (the reordering window
//     the device may hold at once — SATA NCQ, NVMe SQ entries),
//   * pluggable I/O schedulers deciding dispatch order inside that window
//     (noop = FIFO, elevator = one ascending sweep from the head position,
//     deadline = elevator with an aging bound so no request starves),
//   * per-request CompletionRecords carrying queue/service/completion
//     virtual timestamps, byte counts, and an error code, so faults at
//     queue depth > 1 surface on the *correct* request, and
//   * obs tracing hooks (storage.submit / storage.complete spans, async
//     counters, a queue-occupancy gauge).
//
// Timing contract: at queue depth 1 with the noop scheduler, a request
// stream produces *bit-identical* completion times, DeviceCounters, and
// DiskActivityLog segments to calling BlockDevice::service directly — the
// storage.async_vs_sync oracle pins this. The sync helpers execute() and
// run_batch() preserve the legacy single-call and NCQ-batch semantics
// exactly, so the filesystem and page cache ride this layer without moving
// any figure.
//
// Multi-channel devices (NVMe with several submission queues, RAID0
// spindles) report channels() > 1; dispatch then fills the earliest-free
// channel. Because DiskActivityLog requires nondecreasing segment begin
// times, multi-channel dispatch clamps each service start to be monotone.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/storage/block_device.hpp"

namespace greenvis::storage {

enum class IoSchedulerKind {
  /// Defer to the backend: elevator for devices that reorder queued
  /// batches (HDD NCQ), FIFO for everything else.
  kDevice,
  kNoop,
  kElevator,
  kDeadline,
};

[[nodiscard]] const char* io_scheduler_name(IoSchedulerKind kind);
[[nodiscard]] std::optional<IoSchedulerKind> parse_io_scheduler(
    std::string_view name);

using RequestHandle = std::uint64_t;

/// One completed (or failed) request, in completion order.
struct CompletionRecord {
  RequestHandle handle{0};
  IoKind kind{IoKind::kRead};
  std::uint64_t offset{0};
  std::uint32_t length{0};
  Seconds submit{0.0};    ///< when the host queued it
  Seconds start{0.0};     ///< when the device began service
  Seconds complete{0.0};  ///< when service finished (time passes on errors too)
  bool ok{true};
  std::string error;  ///< empty when ok
};

struct AsyncDeviceConfig {
  /// Dispatch window: how many queued requests the device holds (and the
  /// scheduler may reorder) at once. 0 = unbounded — the whole submitted
  /// batch is one window, which is the legacy NCQ service_batch behavior.
  std::size_t queue_depth{0};
  IoSchedulerKind scheduler{IoSchedulerKind::kDevice};
  /// Deadline scheduler only: a queued request waiting longer than this is
  /// dispatched before any elevator pick.
  Seconds deadline_window{util::milliseconds(50.0)};
};

struct AsyncDeviceStats {
  std::uint64_t submitted{0};
  std::uint64_t completed{0};
  std::uint64_t errors{0};
  std::uint64_t dispatch_windows{0};
};

class AsyncBlockDevice {
 public:
  explicit AsyncBlockDevice(BlockDevice& backend,
                            AsyncDeviceConfig config = {});

  AsyncBlockDevice(const AsyncBlockDevice&) = delete;
  AsyncBlockDevice& operator=(const AsyncBlockDevice&) = delete;

  // ---- streaming interface ------------------------------------------------

  /// Queue one request at virtual time `submit_time`. When the window is
  /// full (queue_depth > 0), the oldest window dispatches to the device
  /// before this returns; completions become visible to poll().
  RequestHandle submit(const IoRequest& request, Seconds submit_time);

  /// Move all completion records accumulated so far into `out` (appended).
  /// Returns how many were moved. Error records are returned, not thrown.
  std::size_t poll(std::vector<CompletionRecord>& out);

  /// Dispatch everything still queued. Returns the completion time of the
  /// last request this queue ever serviced (or 0 if none). Errors stay on
  /// their records for poll().
  Seconds drain();

  /// drain(), then throw DeviceError for the first failed record (records
  /// remain pollable). Returns the last completion time.
  Seconds drain_checked();

  // ---- synchronous helpers (legacy call shapes) ---------------------------

  /// Service one request at exactly `start`, bypassing the queue — timing-
  /// identical to BlockDevice::service. Throws DeviceError on failure. The
  /// record lands in last_batch().
  Seconds execute(const IoRequest& request, Seconds start);

  /// Service a batch submitted together at `start`, dispatching in windows
  /// of queue_depth (whole batch when 0) ordered by `scheduler` (kDevice
  /// resolves via the backend). Returns the batch completion time. Throws
  /// DeviceError after the whole batch is serviced if any request failed;
  /// per-request records land in last_batch() either way.
  Seconds run_batch(std::span<const IoRequest> requests, Seconds start,
                    IoSchedulerKind scheduler = IoSchedulerKind::kDevice);

  /// Write barrier on the backend. Requires an empty queue.
  Seconds flush(Seconds start);

  // ---- introspection ------------------------------------------------------

  [[nodiscard]] BlockDevice& backend() { return *backend_; }
  [[nodiscard]] const BlockDevice& backend() const { return *backend_; }
  [[nodiscard]] const AsyncDeviceConfig& config() const { return config_; }
  [[nodiscard]] const AsyncDeviceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  /// Records produced by the most recent execute()/run_batch() call.
  [[nodiscard]] const std::vector<CompletionRecord>& last_batch() const {
    return last_batch_;
  }

  /// Scheduler actually used for a given request (kDevice resolved against
  /// the backend's preference).
  [[nodiscard]] IoSchedulerKind resolve(IoSchedulerKind kind) const;

  /// False when GREENVIS_STORAGE_ASYNC=0: the layer still orders requests
  /// identically but skips record-keeping and obs hooks (used by the
  /// check.sh storage smoke to show the layer is pure bookkeeping).
  [[nodiscard]] static bool layer_enabled();

 private:
  struct Pending {
    RequestHandle handle{0};
    IoRequest request{};
    Seconds submit{0.0};
  };

  /// Dispatch up to `limit` queued requests (0 = all) as one scheduler
  /// window, appending records to `sink` when the layer is enabled.
  /// Returns the window's last completion time.
  Seconds dispatch_window(std::size_t limit, IoSchedulerKind scheduler,
                          std::vector<CompletionRecord>* sink);
  /// Service one picked request on the earliest-free channel; returns its
  /// completion time.
  Seconds service_one(const Pending& p, std::vector<CompletionRecord>* sink);
  void note_occupancy() const;

  BlockDevice* backend_;
  AsyncDeviceConfig config_;
  AsyncDeviceStats stats_;
  std::deque<Pending> pending_;
  std::vector<CompletionRecord> completed_;  // streaming records until poll()
  std::vector<CompletionRecord> last_batch_;
  std::vector<Seconds> channel_free_;
  RequestHandle next_handle_{1};
  Seconds last_dispatch_start_{0.0};  // activity-log monotonicity clamp
  Seconds horizon_{0.0};              // latest completion ever serviced
  /// First error seen while record-keeping is off (the records themselves
  /// carry errors when the layer is enabled).
  std::optional<std::string> sticky_error_;
};

}  // namespace greenvis::storage

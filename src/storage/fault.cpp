#include "src/storage/fault.hpp"

#include "src/util/error.hpp"

namespace greenvis::storage {

FaultyDisk::FaultyDisk(BlockDevice& inner, const FaultConfig& config)
    : inner_(&inner),
      config_(config),
      name_(std::string(inner.name()) + " (degraded)"),
      rng_(config.seed) {
  GREENVIS_REQUIRE(config_.retry_probability >= 0.0 &&
                   config_.retry_probability <= 1.0);
}

bool FaultyDisk::touches_bad_range(const IoRequest& request) const {
  for (const auto& bad : config_.bad_ranges) {
    const std::uint64_t req_end = request.offset + request.length;
    const std::uint64_t bad_end = bad.offset + bad.length;
    if (request.offset < bad_end && bad.offset < req_end) {
      return true;
    }
  }
  return false;
}

IoOutcome FaultyDisk::service_outcome(const IoRequest& request,
                                      Seconds start) {
  // Writes to a pending (remappable) sector succeed (unless fail_writes
  // models media past remapping); reads of the listed ranges fail hard, as
  // with real media defects.
  const bool hard_fail =
      (request.kind == IoKind::kRead || config_.fail_writes) &&
      touches_bad_range(request);

  std::size_t attempts = 1;
  if (hard_fail) {
    attempts = 1 + config_.retries;  // the drive tries before giving up
  } else if (config_.retry_probability > 0.0 &&
             rng_.uniform() < config_.retry_probability) {
    attempts = 1 + config_.retries;
    retries_ += config_.retries;
  }

  Seconds t = start;
  for (std::size_t a = 0; a < attempts; ++a) {
    // A retry is a genuine re-issue: the head is already on track, so the
    // wrapped device charges a full rotation waiting for the sector.
    t = inner_->service(request, t);
  }
  if (hard_fail) {
    ++hard_errors_;
    return IoOutcome{t, false,
                     (request.kind == IoKind::kRead
                          ? "unrecoverable read at offset "
                          : "unrecoverable write at offset ") +
                         std::to_string(request.offset)};
  }
  return IoOutcome{t, true, {}};
}

Seconds FaultyDisk::service(const IoRequest& request, Seconds start) {
  const IoOutcome outcome = service_outcome(request, start);
  if (!outcome.ok) {
    throw DeviceError(outcome.error);
  }
  return outcome.end;
}

Seconds FaultyDisk::flush(Seconds start) { return inner_->flush(start); }

}  // namespace greenvis::storage

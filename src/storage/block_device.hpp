// Abstract block device.
//
// Devices model *timing and power activity only*; payload bytes live in the
// filesystem layer. A device services requests serially starting at a given
// virtual time and reports how long each took, recording its mechanical
// phases into a DiskActivityLog along the way.
//
// Hosts normally talk to a device through storage::AsyncBlockDevice
// (async_device.hpp), which adds submission queues, pluggable I/O
// schedulers, and per-request completion records on top of this serial
// timing interface. The hooks below (service_outcome, head_hint,
// reorders_batches, channels) are what the queue layer needs to reproduce
// device-preferred behavior without reaching into concrete classes.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "src/storage/activity_log.hpp"
#include "src/storage/request.hpp"
#include "src/util/units.hpp"

namespace greenvis::storage {

using util::Bytes;
using util::Seconds;

/// Hard device error (unrecoverable sector).
class DeviceError : public std::runtime_error {
 public:
  explicit DeviceError(const std::string& message)
      : std::runtime_error(message) {}
};

struct DeviceCounters {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  Bytes bytes_read{0};
  Bytes bytes_written{0};
};

/// Result of servicing one request: when it finished and whether it
/// succeeded. A failed request still consumes device time (retries, seeks),
/// so `end` is meaningful either way.
struct IoOutcome {
  Seconds end{0.0};
  bool ok{true};
  std::string error;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Service one request starting at `start`; returns its completion time
  /// (>= start). The device's head/cache state advances. Throws DeviceError
  /// on unrecoverable faults.
  virtual Seconds service(const IoRequest& request, Seconds start) = 0;

  /// Like service(), but reports faults on the returned outcome instead of
  /// throwing, so a queue servicing many in-flight requests can attach the
  /// error to the *correct* completion record. Default wraps service().
  virtual IoOutcome service_outcome(const IoRequest& request, Seconds start);

  /// Drain any volatile write cache (write barrier); returns completion time.
  virtual Seconds flush(Seconds start) = 0;

  /// Current head/cursor position, used by position-aware I/O schedulers
  /// (elevator, deadline) to seed their sweep. Non-mechanical devices
  /// return 0.
  [[nodiscard]] virtual std::uint64_t head_hint() const { return 0; }

  /// True if the device itself reorders queued batches (NCQ-style); the
  /// queue layer's kDevice scheduler resolves to an elevator sweep for such
  /// devices and FIFO otherwise.
  [[nodiscard]] virtual bool reorders_batches() const { return false; }

  /// Independent service channels (NVMe submission queues, RAID spindles
  /// exposed as one). 1 for strictly serial devices.
  [[nodiscard]] virtual std::size_t channels() const { return 1; }

  [[nodiscard]] virtual Bytes capacity() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const DiskActivityLog& activity() const = 0;
  [[nodiscard]] virtual const DeviceCounters& counters() const = 0;
};

}  // namespace greenvis::storage

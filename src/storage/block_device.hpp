// Abstract block device.
//
// Devices model *timing and power activity only*; payload bytes live in the
// filesystem layer. A device services requests serially starting at a given
// virtual time and reports how long each took, recording its mechanical
// phases into a DiskActivityLog along the way.
#pragma once

#include <span>
#include <string_view>

#include "src/storage/activity_log.hpp"
#include "src/storage/request.hpp"
#include "src/util/units.hpp"

namespace greenvis::storage {

using util::Bytes;
using util::Seconds;

struct DeviceCounters {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  Bytes bytes_read{0};
  Bytes bytes_written{0};
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Service one request starting at `start`; returns its completion time
  /// (>= start). The device's head/cache state advances.
  virtual Seconds service(const IoRequest& request, Seconds start) = 0;

  /// Service a batch that the host submitted together (queue-depth > 1).
  /// Devices with command queueing may reorder internally; the default
  /// implementation services in submission order.
  virtual Seconds service_batch(std::span<const IoRequest> requests,
                                Seconds start);

  /// Drain any volatile write cache (write barrier); returns completion time.
  virtual Seconds flush(Seconds start) = 0;

  [[nodiscard]] virtual Bytes capacity() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const DiskActivityLog& activity() const = 0;
  [[nodiscard]] virtual const DeviceCounters& counters() const = 0;
};

}  // namespace greenvis::storage

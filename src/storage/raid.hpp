// RAID0 striped volume over N child block devices.
//
// Classic striping: the address space is chopped into fixed stripe units;
// stripe s lives on child s % N at child offset (s / N) * stripe + the
// intra-stripe offset. A request spanning several stripes therefore touches
// each child over one *contiguous* child range (consecutive stripes of the
// same child are adjacent on that child), so the volume issues at most one
// request per child and completes when the slowest child does — which is
// where RAID0's bandwidth multiplication comes from.
//
// The volume keeps its own DiskActivityLog by merging the children's newly
// recorded segments (sorted by begin) after every request, so the power
// model sees the true per-phase busy time across all spindles. With one
// child, the volume is a transparent pass-through: identical timings,
// counters, and activity segments — a property the RAID unit tests pin
// bit-for-bit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/storage/block_device.hpp"

namespace greenvis::storage {

class Raid0Model final : public BlockDevice {
 public:
  /// Takes ownership of the children. Capacity is children * the smallest
  /// child capacity, rounded down to a whole stripe per child.
  Raid0Model(std::vector<std::unique_ptr<BlockDevice>> children,
             util::Bytes stripe = util::kibibytes(256));

  Seconds service(const IoRequest& request, Seconds start) override;
  Seconds flush(Seconds start) override;

  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const DiskActivityLog& activity() const override {
    return log_;
  }
  [[nodiscard]] const DeviceCounters& counters() const override {
    return counters_;
  }

  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] const BlockDevice& child(std::size_t i) const {
    return *children_[i];
  }
  [[nodiscard]] util::Bytes stripe() const { return stripe_; }

  /// Stripe math, exposed for the mapping unit tests: the single contiguous
  /// child range a volume range [offset, offset+length) covers on `child`.
  struct ChildExtent {
    std::uint64_t offset{0};
    std::uint64_t length{0};  // 0 = child not touched
  };
  [[nodiscard]] ChildExtent child_extent(std::size_t child,
                                         std::uint64_t offset,
                                         std::uint64_t length) const;

 private:
  void merge_child_activity();

  std::vector<std::unique_ptr<BlockDevice>> children_;
  util::Bytes stripe_;
  util::Bytes capacity_{0};
  std::string name_;
  DiskActivityLog log_;
  DeviceCounters counters_;
  /// How many segments of each child's log were already merged into ours.
  std::vector<std::size_t> merged_segments_;
};

}  // namespace greenvis::storage

#include "src/storage/block_device.hpp"

namespace greenvis::storage {

IoOutcome BlockDevice::service_outcome(const IoRequest& request,
                                       Seconds start) {
  return IoOutcome{service(request, start), true, {}};
}

}  // namespace greenvis::storage

#include "src/storage/block_device.hpp"

namespace greenvis::storage {

Seconds BlockDevice::service_batch(std::span<const IoRequest> requests,
                                   Seconds start) {
  Seconds t = start;
  for (const IoRequest& r : requests) {
    t = service(r, t);
  }
  return t;
}

}  // namespace greenvis::storage

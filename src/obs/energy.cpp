#include "src/obs/energy.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

#include "src/machine/dvfs.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/tracer.hpp"
#include "src/util/error.hpp"

namespace greenvis::obs {

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

double rel_error(double attributed, double reference) {
  return std::abs(attributed - reference) /
         std::max(1.0, std::abs(reference));
}

}  // namespace

double EnergyReport::static_share() const {
  const double t = total().value();
  return t > 0.0 ? static_total().value() / t : 0.0;
}

const StageEnergy* EnergyReport::stage(std::string_view name) const {
  for (const StageEnergy& s : stages) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

EnergyReport EnergyAttributor::attribute(
    const trace::Timeline& phases, const machine::LoadTimeline& loads,
    const storage::DiskActivityLog& disk_log, Seconds end) const {
  const power::PowerCalibration& cal = model_.calibration();
  const power::DiskPowerParams& dp = model_.disk_params();

  // Accounted horizon: cover every recorded segment, not just `end`.
  double horizon = std::max(0.0, end.value());
  horizon = std::max(horizon, phases.span_end().value());
  horizon = std::max(horizon, loads.end_time().value());
  for (const storage::DiskSegment& seg : disk_log.segments()) {
    horizon = std::max(horizon, seg.end.value());
  }

  // Stage table: one index per category, idle bucket last.
  std::vector<std::string> names;
  std::map<std::string, int, std::less<>> cat_index;
  for (const trace::Interval& iv : phases.intervals()) {
    if (!cat_index.contains(iv.category)) {
      cat_index.emplace(iv.category, static_cast<int>(names.size()));
      names.push_back(iv.category);
    }
  }
  const int num_cats = static_cast<int>(names.size());
  const int idle_idx = num_cats;

  std::vector<char> is_io(static_cast<std::size_t>(num_cats), 0);
  for (const std::string& io_cat : config_.disk_categories) {
    auto it = cat_index.find(io_cat);
    if (it != cat_index.end()) {
      is_io[static_cast<std::size_t>(it->second)] = 1;
    }
  }

  // Slice boundaries: every interval edge plus {0, horizon}.
  std::vector<double> bounds;
  bounds.reserve(2 * phases.intervals().size() + 2);
  bounds.push_back(0.0);
  bounds.push_back(horizon);
  for (const trace::Interval& iv : phases.intervals()) {
    bounds.push_back(std::clamp(iv.begin.value(), 0.0, horizon));
    bounds.push_back(std::clamp(iv.end.value(), 0.0, horizon));
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const std::size_t num_slices = bounds.empty() ? 0 : bounds.size() - 1;

  auto slice_of = [&](double t) -> std::size_t {
    // Boundaries were inserted from the same doubles, so an exact match
    // exists for every interval edge.
    auto it = std::lower_bound(bounds.begin(), bounds.end(), t);
    return static_cast<std::size_t>(it - bounds.begin());
  };

  // Open-interval count per (category, slice) via edge diffs + prefix sum.
  const std::size_t stride = num_slices + 1;
  std::vector<int> open(static_cast<std::size_t>(num_cats) * stride, 0);
  for (const trace::Interval& iv : phases.intervals()) {
    const std::size_t b = slice_of(std::clamp(iv.begin.value(), 0.0, horizon));
    const std::size_t e = slice_of(std::clamp(iv.end.value(), 0.0, horizon));
    const std::size_t c =
        static_cast<std::size_t>(cat_index.find(iv.category)->second);
    open[c * stride + b] += 1;
    open[c * stride + e] -= 1;
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
    int run = 0;
    for (std::size_t s = 0; s < num_slices; ++s) {
      run += open[c * stride + s];
      open[c * stride + s] = run;
    }
  }
  std::vector<int> open_total(num_slices, 0);
  std::vector<int> open_io(num_slices, 0);
  for (std::size_t s = 0; s < num_slices; ++s) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
      open_total[s] += open[c * stride + s];
      if (is_io[c] != 0) {
        open_io[s] += open[c * stride + s];
      }
    }
  }

  // Accumulators, idle bucket last.
  std::vector<RailEnergy> stat(static_cast<std::size_t>(num_cats) + 1);
  std::vector<RailEnergy> dyn(static_cast<std::size_t>(num_cats) + 1);

  // ---- Static rails: constant floor spread by open-interval weight.
  const double p_cpu_idle = cal.cpu.package_idle.value();
  const double p_dram_idle = cal.dram.idle.value();
  const double p_disk_idle = dp.idle.value();
  const double p_rest = cal.rest.constant.value();
  for (std::size_t s = 0; s < num_slices; ++s) {
    const double dt = bounds[s + 1] - bounds[s];
    if (dt <= 0.0) {
      continue;
    }
    if (open_total[s] == 0) {
      RailEnergy& a = stat[static_cast<std::size_t>(idle_idx)];
      a.cpu += Joules{p_cpu_idle * dt};
      a.dram += Joules{p_dram_idle * dt};
      a.disk += Joules{p_disk_idle * dt};
      a.rest += Joules{p_rest * dt};
      continue;
    }
    const double inv = 1.0 / open_total[s];
    for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
      const int n = open[c * stride + s];
      if (n == 0) {
        continue;
      }
      const double w = n * inv * dt;
      stat[c].cpu += Joules{p_cpu_idle * w};
      stat[c].dram += Joules{p_dram_idle * w};
      stat[c].disk += Joules{p_disk_idle * w};
      stat[c].rest += Joules{p_rest * w};
    }
  }

  // ---- CPU/DRAM dynamic: exact-bounds pairing first, overlap spread as
  // fallback. The Testbed records a load segment and a phase interval with
  // bit-identical bounds for every compute/IO/stall call, so almost every
  // segment pairs exactly — including the async writer's merged track.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<int>> exact;
  for (const trace::Interval& iv : phases.intervals()) {
    exact[{bits(iv.begin.value()), bits(iv.end.value())}].push_back(
        cat_index.find(iv.category)->second);
  }

  double cpu_dyn_check = 0.0;
  double dram_dyn_check = 0.0;
  const double nominal = cal.cpu.nominal_ghz;
  for (std::size_t i = 0; i < loads.segment_count(); ++i) {
    const machine::LoadTimeline::SegmentView seg = loads.segment(i);
    const double dur = seg.end.value() - seg.begin.value();
    if (dur <= 0.0) {
      continue;
    }
    const machine::ComponentLoad& load = *seg.load;
    const double freq = load.frequency_ghz > 0.0 ? load.frequency_ghz : nominal;
    const double scale = machine::dynamic_power_scale(freq, nominal);
    const double p_cpu = cal.cpu.core_active.value() *
                         (load.effective_cores() * scale);
    const double p_dram =
        cal.dram.watts_per_gbs * (load.dram_bandwidth.value() / 1e9);
    cpu_dyn_check += p_cpu * dur;
    dram_dyn_check += p_dram * dur;

    auto it = exact.find({bits(seg.begin.value()), bits(seg.end.value())});
    if (it != exact.end() && !it->second.empty()) {
      const double share = dur / static_cast<double>(it->second.size());
      for (int c : it->second) {
        dyn[static_cast<std::size_t>(c)].cpu += Joules{p_cpu * share};
        dyn[static_cast<std::size_t>(c)].dram += Joules{p_dram * share};
      }
      continue;
    }
    // Fallback: spread over open stages slice by slice.
    const std::size_t first = slice_of(std::clamp(seg.begin.value(), 0.0,
                                                  horizon));
    for (std::size_t s = first; s < num_slices && bounds[s] < seg.end.value();
         ++s) {
      const double o0 = std::max(bounds[s], seg.begin.value());
      const double o1 = std::min(bounds[s + 1], seg.end.value());
      const double dt = o1 - o0;
      if (dt <= 0.0) {
        continue;
      }
      if (open_total[s] == 0) {
        dyn[static_cast<std::size_t>(idle_idx)].cpu += Joules{p_cpu * dt};
        dyn[static_cast<std::size_t>(idle_idx)].dram += Joules{p_dram * dt};
        continue;
      }
      const double inv = dt / open_total[s];
      for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
        const int n = open[c * stride + s];
        if (n != 0) {
          dyn[c].cpu += Joules{p_cpu * n * inv};
          dyn[c].dram += Joules{p_dram * n * inv};
        }
      }
    }
  }

  // ---- Disk dynamic: per-mechanical-phase power, I/O-stage affinity.
  // Segments arrive begin-ordered (devices service serially), so the base
  // slice cursor only ever moves forward — one monotone walk overall.
  const double phase_power[storage::kDiskPhaseCount] = {
      dp.seek.value(), dp.rotate_wait.value(), dp.read_transfer.value(),
      dp.write_transfer.value(), dp.flush.value()};
  double disk_dyn_check = 0.0;
  std::size_t base = 0;
  for (const storage::DiskSegment& seg : disk_log.segments()) {
    const double b = seg.begin.value();
    const double e = seg.end.value();
    if (e <= b) {
      continue;
    }
    const double p = phase_power[static_cast<std::size_t>(seg.phase)];
    disk_dyn_check += p * (e - b);
    while (base + 1 < bounds.size() && bounds[base + 1] <= b) {
      ++base;
    }
    for (std::size_t s = base; s < num_slices && bounds[s] < e; ++s) {
      const double o0 = std::max(bounds[s], b);
      const double o1 = std::min(bounds[s + 1], e);
      const double dt = o1 - o0;
      if (dt <= 0.0) {
        continue;
      }
      if (open_io[s] > 0) {
        const double inv = dt / open_io[s];
        for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
          if (is_io[c] != 0 && open[c * stride + s] != 0) {
            dyn[c].disk += Joules{p * open[c * stride + s] * inv};
          }
        }
      } else if (open_total[s] > 0) {
        const double inv = dt / open_total[s];
        for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
          if (open[c * stride + s] != 0) {
            dyn[c].disk += Joules{p * open[c * stride + s] * inv};
          }
        }
      } else {
        dyn[static_cast<std::size_t>(idle_idx)].disk += Joules{p * dt};
      }
    }
  }

  // ---- Conservation: attributed rails vs independently integrated totals.
  RailEnergy stat_total;
  RailEnergy dyn_total;
  for (std::size_t c = 0; c <= static_cast<std::size_t>(num_cats); ++c) {
    stat_total += stat[c];
    dyn_total += dyn[c];
  }
  const double cpu_check = p_cpu_idle * horizon + cpu_dyn_check;
  const double dram_check = p_dram_idle * horizon + dram_dyn_check;
  const double disk_check = p_disk_idle * horizon + disk_dyn_check;
  const double rest_check = p_rest * horizon;
  double err = rel_error((stat_total.cpu + dyn_total.cpu).value(), cpu_check);
  err = std::max(err, rel_error((stat_total.dram + dyn_total.dram).value(),
                                dram_check));
  err = std::max(err, rel_error((stat_total.disk + dyn_total.disk).value(),
                                disk_check));
  err = std::max(err, rel_error((stat_total.rest + dyn_total.rest).value(),
                                rest_check));
  GREENVIS_ENSURE(err < 1e-9);

  // ---- Assemble, sorted by stage name ("(idle)" sorts first).
  EnergyReport report;
  report.duration = Seconds{horizon};
  report.static_rails = stat_total;
  report.dynamic_rails = dyn_total;
  report.conservation_error = err;
  report.stages.reserve(static_cast<std::size_t>(num_cats) + 1);
  for (std::size_t c = 0; c < static_cast<std::size_t>(num_cats); ++c) {
    StageEnergy s;
    s.name = names[c];
    s.static_rails = stat[c];
    s.dynamic_rails = dyn[c];
    s.busy = phases.total(names[c]);
    report.stages.push_back(std::move(s));
  }
  {
    StageEnergy s;
    s.name = kEnergyIdle;
    s.static_rails = stat[static_cast<std::size_t>(idle_idx)];
    s.dynamic_rails = dyn[static_cast<std::size_t>(idle_idx)];
    double idle_time = 0.0;
    for (std::size_t sl = 0; sl < num_slices; ++sl) {
      if (open_total[sl] == 0) {
        idle_time += bounds[sl + 1] - bounds[sl];
      }
    }
    s.busy = Seconds{idle_time};
    report.stages.push_back(std::move(s));
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageEnergy& a, const StageEnergy& b) {
              return a.name < b.name;
            });
  return report;
}

std::vector<RailSample> rail_power_series(
    const machine::LoadTimeline& loads,
    const storage::DiskActivityLog& disk_log, const power::PowerModel& model,
    Seconds end, std::size_t max_samples) {
  double horizon = std::max(0.0, end.value());
  horizon = std::max(horizon, loads.end_time().value());
  for (const storage::DiskSegment& seg : disk_log.segments()) {
    horizon = std::max(horizon, seg.end.value());
  }
  if (horizon <= 0.0 || max_samples == 0) {
    return {};
  }
  const double width = horizon / static_cast<double>(max_samples);
  std::vector<RailSample> series;
  series.reserve(max_samples);
  for (std::size_t i = 0; i < max_samples; ++i) {
    const Seconds t0{static_cast<double>(i) * width};
    const Seconds t1{static_cast<double>(i + 1) * width};
    RailSample sample;
    sample.t = t0;
    const machine::ComponentLoad load = loads.average_in(t0, t1);
    sample.cpu = model.package_power(load);
    sample.dram = model.dram_power(load);
    sample.disk = model.disk_power(disk_log.duty_in(t0, t1), t1 - t0);
    sample.rest = model.rest_power();
    series.push_back(sample);
  }
  return series;
}

void publish_energy_profile(const EnergyReport& report,
                            const std::vector<RailSample>& series) {
  if (!energy_profiler_enabled()) {
    return;
  }
  Registry& reg = Registry::global();
  reg.gauge("energy.total_j").set(report.total().value());
  reg.gauge("energy.static_j").set(report.static_total().value());
  reg.gauge("energy.dynamic_j").set(report.dynamic_total().value());
  reg.gauge("energy.static_share").set(report.static_share());
  reg.gauge("energy.conservation_error").set(report.conservation_error);
  reg.gauge("energy.rail.cpu_j")
      .set((report.static_rails.cpu + report.dynamic_rails.cpu).value());
  reg.gauge("energy.rail.dram_j")
      .set((report.static_rails.dram + report.dynamic_rails.dram).value());
  reg.gauge("energy.rail.disk_j")
      .set((report.static_rails.disk + report.dynamic_rails.disk).value());
  reg.gauge("energy.rail.rest_j")
      .set((report.static_rails.rest + report.dynamic_rails.rest).value());
  for (const StageEnergy& s : report.stages) {
    reg.gauge(std::string("energy.stage.") + s.name + ".joules")
        .set(s.total().value());
  }
  Tracer& tracer = Tracer::global();
  for (const RailSample& s : series) {
    const double ts_us = s.t.value() * 1e6;
    tracer.record_counter("power.cpu_w", ts_us, s.cpu.value());
    tracer.record_counter("power.dram_w", ts_us, s.dram.value());
    tracer.record_counter("power.disk_w", ts_us, s.disk.value());
    tracer.record_counter("power.rest_w", ts_us, s.rest.value());
  }
}

}  // namespace greenvis::obs

#include "src/obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/obs/json.hpp"

namespace greenvis::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow -> last
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> duration_us_bounds() {
  return {10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7};
}

Registry& Registry::global() {
  static Registry* instance = new Registry;  // leaked: see file comment
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->upper_bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  const auto flags = os.flags();
  os.setf(std::ios::fmtflags{}, std::ios::floatfield);  // shortest doubles
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    detail::write_json_string(os, counters[i].name);
    os << ": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    detail::write_json_string(os, gauges[i].name);
    os << ": " << gauges[i].value;
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? ",\n    " : "\n    ");
    detail::write_json_string(os, h.name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"upper_bounds\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      os << (b ? ", " : "") << h.upper_bounds[b];
    }
    os << "], \"bucket_counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b ? ", " : "") << h.counts[b];
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  os.flags(flags);
}

void MetricsSnapshot::write_csv(std::ostream& os) const {
  os << "kind,name,key,value\n";
  for (const auto& c : counters) {
    os << "counter," << c.name << ",value," << c.value << '\n';
  }
  for (const auto& g : gauges) {
    os << "gauge," << g.name << ",value," << g.value << '\n';
  }
  for (const auto& h : histograms) {
    os << "histogram," << h.name << ",count," << h.count << '\n';
    os << "histogram," << h.name << ",sum," << h.sum << '\n';
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << "histogram," << h.name << ",le_";
      if (b < h.upper_bounds.size()) {
        os << h.upper_bounds[b];
      } else {
        os << "inf";
      }
      os << ',' << h.counts[b] << '\n';
    }
  }
}

}  // namespace greenvis::obs

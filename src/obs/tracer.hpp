// Span tracer: RAII wall-clock spans into per-thread buffers, exported as
// Chrome trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Recording model: each thread appends completed spans to its own buffer —
// a chain of fixed-size blocks written only by the owning thread, with the
// number of committed events published through one release store. The hot
// path is therefore lock-free: two steady_clock reads, one slot write, one
// atomic store. A mutex is touched only when a buffer grows by a block
// (every 4096 spans) and when a new thread registers.
//
// Export may run while worker threads are parked between dispatches: the
// exporter acquires the committed count and reads only fully-written slots,
// so it never observes a half-constructed event.
//
// `ScopedSpan` does nothing — no clock read, no allocation — unless
// `obs::enabled()` was true at construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"

namespace greenvis::obs {

/// One completed span. `category` must point to a string with static
/// storage duration (use the obs::kCat* constants).
struct SpanEvent {
  std::string name;
  const char* category{""};
  std::uint64_t begin_ns{0};  // since the tracer epoch (process start)
  std::uint64_t dur_ns{0};
  std::uint32_t tid{0};  // tracer-assigned small integer, stable per thread
};

/// One point of a Chrome counter track ("C" events, rendered as a graph in
/// the viewer). `name` must have static storage duration. Counter time is
/// *virtual* microseconds — counters describe modeled quantities (power
/// rails), so they export under their own pid, separate from the host
/// wall-clock spans.
struct CounterSample {
  const char* name{""};
  double ts_us{0.0};
  double value{0.0};
};

class Tracer {
 public:
  /// The process-wide tracer (leaked singleton — worker threads may still
  /// hold buffer references during static teardown).
  [[nodiscard]] static Tracer& global();

  /// Monotonic nanoseconds since the tracer epoch.
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Append a completed span to the calling thread's buffer.
  void record(std::string&& name, const char* category, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  /// Label the calling thread in the exported trace (thread_name metadata).
  /// `name` must have static storage duration; unlabeled threads export as
  /// "greenvis-N".
  void set_thread_name(const char* name);

  /// Append one counter-track point (see CounterSample). Counter emission is
  /// rare (a few hundred points per profile), so this takes a mutex.
  void record_counter(const char* name, double ts_us, double value);

  /// Copy of every recorded counter sample, in record order.
  [[nodiscard]] std::vector<CounterSample> counters() const;

  /// Chrome trace-event JSON ("X" complete events, one meta event per
  /// thread). Events are ordered per thread by begin time.
  void write_chrome_trace(std::ostream& os) const;

  /// Copy of every committed event (export/test support), per-thread order.
  [[nodiscard]] std::vector<SpanEvent> events() const;

  /// Spans discarded because a thread hit its buffer cap.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discard all recorded spans. Only call while no instrumented work is in
  /// flight (e.g. between dispatches); buffers are reused, not freed.
  void clear();

 private:
  class ThreadBuffer;

  Tracer();
  ThreadBuffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  // guards buffers_ registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex counters_mutex_;
  std::vector<CounterSample> counter_samples_;
};

/// RAII span: records [construction, destruction) on the current thread.
/// Inert (and allocation-free) when observability is disabled. When
/// `duration_us` is given, the span's length is also recorded into that
/// histogram in microseconds.
class ScopedSpan {
 public:
  /// `name` must have static storage duration.
  explicit ScopedSpan(const char* name, const char* category,
                      Histogram* duration_us = nullptr) {
    if (enabled()) {
      static_name_ = name;
      category_ = category;
      duration_us_ = duration_us;
      begin_ns_ = Tracer::global().now_ns();
      active_ = true;
    }
  }

  /// Dynamic name `prefix + suffix`, built only when enabled.
  ScopedSpan(std::string_view prefix, std::string_view suffix,
             const char* category, Histogram* duration_us = nullptr) {
    if (enabled()) {
      dynamic_name_.reserve(prefix.size() + suffix.size());
      dynamic_name_.append(prefix).append(suffix);
      category_ = category;
      duration_us_ = duration_us;
      begin_ns_ = Tracer::global().now_ns();
      active_ = true;
    }
  }

  ~ScopedSpan() {
    if (active_) {
      finish();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void finish();

  std::string dynamic_name_;
  const char* static_name_{nullptr};
  const char* category_{""};
  Histogram* duration_us_{nullptr};
  std::uint64_t begin_ns_{0};
  bool active_{false};
};

}  // namespace greenvis::obs

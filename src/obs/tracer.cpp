#include "src/obs/tracer.hpp"

#include <algorithm>
#include <map>

#include "src/obs/json.hpp"

namespace greenvis::obs {

/// Per-thread span storage: fixed-size blocks written by the owner thread
/// only; `committed_` publishes fully-written slots to the exporter.
class Tracer::ThreadBuffer {
 public:
  static constexpr std::size_t kBlockEvents = 4096;
  /// Cap per thread (~1M spans, ~64 MB worst case); beyond it spans are
  /// counted as dropped instead of recorded.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  explicit ThreadBuffer(std::uint32_t tid) : tid_(tid) { add_block(); }

  [[nodiscard]] std::uint32_t tid() const { return tid_; }

  void set_name(const char* name) {
    name_.store(name, std::memory_order_release);
  }
  /// nullptr when the thread never labeled itself.
  [[nodiscard]] const char* name() const {
    return name_.load(std::memory_order_acquire);
  }

  /// Owner thread only. Returns false when the cap is hit.
  bool push(std::string&& name, const char* category, std::uint64_t begin_ns,
            std::uint64_t dur_ns) {
    const std::size_t n = committed_.load(std::memory_order_relaxed);
    if (n >= kMaxEvents) {
      return false;
    }
    if (write_idx_ == kBlockEvents) {
      add_block();
      write_idx_ = 0;
    }
    SpanEvent& e = tail_->slots[write_idx_++];
    e.name = std::move(name);
    e.category = category;
    e.begin_ns = begin_ns;
    e.dur_ns = dur_ns;
    e.tid = tid_;
    committed_.store(n + 1, std::memory_order_release);
    return true;
  }

  /// Exporter: visit every committed event in record order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<const Block*> blocks;
    {
      std::lock_guard lock(blocks_mutex_);
      blocks.reserve(blocks_.size());
      for (const auto& b : blocks_) {
        blocks.push_back(b.get());
      }
    }
    const std::size_t n = committed_.load(std::memory_order_acquire);
    for (std::size_t k = 0; k < n; ++k) {
      fn(blocks[k / kBlockEvents]->slots[k % kBlockEvents]);
    }
  }

  /// Requires quiescence (see Tracer::clear).
  void clear() {
    {
      std::lock_guard lock(blocks_mutex_);
      blocks_.resize(1);
      tail_ = blocks_.front().get();
    }
    write_idx_ = 0;
    committed_.store(0, std::memory_order_release);
  }

 private:
  struct Block {
    std::vector<SpanEvent> slots{std::vector<SpanEvent>(kBlockEvents)};
  };

  void add_block() {
    auto block = std::make_unique<Block>();
    Block* raw = block.get();
    std::lock_guard lock(blocks_mutex_);
    blocks_.push_back(std::move(block));
    tail_ = raw;
  }

  std::uint32_t tid_;
  std::atomic<const char*> name_{nullptr};
  mutable std::mutex blocks_mutex_;  // guards blocks_ growth vs. export
  std::vector<std::unique_ptr<Block>> blocks_;
  Block* tail_{nullptr};          // owner thread only
  std::size_t write_idx_{0};      // owner thread only
  std::atomic<std::size_t> committed_{0};
};

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer;  // leaked: see class comment
  return *instance;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard lock(mutex_);
    auto owned = std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(buffers_.size() + 1));
    buffer = owned.get();
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void Tracer::record(std::string&& name, const char* category,
                    std::uint64_t begin_ns, std::uint64_t end_ns) {
  const std::uint64_t dur = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  if (!local_buffer().push(std::move(name), category, begin_ns, dur)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::set_thread_name(const char* name) {
  local_buffer().set_name(name);
}

void Tracer::record_counter(const char* name, double ts_us, double value) {
  std::lock_guard lock(counters_mutex_);
  counter_samples_.push_back(CounterSample{name, ts_us, value});
}

std::vector<CounterSample> Tracer::counters() const {
  std::lock_guard lock(counters_mutex_);
  return counter_samples_;
}

std::vector<SpanEvent> Tracer::events() const {
  std::vector<const ThreadBuffer*> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) {
      buffers.push_back(b.get());
    }
  }
  std::vector<SpanEvent> out;
  for (const ThreadBuffer* b : buffers) {
    b->for_each([&](const SpanEvent& e) { out.push_back(e); });
  }
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  // Group by thread and order by begin time so `ts` is monotonic per tid.
  std::map<std::uint32_t, std::vector<SpanEvent>> by_tid;
  for (auto& e : events()) {
    by_tid[e.tid].push_back(std::move(e));
  }
  for (auto& [tid, spans] : by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.begin_ns < b.begin_ns;
                     });
  }

  // Thread labels registered via set_thread_name (pool workers, the async
  // staging writer); unlabeled threads keep the "greenvis-N" default.
  std::map<std::uint32_t, const char*> names;
  {
    std::lock_guard lock(mutex_);
    for (const auto& b : buffers_) {
      if (const char* n = b->name(); n != nullptr) {
        names[b->tid()] = n;
      }
    }
  }

  const auto flags = os.flags();
  const auto precision = os.precision();
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  os << "\n{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"greenvis host\"}}";
  for (const auto& [tid, spans] : by_tid) {
    os << ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
    if (auto it = names.find(tid); it != names.end()) {
      os << it->second << "\"}}";
    } else {
      os << "greenvis-" << tid << "\"}}";
    }
    for (const SpanEvent& e : spans) {
      os << ",\n{\"name\": ";
      detail::write_json_string(os, e.name);
      os << ", \"cat\": ";
      detail::write_json_string(os, e.category);
      os << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
         << ", \"ts\": " << static_cast<double>(e.begin_ns) / 1e3
         << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3 << "}";
    }
  }
  // Counter tracks (modeled power rails, virtual time) under their own pid
  // so the viewer renders them as graphs beside the host spans.
  const std::vector<CounterSample> counters = this->counters();
  if (!counters.empty()) {
    os << ",\n{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": "
          "\"process_name\", \"args\": {\"name\": \"greenvis virtual "
          "rails\"}}";
    for (const CounterSample& c : counters) {
      os << ",\n{\"name\": ";
      detail::write_json_string(os, c.name);
      os << ", \"ph\": \"C\", \"pid\": 2, \"tid\": 0, \"ts\": " << c.ts_us
         << ", \"args\": {\"value\": " << c.value << "}}";
    }
  }
  os << "\n]\n}\n";
  os.flags(flags);
  os.precision(precision);
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (auto& b : buffers_) {
    b->clear();
  }
  {
    std::lock_guard counters_lock(counters_mutex_);
    counter_samples_.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/// Per-category duration histogram, cached so the hot path is one pointer
/// scan instead of a registry mutex. Categories are the static kCat*
/// constants, so pointer identity keys the cache. A slot is claimed by
/// CAS-ing the category in first; the histogram pointer follows, and racing
/// readers spin the few cycles until it lands.
Histogram& category_histogram(const char* category) {
  struct Entry {
    std::atomic<const char*> cat{nullptr};
    std::atomic<Histogram*> hist{nullptr};
  };
  static constexpr std::size_t kSlots = 64;
  static Entry entries[kSlots];
  auto make = [&] {
    return &Registry::global().histogram(
        std::string("span.duration_us.") + category, duration_us_bounds());
  };
  for (std::size_t i = 0; i < kSlots; ++i) {
    const char* cur = entries[i].cat.load(std::memory_order_acquire);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (entries[i].cat.compare_exchange_strong(expected, category,
                                                 std::memory_order_acq_rel)) {
        Histogram* h = make();
        entries[i].hist.store(h, std::memory_order_release);
        return *h;
      }
      cur = expected;
    }
    if (cur == category) {
      Histogram* h;
      while ((h = entries[i].hist.load(std::memory_order_acquire)) ==
             nullptr) {
      }
      return *h;
    }
    // Slot owned by another category: keep probing.
  }
  return *make();  // > kSlots categories: fall back to the registry mutex
}

}  // namespace

void ScopedSpan::finish() {
  const std::uint64_t end = Tracer::global().now_ns();
  const double us = static_cast<double>(end - begin_ns_) / 1e3;
  if (duration_us_ != nullptr) {
    duration_us_->record(us);
  }
  if (category_ != nullptr && category_[0] != '\0') {
    category_histogram(category_).record(us);
  }
  std::string name = static_name_ != nullptr ? std::string{static_name_}
                                             : std::move(dynamic_name_);
  Tracer::global().record(std::move(name), category_, begin_ns_, end);
}

}  // namespace greenvis::obs

#include "src/obs/obs.hpp"

namespace greenvis::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_energy_profiler{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_energy_profiler_enabled(bool on) {
  detail::g_energy_profiler.store(on, std::memory_order_relaxed);
}

}  // namespace greenvis::obs

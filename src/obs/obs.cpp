#include "src/obs/obs.hpp"

namespace greenvis::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

}  // namespace greenvis::obs

// Energy attribution: joining time spans with component power.
//
// The paper reports where the *time* goes (Fig. 4) and what the *system*
// draws (Fig. 5), but "which stage burned the energy" needs a join: the
// phase timeline says who was active, the load/disk logs say what the
// hardware was doing, and the calibrated PowerModel prices it. The
// EnergyAttributor integrates each component rail (cpu package, dram, disk,
// rest-of-system) exactly — per recorded segment, not sampled — and
// apportions every joule to a stage:
//
//  * Static rail power (the ~103 W idle floor of Sec. V-C) is spread across
//    whichever stages are open at each instant, weighted by open-interval
//    count; instants with no open stage land in the "(idle)" bucket.
//  * CPU/DRAM dynamic energy of a load segment goes to the phase interval(s)
//    recorded with bit-identical bounds — the Testbed records both sides of
//    every run_compute/run_io call, so this pairing is exact even when the
//    async pipeline's merged writer track overlaps compute. Segments with no
//    exact twin fall back to overlap-weighted spreading.
//  * Disk dynamic energy prefers concurrently-open I/O stages (Write/Read by
//    default) before falling back to all open stages, so under async overlap
//    the writer's joules land on the disk rail's true owner, not the
//    compute span that merely coexists with it.
//
// Conservation is checked on every call: the attributed per-rail totals must
// match an independently integrated rail total to 1e-9 relative, else a
// ContractViolation fires. Attribution is pure — it reads recorded virtual
// timelines and never perturbs them — so it runs unconditionally; only the
// observable side surfaces (registry gauges, Chrome counter tracks emitted
// by publish_energy_profile) are gated on obs::energy_profiler_enabled().
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/machine/load.hpp"
#include "src/power/model.hpp"
#include "src/storage/activity_log.hpp"
#include "src/trace/timeline.hpp"
#include "src/util/units.hpp"

namespace greenvis::obs {

using util::Joules;
using util::Seconds;
using util::Watts;

/// Bucket for time no stage claims (ramp-in/out, scheduler gaps).
inline constexpr const char* kEnergyIdle = "(idle)";

/// Joules per component rail, matching PowerBreakdown's split.
struct RailEnergy {
  Joules cpu{0.0};
  Joules dram{0.0};
  Joules disk{0.0};
  Joules rest{0.0};

  [[nodiscard]] Joules total() const { return cpu + dram + disk + rest; }
  RailEnergy& operator+=(const RailEnergy& o) {
    cpu += o.cpu;
    dram += o.dram;
    disk += o.disk;
    rest += o.rest;
    return *this;
  }
};

/// One stage's share of the bill, static/dynamic split per the paper's
/// Table II.
struct StageEnergy {
  std::string name;
  RailEnergy static_rails;
  RailEnergy dynamic_rails;
  /// Sum of this stage's recorded interval durations (concurrent intervals
  /// double-count, same as Timeline::total).
  Seconds busy{0.0};

  [[nodiscard]] Joules total() const {
    return static_rails.total() + dynamic_rails.total();
  }
};

struct EnergyReport {
  /// End of accounted virtual time; every rail integrates over [0, duration).
  Seconds duration{0.0};
  /// Sorted by name; always includes the "(idle)" bucket.
  std::vector<StageEnergy> stages;
  RailEnergy static_rails;
  RailEnergy dynamic_rails;
  /// Max per-rail relative error of attributed vs independently integrated
  /// totals (floating-point accumulation order only; ENSUREd < 1e-9).
  double conservation_error{0.0};

  [[nodiscard]] Joules total() const {
    return static_rails.total() + dynamic_rails.total();
  }
  [[nodiscard]] Joules static_total() const { return static_rails.total(); }
  [[nodiscard]] Joules dynamic_total() const { return dynamic_rails.total(); }
  /// Static fraction of the total — the Table II quantity (≥85% on paper
  /// configurations).
  [[nodiscard]] double static_share() const;
  /// Lookup by stage name; nullptr when absent.
  [[nodiscard]] const StageEnergy* stage(std::string_view name) const;
};

struct AttributionConfig {
  /// Stage categories with disk affinity: when one is open, disk dynamic
  /// energy goes to it rather than to concurrently-open compute stages.
  std::vector<std::string> disk_categories{"Write", "Read"};
};

class EnergyAttributor {
 public:
  explicit EnergyAttributor(const power::PowerModel& model,
                            AttributionConfig config = {})
      : model_(model), config_(std::move(config)) {}

  /// Attribute all energy in [0, end) — extended to cover any recorded
  /// activity past `end` — across the phases of `timeline`.
  [[nodiscard]] EnergyReport attribute(
      const trace::Timeline& phases, const machine::LoadTimeline& loads,
      const storage::DiskActivityLog& disk_log, Seconds end) const;

 private:
  power::PowerModel model_;
  AttributionConfig config_;
};

/// One point of the power-rail telemetry export (virtual time).
struct RailSample {
  Seconds t{0.0};
  Watts cpu{0.0};
  Watts dram{0.0};
  Watts disk{0.0};
  Watts rest{0.0};
};

/// Uniform-bucket rail power series over [0, end) for counter-track export;
/// at most `max_samples` points. Window-averaged (visualization quality) —
/// energy totals come from EnergyAttributor, never from this.
[[nodiscard]] std::vector<RailSample> rail_power_series(
    const machine::LoadTimeline& loads,
    const storage::DiskActivityLog& disk_log, const power::PowerModel& model,
    Seconds end, std::size_t max_samples = 512);

/// Emit the observable side surfaces: energy.* registry gauges and Chrome
/// counter tracks for the rails. No-op unless energy_profiler_enabled() —
/// this is the single gate keeping all outputs byte-identical when off.
void publish_energy_profile(const EnergyReport& report,
                            const std::vector<RailSample>& series);

}  // namespace greenvis::obs

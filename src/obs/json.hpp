// Minimal JSON string escaping shared by the obs exporters.
#pragma once

#include <cstdio>
#include <ostream>
#include <string_view>

namespace greenvis::obs::detail {

/// Write `s` as a double-quoted JSON string literal.
inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace greenvis::obs::detail

// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Registration (name lookup) takes a mutex and is meant to happen once per
// call site — constructors and function-local statics hold the returned
// reference. The hot paths (`Counter::add`, `Gauge::set`,
// `Histogram::record`) are lock-free relaxed atomics, safe to hammer from
// every pool worker at once; totals are exact because each operation is a
// single atomic RMW. `snapshot()` captures a consistent-enough view for
// reporting and serializes to JSON or CSV.
//
// Metric objects are never destroyed (the registry is a leaked singleton),
// so references stay valid for the life of the process — including inside
// detached-thread teardown paths.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/obs.hpp"

namespace greenvis::obs {

/// Monotonic event count. 64-byte aligned so unrelated counters do not
/// false-share a cache line.
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value.
class alignas(64) Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket histogram: `upper_bounds` are inclusive bucket ceilings in
/// ascending order, with an implicit overflow bucket at the end. Bucket
/// layout is fixed at registration so `record` is a search plus one atomic
/// increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double x);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// One entry per bound plus the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Canonical bucket ceilings for span durations in microseconds
/// (10 us ... 10 s, decades).
[[nodiscard]] std::vector<double> duration_us_bounds();

/// Point-in-time copy of every registered metric, ordered by name.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value{0};
  };
  struct GaugeEntry {
    std::string name;
    double value{0.0};
  };
  struct HistogramEntry {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count{0};
    double sum{0.0};
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  void write_json(std::ostream& os) const;
  /// kind,name,key,value rows (histograms expand to one row per bucket).
  void write_csv(std::ostream& os) const;
};

class Registry {
 public:
  /// The process-wide registry (leaked singleton; see file comment).
  [[nodiscard]] static Registry& global();

  /// Find-or-create. References stay valid forever.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `upper_bounds` only applies on first registration of `name`.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric, keeping registrations (test support).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace greenvis::obs

// Observability master switch.
//
// The paper's contribution is measurement, and since PR 1 the runtime does
// real host-side work (thread pool, batched experiments) whose wall-clock
// behavior the virtual clock cannot see. The obs layer makes that behavior
// visible: a metrics registry (registry.hpp) and a span tracer (tracer.hpp),
// both gated on one process-wide flag. Instrumented call sites check
// `enabled()` — a single relaxed atomic load — so a disabled build path
// costs nothing measurable and never allocates.
//
// Everything in obs observes *host* wall-clock only. Virtual-clock results
// (durations, joules, watts, image digests) are never touched, so enabling
// observability cannot perturb any experiment output.
#pragma once

#include <atomic>

namespace greenvis::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_energy_profiler;
}  // namespace detail

/// Hot-path gate: one relaxed atomic load.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flip collection on/off at runtime (off by default).
void set_enabled(bool on);

/// Energy-profiler gate (off by default). Attribution itself is pure — the
/// per-stage joule report is always computed from the recorded virtual
/// timelines — but the observable side surfaces (registry gauges, Chrome
/// power-rail counter tracks) are only emitted while this flag is set, so
/// every output stays byte-identical with the profiler off (pinned by the
/// obs.profiler_on_off differential oracle).
[[nodiscard]] inline bool energy_profiler_enabled() {
  return detail::g_energy_profiler.load(std::memory_order_relaxed);
}

void set_energy_profiler_enabled(bool on);

// Span categories (static storage duration; the tracer stores the pointer).
inline constexpr const char* kCatPool = "pool";
inline constexpr const char* kCatHeat = "heat";
inline constexpr const char* kCatVis = "vis";
inline constexpr const char* kCatStage = "stage";
inline constexpr const char* kCatCore = "core";
inline constexpr const char* kCatIo = "io";
inline constexpr const char* kCatCampaign = "campaign";
inline constexpr const char* kCatServe = "serve";

}  // namespace greenvis::obs

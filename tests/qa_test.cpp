#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/qa/domains.hpp"
#include "src/qa/gen.hpp"
#include "src/qa/oracle.hpp"
#include "src/qa/property.hpp"
#include "src/qa/registry.hpp"
#include "src/util/error.hpp"

namespace greenvis::qa {
namespace {

// ---------- choice tape ----------

TEST(Choices, FreshModeIsSeedDeterministic) {
  Choices a{42};
  Choices b{42};
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.draw_range(0, 1000), b.draw_range(0, 1000));
  }
  EXPECT_EQ(a.tape(), b.tape());
  Choices c{43};
  bool any_different = false;
  for (int i = 0; i < 32; ++i) {
    any_different |= c.draw_range(0, 1000) != a.tape()[static_cast<std::size_t>(i)];
  }
  EXPECT_TRUE(any_different);
}

TEST(Choices, ReplayReproducesRecordedTape) {
  Choices fresh{7};
  std::vector<std::uint64_t> drawn;
  for (int i = 0; i < 10; ++i) {
    drawn.push_back(fresh.draw_range(5, 500));
  }
  Choices replay{fresh.tape()};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replay.draw_range(5, 500), drawn[static_cast<std::size_t>(i)]);
  }
}

TEST(Choices, ReplayIsTotal) {
  // Exhausted tape pads with the minimum; oversized words clamp to the
  // bound. Any mutated tape is therefore a valid generator input.
  Choices empty{Tape{}};
  EXPECT_EQ(empty.draw_range(3, 9), 3u);
  EXPECT_EQ(empty.draw_below(17), 0u);
  Choices oversized{Tape{1000}};
  EXPECT_EQ(oversized.draw_range(0, 10), 10u);
}

TEST(Choices, DrawsRespectBounds) {
  Choices c{99};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t u = c.draw_range(10, 20);
    EXPECT_GE(u, 10u);
    EXPECT_LE(u, 20u);
    const double r = c.draw_real(-2.0, 3.0);
    EXPECT_GE(r, -2.0);
    EXPECT_LT(r, 3.0);
    const long long s = c.draw_int(-5, 5);
    EXPECT_GE(s, -5);
    EXPECT_LE(s, 5);
  }
}

// ---------- combinators ----------

TEST(Gen, CombinatorsAreTapePure) {
  const auto gen = tuple_of(
      uint_in(1, 100), real_in(0.0, 1.0),
      vector_of(int_in(-10, 10), 0, 5),
      element_of<std::string>({"raw", "delta", "rle"}));
  Choices fresh{123};
  const auto value = gen(fresh);
  Choices replay{fresh.tape()};
  EXPECT_EQ(gen(replay), value);
}

TEST(Gen, MinimalTapeYieldsMinimalValue) {
  // The all-zeros (empty) tape is every combinator's lower bound — the
  // shrinker's target.
  Choices empty{Tape{}};
  const auto value = tuple_of(uint_in(3, 9), int_in(-4, 4),
                              vector_of(uint_in(1, 5), 2, 6))(empty);
  EXPECT_EQ(std::get<0>(value), 3u);
  EXPECT_EQ(std::get<1>(value), -4);
  EXPECT_EQ(std::get<2>(value), (std::vector<std::uint64_t>{1, 1}));
}

TEST(Gen, FmapAndBindCompose) {
  const Gen<std::uint64_t> doubled =
      fmap(uint_in(1, 10), [](std::uint64_t v) { return v * 2; });
  const auto dependent = bind(uint_in(1, 4), [](std::uint64_t n) {
    return vector_of(uint_in(0, 9), n, n);
  });
  Choices c{5};
  const std::uint64_t d = doubled(c);
  EXPECT_GE(d, 2u);
  EXPECT_LE(d, 20u);
  EXPECT_EQ(d % 2, 0u);
  Choices c2{5};
  (void)doubled(c2);
  const auto vec = dependent(c2);
  EXPECT_GE(vec.size(), 1u);
  EXPECT_LE(vec.size(), 4u);
}

// ---------- domain generators ----------

TEST(Domains, SmoothFieldRespectsBounds) {
  const auto gen = smooth_field(1, 12, 5.0, 1.0);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Choices c{seed};
    const util::Field2D f = gen(c);
    EXPECT_GE(f.nx(), 1u);
    EXPECT_LE(f.nx(), 12u);
    EXPECT_GE(f.ny(), 1u);
    EXPECT_LE(f.ny(), 12u);
    for (const double v : f.values()) {
      EXPECT_LE(std::abs(v), 6.0);
    }
  }
}

TEST(Domains, IoRequestsAligned) {
  const auto gen = io_request_stream(1, 10, 1ULL << 30, 1 << 20);
  Choices c{11};
  for (const auto& r : gen(c)) {
    EXPECT_EQ(r.offset % 4096, 0u);
    EXPECT_EQ(r.length % 4096, 0u);
    EXPECT_GE(r.length, 4096u);
  }
}

TEST(Domains, SmallCaseConfigStaysSmall) {
  Choices c{3};
  const core::CaseStudyConfig config = small_case_config()(c);
  EXPECT_GE(config.iterations, 1);
  EXPECT_LE(config.iterations, 8);
  EXPECT_LE(config.problem.nx, 48u);
  EXPECT_LE(config.vis.width, 64u);
}

// ---------- shrinking ----------

TEST(Shrink, ConvergesToBoundary) {
  // "values >= 500 fail": the shrunk counterexample must be *exactly* the
  // boundary, proving the shrinker reaches local minima rather than just
  // smaller values.
  const Gen<std::uint64_t> gen = uint_in(0, 100000);
  const Property<std::uint64_t> property = [](const std::uint64_t& v) {
    return v >= 500 ? "too big" : "";
  };
  Config config;
  config.repro_dir.clear();
  config.cases = 200;
  const CheckResult r = check<std::uint64_t>("shrink.boundary", gen, property,
                                             config);
  ASSERT_FALSE(r.passed);
  Choices replay{r.counterexample};
  EXPECT_EQ(gen(replay), 500u);
}

TEST(Shrink, DropsIrrelevantElements) {
  // A vector fails when it contains any element >= 50: the minimal
  // counterexample is a single-element vector holding exactly 50.
  const auto gen = vector_of(uint_in(0, 1000), 0, 20);
  const Property<std::vector<std::uint64_t>> property =
      [](const std::vector<std::uint64_t>& v) {
        for (const std::uint64_t x : v) {
          if (x >= 50) {
            return std::string("bad element");
          }
        }
        return std::string{};
      };
  Config config;
  config.repro_dir.clear();
  config.cases = 200;
  const CheckResult r =
      check<std::vector<std::uint64_t>>("shrink.vector", gen, property, config);
  ASSERT_FALSE(r.passed);
  Choices replay{r.counterexample};
  const auto shrunk = gen(replay);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0], 50u);
}

TEST(Shrink, DeterministicAcrossRuns) {
  const Gen<std::uint64_t> gen = uint_in(0, 1ULL << 40);
  const Property<std::uint64_t> property = [](const std::uint64_t& v) {
    return v % 7 == 3 ? "hit" : "";
  };
  Config config;
  config.repro_dir.clear();
  const CheckResult a = check<std::uint64_t>("shrink.det", gen, property,
                                             config);
  const CheckResult b = check<std::uint64_t>("shrink.det", gen, property,
                                             config);
  ASSERT_FALSE(a.passed);
  EXPECT_EQ(a.counterexample, b.counterexample);
  EXPECT_EQ(a.failure, b.failure);
}

// ---------- reproducer files ----------

TEST(Repro, TextRoundTrip) {
  const Repro repro{"codec.container_round_trip", 0xDEADBEEFULL,
                    Tape{1, 2, 3, 400, 5, 6, 7, 8, 9, 10}};
  const Repro back = repro_from_text(repro_to_text(repro));
  EXPECT_EQ(back.property, repro.property);
  EXPECT_EQ(back.seed, repro.seed);
  EXPECT_EQ(back.tape, repro.tape);
}

TEST(Repro, RejectsGarbage) {
  EXPECT_THROW((void)repro_from_text("not a repro"), util::ContractViolation);
  EXPECT_THROW((void)repro_from_text("greenvis-qa-repro v1\nproperty p\n"
                                     "seed 1\nwords 5\n1 2\n"),
               util::ContractViolation);
  EXPECT_THROW((void)load_repro("/nonexistent/path.qarepro"),
               util::ContractViolation);
}

TEST(Repro, FailureWritesReplayableFile) {
  // End to end: a forced failure writes a reproducer, and replaying it —
  // twice — lands on the identical shrunk counterexample.
  const std::string dir = ::testing::TempDir();
  const Gen<std::uint64_t> gen = uint_in(0, 100000);
  const Property<std::uint64_t> property = [](const std::uint64_t& v) {
    return v >= 1234 ? "over the line" : "";
  };
  Config config;
  config.repro_dir = dir;
  config.cases = 200;
  const CheckResult first =
      check<std::uint64_t>("qa.forced_failure", gen, property, config);
  ASSERT_FALSE(first.passed);
  ASSERT_FALSE(first.repro_file.empty());

  Config replay_config;
  replay_config.replay_file = first.repro_file;
  replay_config.repro_dir.clear();
  const CheckResult replay_a =
      check<std::uint64_t>("qa.forced_failure", gen, property, replay_config);
  const CheckResult replay_b =
      check<std::uint64_t>("qa.forced_failure", gen, property, replay_config);
  for (const CheckResult* r : {&replay_a, &replay_b}) {
    EXPECT_FALSE(r->passed);
    EXPECT_EQ(r->counterexample, first.counterexample);
    EXPECT_EQ(r->cases_run, 1u);
  }
  Choices choices{replay_a.counterexample};
  EXPECT_EQ(gen(choices), 1234u);
}

TEST(Repro, ReplayRejectsWrongProperty) {
  const std::string dir = ::testing::TempDir();
  const std::string path =
      write_repro(dir, Repro{"some.other.property", 1, Tape{5}});
  ASSERT_FALSE(path.empty());
  Config config;
  config.replay_file = path;
  const Gen<std::uint64_t> gen = uint_in(0, 10);
  const Property<std::uint64_t> property = [](const std::uint64_t&) {
    return std::string{};
  };
  EXPECT_THROW((void)check<std::uint64_t>("qa.mismatch", gen, property, config),
               util::ContractViolation);
}

// ---------- registry ----------

TEST(Registry, BuiltinsRegisteredAndRunnable) {
  register_builtin_properties();
  auto& registry = PropertyRegistry::global();
  for (const char* name :
       {"hdd.seq_throughput_block_invariant", "hdd.random_service_settle_bound",
        "compress.lossy_round_trip", "codec.container_round_trip",
        "replay.trace_flip_robust", "storage.scheduler_invariants"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_THROW((void)registry.run("no.such.property", Config{}),
               util::ContractViolation);
}

TEST(Registry, ReplayReproFileDispatchesByName) {
  register_builtin_properties();
  PropertyRegistry::global().add(
      "qa.always_fails", [](const Config& config) {
        return check<std::uint64_t>(
            "qa.always_fails", uint_in(0, 1000),
            [](const std::uint64_t& v) {
              return v >= 10 ? "nope" : "";
            },
            config);
      });
  Config config;
  config.repro_dir = ::testing::TempDir();
  config.cases = 100;
  const CheckResult failed =
      PropertyRegistry::global().run("qa.always_fails", config);
  ASSERT_FALSE(failed.passed);
  ASSERT_FALSE(failed.repro_file.empty());
  const CheckResult replayed = replay_repro_file(failed.repro_file);
  EXPECT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.counterexample, failed.counterexample);
}

// ---------- differential oracles ----------

class Oracles : public ::testing::Test {
 protected:
  void SetUp() override { register_builtin_oracles(); }

  void expect_ok(const std::string& name) {
    const OracleResult r = OracleRegistry::global().run(name);
    EXPECT_TRUE(r.ok) << name << ": " << r.detail;
  }
};

TEST_F(Oracles, SolverSerialVsPool) { expect_ok("solver.serial_vs_pool"); }
TEST_F(Oracles, PipelineSerialVsPool) { expect_ok("pipeline.serial_vs_pool"); }
TEST_F(Oracles, PipelineSyncVsAsync) { expect_ok("pipeline.sync_vs_async"); }
TEST_F(Oracles, BatchShardedVsSerial) { expect_ok("batch.sharded_vs_serial"); }
TEST_F(Oracles, CodecRawVsDelta) { expect_ok("codec.raw_vs_delta"); }
TEST_F(Oracles, CacheOnVsOff) {
  // Run the oracle with obs on: the buffered leg must surface page-cache
  // hit/miss traffic on the registry (the cold reads all miss; hits may or
  // may not occur depending on readahead coverage, so only misses are
  // required to advance).
  auto& hits = obs::Registry::global().counter("storage.page_cache.hits");
  auto& misses = obs::Registry::global().counter("storage.page_cache.misses");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();
  obs::set_enabled(true);
  expect_ok("storage.cache_on_vs_off");
  obs::set_enabled(false);
  EXPECT_GT(misses.value(), misses0);
  EXPECT_GE(hits.value(), hits0);
}
TEST_F(Oracles, StorageAsyncVsSync) { expect_ok("storage.async_vs_sync"); }
TEST_F(Oracles, ObsOnVsOff) { expect_ok("obs.on_vs_off"); }
TEST_F(Oracles, LegacyVsChunkedDecode) {
  expect_ok("codec.legacy_vs_chunked_decode");
}
TEST_F(Oracles, SimdScalarVsVector) { expect_ok("simd.scalar_vs_vector"); }
TEST_F(Oracles, ServeCachedVsUncached) {
  expect_ok("serve.cached_vs_uncached");
}

TEST_F(Oracles, UnknownNameThrows) {
  EXPECT_THROW((void)OracleRegistry::global().run("no.such.oracle"),
               util::ContractViolation);
}

TEST_F(Oracles, ThrowingOracleBecomesFailure) {
  OracleRegistry::global().add("qa.throws", []() -> OracleResult {
    throw util::ContractViolation("boom");
  });
  const OracleResult r = OracleRegistry::global().run("qa.throws");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace greenvis::qa

// Unit tests for the viewer-serving layer: frame keys, the content-
// addressed cache, steering, fleets, and the session's determinism and
// exactly-once delivery contracts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/workload.hpp"
#include "src/serve/frame_cache.hpp"
#include "src/serve/session.hpp"
#include "src/serve/viewer.hpp"
#include "src/util/field.hpp"
#include "src/vis/image.hpp"

namespace greenvis {
namespace {

core::CaseStudyConfig small_serve_base() {
  core::CaseStudyConfig config = core::case_study(1);
  config.iterations = 6;
  config.io_period = 2;
  config.problem.nx = 32;
  config.problem.ny = 32;
  config.problem.executed_sweeps = 6;
  return config;
}

serve::ServeConfig small_serve_config(int viewers, int groups) {
  serve::ServeConfig config;
  config.base = small_serve_base();
  serve::ViewParams base;
  base.width = 48;
  base.height = 40;
  config.viewers = serve::default_fleet(viewers, groups, base);
  return config;
}

TEST(FrameKey, DeterministicAndSensitiveToEveryParameter) {
  const serve::ViewParams base;
  const std::uint64_t digest = 0xABCDEF0123456789ULL;
  EXPECT_EQ(serve::frame_key(3, digest, base),
            serve::frame_key(3, digest, base));

  std::set<std::uint64_t> keys;
  keys.insert(serve::frame_key(3, digest, base));
  keys.insert(serve::frame_key(4, digest, base));
  keys.insert(serve::frame_key(3, digest + 1, base));
  serve::ViewParams p = base;
  p.width = 257;
  keys.insert(serve::frame_key(3, digest, p));
  p = base;
  p.iso_levels = 6;
  keys.insert(serve::frame_key(3, digest, p));
  p = base;
  p.palette = vis::Palette::kHot;
  keys.insert(serve::frame_key(3, digest, p));
  p = base;
  p.roi_x0 = 0.25;
  keys.insert(serve::frame_key(3, digest, p));
  EXPECT_EQ(keys.size(), 7u) << "step, field, and every view parameter must "
                                "land in the key";
}

TEST(FrameKey, FieldDigestTracksBits) {
  util::Field2D a(8, 8);
  util::Field2D b(8, 8);
  for (std::size_t k = 0; k < a.size(); ++k) {
    a.values()[k] = static_cast<double>(k) * 0.5;
    b.values()[k] = static_cast<double>(k) * 0.5;
  }
  EXPECT_EQ(serve::field_digest(a), serve::field_digest(b));
  b.at(3, 4) += 1e-12;
  EXPECT_NE(serve::field_digest(a), serve::field_digest(b));
}

TEST(CropRect, FullFieldByDefaultAndClampedUnderExtremeSteering) {
  const serve::ViewParams base;
  EXPECT_TRUE(serve::crop_rect(base, 48, 40).full(48, 40));

  serve::ViewParams tiny = base;
  tiny.roi_x0 = 0.999;
  tiny.roi_y0 = 0.999;
  tiny.roi_x1 = 0.9995;
  tiny.roi_y1 = 0.9995;
  const serve::CropRect r = serve::crop_rect(tiny, 48, 40);
  EXPECT_GE(r.nx, 2u);
  EXPECT_GE(r.ny, 2u);
  EXPECT_LE(r.i0 + r.nx, 48u);
  EXPECT_LE(r.j0 + r.ny, 40u);
}

TEST(ApplySteer, ClampsEveryPayload) {
  const serve::ViewParams base;
  serve::SteerCommand cmd;
  cmd.kind = serve::SteerKind::kIsoLevels;
  cmd.iso_levels = 0;
  EXPECT_GE(serve::apply_steer(base, cmd).iso_levels, 1u);

  cmd.kind = serve::SteerKind::kResolution;
  cmd.width = 1;
  cmd.height = 1;
  const serve::ViewParams res = serve::apply_steer(base, cmd);
  EXPECT_GE(res.width, 16u);
  EXPECT_GE(res.height, 16u);

  cmd.kind = serve::SteerKind::kRegion;
  cmd.x0 = 1.7;  // out of range and inverted
  cmd.x1 = -0.3;
  cmd.y0 = 0.9;
  cmd.y1 = 0.1;
  const serve::ViewParams reg = serve::apply_steer(base, cmd);
  EXPECT_GE(reg.roi_x0, 0.0);
  EXPECT_LE(reg.roi_x1, 1.0);
  EXPECT_LT(reg.roi_x0, reg.roi_x1);
  EXPECT_LT(reg.roi_y0, reg.roi_y1);

  cmd.kind = serve::SteerKind::kPalette;
  cmd.palette = vis::Palette::kGrayscale;
  EXPECT_EQ(serve::apply_steer(base, cmd).palette, vis::Palette::kGrayscale);
}

TEST(FrameCacheTest, FifoEvictionAndCounters) {
  serve::FrameCache cache(2);
  const vis::Image img(4, 4);
  EXPECT_EQ(cache.find(1), nullptr);  // miss
  cache.insert(1, img);
  cache.insert(2, img);
  EXPECT_NE(cache.find(1), nullptr);  // hit
  cache.insert(3, img);               // evicts key 1 (oldest)
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  const serve::FrameCacheStats& s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.lookups(), 5u);
}

TEST(FrameCacheTest, ZeroCapacityAndDuplicateInsertsAreNoOps) {
  const vis::Image img(4, 4);
  serve::FrameCache none(0);
  none.insert(7, img);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.stats().insertions, 0u);

  serve::FrameCache cache(4);
  vis::Image other(4, 4);
  other.at(0, 0) = vis::Rgb{255, 0, 0};
  cache.insert(7, img);
  cache.insert(7, other);  // first render wins
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(*cache.find(7), img);
}

TEST(DefaultFleet, GroupsShareCanonicalViewsAndIdsAscend) {
  const std::vector<serve::ViewerSchedule> fleet = serve::default_fleet(8, 4);
  ASSERT_EQ(fleet.size(), 8u);
  std::set<std::string> texts;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fleet[static_cast<std::size_t>(i)].viewer, i);
    texts.insert(serve::canonical_view_text(
        fleet[static_cast<std::size_t>(i)].params));
    EXPECT_EQ(serve::canonical_view_text(
                  fleet[static_cast<std::size_t>(i)].params),
              serve::canonical_view_text(
                  fleet[static_cast<std::size_t>(i % 4)].params))
        << "viewer " << i << " must share its group's view";
  }
  EXPECT_EQ(texts.size(), 4u);
}

TEST(ServeSession, RerunIsByteIdentical) {
  const serve::ServeConfig config = small_serve_config(6, 3);
  const serve::ServeReport a = serve::run_serve_session(config);
  const serve::ServeReport b = serve::run_serve_session(config);
  EXPECT_EQ(a.duration.value(), b.duration.value());
  EXPECT_EQ(a.energy.value(), b.energy.value());
  EXPECT_EQ(a.final_field_digest, b.final_field_digest);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].digest, b.deliveries[i].digest);
    EXPECT_EQ(a.deliveries[i].key, b.deliveries[i].key);
  }
  std::ostringstream ja;
  std::ostringstream jb;
  serve::write_serve_profile_json(ja, config, a);
  serve::write_serve_profile_json(jb, config, b);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(ja.str().find("greenvis.serve_profile.v1"), std::string::npos);
}

TEST(ServeSession, JoinLeaveWindowsGateDeliveryExactlyOnce) {
  serve::ServeConfig config = small_serve_config(3, 2);
  config.viewers[1].join_step = 2;   // misses frame step 0
  config.viewers[2].leave_step = 4;  // misses frame steps >= 4
  const serve::ServeReport report = serve::run_serve_session(config);

  std::map<int, std::map<int, int>> per_step_viewer;
  for (const serve::Delivery& d : report.deliveries) {
    ++per_step_viewer[d.step][d.viewer];
  }
  for (int step = 0; step < config.base.iterations; ++step) {
    if (!config.base.is_io_step(step)) {
      EXPECT_EQ(per_step_viewer.count(step), 0u);
      continue;
    }
    for (const serve::ViewerSchedule& v : config.viewers) {
      const int got = per_step_viewer[step][v.viewer];
      EXPECT_EQ(got, v.active_at(step) ? 1 : 0)
          << "step " << step << " viewer " << v.viewer;
    }
  }
  EXPECT_EQ(report.frames_delivered, report.deliveries.size());
}

TEST(ServeSession, SharersReuseTheLeadRender) {
  // 6 viewers, 2 view groups: per frame step the host renders twice and
  // fans out six frames; sharers' pixels match their group lead's.
  const serve::ServeConfig config = small_serve_config(6, 2);
  const serve::ServeReport report = serve::run_serve_session(config);
  EXPECT_EQ(report.frame_steps, 3);
  EXPECT_EQ(report.unique_views_rendered, 6u);  // 2 groups x 3 frame steps
  EXPECT_EQ(report.host_renders, 6u);
  EXPECT_EQ(report.frames_delivered, 18u);
  EXPECT_EQ(report.cache.hits, 12u);

  std::map<std::uint64_t, std::uint64_t> payload;
  for (const serve::Delivery& d : report.deliveries) {
    const auto [it, fresh] = payload.emplace(d.key, d.digest);
    if (!fresh) {
      EXPECT_EQ(it->second, d.digest) << "shared key served stale pixels";
    }
  }
  EXPECT_EQ(payload.size(), report.unique_views_rendered);
}

TEST(ServeSession, BaselineFillsMarginalJoules) {
  const serve::ServeConfig config = small_serve_config(4, 2);
  const serve::ServeReport report = serve::run_serve_with_baseline(config);
  ASSERT_EQ(report.viewers.size(), 4u);
  EXPECT_GT(report.single_viewer_j, 0.0);
  EXPECT_GT(report.energy.value(), report.single_viewer_j);
  const double expect_marginal =
      (report.energy.value() - report.single_viewer_j) / 3.0;
  EXPECT_DOUBLE_EQ(report.marginal_j_per_viewer, expect_marginal);
  // Sharing amortizes the fixed bill: adding a viewer costs less than the
  // whole single-viewer session.
  EXPECT_LT(report.marginal_j_per_viewer, report.single_viewer_j);
}

TEST(ServeSession, SteeringSplitsAViewerOffItsGroup) {
  serve::ServeConfig config = small_serve_config(4, 2);
  serve::SteerCommand cmd;
  cmd.step = 2;
  cmd.viewer = 0;
  cmd.kind = serve::SteerKind::kIsoLevels;
  cmd.iso_levels = 11;
  config.commands.push_back(cmd);
  const serve::ServeReport steered = serve::run_serve_session(config);
  config.commands.clear();
  const serve::ServeReport plain = serve::run_serve_session(config);
  // Steps 2 and 4 gain one extra unique view (viewer 0 left group 0).
  EXPECT_EQ(steered.unique_views_rendered, plain.unique_views_rendered + 2);
  EXPECT_EQ(steered.frames_delivered, plain.frames_delivered);
}

}  // namespace
}  // namespace greenvis

// Async block-device layer tests: queue-depth-1 equivalence with the sync
// path, window dispatch, scheduler behavior, NVMe multi-queue fairness,
// RAID0 stripe mapping and 1-child transparency, fault records at depth,
// and the obs occupancy instrumentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/storage/async_device.hpp"
#include "src/storage/fault.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/nvme.hpp"
#include "src/storage/raid.hpp"
#include "src/storage/solid_state.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace greenvis::storage {
namespace {

using util::Seconds;

std::vector<IoRequest> mixed_stream(std::uint64_t seed, int count) {
  util::Xoshiro256 rng{seed};
  std::vector<IoRequest> requests;
  for (int i = 0; i < count; ++i) {
    IoRequest r;
    r.kind = (rng.next() & 1) != 0 ? IoKind::kWrite : IoKind::kRead;
    r.offset = rng.uniform_index(32 * 1024) * 4096;
    r.length =
        static_cast<std::uint32_t>((1 + rng.uniform_index(64)) * 4096);
    requests.push_back(r);
  }
  return requests;
}

TEST(AsyncQueue, DepthOneNoopMatchesSyncChain) {
  const std::vector<IoRequest> stream = mixed_stream(0xBEEF, 24);

  HddModel sync_dev{HddParams{}};
  std::vector<Seconds> expected;
  Seconds cursor{0.0};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Seconds submit{0.001 * static_cast<double>(i)};
    cursor = sync_dev.service(stream[i], std::max(cursor, submit));
    expected.push_back(cursor);
  }

  HddModel async_dev{HddParams{}};
  AsyncBlockDevice queue(async_dev,
                         AsyncDeviceConfig{1, IoSchedulerKind::kNoop});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    queue.submit(stream[i], Seconds{0.001 * static_cast<double>(i)});
  }
  (void)queue.drain();
  std::vector<CompletionRecord> records;
  queue.poll(records);

  ASSERT_EQ(records.size(), expected.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].complete.value(), expected[i].value()) << i;
    EXPECT_EQ(records[i].handle, i + 1);
  }
  EXPECT_EQ(sync_dev.counters().bytes_written.value(),
            async_dev.counters().bytes_written.value());
  EXPECT_EQ(sync_dev.activity().segments().size(),
            async_dev.activity().segments().size());
}

TEST(AsyncQueue, FullWindowDispatchesOnSubmit) {
  SolidStateModel dev{sata_ssd_params()};
  AsyncBlockDevice queue(dev, AsyncDeviceConfig{3, IoSchedulerKind::kNoop});
  queue.submit(IoRequest{IoKind::kRead, 0, 4096}, Seconds{0.0});
  queue.submit(IoRequest{IoKind::kRead, 4096, 4096}, Seconds{0.0});
  EXPECT_EQ(queue.pending(), 2u);  // window not full yet
  queue.submit(IoRequest{IoKind::kRead, 8192, 4096}, Seconds{0.0});
  EXPECT_EQ(queue.pending(), 0u);  // third submission filled the window
  EXPECT_EQ(queue.stats().dispatch_windows, 1u);
  std::vector<CompletionRecord> records;
  EXPECT_EQ(queue.poll(records), 3u);
  EXPECT_EQ(queue.stats().completed, 3u);
}

TEST(AsyncQueue, ElevatorServicesOneAscendingSweep) {
  HddModel dev{HddParams{}};
  AsyncBlockDevice queue(dev,
                         AsyncDeviceConfig{0, IoSchedulerKind::kElevator});
  const std::uint64_t mib = util::mebibytes(1).value();
  for (const std::uint64_t off : {700 * mib, 100 * mib, 900 * mib, 300 * mib}) {
    queue.submit(IoRequest{IoKind::kRead, off, 4096}, Seconds{0.0});
  }
  (void)queue.drain();
  std::vector<CompletionRecord> records;
  queue.poll(records);
  ASSERT_EQ(records.size(), 4u);
  // Head starts at 0: one ascending sweep.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].offset, records[i - 1].offset);
  }
}

TEST(AsyncQueue, DeadlineServicesExpiredOldestFirst) {
  HddModel dev{HddParams{}};
  AsyncDeviceConfig config;
  config.scheduler = IoSchedulerKind::kDeadline;
  config.deadline_window = util::milliseconds(1.0);
  AsyncBlockDevice queue(dev, config);
  const std::uint64_t mib = util::mebibytes(1).value();
  // A, far from the head and submitted first, would lose an elevator sweep
  // to the three near-head requests forever; under deadline it expires
  // after 1 ms and jumps the sweep.
  queue.submit(IoRequest{IoKind::kRead, 900 * mib, 4096}, Seconds{0.0});
  queue.submit(IoRequest{IoKind::kRead, 1 * mib, 4096}, Seconds{0.001});
  queue.submit(IoRequest{IoKind::kRead, 2 * mib, 4096}, Seconds{0.002});
  queue.submit(IoRequest{IoKind::kRead, 3 * mib, 4096}, Seconds{0.003});
  (void)queue.drain();
  std::vector<CompletionRecord> records;
  queue.poll(records);
  ASSERT_EQ(records.size(), 4u);
  // First pick (nothing expired yet): elevator-next near the head. By the
  // time it completes, request A is long past its deadline and goes next.
  EXPECT_EQ(records[0].offset, 1 * mib);
  EXPECT_EQ(records[1].offset, 900 * mib);
}

TEST(AsyncQueue, FaultAtDepthLandsOnTheCorrectRecord) {
  HddModel inner{HddParams{}};
  FaultConfig config;
  const std::uint64_t bad = util::gibibytes(2).value();
  config.bad_ranges = {{bad, 1u << 20}};
  FaultyDisk disk(inner, config);
  AsyncBlockDevice queue(disk, AsyncDeviceConfig{4, IoSchedulerKind::kNoop});

  const std::uint64_t mib = util::mebibytes(1).value();
  queue.submit(IoRequest{IoKind::kRead, 10 * mib, 4096}, Seconds{0.0});
  queue.submit(IoRequest{IoKind::kRead, bad + 4096, 4096}, Seconds{0.0});
  queue.submit(IoRequest{IoKind::kRead, 20 * mib, 4096}, Seconds{0.0});
  queue.submit(IoRequest{IoKind::kRead, 30 * mib, 4096}, Seconds{0.0});
  (void)queue.drain();
  std::vector<CompletionRecord> records;
  queue.poll(records);
  ASSERT_EQ(records.size(), 4u);
  int errors = 0;
  for (const CompletionRecord& r : records) {
    if (!r.ok) {
      ++errors;
      EXPECT_EQ(r.offset, bad + 4096);  // the fault pinned the right request
      EXPECT_EQ(r.handle, 2u);
      EXPECT_GE(r.complete.value(), r.start.value());  // time still passed
    }
  }
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(queue.stats().errors, 1u);
}

TEST(AsyncQueue, DrainCheckedThrowsTheRecordedError) {
  HddModel inner{HddParams{}};
  FaultConfig config;
  config.bad_ranges = {{0, 1u << 20}};
  FaultyDisk disk(inner, config);
  AsyncBlockDevice queue(disk);
  queue.submit(IoRequest{IoKind::kRead, 4096, 4096}, Seconds{0.0});
  EXPECT_THROW((void)queue.drain_checked(), DeviceError);
}

TEST(AsyncQueue, FlushRequiresADrainedQueue) {
  HddModel dev{HddParams{}};
  AsyncBlockDevice queue(dev);
  queue.submit(IoRequest{IoKind::kWrite, 0, 4096}, Seconds{0.0});
  EXPECT_THROW((void)queue.flush(Seconds{0.0}), util::ContractViolation);
  (void)queue.drain();
  EXPECT_NO_THROW((void)queue.flush(queue.drain()));
}

TEST(AsyncQueue, OccupancyGaugeTracksPendingDepth) {
  struct ObsGuard {
    ~ObsGuard() { obs::set_enabled(false); }
  } guard;
  obs::set_enabled(true);
  auto& gauge =
      obs::Registry::global().gauge("storage.async.queue_occupancy");
  HddModel dev{HddParams{}};
  AsyncBlockDevice queue(dev);
  queue.submit(IoRequest{IoKind::kRead, 0, 4096}, Seconds{0.0});
  queue.submit(IoRequest{IoKind::kRead, 4096, 4096}, Seconds{0.0});
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  (void)queue.drain();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

// ---- NVMe: multiple submission queues ----

TEST(Nvme, QueueCountIsFairAcrossChannels) {
  NvmeParams params = nvme_default_params();
  ASSERT_EQ(params.queues, 4u);
  NvmeModel dev(params);
  AsyncBlockDevice queue(dev);
  // Four equal requests submitted together: the queue layer spreads them
  // over the four channels, so every request starts at the batch start.
  std::vector<IoRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(IoRequest{IoKind::kRead,
                              static_cast<std::uint64_t>(i) << 26, 1u << 26});
  }
  (void)queue.run_batch(batch, Seconds{0.0});
  ASSERT_EQ(queue.last_batch().size(), 4u);
  for (const CompletionRecord& r : queue.last_batch()) {
    EXPECT_DOUBLE_EQ(r.start.value(), 0.0);
  }
}

TEST(Nvme, MoreQueuesFinishParallelWindowsFaster) {
  const auto makespan = [](std::size_t queues) {
    NvmeParams params = nvme_default_params();
    params.queues = queues;
    NvmeModel dev(params);
    AsyncBlockDevice queue(dev);
    std::vector<IoRequest> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(IoRequest{
          IoKind::kRead, static_cast<std::uint64_t>(i) << 26, 1u << 26});
    }
    return queue.run_batch(batch, Seconds{0.0}).value();
  };
  const double one = makespan(1);
  const double four = makespan(4);
  EXPECT_LT(four, one);
}

// ---- RAID0 ----

TEST(Raid0, StripeMappingCoversEveryChildExactlyOnce) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    children.push_back(std::make_unique<HddModel>(HddParams{}));
  }
  Raid0Model raid(std::move(children));
  const std::uint64_t stripe = raid.stripe().value();

  // 8 whole stripes from stripe boundary: two per child, contiguous.
  for (std::size_t c = 0; c < raid.child_count(); ++c) {
    const auto extent = raid.child_extent(c, 0, 8 * stripe);
    EXPECT_EQ(extent.length, 2 * stripe) << c;
  }

  // Random sub-ranges: the per-child extents always conserve the bytes.
  util::Xoshiro256 rng{0x57121};
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t offset = rng.uniform_index(64 * stripe);
    const std::uint64_t length = 1 + rng.uniform_index(16 * stripe);
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < raid.child_count(); ++c) {
      const auto extent = raid.child_extent(c, offset, length);
      total += extent.length;
      EXPECT_LE(extent.offset + extent.length,
                raid.child(c).capacity().value());
    }
    EXPECT_EQ(total, length) << "offset=" << offset << " length=" << length;
  }
}

TEST(Raid0, IntraStripeRequestTouchesOneChild) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    children.push_back(std::make_unique<HddModel>(HddParams{}));
  }
  Raid0Model raid(std::move(children));
  const std::uint64_t stripe = raid.stripe().value();
  // Second stripe lives on child 1 at child offset 0 (stripe 1 of 4).
  std::size_t touched = 0;
  for (std::size_t c = 0; c < raid.child_count(); ++c) {
    const auto extent = raid.child_extent(c, stripe + 512, 1024);
    if (extent.length > 0) {
      ++touched;
      EXPECT_EQ(c, 1u);
      EXPECT_EQ(extent.offset, 512u);
      EXPECT_EQ(extent.length, 1024u);
    }
  }
  EXPECT_EQ(touched, 1u);
}

TEST(Raid0, ServiceBusiesEveryChildOnAFullStripeRow) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    children.push_back(std::make_unique<HddModel>(HddParams{}));
  }
  Raid0Model raid(std::move(children));
  const std::uint64_t stripe = raid.stripe().value();
  const Seconds end = raid.service(
      IoRequest{IoKind::kRead, 0,
                static_cast<std::uint32_t>(4 * stripe)},
      Seconds{0.0});
  EXPECT_GT(end.value(), 0.0);
  for (std::size_t c = 0; c < raid.child_count(); ++c) {
    EXPECT_EQ(raid.child(c).counters().reads, 1u) << c;
    EXPECT_EQ(raid.child(c).counters().bytes_read.value(), stripe) << c;
  }
  EXPECT_EQ(raid.counters().reads, 1u);
  EXPECT_EQ(raid.counters().bytes_read.value(), 4 * stripe);
  EXPECT_FALSE(raid.activity().segments().empty());
}

TEST(Raid0, SingleChildVolumeIsTheChildBitForBit) {
  HddModel bare{HddParams{}};
  std::vector<std::unique_ptr<BlockDevice>> children;
  children.push_back(std::make_unique<HddModel>(HddParams{}));
  Raid0Model raid(std::move(children));

  const std::vector<IoRequest> stream = mixed_stream(0x1AC5, 32);
  Seconds tb{0.0};
  Seconds tr{0.0};
  for (const IoRequest& r : stream) {
    tb = bare.service(r, tb);
    tr = raid.service(r, tr);
    EXPECT_EQ(tr.value(), tb.value());
  }
  tb = bare.flush(tb);
  tr = raid.flush(tr);
  EXPECT_EQ(tr.value(), tb.value());

  EXPECT_EQ(raid.counters().reads, bare.counters().reads);
  EXPECT_EQ(raid.counters().writes, bare.counters().writes);
  EXPECT_EQ(raid.counters().bytes_read.value(),
            bare.counters().bytes_read.value());
  EXPECT_EQ(raid.counters().bytes_written.value(),
            bare.counters().bytes_written.value());
  const auto& sa = bare.activity().segments();
  const auto& sb = raid.activity().segments();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].begin.value(), sb[i].begin.value()) << i;
    EXPECT_EQ(sa[i].end.value(), sb[i].end.value()) << i;
    EXPECT_EQ(sa[i].phase, sb[i].phase) << i;
  }
}

}  // namespace
}  // namespace greenvis::storage
